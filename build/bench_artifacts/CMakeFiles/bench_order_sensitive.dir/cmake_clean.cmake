file(REMOVE_RECURSE
  "../bench/bench_order_sensitive"
  "../bench/bench_order_sensitive.pdb"
  "CMakeFiles/bench_order_sensitive.dir/bench_order_sensitive.cc.o"
  "CMakeFiles/bench_order_sensitive.dir/bench_order_sensitive.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_order_sensitive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
