# Empty compiler generated dependencies file for bench_order_sensitive.
# This may be replaced when dependencies are built.
