file(REMOVE_RECURSE
  "../bench/bench_schema_prune"
  "../bench/bench_schema_prune.pdb"
  "CMakeFiles/bench_schema_prune.dir/bench_schema_prune.cc.o"
  "CMakeFiles/bench_schema_prune.dir/bench_schema_prune.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_prune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
