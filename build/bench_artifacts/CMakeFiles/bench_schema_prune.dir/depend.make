# Empty dependencies file for bench_schema_prune.
# This may be replaced when dependencies are built.
