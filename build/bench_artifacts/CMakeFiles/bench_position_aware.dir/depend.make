# Empty dependencies file for bench_position_aware.
# This may be replaced when dependencies are built.
