file(REMOVE_RECURSE
  "../bench/bench_position_aware"
  "../bench/bench_position_aware.pdb"
  "CMakeFiles/bench_position_aware.dir/bench_position_aware.cc.o"
  "CMakeFiles/bench_position_aware.dir/bench_position_aware.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_position_aware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
