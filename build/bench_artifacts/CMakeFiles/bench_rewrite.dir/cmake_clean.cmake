file(REMOVE_RECURSE
  "../bench/bench_rewrite"
  "../bench/bench_rewrite.pdb"
  "CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o"
  "CMakeFiles/bench_rewrite.dir/bench_rewrite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
