# Empty dependencies file for bench_keyword_search.
# This may be replaced when dependencies are built.
