file(REMOVE_RECURSE
  "../bench/bench_keyword_search"
  "../bench/bench_keyword_search.pdb"
  "CMakeFiles/bench_keyword_search.dir/bench_keyword_search.cc.o"
  "CMakeFiles/bench_keyword_search.dir/bench_keyword_search.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_keyword_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
