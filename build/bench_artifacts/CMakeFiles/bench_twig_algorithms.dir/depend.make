# Empty dependencies file for bench_twig_algorithms.
# This may be replaced when dependencies are built.
