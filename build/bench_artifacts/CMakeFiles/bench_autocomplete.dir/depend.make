# Empty dependencies file for bench_autocomplete.
# This may be replaced when dependencies are built.
