file(REMOVE_RECURSE
  "../bench/bench_autocomplete"
  "../bench/bench_autocomplete.pdb"
  "CMakeFiles/bench_autocomplete.dir/bench_autocomplete.cc.o"
  "CMakeFiles/bench_autocomplete.dir/bench_autocomplete.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_autocomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
