file(REMOVE_RECURSE
  "../bench/bench_index_build"
  "../bench/bench_index_build.pdb"
  "CMakeFiles/bench_index_build.dir/bench_index_build.cc.o"
  "CMakeFiles/bench_index_build.dir/bench_index_build.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_index_build.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
