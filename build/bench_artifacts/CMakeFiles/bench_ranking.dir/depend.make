# Empty dependencies file for bench_ranking.
# This may be replaced when dependencies are built.
