file(REMOVE_RECURSE
  "../bench/bench_ranking"
  "../bench/bench_ranking.pdb"
  "CMakeFiles/bench_ranking.dir/bench_ranking.cc.o"
  "CMakeFiles/bench_ranking.dir/bench_ranking.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
