file(REMOVE_RECURSE
  "liblotusx_index.a"
)
