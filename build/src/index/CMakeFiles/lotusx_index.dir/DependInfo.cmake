
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/index/dataguide.cc" "src/index/CMakeFiles/lotusx_index.dir/dataguide.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/dataguide.cc.o.d"
  "/root/repo/src/index/document_stats.cc" "src/index/CMakeFiles/lotusx_index.dir/document_stats.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/document_stats.cc.o.d"
  "/root/repo/src/index/indexed_document.cc" "src/index/CMakeFiles/lotusx_index.dir/indexed_document.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/indexed_document.cc.o.d"
  "/root/repo/src/index/tag_streams.cc" "src/index/CMakeFiles/lotusx_index.dir/tag_streams.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/tag_streams.cc.o.d"
  "/root/repo/src/index/term_index.cc" "src/index/CMakeFiles/lotusx_index.dir/term_index.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/term_index.cc.o.d"
  "/root/repo/src/index/trie.cc" "src/index/CMakeFiles/lotusx_index.dir/trie.cc.o" "gcc" "src/index/CMakeFiles/lotusx_index.dir/trie.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/labeling/CMakeFiles/lotusx_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lotusx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotusx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
