# Empty dependencies file for lotusx_index.
# This may be replaced when dependencies are built.
