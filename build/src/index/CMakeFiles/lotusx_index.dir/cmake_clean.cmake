file(REMOVE_RECURSE
  "CMakeFiles/lotusx_index.dir/dataguide.cc.o"
  "CMakeFiles/lotusx_index.dir/dataguide.cc.o.d"
  "CMakeFiles/lotusx_index.dir/document_stats.cc.o"
  "CMakeFiles/lotusx_index.dir/document_stats.cc.o.d"
  "CMakeFiles/lotusx_index.dir/indexed_document.cc.o"
  "CMakeFiles/lotusx_index.dir/indexed_document.cc.o.d"
  "CMakeFiles/lotusx_index.dir/tag_streams.cc.o"
  "CMakeFiles/lotusx_index.dir/tag_streams.cc.o.d"
  "CMakeFiles/lotusx_index.dir/term_index.cc.o"
  "CMakeFiles/lotusx_index.dir/term_index.cc.o.d"
  "CMakeFiles/lotusx_index.dir/trie.cc.o"
  "CMakeFiles/lotusx_index.dir/trie.cc.o.d"
  "liblotusx_index.a"
  "liblotusx_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
