file(REMOVE_RECURSE
  "liblotusx_ranking.a"
)
