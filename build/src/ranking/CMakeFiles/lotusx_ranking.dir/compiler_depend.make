# Empty compiler generated dependencies file for lotusx_ranking.
# This may be replaced when dependencies are built.
