file(REMOVE_RECURSE
  "CMakeFiles/lotusx_ranking.dir/ranker.cc.o"
  "CMakeFiles/lotusx_ranking.dir/ranker.cc.o.d"
  "liblotusx_ranking.a"
  "liblotusx_ranking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_ranking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
