
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lotusx/collection.cc" "src/lotusx/CMakeFiles/lotusx_engine.dir/collection.cc.o" "gcc" "src/lotusx/CMakeFiles/lotusx_engine.dir/collection.cc.o.d"
  "/root/repo/src/lotusx/engine.cc" "src/lotusx/CMakeFiles/lotusx_engine.dir/engine.cc.o" "gcc" "src/lotusx/CMakeFiles/lotusx_engine.dir/engine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/session/CMakeFiles/lotusx_session.dir/DependInfo.cmake"
  "/root/repo/build/src/keyword/CMakeFiles/lotusx_keyword.dir/DependInfo.cmake"
  "/root/repo/build/src/autocomplete/CMakeFiles/lotusx_autocomplete.dir/DependInfo.cmake"
  "/root/repo/build/src/ranking/CMakeFiles/lotusx_ranking.dir/DependInfo.cmake"
  "/root/repo/build/src/rewrite/CMakeFiles/lotusx_rewrite.dir/DependInfo.cmake"
  "/root/repo/build/src/twig/CMakeFiles/lotusx_twig.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/lotusx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/lotusx_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lotusx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotusx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
