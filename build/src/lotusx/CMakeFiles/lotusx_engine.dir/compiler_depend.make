# Empty compiler generated dependencies file for lotusx_engine.
# This may be replaced when dependencies are built.
