file(REMOVE_RECURSE
  "CMakeFiles/lotusx_engine.dir/collection.cc.o"
  "CMakeFiles/lotusx_engine.dir/collection.cc.o.d"
  "CMakeFiles/lotusx_engine.dir/engine.cc.o"
  "CMakeFiles/lotusx_engine.dir/engine.cc.o.d"
  "liblotusx_engine.a"
  "liblotusx_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
