file(REMOVE_RECURSE
  "liblotusx_engine.a"
)
