
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/keyword/keyword_search.cc" "src/keyword/CMakeFiles/lotusx_keyword.dir/keyword_search.cc.o" "gcc" "src/keyword/CMakeFiles/lotusx_keyword.dir/keyword_search.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/lotusx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lotusx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotusx_common.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/lotusx_labeling.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
