file(REMOVE_RECURSE
  "liblotusx_keyword.a"
)
