# Empty compiler generated dependencies file for lotusx_keyword.
# This may be replaced when dependencies are built.
