file(REMOVE_RECURSE
  "CMakeFiles/lotusx_keyword.dir/keyword_search.cc.o"
  "CMakeFiles/lotusx_keyword.dir/keyword_search.cc.o.d"
  "liblotusx_keyword.a"
  "liblotusx_keyword.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_keyword.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
