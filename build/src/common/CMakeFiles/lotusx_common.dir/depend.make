# Empty dependencies file for lotusx_common.
# This may be replaced when dependencies are built.
