file(REMOVE_RECURSE
  "CMakeFiles/lotusx_common.dir/coding.cc.o"
  "CMakeFiles/lotusx_common.dir/coding.cc.o.d"
  "CMakeFiles/lotusx_common.dir/logging.cc.o"
  "CMakeFiles/lotusx_common.dir/logging.cc.o.d"
  "CMakeFiles/lotusx_common.dir/random.cc.o"
  "CMakeFiles/lotusx_common.dir/random.cc.o.d"
  "CMakeFiles/lotusx_common.dir/status.cc.o"
  "CMakeFiles/lotusx_common.dir/status.cc.o.d"
  "CMakeFiles/lotusx_common.dir/string_util.cc.o"
  "CMakeFiles/lotusx_common.dir/string_util.cc.o.d"
  "liblotusx_common.a"
  "liblotusx_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
