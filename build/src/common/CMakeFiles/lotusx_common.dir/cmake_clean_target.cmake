file(REMOVE_RECURSE
  "liblotusx_common.a"
)
