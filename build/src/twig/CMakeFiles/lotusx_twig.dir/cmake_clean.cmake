file(REMOVE_RECURSE
  "CMakeFiles/lotusx_twig.dir/candidates.cc.o"
  "CMakeFiles/lotusx_twig.dir/candidates.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/evaluator.cc.o"
  "CMakeFiles/lotusx_twig.dir/evaluator.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/order_filter.cc.o"
  "CMakeFiles/lotusx_twig.dir/order_filter.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/path_merge.cc.o"
  "CMakeFiles/lotusx_twig.dir/path_merge.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/path_stack.cc.o"
  "CMakeFiles/lotusx_twig.dir/path_stack.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/query_export.cc.o"
  "CMakeFiles/lotusx_twig.dir/query_export.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/query_from_example.cc.o"
  "CMakeFiles/lotusx_twig.dir/query_from_example.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/query_parser.cc.o"
  "CMakeFiles/lotusx_twig.dir/query_parser.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/schema_match.cc.o"
  "CMakeFiles/lotusx_twig.dir/schema_match.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/selectivity.cc.o"
  "CMakeFiles/lotusx_twig.dir/selectivity.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/stack_common.cc.o"
  "CMakeFiles/lotusx_twig.dir/stack_common.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/structural_join.cc.o"
  "CMakeFiles/lotusx_twig.dir/structural_join.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/tjfast.cc.o"
  "CMakeFiles/lotusx_twig.dir/tjfast.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/twig_query.cc.o"
  "CMakeFiles/lotusx_twig.dir/twig_query.cc.o.d"
  "CMakeFiles/lotusx_twig.dir/twig_stack.cc.o"
  "CMakeFiles/lotusx_twig.dir/twig_stack.cc.o.d"
  "liblotusx_twig.a"
  "liblotusx_twig.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_twig.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
