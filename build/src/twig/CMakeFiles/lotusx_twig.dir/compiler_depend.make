# Empty compiler generated dependencies file for lotusx_twig.
# This may be replaced when dependencies are built.
