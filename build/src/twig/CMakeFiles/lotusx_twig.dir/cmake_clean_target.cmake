file(REMOVE_RECURSE
  "liblotusx_twig.a"
)
