
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/twig/candidates.cc" "src/twig/CMakeFiles/lotusx_twig.dir/candidates.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/candidates.cc.o.d"
  "/root/repo/src/twig/evaluator.cc" "src/twig/CMakeFiles/lotusx_twig.dir/evaluator.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/evaluator.cc.o.d"
  "/root/repo/src/twig/order_filter.cc" "src/twig/CMakeFiles/lotusx_twig.dir/order_filter.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/order_filter.cc.o.d"
  "/root/repo/src/twig/path_merge.cc" "src/twig/CMakeFiles/lotusx_twig.dir/path_merge.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/path_merge.cc.o.d"
  "/root/repo/src/twig/path_stack.cc" "src/twig/CMakeFiles/lotusx_twig.dir/path_stack.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/path_stack.cc.o.d"
  "/root/repo/src/twig/query_export.cc" "src/twig/CMakeFiles/lotusx_twig.dir/query_export.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/query_export.cc.o.d"
  "/root/repo/src/twig/query_from_example.cc" "src/twig/CMakeFiles/lotusx_twig.dir/query_from_example.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/query_from_example.cc.o.d"
  "/root/repo/src/twig/query_parser.cc" "src/twig/CMakeFiles/lotusx_twig.dir/query_parser.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/query_parser.cc.o.d"
  "/root/repo/src/twig/schema_match.cc" "src/twig/CMakeFiles/lotusx_twig.dir/schema_match.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/schema_match.cc.o.d"
  "/root/repo/src/twig/selectivity.cc" "src/twig/CMakeFiles/lotusx_twig.dir/selectivity.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/selectivity.cc.o.d"
  "/root/repo/src/twig/stack_common.cc" "src/twig/CMakeFiles/lotusx_twig.dir/stack_common.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/stack_common.cc.o.d"
  "/root/repo/src/twig/structural_join.cc" "src/twig/CMakeFiles/lotusx_twig.dir/structural_join.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/structural_join.cc.o.d"
  "/root/repo/src/twig/tjfast.cc" "src/twig/CMakeFiles/lotusx_twig.dir/tjfast.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/tjfast.cc.o.d"
  "/root/repo/src/twig/twig_query.cc" "src/twig/CMakeFiles/lotusx_twig.dir/twig_query.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/twig_query.cc.o.d"
  "/root/repo/src/twig/twig_stack.cc" "src/twig/CMakeFiles/lotusx_twig.dir/twig_stack.cc.o" "gcc" "src/twig/CMakeFiles/lotusx_twig.dir/twig_stack.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/index/CMakeFiles/lotusx_index.dir/DependInfo.cmake"
  "/root/repo/build/src/labeling/CMakeFiles/lotusx_labeling.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/lotusx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotusx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
