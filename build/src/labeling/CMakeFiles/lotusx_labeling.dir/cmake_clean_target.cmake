file(REMOVE_RECURSE
  "liblotusx_labeling.a"
)
