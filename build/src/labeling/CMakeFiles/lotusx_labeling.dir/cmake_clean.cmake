file(REMOVE_RECURSE
  "CMakeFiles/lotusx_labeling.dir/containment.cc.o"
  "CMakeFiles/lotusx_labeling.dir/containment.cc.o.d"
  "CMakeFiles/lotusx_labeling.dir/dewey.cc.o"
  "CMakeFiles/lotusx_labeling.dir/dewey.cc.o.d"
  "CMakeFiles/lotusx_labeling.dir/extended_dewey.cc.o"
  "CMakeFiles/lotusx_labeling.dir/extended_dewey.cc.o.d"
  "liblotusx_labeling.a"
  "liblotusx_labeling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_labeling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
