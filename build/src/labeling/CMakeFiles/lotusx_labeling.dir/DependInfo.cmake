
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/labeling/containment.cc" "src/labeling/CMakeFiles/lotusx_labeling.dir/containment.cc.o" "gcc" "src/labeling/CMakeFiles/lotusx_labeling.dir/containment.cc.o.d"
  "/root/repo/src/labeling/dewey.cc" "src/labeling/CMakeFiles/lotusx_labeling.dir/dewey.cc.o" "gcc" "src/labeling/CMakeFiles/lotusx_labeling.dir/dewey.cc.o.d"
  "/root/repo/src/labeling/extended_dewey.cc" "src/labeling/CMakeFiles/lotusx_labeling.dir/extended_dewey.cc.o" "gcc" "src/labeling/CMakeFiles/lotusx_labeling.dir/extended_dewey.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/xml/CMakeFiles/lotusx_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/lotusx_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
