# Empty compiler generated dependencies file for lotusx_labeling.
# This may be replaced when dependencies are built.
