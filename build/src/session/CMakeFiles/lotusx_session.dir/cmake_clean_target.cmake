file(REMOVE_RECURSE
  "liblotusx_session.a"
)
