# Empty compiler generated dependencies file for lotusx_session.
# This may be replaced when dependencies are built.
