file(REMOVE_RECURSE
  "CMakeFiles/lotusx_session.dir/canvas.cc.o"
  "CMakeFiles/lotusx_session.dir/canvas.cc.o.d"
  "CMakeFiles/lotusx_session.dir/canvas_io.cc.o"
  "CMakeFiles/lotusx_session.dir/canvas_io.cc.o.d"
  "CMakeFiles/lotusx_session.dir/protocol.cc.o"
  "CMakeFiles/lotusx_session.dir/protocol.cc.o.d"
  "CMakeFiles/lotusx_session.dir/session.cc.o"
  "CMakeFiles/lotusx_session.dir/session.cc.o.d"
  "CMakeFiles/lotusx_session.dir/svg_export.cc.o"
  "CMakeFiles/lotusx_session.dir/svg_export.cc.o.d"
  "liblotusx_session.a"
  "liblotusx_session.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_session.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
