file(REMOVE_RECURSE
  "liblotusx_autocomplete.a"
)
