file(REMOVE_RECURSE
  "CMakeFiles/lotusx_autocomplete.dir/completion.cc.o"
  "CMakeFiles/lotusx_autocomplete.dir/completion.cc.o.d"
  "liblotusx_autocomplete.a"
  "liblotusx_autocomplete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_autocomplete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
