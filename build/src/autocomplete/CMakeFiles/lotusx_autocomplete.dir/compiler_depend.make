# Empty compiler generated dependencies file for lotusx_autocomplete.
# This may be replaced when dependencies are built.
