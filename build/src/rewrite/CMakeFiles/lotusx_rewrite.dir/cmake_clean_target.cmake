file(REMOVE_RECURSE
  "liblotusx_rewrite.a"
)
