file(REMOVE_RECURSE
  "CMakeFiles/lotusx_rewrite.dir/rewriter.cc.o"
  "CMakeFiles/lotusx_rewrite.dir/rewriter.cc.o.d"
  "liblotusx_rewrite.a"
  "liblotusx_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
