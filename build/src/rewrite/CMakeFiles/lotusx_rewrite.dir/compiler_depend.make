# Empty compiler generated dependencies file for lotusx_rewrite.
# This may be replaced when dependencies are built.
