# Empty compiler generated dependencies file for lotusx_datagen.
# This may be replaced when dependencies are built.
