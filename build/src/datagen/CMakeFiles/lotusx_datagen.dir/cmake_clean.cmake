file(REMOVE_RECURSE
  "CMakeFiles/lotusx_datagen.dir/datagen.cc.o"
  "CMakeFiles/lotusx_datagen.dir/datagen.cc.o.d"
  "liblotusx_datagen.a"
  "liblotusx_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
