file(REMOVE_RECURSE
  "liblotusx_datagen.a"
)
