# Empty compiler generated dependencies file for lotusx_xml.
# This may be replaced when dependencies are built.
