file(REMOVE_RECURSE
  "CMakeFiles/lotusx_xml.dir/dom.cc.o"
  "CMakeFiles/lotusx_xml.dir/dom.cc.o.d"
  "CMakeFiles/lotusx_xml.dir/dom_builder.cc.o"
  "CMakeFiles/lotusx_xml.dir/dom_builder.cc.o.d"
  "CMakeFiles/lotusx_xml.dir/escape.cc.o"
  "CMakeFiles/lotusx_xml.dir/escape.cc.o.d"
  "CMakeFiles/lotusx_xml.dir/pull_parser.cc.o"
  "CMakeFiles/lotusx_xml.dir/pull_parser.cc.o.d"
  "CMakeFiles/lotusx_xml.dir/writer.cc.o"
  "CMakeFiles/lotusx_xml.dir/writer.cc.o.d"
  "liblotusx_xml.a"
  "liblotusx_xml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_xml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
