file(REMOVE_RECURSE
  "liblotusx_xml.a"
)
