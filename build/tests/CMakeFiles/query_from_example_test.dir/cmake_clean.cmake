file(REMOVE_RECURSE
  "CMakeFiles/query_from_example_test.dir/query_from_example_test.cc.o"
  "CMakeFiles/query_from_example_test.dir/query_from_example_test.cc.o.d"
  "query_from_example_test"
  "query_from_example_test.pdb"
  "query_from_example_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_from_example_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
