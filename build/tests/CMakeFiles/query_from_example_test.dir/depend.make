# Empty dependencies file for query_from_example_test.
# This may be replaced when dependencies are built.
