file(REMOVE_RECURSE
  "CMakeFiles/query_export_test.dir/query_export_test.cc.o"
  "CMakeFiles/query_export_test.dir/query_export_test.cc.o.d"
  "query_export_test"
  "query_export_test.pdb"
  "query_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
