# Empty compiler generated dependencies file for query_export_test.
# This may be replaced when dependencies are built.
