file(REMOVE_RECURSE
  "CMakeFiles/lotusx_test_util.dir/test_util.cc.o"
  "CMakeFiles/lotusx_test_util.dir/test_util.cc.o.d"
  "liblotusx_test_util.a"
  "liblotusx_test_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotusx_test_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
