# Empty compiler generated dependencies file for lotusx_test_util.
# This may be replaced when dependencies are built.
