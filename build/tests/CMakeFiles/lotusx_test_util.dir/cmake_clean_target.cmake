file(REMOVE_RECURSE
  "liblotusx_test_util.a"
)
