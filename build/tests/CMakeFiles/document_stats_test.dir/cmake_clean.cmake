file(REMOVE_RECURSE
  "CMakeFiles/document_stats_test.dir/document_stats_test.cc.o"
  "CMakeFiles/document_stats_test.dir/document_stats_test.cc.o.d"
  "document_stats_test"
  "document_stats_test.pdb"
  "document_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
