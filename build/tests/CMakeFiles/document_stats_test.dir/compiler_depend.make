# Empty compiler generated dependencies file for document_stats_test.
# This may be replaced when dependencies are built.
