# Empty dependencies file for twig_query_test.
# This may be replaced when dependencies are built.
