file(REMOVE_RECURSE
  "CMakeFiles/twig_query_test.dir/twig_query_test.cc.o"
  "CMakeFiles/twig_query_test.dir/twig_query_test.cc.o.d"
  "twig_query_test"
  "twig_query_test.pdb"
  "twig_query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
