# Empty dependencies file for twig_internals_test.
# This may be replaced when dependencies are built.
