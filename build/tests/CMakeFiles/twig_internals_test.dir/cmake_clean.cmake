file(REMOVE_RECURSE
  "CMakeFiles/twig_internals_test.dir/twig_internals_test.cc.o"
  "CMakeFiles/twig_internals_test.dir/twig_internals_test.cc.o.d"
  "twig_internals_test"
  "twig_internals_test.pdb"
  "twig_internals_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_internals_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
