file(REMOVE_RECURSE
  "CMakeFiles/svg_export_test.dir/svg_export_test.cc.o"
  "CMakeFiles/svg_export_test.dir/svg_export_test.cc.o.d"
  "svg_export_test"
  "svg_export_test.pdb"
  "svg_export_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/svg_export_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
