# Empty dependencies file for svg_export_test.
# This may be replaced when dependencies are built.
