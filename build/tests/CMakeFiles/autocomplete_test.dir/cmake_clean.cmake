file(REMOVE_RECURSE
  "CMakeFiles/autocomplete_test.dir/autocomplete_test.cc.o"
  "CMakeFiles/autocomplete_test.dir/autocomplete_test.cc.o.d"
  "autocomplete_test"
  "autocomplete_test.pdb"
  "autocomplete_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocomplete_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
