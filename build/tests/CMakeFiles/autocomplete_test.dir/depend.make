# Empty dependencies file for autocomplete_test.
# This may be replaced when dependencies are built.
