file(REMOVE_RECURSE
  "CMakeFiles/canvas_io_test.dir/canvas_io_test.cc.o"
  "CMakeFiles/canvas_io_test.dir/canvas_io_test.cc.o.d"
  "canvas_io_test"
  "canvas_io_test.pdb"
  "canvas_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canvas_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
