# Empty compiler generated dependencies file for canvas_io_test.
# This may be replaced when dependencies are built.
