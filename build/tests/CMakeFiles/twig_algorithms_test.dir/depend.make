# Empty dependencies file for twig_algorithms_test.
# This may be replaced when dependencies are built.
