file(REMOVE_RECURSE
  "CMakeFiles/twig_algorithms_test.dir/twig_algorithms_test.cc.o"
  "CMakeFiles/twig_algorithms_test.dir/twig_algorithms_test.cc.o.d"
  "twig_algorithms_test"
  "twig_algorithms_test.pdb"
  "twig_algorithms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/twig_algorithms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
