# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/xml_parser_test[1]_include.cmake")
include("/root/repo/build/tests/xml_dom_test[1]_include.cmake")
include("/root/repo/build/tests/labeling_test[1]_include.cmake")
include("/root/repo/build/tests/trie_test[1]_include.cmake")
include("/root/repo/build/tests/index_test[1]_include.cmake")
include("/root/repo/build/tests/twig_query_test[1]_include.cmake")
include("/root/repo/build/tests/twig_algorithms_test[1]_include.cmake")
include("/root/repo/build/tests/datagen_test[1]_include.cmake")
include("/root/repo/build/tests/autocomplete_test[1]_include.cmake")
include("/root/repo/build/tests/ranking_test[1]_include.cmake")
include("/root/repo/build/tests/rewrite_test[1]_include.cmake")
include("/root/repo/build/tests/session_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/selectivity_test[1]_include.cmake")
include("/root/repo/build/tests/query_export_test[1]_include.cmake")
include("/root/repo/build/tests/collection_test[1]_include.cmake")
include("/root/repo/build/tests/svg_export_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/query_cache_test[1]_include.cmake")
include("/root/repo/build/tests/keyword_search_test[1]_include.cmake")
include("/root/repo/build/tests/twig_internals_test[1]_include.cmake")
include("/root/repo/build/tests/document_stats_test[1]_include.cmake")
include("/root/repo/build/tests/canvas_io_test[1]_include.cmake")
include("/root/repo/build/tests/query_from_example_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/regression_test[1]_include.cmake")
