file(REMOVE_RECURSE
  "CMakeFiles/interactive_repl.dir/interactive_repl.cpp.o"
  "CMakeFiles/interactive_repl.dir/interactive_repl.cpp.o.d"
  "interactive_repl"
  "interactive_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interactive_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
