# Empty compiler generated dependencies file for federated_search.
# This may be replaced when dependencies are built.
