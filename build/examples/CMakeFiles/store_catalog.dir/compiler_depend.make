# Empty compiler generated dependencies file for store_catalog.
# This may be replaced when dependencies are built.
