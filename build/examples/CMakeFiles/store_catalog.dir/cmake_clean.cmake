file(REMOVE_RECURSE
  "CMakeFiles/store_catalog.dir/store_catalog.cpp.o"
  "CMakeFiles/store_catalog.dir/store_catalog.cpp.o.d"
  "store_catalog"
  "store_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/store_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
