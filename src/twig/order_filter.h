#ifndef LOTUSX_TWIG_ORDER_FILTER_H_
#define LOTUSX_TWIG_ORDER_FILTER_H_

#include "twig/match.h"
#include "twig/twig_query.h"
#include "xml/dom.h"

namespace lotusx::twig {

/// True when `match` satisfies every order constraint of `query`: for
/// each query node with `ordered` set, the bindings of its children must
/// appear left-to-right in document order with disjoint subtrees —
/// binding(c_i).subtree_end < binding(c_{i+1}) ("following" semantics,
/// the order-sensitive query model of LotusX).
bool SatisfiesOrderConstraints(const xml::Document& document,
                               const TwigQuery& query, const Match& match);

/// Removes matches violating order constraints (the naive post-filter the
/// E4 experiment compares against integrated checking).
void FilterByOrder(const xml::Document& document, const TwigQuery& query,
                   std::vector<Match>* matches);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_ORDER_FILTER_H_
