#include <cstdio>
#include <sstream>

#include "twig/plan/physical_plan.h"

namespace lotusx::twig::plan {

namespace {

std::string FmtRows(double rows) {
  char buffer[32];
  if (rows == static_cast<double>(static_cast<uint64_t>(rows)) &&
      rows < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%llu",
                  static_cast<unsigned long long>(rows));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.1f", rows);
  }
  return buffer;
}

std::string FmtMs(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

void RenderOperator(const PhysicalPlan& plan, int index, int depth,
                    bool include_actuals, std::ostringstream* out) {
  const OperatorNode& op = plan.ops[static_cast<size_t>(index)];
  for (int i = 0; i < depth; ++i) *out << "  ";
  *out << "-> " << OperatorName(op.kind);
  if (!op.detail.empty()) *out << " [" << op.detail << "]";
  *out << "  (est rows=" << FmtRows(op.estimated_rows)
       << " cost=" << FmtRows(op.estimated_cost);
  if (include_actuals && op.has_actuals) {
    *out << " | actual rows=" << op.actual_rows_out;
    if (op.actual_rows_in > 0) *out << " in=" << op.actual_rows_in;
    if (op.actual_ms > 0) *out << " time=" << FmtMs(op.actual_ms) << "ms";
  }
  *out << ")\n";
  for (int child : op.children) {
    RenderOperator(plan, child, depth + 1, include_actuals, out);
  }
}

}  // namespace

std::string DescribePlan(const PhysicalPlan& plan, bool include_actuals) {
  std::ostringstream out;
  out << "query: " << plan.query.ToString() << "\n";
  out << "algorithm: " << AlgorithmName(plan.algorithm) << " ("
      << plan.choice_reason << ")\n";
  out << "hints: order=" << (plan.apply_order ? "on" : "off")
      << " integrated-order=" << (plan.integrate_order ? "on" : "off")
      << " schema-prune=" << (plan.schema_prune ? "on" : "off")
      << " reorder-joins=" << (plan.reorder_binary_joins ? "on" : "off")
      << "\n";
  if (!plan.ops.empty()) {
    RenderOperator(plan, static_cast<int>(plan.ops.size()) - 1, 0,
                   include_actuals, &out);
  }
  out << "estimated matches: " << FmtRows(plan.estimate.match_cardinality);
  if (include_actuals) {
    out << "; actual matches: " << plan.stats.totals.matches;
  }
  out << "\n";
  if (include_actuals) {
    out << "totals: scanned " << plan.stats.totals.candidates_scanned
        << ", intermediate " << plan.stats.totals.intermediate_tuples
        << ", elapsed " << FmtMs(plan.stats.totals.elapsed_ms) << " ms\n";
    out << "postings: blocks decoded "
        << plan.stats.totals.posting_blocks_decoded << ", skipped "
        << plan.stats.totals.posting_blocks_skipped << ", bytes "
        << plan.stats.totals.posting_bytes_decoded << "\n";
  }
  return out.str();
}

StatusOr<std::string> ExplainQuery(const index::IndexedDocument& indexed,
                                   const TwigQuery& query,
                                   const EvalOptions& options) {
  Planner planner(indexed);
  LOTUSX_ASSIGN_OR_RETURN(PhysicalPlan plan,
                          planner.Plan(query, HintsFrom(options)));
  ExecuteOptions exec;
  exec.analyze = true;
  LOTUSX_RETURN_IF_ERROR(ExecutePlan(indexed, &plan, exec).status());
  return DescribePlan(plan, /*include_actuals=*/true);
}

}  // namespace lotusx::twig::plan
