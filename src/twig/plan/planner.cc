#include <cmath>
#include <cstdio>

#include "twig/plan/physical_plan.h"

namespace lotusx::twig::plan {

std::string_view OperatorName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kStreamScan:
      return "stream-scan";
    case OperatorKind::kSchemaPrune:
      return "schema-prune";
    case OperatorKind::kBinaryStructuralJoin:
      return "binary-structural-join";
    case OperatorKind::kPathStackJoin:
      return "pathstack-join";
    case OperatorKind::kTwigStackJoin:
      return "twigstack-join";
    case OperatorKind::kTJFastJoin:
      return "tjfast-join";
    case OperatorKind::kMergeExpand:
      return "merge-expand";
    case OperatorKind::kOrderFilter:
      return "order-filter";
    case OperatorKind::kOutputSort:
      return "output-sort";
  }
  return "?";
}

int PhysicalPlan::FindOperator(OperatorKind kind) const {
  for (size_t i = 0; i < ops.size(); ++i) {
    if (ops[i].kind == kind) return static_cast<int>(i);
  }
  return -1;
}

PlannerHints HintsFrom(const EvalOptions& options) {
  PlannerHints hints;
  hints.algorithm = options.algorithm;
  hints.apply_order = options.apply_order;
  hints.integrate_order = options.integrate_order;
  hints.reorder_binary_joins = options.reorder_binary_joins;
  hints.schema_prune_streams = options.schema_prune_streams;
  return hints;
}

namespace {

/// TJFast reads only leaf streams but pays a label decode per element;
/// pricing that decode at 1/0.6 per row makes the cost comparison against
/// TwigStack's full scan reproduce ChooseAlgorithm's calibrated 60%
/// leaf-fraction threshold exactly.
constexpr double kTjFastDecodeFactor = 1.0 / 0.6;

/// Estimated path solutions of the holistic phase 1: along one
/// root-to-leaf path the per-edge fanouts telescope, so each leaf path
/// contributes its leaf's cardinality.
double EstimatedPathSolutions(const TwigQuery& query,
                              const SelectivityEstimate& estimate) {
  double solutions = 0;
  for (QueryNodeId leaf : query.Leaves()) {
    solutions += estimate.node_cardinality[static_cast<size_t>(leaf)];
  }
  return solutions;
}

/// Estimated intermediate tuples of the edge-at-a-time binary join: every
/// node's bindings get materialized into some partial table.
double EstimatedBinaryIntermediates(const TwigQuery& query,
                                    const SelectivityEstimate& estimate) {
  double intermediates = 0;
  for (double cardinality : estimate.node_cardinality) {
    intermediates += cardinality;
  }
  (void)query;
  return intermediates;
}

/// Abstract cost (rows read + rows materialized) of running `algorithm`
/// on a query with these estimates — the quantities the kAuto choice
/// compares, recorded in the plan so EXPLAIN can show its work.
double JoinCost(Algorithm algorithm, const TwigQuery& query,
                const SelectivityEstimate& estimate) {
  const double merge = EstimatedPathSolutions(query, estimate) +
                       estimate.match_cardinality;
  switch (algorithm) {
    case Algorithm::kStructuralJoin:
      return estimate.total_stream_size +
             EstimatedBinaryIntermediates(query, estimate) +
             estimate.match_cardinality;
    case Algorithm::kPathStack:
      return estimate.total_stream_size + merge;
    case Algorithm::kTwigStack:
      return estimate.total_stream_size + merge;
    case Algorithm::kTJFast:
      return estimate.leaf_stream_size * kTjFastDecodeFactor + merge;
    case Algorithm::kAuto:
      break;
  }
  return 0;
}

std::string FormatPercent(double part, double whole) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%d%%",
                whole > 0 ? static_cast<int>(100.0 * part / whole) : 0);
  return buffer;
}

/// Expected number of posting blocks a scan decodes when the consumer
/// keeps a `selectivity` fraction of its rows and skips the rest via the
/// block index: a block of `fill` entries is decoded iff at least one of
/// its entries survives, i.e. with probability 1 - (1 - sel)^fill. At
/// sel = 1 this degenerates to every block.
double ExpectedBlocksDecoded(double blocks, double fill,
                             double selectivity) {
  if (blocks <= 0 || fill <= 0) return 0;
  double sel = std::min(std::max(selectivity, 0.0), 1.0);
  return blocks * (1.0 - std::pow(1.0 - sel, fill));
}

}  // namespace

StatusOr<PhysicalPlan> Planner::Plan(const TwigQuery& query,
                                     const PlannerHints& hints) const {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  PhysicalPlan plan;
  plan.query = query;
  plan.apply_order = hints.apply_order;
  plan.reorder_binary_joins = hints.reorder_binary_joins;
  plan.schema_prune = hints.schema_prune_streams;
  plan.estimate = EstimateSelectivity(indexed_, query);

  // Resolve the join algorithm. ChooseAlgorithm remains the single source
  // of truth for kAuto (its threshold is what JoinCost reproduces); a
  // forced hint is honored verbatim, including kPathStack on a non-path
  // query, which fails at execution exactly as it always has.
  if (hints.algorithm == Algorithm::kAuto) {
    plan.algorithm = ChooseAlgorithm(indexed_, query);
    if (plan.algorithm == Algorithm::kPathStack) {
      plan.choice_reason =
          "path query; holistic path join reads each stream once";
    } else if (plan.algorithm == Algorithm::kTJFast) {
      plan.choice_reason =
          "leaf streams are " +
          FormatPercent(plan.estimate.leaf_stream_size,
                        plan.estimate.total_stream_size) +
          " of total; decoding from leaf labels pays off";
    } else {
      plan.choice_reason =
          "leaf streams dominate; containment-label join is cheaper";
    }
  } else {
    plan.algorithm = hints.algorithm;
    plan.choice_reason = "forced by caller hint";
  }

  // Integrated order checking only exists inside the holistic merge phase.
  plan.integrate_order = hints.apply_order && hints.integrate_order &&
                         query.HasOrderConstraints() &&
                         (plan.algorithm == Algorithm::kTwigStack ||
                          plan.algorithm == Algorithm::kTJFast);

  const double match = plan.estimate.match_cardinality;
  const double path_solutions = EstimatedPathSolutions(query, plan.estimate);
  const bool holistic_merge = plan.algorithm == Algorithm::kTwigStack ||
                              plan.algorithm == Algorithm::kTJFast;

  auto add_op = [&plan](OperatorNode op) {
    plan.ops.push_back(std::move(op));
    return static_cast<int>(plan.ops.size()) - 1;
  };

  // Leaf operators: one scan (optionally wrapped by a schema prune) per
  // stream the chosen algorithm reads — TJFast touches leaf streams only.
  std::vector<QueryNodeId> scan_nodes;
  if (plan.algorithm == Algorithm::kTJFast) {
    scan_nodes = query.Leaves();
  } else {
    for (QueryNodeId q = 0; q < query.size(); ++q) scan_nodes.push_back(q);
  }
  std::vector<int> join_inputs;
  for (QueryNodeId q : scan_nodes) {
    const QueryNode& node = query.node(q);
    const auto qi = static_cast<size_t>(q);
    OperatorNode scan;
    scan.kind = OperatorKind::kStreamScan;
    scan.query_node = q;
    scan.detail = "<" + node.tag + ">";
    if (node.children.empty()) scan.detail += " leaf";
    if (node.predicate.active()) scan.detail += " +predicate";
    scan.estimated_rows = plan.estimate.node_stream_size[qi] *
                          plan.estimate.node_predicate_selectivity[qi];
    // Block-skip cost: a selective consumer pays per decoded block of
    // the compressed stream, not per posting. Wildcard scans have no
    // single stream and keep the row-count cost.
    const double blocks = plan.estimate.node_posting_blocks[qi];
    const double fill = plan.estimate.node_block_fill[qi];
    if (blocks > 0) {
      const double decoded = ExpectedBlocksDecoded(
          blocks, fill, plan.estimate.node_predicate_selectivity[qi]);
      scan.estimated_cost = decoded * fill;
      char buffer[48];
      std::snprintf(buffer, sizeof(buffer), " (~%.0f/%.0f blocks)",
                    decoded, blocks);
      scan.detail += buffer;
    } else {
      scan.estimated_cost = plan.estimate.node_stream_size[qi];
    }
    int top = add_op(std::move(scan));
    if (plan.schema_prune) {
      OperatorNode prune;
      prune.kind = OperatorKind::kSchemaPrune;
      prune.query_node = q;
      prune.detail = "DataGuide-feasible positions";
      prune.estimated_rows =
          plan.estimate.node_schema_occurrences[qi] *
          plan.estimate.node_predicate_selectivity[qi];
      prune.estimated_cost = plan.estimate.node_stream_size[qi];
      prune.children = {top};
      top = add_op(std::move(prune));
    }
    join_inputs.push_back(top);
  }

  OperatorNode join;
  switch (plan.algorithm) {
    case Algorithm::kStructuralJoin:
      join.kind = OperatorKind::kBinaryStructuralJoin;
      join.detail = plan.reorder_binary_joins
                        ? "greedy selectivity edge order"
                        : "query edge order";
      join.estimated_rows = match;
      break;
    case Algorithm::kPathStack:
      join.kind = OperatorKind::kPathStackJoin;
      join.detail = "merged document-order stream";
      join.estimated_rows = match;
      break;
    case Algorithm::kTwigStack:
      join.kind = OperatorKind::kTwigStackJoin;
      join.detail = "path solutions";
      join.estimated_rows = path_solutions;
      break;
    case Algorithm::kTJFast:
      join.kind = OperatorKind::kTJFastJoin;
      join.detail = "extended-Dewey alignment, path solutions";
      join.estimated_rows = path_solutions;
      break;
    case Algorithm::kAuto:
      return Status::Internal("unresolved kAuto algorithm in planner");
  }
  join.estimated_cost = JoinCost(plan.algorithm, query, plan.estimate);
  join.children = std::move(join_inputs);
  int top = add_op(std::move(join));

  if (holistic_merge) {
    OperatorNode merge;
    merge.kind = OperatorKind::kMergeExpand;
    merge.detail = plan.integrate_order
                       ? "hash merge; integrated order pruning"
                       : "hash merge of path solutions";
    merge.estimated_rows = match;
    merge.estimated_cost = path_solutions + match;
    merge.children = {top};
    top = add_op(std::move(merge));
  }

  if (plan.apply_order && query.HasOrderConstraints()) {
    OperatorNode filter;
    filter.kind = OperatorKind::kOrderFilter;
    filter.detail = plan.integrate_order
                        ? "re-check after integrated pruning (idempotent)"
                        : "post-filter complete matches";
    // No order-selectivity model yet: assume the constraint keeps all
    // matches (the conservative upper bound).
    filter.estimated_rows = match;
    filter.estimated_cost = match;
    filter.children = {top};
    top = add_op(std::move(filter));
  }

  OperatorNode sort;
  sort.kind = OperatorKind::kOutputSort;
  sort.detail = "canonical document order";
  sort.estimated_rows = match;
  sort.estimated_cost = match;
  sort.children = {top};
  add_op(std::move(sort));
  return plan;
}

}  // namespace lotusx::twig::plan
