#include <algorithm>

#include "common/metrics.h"
#include "common/timer.h"
#include "twig/candidates.h"
#include "twig/order_filter.h"
#include "twig/path_stack.h"
#include "twig/plan/physical_plan.h"
#include "twig/schema_match.h"
#include "twig/structural_join.h"
#include "twig/tjfast.h"
#include "twig/twig_stack.h"

namespace lotusx::twig::plan {

namespace {

/// Process-wide per-operator-kind counters
/// (lotusx_plan_operator_{execs,rows,usec}_total{op="..."}): the
/// cumulative view of where plan execution work goes, fed from the same
/// actuals EXPLAIN analyze renders. Registered once; indexed by
/// OperatorKind.
struct OperatorMetrics {
  metrics::Counter* execs = nullptr;
  metrics::Counter* rows = nullptr;
  metrics::Counter* usec = nullptr;
};

const OperatorMetrics& MetricsFor(OperatorKind kind) {
  static const std::vector<OperatorMetrics> table = [] {
    constexpr int kNumKinds = static_cast<int>(OperatorKind::kOutputSort) + 1;
    std::vector<OperatorMetrics> metrics_table(kNumKinds);
    metrics::Registry& registry = metrics::Registry::Default();
    for (int i = 0; i < kNumKinds; ++i) {
      const metrics::Labels labels = {
          {"op", std::string(OperatorName(static_cast<OperatorKind>(i)))}};
      metrics_table[static_cast<size_t>(i)] = {
          registry.GetCounter("lotusx_plan_operator_execs_total", labels),
          registry.GetCounter("lotusx_plan_operator_rows_total", labels),
          registry.GetCounter("lotusx_plan_operator_usec_total", labels)};
    }
    return metrics_table;
  }();
  return table[static_cast<size_t>(kind)];
}

}  // namespace

StatusOr<QueryResult> ExecutePlan(const index::IndexedDocument& indexed,
                                  PhysicalPlan* plan,
                                  const ExecuteOptions& options) {
  if (plan == nullptr || plan->ops.empty()) {
    return Status::InvalidArgument("empty physical plan");
  }
  const TwigQuery& query = plan->query;
  Timer total_timer;

  // One arena + posting-counter set for the whole query. Per-block
  // decode timing costs a Timer read per block, so it is only switched
  // on when the caller asked for actuals.
  EvalContext ctx;
  ctx.postings.time_decodes = options.analyze;

  // Schema pruning happens once for all streams (one DataGuide walk); its
  // time is split evenly across the plan's prune operators below.
  std::vector<std::vector<index::PathId>> schema;
  const std::vector<std::vector<index::PathId>>* schema_ptr = nullptr;
  double prune_ms = 0;
  if (plan->schema_prune) {
    Timer prune_timer;
    schema = SchemaBindings(indexed, query);
    schema_ptr = &schema;
    prune_ms = prune_timer.ElapsedMillis();
  }

  QueryResult result;
  Timer join_timer;
  switch (plan->algorithm) {
    case Algorithm::kStructuralJoin:
      result = StructuralJoinEvaluate(indexed, query, schema_ptr,
                                      plan->reorder_binary_joins, &ctx);
      break;
    case Algorithm::kPathStack: {
      LOTUSX_ASSIGN_OR_RETURN(
          result, PathStackEvaluate(indexed, query, schema_ptr, &ctx));
      break;
    }
    case Algorithm::kTwigStack:
      result = TwigStackEvaluate(indexed, query, plan->integrate_order,
                                 schema_ptr, &ctx);
      break;
    case Algorithm::kTJFast:
      result = TjFastEvaluate(indexed, query, plan->integrate_order,
                              schema_ptr, &ctx);
      break;
    case Algorithm::kAuto:
      return Status::Internal("unresolved kAuto algorithm in plan");
  }
  const double join_ms = join_timer.ElapsedMillis();
  const uint64_t join_rows = result.matches.size();

  const uint64_t pre_filter_rows = result.matches.size();
  double filter_ms = 0;
  bool filtered = false;
  if (plan->apply_order && query.HasOrderConstraints()) {
    // Idempotent after integrated pruning; required otherwise.
    Timer filter_timer;
    FilterByOrder(indexed.document(), query, &result.matches);
    result.stats.matches = result.matches.size();
    filter_ms = filter_timer.ElapsedMillis();
    filtered = true;
  }

  Timer sort_timer;
  std::sort(result.matches.begin(), result.matches.end());
  const double sort_ms = sort_timer.ElapsedMillis();
  result.stats.elapsed_ms = total_timer.ElapsedMillis();

  // Fill per-operator actuals.
  size_t num_prunes = 0;
  for (const OperatorNode& op : plan->ops) {
    if (op.kind == OperatorKind::kSchemaPrune) ++num_prunes;
  }
  for (OperatorNode& op : plan->ops) {
    switch (op.kind) {
      case OperatorKind::kStreamScan:
        if (options.analyze) {
          op.actual_rows_out =
              CandidatesFor(indexed, query, op.query_node).size();
          op.has_actuals = true;
        }
        break;
      case OperatorKind::kSchemaPrune:
        op.actual_ms = num_prunes > 0
                           ? prune_ms / static_cast<double>(num_prunes)
                           : 0;
        if (options.analyze) {
          op.actual_rows_in =
              CandidatesFor(indexed, query, op.query_node).size();
          op.actual_rows_out =
              CandidatesFor(indexed, query, op.query_node,
                            &schema[static_cast<size_t>(op.query_node)])
                  .size();
        }
        op.has_actuals = true;
        break;
      case OperatorKind::kBinaryStructuralJoin:
      case OperatorKind::kPathStackJoin:
        op.actual_rows_in = result.stats.candidates_scanned;
        op.actual_rows_out = join_rows;
        op.actual_ms = join_ms;
        op.has_actuals = true;
        break;
      case OperatorKind::kTwigStackJoin:
      case OperatorKind::kTJFastJoin:
        op.actual_rows_in = result.stats.candidates_scanned;
        op.actual_rows_out = result.stats.intermediate_tuples;
        op.actual_ms = join_ms;
        op.has_actuals = true;
        break;
      case OperatorKind::kMergeExpand:
        // Merge runs inside the holistic join; its time is in the join op.
        op.actual_rows_in = result.stats.intermediate_tuples;
        op.actual_rows_out = join_rows;
        op.has_actuals = true;
        break;
      case OperatorKind::kOrderFilter:
        op.actual_rows_in = pre_filter_rows;
        op.actual_rows_out = result.matches.size();
        op.actual_ms = filter_ms;
        op.has_actuals = filtered;
        break;
      case OperatorKind::kOutputSort:
        op.actual_rows_in = result.matches.size();
        op.actual_rows_out = result.matches.size();
        op.actual_ms = sort_ms;
        op.has_actuals = true;
        break;
    }
  }

  if (metrics::Enabled()) {
    for (const OperatorNode& op : plan->ops) {
      const OperatorMetrics& op_metrics = MetricsFor(op.kind);
      op_metrics.execs->Increment();
      op_metrics.rows->Increment(op.actual_rows_out);
      op_metrics.usec->Increment(static_cast<uint64_t>(op.actual_ms * 1e3));
    }
    metrics::Registry& registry = metrics::Registry::Default();
    registry.GetCounter("lotusx_postings_blocks_decoded_total")
        ->Increment(ctx.postings.blocks_decoded);
    registry.GetCounter("lotusx_postings_blocks_skipped_total")
        ->Increment(ctx.postings.blocks_skipped);
    registry.GetCounter("lotusx_postings_bytes_decoded_total")
        ->Increment(ctx.postings.bytes_decoded);
    if (ctx.postings.time_decodes) {
      registry.GetCounter("lotusx_postings_decode_usec_total")
          ->Increment(static_cast<uint64_t>(ctx.postings.decode_ms * 1e3));
    }
  }

  // Structured per-operator stats: one EvalStats slice per operator.
  plan->stats.slices.clear();
  plan->stats.slices.reserve(plan->ops.size());
  for (const OperatorNode& op : plan->ops) {
    PlanStats::Slice slice;
    slice.op = std::string(OperatorName(op.kind));
    if (!op.detail.empty()) slice.op += " " + op.detail;
    slice.rows_in = op.actual_rows_in;
    slice.rows_out = op.actual_rows_out;
    slice.elapsed_ms = op.actual_ms;
    plan->stats.slices.push_back(std::move(slice));
  }
  result.stats.estimated_matches = plan->estimate.match_cardinality;
  plan->stats.totals = result.stats;
  return result;
}

}  // namespace lotusx::twig::plan
