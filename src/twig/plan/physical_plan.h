#ifndef LOTUSX_TWIG_PLAN_PHYSICAL_PLAN_H_
#define LOTUSX_TWIG_PLAN_PHYSICAL_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/match.h"
#include "twig/selectivity.h"
#include "twig/twig_query.h"

namespace lotusx::twig::plan {

/// The physical operators a plan can contain. A plan is a small tree:
/// per-query-node stream scans (optionally wrapped by a schema prune) feed
/// one join operator, whose output flows through merge/expand (holistic
/// algorithms only), an order filter, and the canonical output sort.
enum class OperatorKind {
  kStreamScan,            // read one query node's candidate stream
  kSchemaPrune,           // restrict a stream to DataGuide-feasible paths
  kBinaryStructuralJoin,  // edge-at-a-time stack-tree join (baseline)
  kPathStackJoin,         // holistic path join
  kTwigStackJoin,         // holistic twig join, phase 1 (path solutions)
  kTJFastJoin,            // extended-Dewey leaf-stream join, phase 1
  kMergeExpand,           // phase 2: merge path solutions into matches
  kOrderFilter,           // enforce order constraints on complete matches
  kOutputSort,            // canonical document-order sort of the matches
};

std::string_view OperatorName(OperatorKind kind);

/// One node of a physical plan. Estimates are filled by the Planner;
/// actuals are filled by ExecutePlan (operators whose work is not
/// separately measurable — scans inside a monolithic join — get actual
/// row counts in analyze mode only, and no own timing).
struct OperatorNode {
  OperatorKind kind = OperatorKind::kOutputSort;
  /// Operator-specific annotation ("<author> leaf stream", "greedy edge
  /// order", "integrated order check", ...).
  std::string detail;
  /// The query node a scan/prune operator serves; kInvalidQueryNode for
  /// the operators above the leaves.
  QueryNodeId query_node = kInvalidQueryNode;
  /// Planner estimates: output rows and abstract cost units (rows read +
  /// rows materialized; the same quantities ChooseAlgorithm compares).
  double estimated_rows = 0;
  double estimated_cost = 0;
  /// Execution actuals.
  bool has_actuals = false;
  uint64_t actual_rows_in = 0;
  uint64_t actual_rows_out = 0;
  double actual_ms = 0;
  /// Children as indices into PhysicalPlan::ops (children are always at
  /// lower indices; the root is the last entry).
  std::vector<int> children;
};

/// Per-operator EvalStats slices plus the aggregate, built by ExecutePlan.
struct PlanStats {
  struct Slice {
    std::string op;  // OperatorName + detail
    uint64_t rows_in = 0;
    uint64_t rows_out = 0;
    double elapsed_ms = 0;
  };
  std::vector<Slice> slices;  // aligned with PhysicalPlan::ops
  EvalStats totals;
};

/// A priced physical plan for one twig query: the operator tree plus the
/// planner's inputs (resolved algorithm, hint flags, cardinality
/// estimates) and, after ExecutePlan, the per-operator actuals.
struct PhysicalPlan {
  TwigQuery query;
  /// The resolved join algorithm (never kAuto).
  Algorithm algorithm = Algorithm::kTwigStack;
  /// Why the planner picked it (cost comparison or caller's hint).
  std::string choice_reason;
  /// Hint flags baked into the operator tree.
  bool apply_order = true;
  bool integrate_order = false;  // resolved: only set when it applies
  bool reorder_binary_joins = false;
  bool schema_prune = false;
  /// The cost model's input.
  SelectivityEstimate estimate;
  /// Operators in child-before-parent order; ops.back() is the root.
  std::vector<OperatorNode> ops;
  /// Filled by ExecutePlan.
  PlanStats stats;

  /// Index of the first operator of `kind`, or -1.
  int FindOperator(OperatorKind kind) const;
};

/// Planner hints: EvalOptions expressed as preferences for the planner
/// rather than branches inside the algorithms. Semantics match the
/// EvalOptions fields of the same names.
struct PlannerHints {
  Algorithm algorithm = Algorithm::kAuto;
  bool apply_order = true;
  bool integrate_order = true;
  bool reorder_binary_joins = false;
  bool schema_prune_streams = false;
};

/// The public EvalOptions map 1:1 onto planner hints.
PlannerHints HintsFrom(const EvalOptions& options);

/// Cost-based query planner: prices the candidate join strategies with
/// the DataGuide selectivity model (EstimateSelectivity) and produces a
/// priced operator tree. Pure function of (index, query, hints) — the
/// same inputs always yield the same plan, which is what makes cached
/// Search results planner-safe.
class Planner {
 public:
  explicit Planner(const index::IndexedDocument& indexed)
      : indexed_(indexed) {}

  /// Plans `query`. Fails only on invalid queries; an infeasible query
  /// plans fine and executes to an empty result. A kPathStack hint on a
  /// non-path query is planned as requested and fails at execution,
  /// matching the historical Evaluate() contract.
  StatusOr<PhysicalPlan> Plan(const TwigQuery& query,
                              const PlannerHints& hints = {}) const;

 private:
  const index::IndexedDocument& indexed_;
};

struct ExecuteOptions {
  /// Also compute per-stream actual row counts for scan/prune operators
  /// (costs one extra pass over the candidate streams; EXPLAIN uses it,
  /// the Evaluate() hot path does not).
  bool analyze = false;
};

/// Runs a physical plan, filling per-operator actuals and plan->stats.
/// The returned QueryResult is bit-identical to what the pre-planner
/// Evaluate() produced for the same options (the plan-equivalence tests
/// pin this).
StatusOr<QueryResult> ExecutePlan(const index::IndexedDocument& indexed,
                                  PhysicalPlan* plan,
                                  const ExecuteOptions& options = {});

/// Text rendering of a plan: one line per operator (indented tree) with
/// estimated vs actual cardinalities, plus the planner's choice reason
/// and totals. `include_actuals` distinguishes EXPLAIN (estimates only)
/// from EXPLAIN-analyze output.
std::string DescribePlan(const PhysicalPlan& plan,
                         bool include_actuals = true);

/// Plan + execute + describe: the one-call EXPLAIN used by
/// Engine::Explain and the session protocol's EXPLAIN verb.
StatusOr<std::string> ExplainQuery(const index::IndexedDocument& indexed,
                                   const TwigQuery& query,
                                   const EvalOptions& options = {});

}  // namespace lotusx::twig::plan

#endif  // LOTUSX_TWIG_PLAN_PHYSICAL_PLAN_H_
