#ifndef LOTUSX_TWIG_CANDIDATE_STREAM_H_
#define LOTUSX_TWIG_CANDIDATE_STREAM_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/arena.h"
#include "index/posting_blocks.h"
#include "xml/dom.h"

namespace lotusx::twig {

/// The candidate stream a twig algorithm consumes for one query node,
/// honoring the PostingCursor contract (see index/posting_cursor.h)
/// without virtual dispatch. Two modes:
///
///  - block mode: a lazy cursor straight over the tag stream's
///    PostingBlocks — nothing is decoded until the join touches it, and
///    SeekGE skips whole blocks via the skip index;
///  - span mode: a pre-filtered, arena-resident id list (predicates,
///    schema pruning, wildcard streams), sought by galloping.
///
/// Move-only (the block cursor owns arena scratch).
class CandidateStream {
 public:
  CandidateStream() = default;
  CandidateStream(CandidateStream&&) = default;
  CandidateStream& operator=(CandidateStream&&) = default;
  CandidateStream(const CandidateStream&) = delete;
  CandidateStream& operator=(const CandidateStream&) = delete;

  static CandidateStream FromSpan(std::span<const xml::NodeId> ids) {
    CandidateStream stream;
    stream.span_ = ids;
    stream.count_ = ids.size();
    return stream;
  }

  static CandidateStream FromBlocks(const index::PostingBlocks* blocks,
                                    Arena* arena,
                                    index::PostingStats* stats) {
    CandidateStream stream;
    stream.use_blocks_ = true;
    stream.cursor_ = blocks->NewCursor(arena, stats);
    stream.count_ = blocks->size();
    return stream;
  }

  /// Logical stream size (elements a full scan would read); this is what
  /// EvalStats::candidates_scanned accumulates.
  uint64_t count() const { return count_; }

  bool AtEnd() const {
    return use_blocks_ ? cursor_.AtEnd() : pos_ >= span_.size();
  }

  xml::NodeId Key() const {
    return use_blocks_ ? static_cast<xml::NodeId>(cursor_.Key())
                       : span_[pos_];
  }

  void Next() {
    if (use_blocks_) {
      cursor_.Next();
    } else {
      ++pos_;
    }
  }

  /// Advances to the first candidate >= `target` (no-op when already
  /// there); returns false iff the stream ran off the end.
  bool SeekGE(xml::NodeId target) {
    if (use_blocks_) {
      return cursor_.SeekGE(static_cast<uint32_t>(target));
    }
    if (pos_ >= span_.size()) return false;
    if (span_[pos_] >= target) return true;
    // Gallop: doubling probe from the current position, then binary
    // search over the narrowed range.
    size_t low = pos_ + 1;
    size_t step = 1;
    while (low + step < span_.size() && span_[low + step] < target) {
      low += step;
      step *= 2;
    }
    pos_ = static_cast<size_t>(
        std::lower_bound(span_.begin() + static_cast<ptrdiff_t>(low),
                         span_.end(), target) -
        span_.begin());
    return pos_ < span_.size();
  }

 private:
  bool use_blocks_ = false;
  std::span<const xml::NodeId> span_;
  size_t pos_ = 0;
  index::PostingBlocks::Cursor cursor_;
  uint64_t count_ = 0;
};

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_CANDIDATE_STREAM_H_
