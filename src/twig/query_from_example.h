#ifndef LOTUSX_TWIG_QUERY_FROM_EXAMPLE_H_
#define LOTUSX_TWIG_QUERY_FROM_EXAMPLE_H_

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

struct QueryFromExampleOptions {
  /// How many ancestors above the example node to include in the query
  /// spine (0 = just the node's tag; large values reach the root). More
  /// context = more specific query.
  int ancestor_levels = 2;
  /// Attach the example node's own value (if any) as an equality
  /// predicate, so the query initially selects nodes "like this one".
  bool include_value = true;
  /// Also attach one distinguishing child branch (the example's first
  /// element/attribute child), making the query a proper twig.
  bool include_child_branch = true;
};

/// "Query by example": builds the twig query that selects nodes like a
/// given document node — the reverse gear of the LotusX workflow. A user
/// finds something via keyword search (FIND), picks a hit, and this turns
/// it into an editable canvas query: the hit's tag path becomes the
/// spine (child axes, since the path is concrete), its value becomes an
/// equality predicate, and a child becomes a branch. The output node is
/// the one corresponding to the example.
///
/// Returns InvalidArgument for text nodes or out-of-range ids. The
/// produced query is always satisfiable (the example itself matches it —
/// a property the tests assert).
StatusOr<TwigQuery> QueryFromExample(
    const index::IndexedDocument& indexed, xml::NodeId example,
    const QueryFromExampleOptions& options = {});

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_QUERY_FROM_EXAMPLE_H_
