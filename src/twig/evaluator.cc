#include "twig/evaluator.h"

#include <algorithm>

#include "common/timer.h"
#include "twig/order_filter.h"
#include "twig/schema_match.h"
#include "twig/selectivity.h"
#include "twig/path_stack.h"
#include "twig/structural_join.h"
#include "twig/tjfast.h"
#include "twig/twig_stack.h"

namespace lotusx::twig {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kStructuralJoin:
      return "structural-join";
    case Algorithm::kPathStack:
      return "pathstack";
    case Algorithm::kTwigStack:
      return "twigstack";
    case Algorithm::kTJFast:
      return "tjfast";
  }
  return "?";
}

StatusOr<QueryResult> Evaluate(const index::IndexedDocument& indexed,
                               const TwigQuery& query,
                               const EvalOptions& options) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  Timer timer;
  Algorithm algorithm = options.algorithm;
  if (algorithm == Algorithm::kAuto) {
    algorithm = ChooseAlgorithm(indexed, query);
  }
  // The holistic algorithms can enforce order constraints during their
  // merge phase; the binary join and PathStack are post-filtered.
  bool integrate_order = options.apply_order && options.integrate_order &&
                         query.HasOrderConstraints();
  std::vector<std::vector<index::PathId>> schema;
  const std::vector<std::vector<index::PathId>>* schema_ptr = nullptr;
  if (options.schema_prune_streams) {
    schema = SchemaBindings(indexed, query);
    schema_ptr = &schema;
  }
  QueryResult result;
  switch (algorithm) {
    case Algorithm::kStructuralJoin:
      result = StructuralJoinEvaluate(indexed, query, schema_ptr,
                                      options.reorder_binary_joins);
      break;
    case Algorithm::kPathStack: {
      LOTUSX_ASSIGN_OR_RETURN(result,
                              PathStackEvaluate(indexed, query, schema_ptr));
      break;
    }
    case Algorithm::kTwigStack:
      result = TwigStackEvaluate(indexed, query, integrate_order, schema_ptr);
      break;
    case Algorithm::kTJFast:
      result = TjFastEvaluate(indexed, query, integrate_order, schema_ptr);
      break;
    case Algorithm::kAuto:
      return Status::Internal("unresolved kAuto algorithm");
  }
  if (options.apply_order && query.HasOrderConstraints()) {
    // Idempotent after integrated pruning; required otherwise.
    FilterByOrder(indexed.document(), query, &result.matches);
    result.stats.matches = result.matches.size();
  }
  // Canonical output order regardless of algorithm.
  std::sort(result.matches.begin(), result.matches.end());
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
