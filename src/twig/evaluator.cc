#include "twig/evaluator.h"

#include "common/timer.h"
#include "twig/plan/physical_plan.h"

namespace lotusx::twig {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kStructuralJoin:
      return "structural-join";
    case Algorithm::kPathStack:
      return "pathstack";
    case Algorithm::kTwigStack:
      return "twigstack";
    case Algorithm::kTJFast:
      return "tjfast";
  }
  return "?";
}

StatusOr<QueryResult> Evaluate(const index::IndexedDocument& indexed,
                               const TwigQuery& query,
                               const EvalOptions& options) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  Timer timer;
  plan::Planner planner(indexed);
  LOTUSX_ASSIGN_OR_RETURN(plan::PhysicalPlan physical,
                          planner.Plan(query, plan::HintsFrom(options)));
  LOTUSX_ASSIGN_OR_RETURN(QueryResult result,
                          plan::ExecutePlan(indexed, &physical));
  // Wall time includes planning, matching the historical contract.
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
