#include "twig/evaluator.h"

#include <utility>

#include "common/timer.h"
#include "common/trace.h"
#include "twig/plan/physical_plan.h"

namespace lotusx::twig {

std::string_view AlgorithmName(Algorithm algorithm) {
  switch (algorithm) {
    case Algorithm::kAuto:
      return "auto";
    case Algorithm::kStructuralJoin:
      return "structural-join";
    case Algorithm::kPathStack:
      return "pathstack";
    case Algorithm::kTwigStack:
      return "twigstack";
    case Algorithm::kTJFast:
      return "tjfast";
  }
  return "?";
}

StatusOr<QueryResult> Evaluate(const index::IndexedDocument& indexed,
                               const TwigQuery& query,
                               const EvalOptions& options) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  Timer timer;
  plan::Planner planner(indexed);
  StatusOr<plan::PhysicalPlan> physical = [&] {
    trace::StageSpan span(trace::Stage::kPlan);
    return planner.Plan(query, plan::HintsFrom(options));
  }();
  LOTUSX_RETURN_IF_ERROR(physical.status());
  StatusOr<QueryResult> executed = [&] {
    trace::StageSpan span(trace::Stage::kExecute);
    return plan::ExecutePlan(indexed, &*physical);
  }();
  LOTUSX_ASSIGN_OR_RETURN(QueryResult result, std::move(executed));
  // Wall time includes planning, matching the historical contract.
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
