#include "twig/selectivity.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/string_util.h"
#include "twig/schema_match.h"

namespace lotusx::twig {

namespace {

/// Selectivity of a value predicate under term independence. Where the
/// node has a concrete tag, token frequencies are conditioned on values
/// of *that tag* (the per-tag tries of the term index) — "2001" is rare
/// globally but common inside <year> — falling back to global document
/// frequencies for wildcards. Equality gets a mild damping on top of the
/// token match because it additionally pins the full string.
double PredicateSelectivity(const index::IndexedDocument& indexed,
                            const QueryNode& node) {
  const ValuePredicate& predicate = node.predicate;
  if (!predicate.active()) return 1.0;
  const index::TermIndex& terms = indexed.terms();
  const index::Trie* tag_trie = nullptr;
  double tag_count = 0;
  if (node.tag != "*") {
    xml::TagId tag = indexed.document().FindTag(node.tag);
    tag_trie = terms.term_trie_for_tag(tag);
    tag_count = static_cast<double>(indexed.tag_streams().count(tag));
  }
  double n = std::max<uint32_t>(terms.num_value_nodes(), 1);
  std::vector<std::string> tokens = TokenizeKeywords(predicate.text);
  if (tokens.empty()) {
    return predicate.op == ValuePredicate::Op::kEquals ? 1.0 / n : 0.0;
  }
  double selectivity = 1.0;
  for (const std::string& token : tokens) {
    double fraction;
    if (tag_trie != nullptr && tag_count > 0) {
      fraction = static_cast<double>(tag_trie->WeightOf(token)) / tag_count;
    } else {
      fraction = static_cast<double>(terms.DocFrequency(token)) / n;
    }
    selectivity *= std::min(fraction, 1.0);
  }
  if (predicate.op == ValuePredicate::Op::kEquals) selectivity *= 0.9;
  return selectivity;
}

}  // namespace

SelectivityEstimate EstimateSelectivity(
    const index::IndexedDocument& indexed, const TwigQuery& query) {
  SelectivityEstimate estimate;
  estimate.node_cardinality.assign(static_cast<size_t>(query.size()), 0.0);
  estimate.node_stream_size.assign(static_cast<size_t>(query.size()), 0.0);
  estimate.node_schema_occurrences.assign(static_cast<size_t>(query.size()),
                                          0.0);
  estimate.node_predicate_selectivity.assign(
      static_cast<size_t>(query.size()), 1.0);
  estimate.node_posting_blocks.assign(static_cast<size_t>(query.size()),
                                      0.0);
  estimate.node_block_fill.assign(static_cast<size_t>(query.size()), 0.0);
  estimate.node_key_span.assign(static_cast<size_t>(query.size()), 0.0);
  if (query.Validate() != Status::OK()) return estimate;

  const index::DataGuide& guide = indexed.dataguide();
  std::vector<std::vector<index::PathId>> bindings =
      SchemaBindings(indexed, query);

  // Per-node expected bindings: occurrences over the node's feasible
  // paths, scaled by its predicate's selectivity.
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    double occurrences = 0;
    for (index::PathId p : bindings[static_cast<size_t>(q)]) {
      occurrences += guide.node(p).count;
    }
    double selectivity = PredicateSelectivity(indexed, query.node(q));
    estimate.node_schema_occurrences[static_cast<size_t>(q)] = occurrences;
    estimate.node_predicate_selectivity[static_cast<size_t>(q)] = selectivity;
    estimate.node_cardinality[static_cast<size_t>(q)] =
        occurrences * selectivity;
  }

  // Match estimate: root cardinality times the per-edge fanout factors
  // (child bindings per parent binding), independence across branches.
  double matches = estimate.node_cardinality[0];
  for (QueryNodeId q = 1; q < query.size(); ++q) {
    double parent = estimate.node_cardinality[static_cast<size_t>(
        query.node(q).parent)];
    if (parent <= 0) {
      matches = 0;
      break;
    }
    matches *= estimate.node_cardinality[static_cast<size_t>(q)] / parent;
  }
  // Along a chain the product telescopes to f(leaf); every branch
  // multiplies in its own fanout — the classic independence estimate.
  estimate.match_cardinality = std::max(matches, 0.0);

  // Stream sizes the algorithms would read.
  const xml::Document& document = indexed.document();
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    const QueryNode& node = query.node(q);
    double stream;
    if (node.tag == "*") {
      stream = document.num_nodes();  // upper bound: wildcard stream
    } else {
      xml::TagId tag = document.FindTag(node.tag);
      stream = static_cast<double>(indexed.tag_streams().count(tag));
      index::PostingBlocks::BlockStats blocks =
          indexed.tag_streams().blocks(tag).Stats();
      estimate.node_posting_blocks[static_cast<size_t>(q)] =
          static_cast<double>(blocks.blocks);
      estimate.node_block_fill[static_cast<size_t>(q)] = blocks.avg_fill;
      estimate.node_key_span[static_cast<size_t>(q)] =
          static_cast<double>(blocks.key_span);
    }
    estimate.node_stream_size[static_cast<size_t>(q)] = stream;
    estimate.total_stream_size += stream;
    if (node.children.empty()) estimate.leaf_stream_size += stream;
  }
  return estimate;
}

Algorithm ChooseAlgorithm(const index::IndexedDocument& indexed,
                          const TwigQuery& query) {
  if (query.IsPath()) return Algorithm::kPathStack;
  SelectivityEstimate estimate = EstimateSelectivity(indexed, query);
  // TJFast reads only the leaf streams but pays a label-decode per
  // element; prefer it when that saves a substantial fraction of the
  // scan. Deep documents make decodes costlier, but depth is bounded in
  // practice; the 60% threshold is calibrated by bench_selectivity.
  if (estimate.total_stream_size > 0 &&
      estimate.leaf_stream_size < 0.6 * estimate.total_stream_size) {
    return Algorithm::kTJFast;
  }
  return Algorithm::kTwigStack;
}

StatusOr<std::string> Explain(const index::IndexedDocument& indexed,
                              const TwigQuery& query) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  SelectivityEstimate estimate = EstimateSelectivity(indexed, query);
  std::vector<std::vector<index::PathId>> bindings =
      SchemaBindings(indexed, query);
  const index::DataGuide& guide = indexed.dataguide();
  const xml::Document& document = indexed.document();

  std::ostringstream out;
  out << "query: " << query.ToString() << "\n";
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    const QueryNode& node = query.node(q);
    out << "  node " << q << " <" << node.tag << ">";
    if (q != query.root()) {
      out << " (" << (node.incoming_axis == Axis::kChild ? "/" : "//")
          << " under node " << node.parent << ")";
    }
    if (node.predicate.active()) {
      out << (node.predicate.op == ValuePredicate::Op::kEquals ? " ="
                                                               : " ~")
          << "\"" << node.predicate.text << "\"";
    }
    const std::vector<index::PathId>& paths =
        bindings[static_cast<size_t>(q)];
    out << ": " << paths.size() << " position(s), est. "
        << estimate.node_cardinality[static_cast<size_t>(q)]
        << " bindings\n";
    for (size_t i = 0; i < paths.size() && i < 4; ++i) {
      out << "      " << guide.PathString(document, paths[i]) << " (x"
          << guide.node(paths[i]).count << ")\n";
    }
    if (paths.size() > 4) {
      out << "      ... " << (paths.size() - 4) << " more\n";
    }
  }
  Algorithm algorithm = ChooseAlgorithm(indexed, query);
  out << "estimated matches: " << estimate.match_cardinality << "\n";
  out << "streams: total " << estimate.total_stream_size << ", leaves "
      << estimate.leaf_stream_size << "\n";
  out << "algorithm: " << AlgorithmName(algorithm);
  if (algorithm == Algorithm::kPathStack) {
    out << " (path query)";
  } else if (algorithm == Algorithm::kTJFast) {
    int percent = estimate.total_stream_size > 0
                      ? static_cast<int>(100.0 * estimate.leaf_stream_size /
                                         estimate.total_stream_size)
                      : 0;
    out << " (leaf streams are " << percent
        << "% of total; decoding from leaf labels pays off)";
  } else {
    out << " (leaf streams dominate; containment-label join is cheaper)";
  }
  out << "\n";
  return out.str();
}

}  // namespace lotusx::twig
