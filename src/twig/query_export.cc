#include "twig/query_export.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace lotusx::twig {

namespace {

/// XPath 1.0 string literals have no escape mechanism; reject texts that
/// would need one.
Status CheckLiteral(const std::string& text) {
  if (text.find('"') != std::string::npos) {
    return Status::Unimplemented(
        "predicate text contains '\"', not expressible as an XPath 1.0 "
        "literal");
  }
  return Status::OK();
}

/// Appends `[pred]` qualifiers for a node's value predicate.
Status AppendValuePredicates(const QueryNode& node, std::string* out) {
  switch (node.predicate.op) {
    case ValuePredicate::Op::kNone:
      return Status::OK();
    case ValuePredicate::Op::kEquals:
      LOTUSX_RETURN_IF_ERROR(CheckLiteral(node.predicate.text));
      *out += "[normalize-space(.) = \"" + node.predicate.text + "\"]";
      return Status::OK();
    case ValuePredicate::Op::kContains: {
      LOTUSX_RETURN_IF_ERROR(CheckLiteral(node.predicate.text));
      for (const std::string& token :
           TokenizeKeywords(node.predicate.text)) {
        *out += "[contains(., \"" + token + "\")]";
      }
      return Status::OK();
    }
  }
  return Status::Internal("unknown predicate op");
}

/// Renders query node `q` and its whole subtree as a relative expression
/// (used inside predicates, where only existence matters, so all children
/// become nested predicates).
Status RenderRelative(const TwigQuery& query, QueryNodeId q,
                      std::string* out) {
  const QueryNode& node = query.node(q);
  if (node.incoming_axis == Axis::kDescendant) *out += ".//";
  *out += node.tag;
  LOTUSX_RETURN_IF_ERROR(AppendValuePredicates(node, out));
  for (QueryNodeId child : node.children) {
    *out += "[";
    LOTUSX_RETURN_IF_ERROR(RenderRelative(query, child, out));
    *out += "]";
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> ToXPath(const TwigQuery& query) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  if (query.HasOrderConstraints()) {
    return Status::Unimplemented(
        "order constraints are not expressible in XPath 1.0; use ToXQuery");
  }
  // Spine: root -> output node.
  std::vector<QueryNodeId> spine;
  for (QueryNodeId q = query.output(); q != kInvalidQueryNode;
       q = query.node(q).parent) {
    spine.push_back(q);
  }
  std::reverse(spine.begin(), spine.end());

  std::string out;
  for (size_t i = 0; i < spine.size(); ++i) {
    const QueryNode& node = query.node(spine[i]);
    Axis axis = i == 0 ? query.root_axis() : node.incoming_axis;
    out += axis == Axis::kDescendant ? "//" : "/";
    out += node.tag;
    LOTUSX_RETURN_IF_ERROR(AppendValuePredicates(node, &out));
    QueryNodeId next_on_spine =
        i + 1 < spine.size() ? spine[i + 1] : kInvalidQueryNode;
    for (QueryNodeId child : node.children) {
      if (child == next_on_spine) continue;
      out += "[";
      LOTUSX_RETURN_IF_ERROR(RenderRelative(query, child, &out));
      out += "]";
    }
  }
  return out;
}

StatusOr<std::string> ToXQuery(const TwigQuery& query) {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  std::ostringstream out;
  // for clauses, one variable per query node, in node order (parents
  // precede children by construction).
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    const QueryNode& node = query.node(q);
    out << (q == 0 ? "for" : ",\n   ") << " $n" << q << " in ";
    if (q == 0) {
      out << (query.root_axis() == Axis::kDescendant ? "//" : "/")
          << node.tag;
    } else {
      out << "$n" << node.parent
          << (node.incoming_axis == Axis::kDescendant ? "//" : "/")
          << node.tag;
    }
  }
  // where clauses: value predicates and order constraints.
  std::vector<std::string> conditions;
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    const QueryNode& node = query.node(q);
    std::string var = "$n" + std::to_string(q);
    if (node.predicate.op == ValuePredicate::Op::kEquals) {
      LOTUSX_RETURN_IF_ERROR(CheckLiteral(node.predicate.text));
      conditions.push_back("normalize-space(" + var + ") = \"" +
                           node.predicate.text + "\"");
    } else if (node.predicate.op == ValuePredicate::Op::kContains) {
      LOTUSX_RETURN_IF_ERROR(CheckLiteral(node.predicate.text));
      for (const std::string& token :
           TokenizeKeywords(node.predicate.text)) {
        conditions.push_back("contains(lower-case(string(" + var +
                             ")), \"" + token + "\")");
      }
    }
    if (node.ordered && node.children.size() >= 2) {
      // LotusX order semantics requires disjoint, strictly preceding
      // subtrees; '<<' compares start positions, and the descendant
      // exclusion supplies the disjointness.
      for (size_t i = 0; i + 1 < node.children.size(); ++i) {
        std::string left = "$n" + std::to_string(node.children[i]);
        std::string right = "$n" + std::to_string(node.children[i + 1]);
        conditions.push_back("(" + left + " << " + right +
                             " and empty(" + left + "//. intersect " +
                             right + "))");
      }
    }
  }
  if (!conditions.empty()) {
    out << "\nwhere " << Join(conditions, "\n  and ");
  }
  out << "\nreturn $n" << query.output();
  return out.str();
}

}  // namespace lotusx::twig
