#include "twig/schema_match.h"

#include <algorithm>

namespace lotusx::twig {

namespace {

using index::DataGuide;
using index::PathId;

/// Paths whose own properties satisfy query node q (tag + value
/// requirement), ignoring structure.
std::vector<bool> LocalCandidates(const index::IndexedDocument& indexed,
                                  const TwigQuery& query, QueryNodeId q) {
  const DataGuide& guide = indexed.dataguide();
  const xml::Document& document = indexed.document();
  size_t n = static_cast<size_t>(guide.num_paths());
  std::vector<bool> ok(n, false);
  const twig::QueryNode& node = query.node(q);
  auto mark = [&](PathId p) {
    const DataGuide::PathNode& path = guide.node(p);
    if (node.predicate.active()) {
      bool is_attribute = !document.tag_name(path.tag).empty() &&
                          document.tag_name(path.tag)[0] == '@';
      if (!is_attribute && path.text_count == 0) return;
    }
    ok[static_cast<size_t>(p)] = true;
  };
  if (node.tag == "*") {
    for (PathId p = 0; p < guide.num_paths(); ++p) {
      std::string_view tag = document.tag_name(guide.node(p).tag);
      if (!tag.empty() && tag[0] != '@') mark(p);
    }
  } else {
    xml::TagId tag = document.FindTag(node.tag);
    for (PathId p : guide.PathsWithTag(tag)) mark(p);
  }
  return ok;
}


}  // namespace

std::vector<std::vector<index::PathId>> SchemaBindings(
    const index::IndexedDocument& indexed, const TwigQuery& query) {
  const DataGuide& guide = indexed.dataguide();
  size_t paths = static_cast<size_t>(guide.num_paths());
  std::vector<std::vector<bool>> ok(static_cast<size_t>(query.size()));
  // Bottom-up pass: children are numbered after parents, so iterating in
  // reverse resolves subtrees before their roots.
  for (QueryNodeId q = query.size() - 1; q >= 0; --q) {
    ok[static_cast<size_t>(q)] = LocalCandidates(indexed, query, q);
    for (QueryNodeId child : query.node(q).children) {
      // Restrict to paths that have a satisfying child binding.
      std::vector<bool> supported(paths, false);
      Axis axis = query.node(child).incoming_axis;
      for (PathId p = 0; p < guide.num_paths(); ++p) {
        if (!ok[static_cast<size_t>(child)][static_cast<size_t>(p)]) {
          continue;
        }
        if (axis == Axis::kChild) {
          PathId parent = guide.node(p).parent;
          if (parent != index::kInvalidPathId) {
            supported[static_cast<size_t>(parent)] = true;
          }
        } else {
          for (PathId walk = guide.node(p).parent;
               walk != index::kInvalidPathId;
               walk = guide.node(walk).parent) {
            supported[static_cast<size_t>(walk)] = true;
          }
        }
      }
      for (size_t p = 0; p < paths; ++p) {
        ok[static_cast<size_t>(q)][p] =
            ok[static_cast<size_t>(q)][p] && supported[p];
      }
    }
  }
  // Top-down pass: keep only paths reachable under some parent binding.
  if (!ok.empty() && query.root_axis() == Axis::kChild) {
    for (size_t p = 1; p < paths; ++p) ok[0][p] = false;
  }
  for (QueryNodeId q = 1; q < query.size(); ++q) {
    QueryNodeId parent = query.node(q).parent;
    Axis axis = query.node(q).incoming_axis;
    for (PathId p = 0; p < guide.num_paths(); ++p) {
      if (!ok[static_cast<size_t>(q)][static_cast<size_t>(p)]) continue;
      bool reachable = false;
      if (axis == Axis::kChild) {
        PathId pp = guide.node(p).parent;
        reachable = pp != index::kInvalidPathId &&
                    ok[static_cast<size_t>(parent)][static_cast<size_t>(pp)];
      } else {
        for (PathId walk = guide.node(p).parent;
             walk != index::kInvalidPathId && !reachable;
             walk = guide.node(walk).parent) {
          reachable =
              ok[static_cast<size_t>(parent)][static_cast<size_t>(walk)];
        }
      }
      if (!reachable) {
        ok[static_cast<size_t>(q)][static_cast<size_t>(p)] = false;
      }
    }
  }
  // Flatten.
  std::vector<std::vector<PathId>> bindings(
      static_cast<size_t>(query.size()));
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    for (PathId p = 0; p < guide.num_paths(); ++p) {
      if (ok[static_cast<size_t>(q)][static_cast<size_t>(p)]) {
        bindings[static_cast<size_t>(q)].push_back(p);
      }
    }
  }
  return bindings;
}


}  // namespace lotusx::twig
