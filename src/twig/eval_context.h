#ifndef LOTUSX_TWIG_EVAL_CONTEXT_H_
#define LOTUSX_TWIG_EVAL_CONTEXT_H_

#include "common/arena.h"
#include "index/posting_blocks.h"
#include "twig/match.h"

namespace lotusx::twig {

/// Per-query evaluation state threaded through the twig algorithms: a
/// bump arena for all decode scratch (posting-block buffers, filtered
/// candidate streams) and the posting-access counters that surface in
/// EvalStats, EXPLAIN ANALYZE, and the lotusx_postings_* metrics.
/// The executor owns one per query; algorithms create a local fallback
/// when called without one (direct calls in tests).
struct EvalContext {
  Arena arena;
  index::PostingStats postings;
};

/// Copies the context's posting counters into the result stats every
/// algorithm reports.
inline void FillPostingStats(const EvalContext& ctx, EvalStats* stats) {
  stats->posting_blocks_decoded = ctx.postings.blocks_decoded;
  stats->posting_blocks_skipped = ctx.postings.blocks_skipped;
  stats->posting_bytes_decoded = ctx.postings.bytes_decoded;
}

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_EVAL_CONTEXT_H_
