#ifndef LOTUSX_TWIG_QUERY_EXPORT_H_
#define LOTUSX_TWIG_QUERY_EXPORT_H_

#include <string>

#include "common/status_or.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Renders a twig query as standard W3C XPath 1.0, so a query drawn on
/// the LotusX canvas can run on any XPath engine. The output node becomes
/// the selected node; branches become predicates.
///
/// Semantics mapping:
///   value equality     -> [normalize-space(.) = "text"]
///   keyword contains   -> [contains(., "kw")] per keyword (lowercase not
///                         applied: XPath 1.0 lacks lower-case())
///   order constraints  -> not expressible in XPath 1.0: returns
///                         Unimplemented (use ToXQuery)
StatusOr<std::string> ToXPath(const TwigQuery& query);

/// Renders a twig query as an XQuery FLWOR expression, covering the full
/// query model including order-sensitive constraints (via the << node
/// order comparator). Every query node becomes a bound variable.
StatusOr<std::string> ToXQuery(const TwigQuery& query);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_QUERY_EXPORT_H_
