#include "twig/path_stack.h"

#include "common/timer.h"
#include "twig/candidates.h"
#include "twig/stack_common.h"

namespace lotusx::twig {

namespace {
using internal_stack::CleanStack;
using internal_stack::Stack;
}  // namespace

StatusOr<QueryResult> PathStackEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    const std::vector<std::vector<index::PathId>>* schema_bindings,
    EvalContext* ctx) {
  if (!query.IsPath()) {
    return Status::InvalidArgument(
        "PathStack handles path queries only; use TwigStack or TJFast");
  }
  EvalContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  Timer timer;
  const xml::Document& document = indexed.document();
  QueryResult result;
  result.stats.algorithm = "pathstack";

  std::vector<CandidateStream> streams;
  streams.reserve(static_cast<size_t>(query.size()));
  std::vector<Stack> stacks(static_cast<size_t>(query.size()));
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    streams.push_back(OpenCandidates(
        indexed, query, q, ctx,
        schema_bindings == nullptr
            ? nullptr
            : &(*schema_bindings)[static_cast<size_t>(q)]));
    result.stats.candidates_scanned +=
        streams[static_cast<size_t>(q)].count();
  }
  std::vector<QueryNodeId> path = query.RootToLeafPaths().front();
  QueryNodeId leaf = path.back();
  SolutionTable solutions;
  solutions.stride = path.size();
  std::vector<xml::NodeId> emit_scratch;

  while (true) {
    // qmin: node whose head element is earliest in document order.
    QueryNodeId qmin = kInvalidQueryNode;
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      if (streams[static_cast<size_t>(q)].AtEnd()) continue;
      if (qmin == kInvalidQueryNode ||
          streams[static_cast<size_t>(q)].Key() <
              streams[static_cast<size_t>(qmin)].Key()) {
        qmin = q;
      }
    }
    if (qmin == kInvalidQueryNode) break;
    xml::NodeId element = streams[static_cast<size_t>(qmin)].Key();
    streams[static_cast<size_t>(qmin)].Next();

    // Close every stack entry that ends before this element starts.
    for (Stack& stack : stacks) CleanStack(document, &stack, element);

    QueryNodeId parent = query.node(qmin).parent;
    // An element whose parent stack is empty cannot extend to the root;
    // pushing it would only grow the stack uselessly.
    if (parent != kInvalidQueryNode &&
        stacks[static_cast<size_t>(parent)].empty()) {
      continue;
    }
    internal_stack::PushStackEntry(
        document, &stacks[static_cast<size_t>(qmin)], element,
        parent == kInvalidQueryNode ? nullptr
                                    : &stacks[static_cast<size_t>(parent)]);
    if (qmin == leaf) {
      internal_stack::EmitPathSolutions(
          document, query, path, stacks,
          static_cast<int>(stacks[static_cast<size_t>(leaf)].size()) - 1,
          &emit_scratch, &solutions);
      stacks[static_cast<size_t>(leaf)].pop_back();
    }
  }

  result.stats.intermediate_tuples = solutions.num_rows();
  result.matches.reserve(solutions.num_rows());
  for (size_t r = 0; r < solutions.num_rows(); ++r) {
    const xml::NodeId* solution = solutions.row(r);
    Match match;
    match.bindings.assign(static_cast<size_t>(query.size()),
                          xml::kInvalidNodeId);
    for (size_t i = 0; i < path.size(); ++i) {
      match.bindings[static_cast<size_t>(path[i])] = solution[i];
    }
    result.matches.push_back(std::move(match));
  }
  std::sort(result.matches.begin(), result.matches.end());
  result.stats.matches = result.matches.size();
  FillPostingStats(*ctx, &result.stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
