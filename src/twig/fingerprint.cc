#include "twig/fingerprint.h"

#include <cstdio>

namespace lotusx::twig {

namespace {

/// 64-bit FNV-1a over a byte string. Chosen over std::hash for a
/// process-independent result: fingerprints land in slow-query logs and
/// bench baselines, so they must not vary with libstdc++ version or
/// ASLR.
constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t HashBytes(uint64_t h, std::string_view bytes) {
  for (unsigned char c : bytes) {
    h ^= c;
    h *= kFnvPrime;
  }
  return h;
}

/// Finalizer (splitmix64): FNV alone is weak in its high bits; one mix
/// round spreads structural differences across the whole word so
/// truncated displays (low hex digits) still distinguish shapes.
uint64_t Finalize(uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

uint64_t HashValue(uint64_t h, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    h ^= (value >> (i * 8)) & 0xff;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

QueryFingerprint FingerprintQuery(const TwigQuery& query,
                                  const EvalOptions& options) {
  // Audit tripwire, same pattern as SearchCacheKey: growing EvalOptions
  // without revisiting this function would silently merge statement rows
  // that differ in the new option. Bump the size AND add the field to
  // the hash below.
  static_assert(sizeof(EvalOptions) == 8,
                "EvalOptions changed; include (or deliberately exclude) the "
                "new field in FingerprintQuery and update the mutation-sweep "
                "test in fingerprint_test.cc");

  QueryFingerprint fp;
  uint64_t h = kFnvOffset;
  h = HashValue(h, static_cast<uint64_t>(query.root_axis()));
  h = HashValue(h, static_cast<uint64_t>(query.size()));
  for (QueryNodeId id = 0; id < query.size(); ++id) {
    const QueryNode& node = query.node(id);
    // Tag bytes with a length prefix so ("ab","c") != ("a","bc").
    h = HashValue(h, node.tag.size());
    h = HashBytes(h, node.tag);
    // Structure: where the node hangs and how. Node ids are insertion
    // order, which AddRoot/AddChild make a stable preorder-compatible
    // encoding — two structurally identical queries built the same way
    // get identical (parent, axis) sequences.
    h = HashValue(h, static_cast<uint64_t>(node.parent));
    h = HashValue(h, static_cast<uint64_t>(node.incoming_axis));
    h = HashValue(h, static_cast<uint64_t>(node.ordered) |
                         (static_cast<uint64_t>(node.is_output) << 1));
    // Predicate *operator* is shape; predicate *text* is a literal.
    h = HashValue(h, static_cast<uint64_t>(node.predicate.op));
    if (node.predicate.active()) {
      fp.literals.push_back(node.predicate.text);
    }
  }
  // Every evaluation option is part of the shape: the same twig under
  // kTwigStack vs kTJFast has different plans, latency, and block
  // behavior, and aggregating them together would hide exactly the
  // regressions the store exists to show.
  h = HashValue(h, static_cast<uint64_t>(options.algorithm));
  h = HashValue(h, static_cast<uint64_t>(options.apply_order) |
                       (static_cast<uint64_t>(options.integrate_order) << 1) |
                       (static_cast<uint64_t>(options.reorder_binary_joins)
                        << 2) |
                       (static_cast<uint64_t>(options.schema_prune_streams)
                        << 3));
  fp.value = Finalize(h);
  if (fp.value == 0) fp.value = 1;  // reserve 0 as "no fingerprint"
  return fp;
}

std::string NormalizedQueryText(const TwigQuery& query) {
  TwigQuery normalized = query;
  for (QueryNodeId id = 0; id < normalized.size(); ++id) {
    const QueryNode& node = normalized.node(id);
    if (node.predicate.active()) {
      normalized.SetPredicate(id, ValuePredicate{node.predicate.op, "?"});
    }
  }
  return normalized.ToString();
}

std::string FormatFingerprint(uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

uint64_t ParseFingerprint(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' &&
      (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return 0;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

}  // namespace lotusx::twig
