#ifndef LOTUSX_TWIG_SELECTIVITY_H_
#define LOTUSX_TWIG_SELECTIVITY_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Cardinality estimates for one twig query, derived purely from the
/// DataGuide (path occurrence counts) and term statistics — no data
/// access. The per-node estimate counts expected bindings of that node;
/// the match estimate uses the classic independence assumption across
/// branches.
struct SelectivityEstimate {
  /// Expected bindings per query node (schema-filtered, predicate-scaled).
  std::vector<double> node_cardinality;
  /// Per-node raw candidate stream length: tag occurrences, or the whole
  /// document for "*" — what a stream scan reads before any filtering.
  std::vector<double> node_stream_size;
  /// Per-node occurrences over the node's DataGuide-feasible paths (the
  /// stream after schema pruning, before predicate filtering).
  std::vector<double> node_schema_occurrences;
  /// Per-node selectivity of the value predicate (1.0 when absent).
  std::vector<double> node_predicate_selectivity;
  /// Per-node posting-block shape of the node's tag stream (zeros for
  /// wildcards, which have no single stream): number of compressed
  /// blocks, average entries per block, and covered key span. These feed
  /// the planner's block-skip cost term — a selective cursor consumer
  /// pays per *decoded block*, not per posting.
  std::vector<double> node_posting_blocks;
  std::vector<double> node_block_fill;
  std::vector<double> node_key_span;
  /// Expected number of complete twig matches.
  double match_cardinality = 0;
  /// Candidate stream sizes the algorithms would read: all nodes
  /// (TwigStack/structural join) vs leaves only (TJFast).
  double total_stream_size = 0;
  double leaf_stream_size = 0;
};

/// Estimates cardinalities for `query` over `indexed`. Always succeeds
/// for valid queries; an unsatisfiable query estimates 0 everywhere.
SelectivityEstimate EstimateSelectivity(
    const index::IndexedDocument& indexed, const TwigQuery& query);

/// Cost-based algorithm choice: PathStack for paths; otherwise TJFast
/// when the query's leaf streams are substantially smaller than the total
/// streams (its decode work pays off), else TwigStack. This is what
/// EvalOptions{.algorithm = kAuto} resolves to.
Algorithm ChooseAlgorithm(const index::IndexedDocument& indexed,
                          const TwigQuery& query);

/// Human-readable plan report: per-node positions and estimates, the
/// chosen algorithm with its reason, and the match estimate. Does not
/// execute the query.
StatusOr<std::string> Explain(const index::IndexedDocument& indexed,
                              const TwigQuery& query);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_SELECTIVITY_H_
