#ifndef LOTUSX_TWIG_PATH_MERGE_H_
#define LOTUSX_TWIG_PATH_MERGE_H_

#include <cstdint>
#include <vector>

#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

struct MergeOptions {
  /// When set (and `document` provided), partial tuples violating an
  /// order constraint between two already-bound children are pruned after
  /// every join step instead of post-filtering complete matches — the
  /// "integrated" order evaluation of experiment E4.
  bool prune_order = false;
  const xml::Document* document = nullptr;
};

/// Root-to-leaf path solutions as a flat row-major table: row r binds
/// path position i to rows[r * stride + i]. Producers (TwigStack's stack
/// expansion, TJFast's label alignment) append rows in place instead of
/// allocating one binding vector per solution — on allocation-heavy
/// corpora the per-solution vectors dominated the holistic algorithms'
/// runtime, not the joins themselves.
struct SolutionTable {
  size_t stride = 0;
  std::vector<xml::NodeId> rows;

  size_t num_rows() const { return stride == 0 ? 0 : rows.size() / stride; }
  xml::NodeId* row(size_t r) { return rows.data() + r * stride; }
  const xml::NodeId* row(size_t r) const { return rows.data() + r * stride; }
  void AppendRow(const xml::NodeId* src) {
    rows.insert(rows.end(), src, src + stride);
  }
  /// Lexicographic row sort (permutation + gather, not per-row swaps).
  void SortRows();
};

/// Joins per-root-to-leaf-path solution tables into complete twig matches.
/// `paths[i]` lists the query nodes of path i (root first) and
/// `solutions[i]` its binding rows (stride == paths[i].size(), columns
/// aligned with `paths[i]`). Paths are joined left to right with a
/// sort-based equi-join on the query nodes they share with the
/// already-joined prefix (at least the query root, typically the common
/// branch prefix). This is the merge phase of TwigStack and of the
/// TJFast-style evaluator. `join_tuples`, when non-null, accumulates the
/// number of tuples materialized across all join steps.
std::vector<Match> MergePathSolutions(
    const TwigQuery& query, const std::vector<std::vector<QueryNodeId>>& paths,
    const std::vector<SolutionTable>& solutions, uint64_t* join_tuples,
    const MergeOptions& options = {});

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_PATH_MERGE_H_
