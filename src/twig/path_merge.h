#ifndef LOTUSX_TWIG_PATH_MERGE_H_
#define LOTUSX_TWIG_PATH_MERGE_H_

#include <cstdint>
#include <vector>

#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

struct MergeOptions {
  /// When set (and `document` provided), partial tuples violating an
  /// order constraint between two already-bound children are pruned after
  /// every join step instead of post-filtering complete matches — the
  /// "integrated" order evaluation of experiment E4.
  bool prune_order = false;
  const xml::Document* document = nullptr;
};

/// Joins per-root-to-leaf-path solution lists into complete twig matches.
/// `paths[i]` lists the query nodes of path i (root first) and
/// `solutions[i]` its binding vectors (aligned with `paths[i]`). Paths are
/// joined left to right with a hash join on the query nodes they share
/// with the already-joined prefix (at least the query root, typically the
/// common branch prefix). This is the merge phase of TwigStack and of the
/// TJFast-style evaluator. `join_tuples`, when non-null, accumulates the
/// number of tuples materialized across all join steps.
std::vector<Match> MergePathSolutions(
    const TwigQuery& query, const std::vector<std::vector<QueryNodeId>>& paths,
    const std::vector<std::vector<std::vector<xml::NodeId>>>& solutions,
    uint64_t* join_tuples, const MergeOptions& options = {});

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_PATH_MERGE_H_
