#include "twig/query_from_example.h"

#include <algorithm>

#include "common/string_util.h"

namespace lotusx::twig {

StatusOr<TwigQuery> QueryFromExample(
    const index::IndexedDocument& indexed, xml::NodeId example,
    const QueryFromExampleOptions& options) {
  const xml::Document& document = indexed.document();
  if (example < 0 || example >= document.num_nodes()) {
    return Status::InvalidArgument("example node out of range");
  }
  const xml::Document::Node& node = document.node(example);
  if (node.kind == xml::NodeKind::kText) {
    return Status::InvalidArgument(
        "text nodes have no tag; pick their parent element");
  }

  // Spine: the example's tag path, truncated to `ancestor_levels` above
  // the node. The topmost included ancestor is anchored with '//' (its
  // own context stays open); everything below uses '/' because the path
  // is concrete.
  std::vector<xml::NodeId> spine_nodes;
  xml::NodeId walk = example;
  for (int i = 0; i <= std::max(options.ancestor_levels, 0) &&
                  walk != xml::kInvalidNodeId;
       ++i) {
    spine_nodes.push_back(walk);
    walk = document.node(walk).parent;
  }
  std::reverse(spine_nodes.begin(), spine_nodes.end());

  TwigQuery query;
  QueryNodeId q = query.AddRoot(document.TagName(spine_nodes.front()),
                                Axis::kDescendant);
  for (size_t i = 1; i < spine_nodes.size(); ++i) {
    q = query.AddChild(q, Axis::kChild, document.TagName(spine_nodes[i]));
  }
  QueryNodeId example_q = q;
  query.SetOutput(example_q);

  // Value predicate from the example's own content.
  if (options.include_value) {
    std::string value =
        node.kind == xml::NodeKind::kAttribute
            ? std::string(TrimAscii(document.Value(example)))
            : document.ContentString(example);
    if (!value.empty()) {
      query.SetPredicate(example_q,
                         ValuePredicate{ValuePredicate::Op::kEquals, value});
    }
  }

  // One distinguishing child branch (first element/attribute child).
  if (options.include_child_branch &&
      node.kind == xml::NodeKind::kElement) {
    for (xml::NodeId child : document.Children(example)) {
      if (document.node(child).kind == xml::NodeKind::kText) continue;
      query.AddChild(example_q, Axis::kChild, document.TagName(child));
      break;
    }
  }
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  return query;
}

}  // namespace lotusx::twig
