#ifndef LOTUSX_TWIG_TWIG_STACK_H_
#define LOTUSX_TWIG_TWIG_STACK_H_

#include "index/indexed_document.h"
#include "twig/eval_context.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Holistic twig join (TwigStack, Bruno et al., SIGMOD 2002) over
/// containment-labeled tag streams. Phase 1 produces root-to-leaf path
/// solutions using one stack per query node and the getNext head-element
/// selection that avoids materializing useless intermediate paths for
/// ancestor-descendant edges; phase 2 merge-joins the path solutions into
/// twig matches (path_merge.h). For queries with parent-child edges the
/// algorithm remains correct but may emit non-merging path solutions —
/// the known suboptimality that motivated TJFast.
///
/// Order constraints are NOT applied here; the evaluator post-filters.
/// With integrate_order, order constraints are pruned during the merge
/// phase instead of post-filtered by the evaluator.
QueryResult TwigStackEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    bool integrate_order = false,
    const std::vector<std::vector<index::PathId>>* schema_bindings = nullptr,
    EvalContext* ctx = nullptr);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_TWIG_STACK_H_
