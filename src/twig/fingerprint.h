#ifndef LOTUSX_TWIG_FINGERPRINT_H_
#define LOTUSX_TWIG_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "twig/evaluator.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// A canonicalized query shape: the 64-bit fingerprint plus the value
/// literals that were normalized out of it. Two queries share a
/// fingerprint exactly when they have the same tree structure, tags,
/// axes, order constraints, output node, predicate *operators*, and
/// evaluation options — the predicate *texts* are excluded, so
/// //book[title="XML"] and //book[title="SQL"] collapse to one shape.
/// This is what the statement store aggregates by (pg_stat_statements
/// keys on the post-parse-analysis query tree the same way).
struct QueryFingerprint {
  uint64_t value = 0;
  /// Predicate texts in query-node order, one entry per active
  /// predicate. Lets a caller reconstruct "which literals ran under
  /// this shape" without them polluting the key.
  std::vector<std::string> literals;
};

/// Computes the fingerprint of `query` under `options`. Deterministic
/// across processes and runs (no pointer or ASLR inputs), and never 0
/// for a non-empty query (0 is the "no fingerprint" sentinel
/// throughout the introspection layer).
QueryFingerprint FingerprintQuery(const TwigQuery& query,
                                  const EvalOptions& options = {});

/// Canonical rendering of a query with literals normalized out:
/// ToString() with every active predicate's text replaced by `?`.
/// This is the statement text the store displays for the shape.
std::string NormalizedQueryText(const TwigQuery& query);

/// "0x%016x" rendering used by STATEMENTS / /statements.json — same
/// shape as trace IDs so the two join visually in logs.
std::string FormatFingerprint(uint64_t fingerprint);

/// Inverse of FormatFingerprint; accepts with or without the 0x
/// prefix. Returns 0 (the sentinel) on malformed input.
uint64_t ParseFingerprint(std::string_view text);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_FINGERPRINT_H_
