#ifndef LOTUSX_TWIG_TJFAST_H_
#define LOTUSX_TWIG_TJFAST_H_

#include "index/indexed_document.h"
#include "twig/eval_context.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Extended-Dewey twig join in the style of TJFast (Lu et al., VLDB 2005)
/// — the engine family LotusX builds on. Only the streams of the query's
/// *leaf* nodes are read; each leaf element's extended Dewey label is
/// decoded into its full root-to-node tag path via the tag transducer, the
/// query's root-to-leaf path pattern is aligned against it (all
/// alignments, respecting '/' vs '//' and '*'), and every alignment
/// directly yields bindings for all ancestor query nodes on that path.
/// Per-path solution lists are then merge-joined (path_merge.h) exactly as
/// in TwigStack's second phase.
///
/// Internal-node value predicates, which a leaf label cannot attest, are
/// verified against the materialized ancestor before a solution is kept.
///
/// Simplification vs the paper: the final merge is a hash join on shared
/// query nodes rather than the paper's set-merge; the headline property —
/// non-leaf streams are never scanned, so parent-child-rich queries avoid
/// the TwigStack useless-path problem — is preserved (see DESIGN.md).
///
/// Order constraints are NOT applied here; the evaluator post-filters.
/// With integrate_order, order constraints are pruned during the merge
/// phase (partial tuples) instead of post-filtered by the evaluator.
QueryResult TjFastEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    bool integrate_order = false,
    const std::vector<std::vector<index::PathId>>* schema_bindings = nullptr,
    EvalContext* ctx = nullptr);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_TJFAST_H_
