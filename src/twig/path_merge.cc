#include "twig/path_merge.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace lotusx::twig {

namespace {

/// Drops tuples violating an order constraint among nodes bound so far.
void PruneByPartialOrder(const TwigQuery& query,
                         const xml::Document& document,
                         std::vector<Match>* tuples) {
  std::erase_if(*tuples, [&](const Match& match) {
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      const QueryNode& node = query.node(q);
      if (!node.ordered || node.children.size() < 2) continue;
      for (size_t i = 0; i + 1 < node.children.size(); ++i) {
        xml::NodeId left =
            match.bindings[static_cast<size_t>(node.children[i])];
        xml::NodeId right =
            match.bindings[static_cast<size_t>(node.children[i + 1])];
        if (left == xml::kInvalidNodeId || right == xml::kInvalidNodeId) {
          continue;  // not both bound yet
        }
        if (document.node(left).subtree_end >= right) return true;
      }
    }
    return false;
  });
}

}  // namespace

std::vector<Match> MergePathSolutions(
    const TwigQuery& query,
    const std::vector<std::vector<QueryNodeId>>& paths,
    const std::vector<std::vector<std::vector<xml::NodeId>>>& solutions,
    uint64_t* join_tuples, const MergeOptions& options) {
  CHECK_EQ(paths.size(), solutions.size());
  bool prune = options.prune_order && options.document != nullptr &&
               query.HasOrderConstraints();
  std::vector<Match> tuples;
  if (paths.empty()) return tuples;

  std::vector<bool> bound(static_cast<size_t>(query.size()), false);

  // Seed with the first path.
  for (const std::vector<xml::NodeId>& solution : solutions[0]) {
    Match match;
    match.bindings.assign(static_cast<size_t>(query.size()),
                          xml::kInvalidNodeId);
    for (size_t i = 0; i < paths[0].size(); ++i) {
      match.bindings[static_cast<size_t>(paths[0][i])] = solution[i];
    }
    tuples.push_back(std::move(match));
  }
  for (QueryNodeId q : paths[0]) bound[static_cast<size_t>(q)] = true;
  if (prune) PruneByPartialOrder(query, *options.document, &tuples);
  if (join_tuples != nullptr) *join_tuples += tuples.size();

  for (size_t p = 1; p < paths.size() && !tuples.empty(); ++p) {
    const std::vector<QueryNodeId>& path = paths[p];
    // Positions of this path's nodes that the joined prefix already binds
    // (always a non-empty prefix: at least the query root).
    std::vector<size_t> shared_positions;
    std::vector<size_t> new_positions;
    for (size_t i = 0; i < path.size(); ++i) {
      if (bound[static_cast<size_t>(path[i])]) {
        shared_positions.push_back(i);
      } else {
        new_positions.push_back(i);
      }
    }
    // Hash existing tuples by their bindings of the shared nodes.
    std::map<std::vector<xml::NodeId>, std::vector<size_t>> table;
    for (size_t t = 0; t < tuples.size(); ++t) {
      std::vector<xml::NodeId> key;
      key.reserve(shared_positions.size());
      for (size_t i : shared_positions) {
        key.push_back(
            tuples[t].bindings[static_cast<size_t>(path[i])]);
      }
      table[std::move(key)].push_back(t);
    }
    std::vector<Match> next;
    for (const std::vector<xml::NodeId>& solution : solutions[p]) {
      std::vector<xml::NodeId> key;
      key.reserve(shared_positions.size());
      for (size_t i : shared_positions) key.push_back(solution[i]);
      auto it = table.find(key);
      if (it == table.end()) continue;
      for (size_t t : it->second) {
        Match merged = tuples[t];
        for (size_t i : new_positions) {
          merged.bindings[static_cast<size_t>(path[i])] = solution[i];
        }
        next.push_back(std::move(merged));
      }
    }
    tuples = std::move(next);
    for (QueryNodeId q : path) bound[static_cast<size_t>(q)] = true;
    if (prune) PruneByPartialOrder(query, *options.document, &tuples);
    if (join_tuples != nullptr) *join_tuples += tuples.size();
  }

  std::sort(tuples.begin(), tuples.end());
  tuples.erase(std::unique(tuples.begin(), tuples.end()), tuples.end());
  return tuples;
}

}  // namespace lotusx::twig
