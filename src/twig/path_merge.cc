#include "twig/path_merge.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"

namespace lotusx::twig {

namespace {

/// Partial-match tuples as a flat row-major table (stride = query
/// size): expansion appends rows with plain copies instead of
/// allocating a bindings vector per intermediate Match, which is where
/// merge time went on branchy twigs with large intermediate results.
struct TupleTable {
  size_t stride = 0;
  std::vector<xml::NodeId> rows;

  size_t num_rows() const { return stride == 0 ? 0 : rows.size() / stride; }
  xml::NodeId* row(size_t r) { return rows.data() + r * stride; }
  const xml::NodeId* row(size_t r) const { return rows.data() + r * stride; }
};

/// Drops tuples violating an order constraint among nodes bound so far
/// (in-place compaction).
void PruneByPartialOrder(const TwigQuery& query,
                         const xml::Document& document, TupleTable* table) {
  auto violates = [&](const xml::NodeId* bindings) {
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      const QueryNode& node = query.node(q);
      if (!node.ordered || node.children.size() < 2) continue;
      for (size_t i = 0; i + 1 < node.children.size(); ++i) {
        xml::NodeId left = bindings[static_cast<size_t>(node.children[i])];
        xml::NodeId right =
            bindings[static_cast<size_t>(node.children[i + 1])];
        if (left == xml::kInvalidNodeId || right == xml::kInvalidNodeId) {
          continue;  // not both bound yet
        }
        if (document.node(left).subtree_end >= right) return true;
      }
    }
    return false;
  };
  size_t write = 0;
  size_t rows = table->num_rows();
  for (size_t r = 0; r < rows; ++r) {
    if (violates(table->row(r))) continue;
    if (write != r) {
      std::copy(table->row(r), table->row(r) + table->stride,
                table->row(write));
    }
    ++write;
  }
  table->rows.resize(write * table->stride);
}

}  // namespace

void SolutionTable::SortRows() {
  size_t count = num_rows();
  if (count < 2) return;
  std::vector<uint32_t> order(count);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(row(a), row(a) + stride, row(b),
                                        row(b) + stride);
  });
  std::vector<xml::NodeId> sorted;
  sorted.reserve(rows.size());
  for (uint32_t r : order) {
    sorted.insert(sorted.end(), row(r), row(r) + stride);
  }
  rows = std::move(sorted);
}

std::vector<Match> MergePathSolutions(
    const TwigQuery& query,
    const std::vector<std::vector<QueryNodeId>>& paths,
    const std::vector<SolutionTable>& solutions, uint64_t* join_tuples,
    const MergeOptions& options) {
  CHECK_EQ(paths.size(), solutions.size());
  bool prune = options.prune_order && options.document != nullptr &&
               query.HasOrderConstraints();
  if (paths.empty()) return {};

  std::vector<bool> bound(static_cast<size_t>(query.size()), false);
  TupleTable table;
  table.stride = static_cast<size_t>(query.size());

  // Seed with the first path.
  CHECK_EQ(solutions[0].stride, paths[0].size());
  table.rows.reserve(solutions[0].num_rows() * table.stride);
  for (size_t s = 0; s < solutions[0].num_rows(); ++s) {
    const xml::NodeId* solution = solutions[0].row(s);
    size_t at = table.rows.size();
    table.rows.resize(at + table.stride, xml::kInvalidNodeId);
    for (size_t i = 0; i < paths[0].size(); ++i) {
      table.rows[at + static_cast<size_t>(paths[0][i])] = solution[i];
    }
  }
  for (QueryNodeId q : paths[0]) bound[static_cast<size_t>(q)] = true;
  if (prune) PruneByPartialOrder(query, *options.document, &table);
  if (join_tuples != nullptr) *join_tuples += table.num_rows();

  for (size_t p = 1; p < paths.size() && table.num_rows() != 0; ++p) {
    const std::vector<QueryNodeId>& path = paths[p];
    // Positions of this path's nodes that the joined prefix already binds
    // (always a non-empty prefix: at least the query root).
    std::vector<size_t> shared_positions;
    std::vector<size_t> new_positions;
    for (size_t i = 0; i < path.size(); ++i) {
      if (bound[static_cast<size_t>(path[i])]) {
        shared_positions.push_back(i);
      } else {
        new_positions.push_back(i);
      }
    }

    // Sort-based equi-join on the shared bindings: order tuple rows by
    // their shared-node key, then binary-search each path solution's
    // key — no per-tuple key vectors, no map nodes.
    size_t rows = table.num_rows();
    std::vector<uint32_t> order(rows);
    std::iota(order.begin(), order.end(), 0u);
    auto row_key_less = [&](uint32_t a, uint32_t b) {
      for (size_t i : shared_positions) {
        xml::NodeId lhs = table.row(a)[static_cast<size_t>(path[i])];
        xml::NodeId rhs = table.row(b)[static_cast<size_t>(path[i])];
        if (lhs != rhs) return lhs < rhs;
      }
      return false;
    };
    std::sort(order.begin(), order.end(), row_key_less);

    CHECK_EQ(solutions[p].stride, path.size());
    TupleTable next;
    next.stride = table.stride;
    for (size_t s = 0; s < solutions[p].num_rows(); ++s) {
      const xml::NodeId* solution = solutions[p].row(s);
      auto lower = std::lower_bound(
          order.begin(), order.end(), solution,
          [&](uint32_t r, const xml::NodeId* sol) {
            for (size_t i : shared_positions) {
              xml::NodeId lhs = table.row(r)[static_cast<size_t>(path[i])];
              if (lhs != sol[i]) return lhs < sol[i];
            }
            return false;
          });
      auto upper = std::upper_bound(
          lower, order.end(), solution,
          [&](const xml::NodeId* sol, uint32_t r) {
            for (size_t i : shared_positions) {
              xml::NodeId rhs = table.row(r)[static_cast<size_t>(path[i])];
              if (sol[i] != rhs) return sol[i] < rhs;
            }
            return false;
          });
      for (auto it = lower; it != upper; ++it) {
        size_t at = next.rows.size();
        next.rows.insert(next.rows.end(), table.row(*it),
                         table.row(*it) + table.stride);
        for (size_t i : new_positions) {
          next.rows[at + static_cast<size_t>(path[i])] = solution[i];
        }
      }
    }
    table = std::move(next);
    for (QueryNodeId q : path) bound[static_cast<size_t>(q)] = true;
    if (prune) PruneByPartialOrder(query, *options.document, &table);
    if (join_tuples != nullptr) *join_tuples += table.num_rows();
  }

  // Canonical order + dedup on the flat rows, then materialize only the
  // surviving tuples as Match objects.
  size_t rows = table.num_rows();
  std::vector<uint32_t> order(rows);
  std::iota(order.begin(), order.end(), 0u);
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return std::lexicographical_compare(
        table.row(a), table.row(a) + table.stride, table.row(b),
        table.row(b) + table.stride);
  });
  std::vector<Match> tuples;
  tuples.reserve(rows);
  for (size_t i = 0; i < rows; ++i) {
    const xml::NodeId* r = table.row(order[i]);
    if (i > 0) {
      const xml::NodeId* prev = table.row(order[i - 1]);
      if (std::equal(r, r + table.stride, prev)) continue;
    }
    Match match;
    match.bindings.assign(r, r + table.stride);
    tuples.push_back(std::move(match));
  }
  return tuples;
}

}  // namespace lotusx::twig
