#include "twig/structural_join.h"

#include <algorithm>

#include "common/timer.h"
#include "twig/candidates.h"

namespace lotusx::twig {

namespace {

/// (ancestor, descendant) pair produced by one edge join.
struct EdgePair {
  xml::NodeId ancestor;
  xml::NodeId descendant;
};

/// Stack-tree structural join between a sorted unique list of potential
/// ancestors and a sorted candidate descendant stream. Emits every pair
/// satisfying the axis. Output is grouped by descendant in document order.
/// The stream is consumed via its cursor: whenever no ancestor is open,
/// the stream seeks directly past the next ancestor's start — on
/// block-compressed streams that skips whole blocks undecoded.
std::vector<EdgePair> StackTreeJoin(const xml::Document& document,
                                    const std::vector<xml::NodeId>& ancestors,
                                    CandidateStream* stream, Axis axis) {
  std::vector<EdgePair> pairs;
  std::vector<xml::NodeId> stack;  // chain of nested open ancestors
  size_t next_ancestor = 0;
  while (true) {
    if (stack.empty()) {
      // No open ancestor: nothing can pair until we are strictly past
      // the next ancestor's start.
      if (next_ancestor >= ancestors.size()) break;
      if (!stream->SeekGE(ancestors[next_ancestor] + 1)) break;
    } else if (stream->AtEnd()) {
      break;
    }
    xml::NodeId d = stream->Key();
    // Open every ancestor starting before d, closing finished ones first.
    while (next_ancestor < ancestors.size() &&
           ancestors[next_ancestor] < d) {
      xml::NodeId a = ancestors[next_ancestor++];
      while (!stack.empty() &&
             document.node(stack.back()).subtree_end < a) {
        stack.pop_back();
      }
      stack.push_back(a);
    }
    // Close ancestors that end before d.
    while (!stack.empty() && document.node(stack.back()).subtree_end < d) {
      stack.pop_back();
    }
    // Every remaining stack entry contains d (nested-chain invariant).
    if (axis == Axis::kDescendant) {
      for (xml::NodeId a : stack) {
        pairs.push_back(EdgePair{a, d});
      }
    } else if (!stack.empty()) {
      // Parent-child: among a chain of ancestors of d at distinct depths,
      // only the one at depth(d) - 1 can be the parent.
      int32_t want_depth = document.node(d).depth - 1;
      for (xml::NodeId a : stack) {
        if (document.node(a).depth == want_depth) {
          pairs.push_back(EdgePair{a, d});
          break;
        }
      }
    }
    stream->Next();
  }
  return pairs;
}

}  // namespace

QueryResult StructuralJoinEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    const std::vector<std::vector<index::PathId>>* schema_bindings,
    bool reorder_joins, EvalContext* ctx) {
  EvalContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  Timer timer;
  QueryResult result;
  result.stats.algorithm =
      reorder_joins ? "structural-join+reorder" : "structural-join";
  const xml::Document& document = indexed.document();

  // Candidate streams.
  std::vector<CandidateStream> candidates;
  candidates.reserve(static_cast<size_t>(query.size()));
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    candidates.push_back(OpenCandidates(
        indexed, query, q, ctx,
        schema_bindings == nullptr
            ? nullptr
            : &(*schema_bindings)[static_cast<size_t>(q)]));
    result.stats.candidates_scanned +=
        candidates[static_cast<size_t>(q)].count();
    if (candidates[static_cast<size_t>(q)].count() == 0) {
      FillPostingStats(*ctx, &result.stats);
      result.stats.elapsed_ms = timer.ElapsedMillis();
      return result;
    }
  }

  // Partial matches live in a flat row-major table (stride = query
  // size) instead of one heap-allocated bindings vector per Match:
  // expansion appends rows with a plain copy, and only the surviving
  // rows are materialized as Match objects at the end.
  const size_t stride = static_cast<size_t>(query.size());
  std::vector<xml::NodeId> table;
  table.reserve(candidates[0].count() * stride);
  for (; !candidates[0].AtEnd(); candidates[0].Next()) {
    size_t row = table.size();
    table.resize(row + stride, xml::kInvalidNodeId);
    table[row] = candidates[0].Key();
  }
  size_t num_rows = table.size() / stride;
  result.stats.intermediate_tuples += num_rows;

  // Edge processing order: query order by default; with reorder_joins, a
  // greedy order that always joins the joinable node (parent already
  // bound) with the smallest candidate stream next.
  std::vector<QueryNodeId> join_order;
  if (!reorder_joins) {
    for (QueryNodeId q = 1; q < query.size(); ++q) join_order.push_back(q);
  } else {
    std::vector<bool> bound(static_cast<size_t>(query.size()), false);
    bound[0] = true;
    while (static_cast<int>(join_order.size()) + 1 < query.size()) {
      QueryNodeId best = kInvalidQueryNode;
      for (QueryNodeId q = 1; q < query.size(); ++q) {
        if (bound[static_cast<size_t>(q)] ||
            !bound[static_cast<size_t>(query.node(q).parent)]) {
          continue;
        }
        if (best == kInvalidQueryNode ||
            candidates[static_cast<size_t>(q)].count() <
                candidates[static_cast<size_t>(best)].count()) {
          best = q;
        }
      }
      CHECK(best != kInvalidQueryNode);
      bound[static_cast<size_t>(best)] = true;
      join_order.push_back(best);
    }
  }

  for (QueryNodeId q : join_order) {
    if (num_rows == 0) break;
    QueryNodeId p = query.node(q).parent;
    // Distinct parent bindings, sorted, with the partials bound to each.
    std::vector<xml::NodeId> ancestors;
    ancestors.reserve(num_rows);
    for (size_t row = 0; row < num_rows; ++row) {
      ancestors.push_back(table[row * stride + static_cast<size_t>(p)]);
    }
    std::sort(ancestors.begin(), ancestors.end());
    ancestors.erase(std::unique(ancestors.begin(), ancestors.end()),
                    ancestors.end());

    std::vector<EdgePair> pairs =
        StackTreeJoin(document, ancestors,
                      &candidates[static_cast<size_t>(q)],
                      query.node(q).incoming_axis);

    // Group descendants per ancestor by sorting (stable: keeps each
    // ancestor's descendants in document order), then expand each
    // partial row by binary-searching its ancestor's run.
    std::stable_sort(pairs.begin(), pairs.end(),
                     [](const EdgePair& a, const EdgePair& b) {
                       return a.ancestor < b.ancestor;
                     });
    std::vector<xml::NodeId> next;
    for (size_t row = 0; row < num_rows; ++row) {
      xml::NodeId a = table[row * stride + static_cast<size_t>(p)];
      auto run = std::equal_range(
          pairs.begin(), pairs.end(), EdgePair{a, 0},
          [](const EdgePair& lhs, const EdgePair& rhs) {
            return lhs.ancestor < rhs.ancestor;
          });
      for (auto it = run.first; it != run.second; ++it) {
        size_t out = next.size();
        next.insert(next.end(), table.begin() + (row * stride),
                    table.begin() + ((row + 1) * stride));
        next[out + static_cast<size_t>(q)] = it->descendant;
      }
    }
    table = std::move(next);
    num_rows = table.size() / stride;
    result.stats.intermediate_tuples += num_rows;
  }

  result.matches.reserve(num_rows);
  for (size_t row = 0; row < num_rows; ++row) {
    Match match;
    match.bindings.assign(table.begin() + (row * stride),
                          table.begin() + ((row + 1) * stride));
    result.matches.push_back(std::move(match));
  }
  result.stats.matches = result.matches.size();
  FillPostingStats(*ctx, &result.stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
