#include "twig/structural_join.h"

#include <algorithm>
#include <unordered_map>

#include "common/timer.h"
#include "twig/candidates.h"

namespace lotusx::twig {

namespace {

/// (ancestor, descendant) pair produced by one edge join.
struct EdgePair {
  xml::NodeId ancestor;
  xml::NodeId descendant;
};

/// Stack-tree structural join between a sorted unique list of potential
/// ancestors and a sorted candidate descendant stream. Emits every pair
/// satisfying the axis. Output is grouped by descendant in document order.
std::vector<EdgePair> StackTreeJoin(const xml::Document& document,
                                    const std::vector<xml::NodeId>& ancestors,
                                    const std::vector<xml::NodeId>& stream,
                                    Axis axis) {
  std::vector<EdgePair> pairs;
  std::vector<xml::NodeId> stack;  // chain of nested open ancestors
  size_t next_ancestor = 0;
  for (xml::NodeId d : stream) {
    // Open every ancestor starting before d, closing finished ones first.
    while (next_ancestor < ancestors.size() &&
           ancestors[next_ancestor] < d) {
      xml::NodeId a = ancestors[next_ancestor++];
      while (!stack.empty() &&
             document.node(stack.back()).subtree_end < a) {
        stack.pop_back();
      }
      stack.push_back(a);
    }
    // Close ancestors that end before d.
    while (!stack.empty() && document.node(stack.back()).subtree_end < d) {
      stack.pop_back();
    }
    // Every remaining stack entry contains d (nested-chain invariant).
    if (axis == Axis::kDescendant) {
      for (xml::NodeId a : stack) {
        pairs.push_back(EdgePair{a, d});
      }
    } else {
      // Parent-child: among a chain of ancestors of d at distinct depths,
      // only the one at depth(d) - 1 can be the parent.
      int32_t want_depth = document.node(d).depth - 1;
      for (xml::NodeId a : stack) {
        if (document.node(a).depth == want_depth) {
          pairs.push_back(EdgePair{a, d});
          break;
        }
      }
    }
  }
  return pairs;
}

}  // namespace

QueryResult StructuralJoinEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    const std::vector<std::vector<index::PathId>>* schema_bindings,
    bool reorder_joins) {
  Timer timer;
  QueryResult result;
  result.stats.algorithm =
      reorder_joins ? "structural-join+reorder" : "structural-join";
  const xml::Document& document = indexed.document();

  // Candidate streams.
  std::vector<std::vector<xml::NodeId>> candidates(
      static_cast<size_t>(query.size()));
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    candidates[static_cast<size_t>(q)] = CandidatesFor(
        indexed, query, q,
        schema_bindings == nullptr
            ? nullptr
            : &(*schema_bindings)[static_cast<size_t>(q)]);
    result.stats.candidates_scanned +=
        candidates[static_cast<size_t>(q)].size();
    if (candidates[static_cast<size_t>(q)].empty()) {
      result.stats.elapsed_ms = timer.ElapsedMillis();
      return result;
    }
  }

  // Seed with root bindings.
  std::vector<Match> partials;
  partials.reserve(candidates[0].size());
  for (xml::NodeId c : candidates[0]) {
    Match match;
    match.bindings.assign(static_cast<size_t>(query.size()),
                          xml::kInvalidNodeId);
    match.bindings[0] = c;
    partials.push_back(std::move(match));
  }
  result.stats.intermediate_tuples += partials.size();

  // Edge processing order: query order by default; with reorder_joins, a
  // greedy order that always joins the joinable node (parent already
  // bound) with the smallest candidate stream next.
  std::vector<QueryNodeId> join_order;
  if (!reorder_joins) {
    for (QueryNodeId q = 1; q < query.size(); ++q) join_order.push_back(q);
  } else {
    std::vector<bool> bound(static_cast<size_t>(query.size()), false);
    bound[0] = true;
    while (static_cast<int>(join_order.size()) + 1 < query.size()) {
      QueryNodeId best = kInvalidQueryNode;
      for (QueryNodeId q = 1; q < query.size(); ++q) {
        if (bound[static_cast<size_t>(q)] ||
            !bound[static_cast<size_t>(query.node(q).parent)]) {
          continue;
        }
        if (best == kInvalidQueryNode ||
            candidates[static_cast<size_t>(q)].size() <
                candidates[static_cast<size_t>(best)].size()) {
          best = q;
        }
      }
      CHECK(best != kInvalidQueryNode);
      bound[static_cast<size_t>(best)] = true;
      join_order.push_back(best);
    }
  }

  for (QueryNodeId q : join_order) {
    if (partials.empty()) break;
    QueryNodeId p = query.node(q).parent;
    // Distinct parent bindings, sorted, with the partials bound to each.
    std::vector<xml::NodeId> ancestors;
    ancestors.reserve(partials.size());
    for (const Match& match : partials) {
      ancestors.push_back(match.bindings[static_cast<size_t>(p)]);
    }
    std::sort(ancestors.begin(), ancestors.end());
    ancestors.erase(std::unique(ancestors.begin(), ancestors.end()),
                    ancestors.end());

    std::vector<EdgePair> pairs =
        StackTreeJoin(document, ancestors, candidates[static_cast<size_t>(q)],
                      query.node(q).incoming_axis);

    // Bucket descendants per ancestor, then expand partials.
    std::unordered_map<xml::NodeId, std::vector<xml::NodeId>> by_ancestor;
    for (const EdgePair& pair : pairs) {
      by_ancestor[pair.ancestor].push_back(pair.descendant);
    }
    std::vector<Match> next;
    for (const Match& match : partials) {
      auto it = by_ancestor.find(match.bindings[static_cast<size_t>(p)]);
      if (it == by_ancestor.end()) continue;
      for (xml::NodeId d : it->second) {
        Match extended = match;
        extended.bindings[static_cast<size_t>(q)] = d;
        next.push_back(std::move(extended));
      }
    }
    partials = std::move(next);
    result.stats.intermediate_tuples += partials.size();
  }

  result.matches = std::move(partials);
  result.stats.matches = result.matches.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
