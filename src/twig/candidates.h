#ifndef LOTUSX_TWIG_CANDIDATES_H_
#define LOTUSX_TWIG_CANDIDATES_H_

#include <vector>

#include "index/indexed_document.h"
#include "twig/candidate_stream.h"
#include "twig/eval_context.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Opens the candidate stream for one query node: document-order NodeIds
/// whose tag matches (all elements for "*") and whose value satisfies the
/// node's predicate.
///
/// A plain tag node (no predicate, no pruning, no root anchoring) streams
/// lazily off the block-compressed tag stream — joins that seek past
/// regions never pay their decode. Anything needing filtering is
/// materialized into `ctx`'s arena first: equality predicates intersect
/// the keyword postings of the predicate's tokens by k-way leapfrog join
/// (galloping SeekGE over block cursors) and verify the full content
/// string; containment predicates require every token's posting list to
/// contain the node. A predicate whose text has no indexable token
/// matches only nodes whose content equals it verbatim (kEquals) or
/// nothing (kContains).
///
/// When `allowed_paths` is non-null (sorted ascending PathIds, typically
/// the node's SchemaBindings), the stream is additionally restricted to
/// nodes at those DataGuide paths — structural-summary stream pruning:
/// elements that cannot participate in any embedding (wrong context)
/// never reach the join at all. EvalOptions::schema_prune_streams turns
/// this on engine-wide.
///
/// The stream borrows `ctx` (arena scratch, posting counters) and
/// `indexed`; both must outlive it.
CandidateStream OpenCandidates(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    QueryNodeId node, EvalContext* ctx,
    const std::vector<index::PathId>* allowed_paths = nullptr);

/// Eager variant: materializes the full candidate list. Tests, EXPLAIN
/// ANALYZE actuals, and other cold paths.
std::vector<xml::NodeId> CandidatesFor(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    QueryNodeId node,
    const std::vector<index::PathId>* allowed_paths = nullptr);

/// True when document node `node` satisfies query node `q`'s tag and value
/// predicate (used by rewriting and by tests as the oracle definition).
bool NodeSatisfies(const index::IndexedDocument& indexed,
                   const TwigQuery& query, QueryNodeId q, xml::NodeId node);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_CANDIDATES_H_
