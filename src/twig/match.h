#ifndef LOTUSX_TWIG_MATCH_H_
#define LOTUSX_TWIG_MATCH_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace lotusx::twig {

/// One complete embedding of a twig query into the document: bindings[q]
/// is the document node matched to query node q.
struct Match {
  std::vector<xml::NodeId> bindings;

  friend bool operator==(const Match&, const Match&) = default;
  friend auto operator<=>(const Match& a, const Match& b) {
    return a.bindings <=> b.bindings;
  }
};

/// Execution counters reported by every twig algorithm, used by the E3/E4
/// benches to explain *why* one algorithm wins (intermediate-result
/// blowup is the classic structural-join failure mode).
struct EvalStats {
  std::string algorithm;
  /// Elements read from input streams.
  uint64_t candidates_scanned = 0;
  /// Intermediate tuples materialized (partial matches for the binary
  /// join, path solutions for the holistic algorithms).
  uint64_t intermediate_tuples = 0;
  /// Full twig matches produced (before output projection).
  uint64_t matches = 0;
  /// Posting-block access on the compressed streams: blocks actually
  /// decoded vs. skipped whole via the skip index, and compressed bytes
  /// decoded. Skips are what cursor-based joins buy over raw scans.
  uint64_t posting_blocks_decoded = 0;
  uint64_t posting_blocks_skipped = 0;
  uint64_t posting_bytes_decoded = 0;
  /// Planner's match-cardinality estimate for the executed plan, carried
  /// alongside the actuals so the statement store can aggregate
  /// estimated-vs-actual row error per query shape. Negative when the
  /// execution had no planning step (cache hits, errors).
  double estimated_matches = -1;
  double elapsed_ms = 0;
};

/// Result of evaluating a twig query: all embeddings plus statistics.
struct QueryResult {
  std::vector<Match> matches;
  EvalStats stats;

  /// Distinct bindings of the query's output node, in document order.
  std::vector<xml::NodeId> OutputNodes(int output_query_node) const {
    std::vector<xml::NodeId> out;
    out.reserve(matches.size());
    for (const Match& match : matches) {
      out.push_back(match.bindings[static_cast<size_t>(output_query_node)]);
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }
};

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_MATCH_H_
