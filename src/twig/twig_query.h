#ifndef LOTUSX_TWIG_TWIG_QUERY_H_
#define LOTUSX_TWIG_TWIG_QUERY_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lotusx::twig {

/// Edge axis between a query node and its parent.
enum class Axis {
  kChild,       // '/'  : parent-child
  kDescendant,  // '//' : ancestor-descendant
};

/// Value condition attached to a query node.
struct ValuePredicate {
  enum class Op {
    kNone,      // no condition
    kEquals,    // node value equals `text` (whitespace-trimmed)
    kContains,  // node value contains every keyword of `text`
  };
  Op op = Op::kNone;
  std::string text;

  bool active() const { return op != Op::kNone; }
  friend bool operator==(const ValuePredicate&,
                         const ValuePredicate&) = default;
};

/// Index of a node within its TwigQuery.
using QueryNodeId = int;
inline constexpr QueryNodeId kInvalidQueryNode = -1;

/// One node of a twig pattern. `tag` is an element tag, an attribute name
/// with "@" prefix, or "*" (any element).
struct QueryNode {
  std::string tag;
  ValuePredicate predicate;
  Axis incoming_axis = Axis::kChild;  // axis of the edge from the parent
  QueryNodeId parent = kInvalidQueryNode;
  std::vector<QueryNodeId> children;
  /// When set, this node's query children must match document-order
  /// siblings-or-cousins left to right: for consecutive children c1, c2,
  /// the match of c1 must entirely precede the match of c2 ("following"
  /// semantics). This is LotusX's order-sensitive query support.
  bool ordered = false;
  /// The node whose matches are returned to the user.
  bool is_output = false;

  friend bool operator==(const QueryNode&, const QueryNode&) = default;
};

/// A twig (tree) pattern query. Node 0 is always the root. Built
/// programmatically (by the canvas/session layer) or parsed from the
/// XPath-like text syntax in query_parser.h.
class TwigQuery {
 public:
  TwigQuery() = default;

  /// Adds the root node; must be the first call. Returns node 0.
  QueryNodeId AddRoot(std::string_view tag,
                      Axis axis_from_document_root = Axis::kDescendant);

  /// Adds a child of `parent` connected with `axis`.
  QueryNodeId AddChild(QueryNodeId parent, Axis axis, std::string_view tag);

  void SetPredicate(QueryNodeId node, ValuePredicate predicate);
  void SetOrdered(QueryNodeId node, bool ordered);
  /// Marks `node` as the output node, clearing any previous output mark.
  void SetOutput(QueryNodeId node);
  /// Replaces a node's tag (used by query rewriting).
  void SetTag(QueryNodeId node, std::string_view tag);
  /// Replaces the axis of the edge above `node` (used by rewriting).
  void SetIncomingAxis(QueryNodeId node, Axis axis);

  /// The root's incoming axis describes how the query root relates to the
  /// document root: kDescendant for the usual "//a...", kChild for "/a...".
  Axis root_axis() const { return root_axis_; }
  void set_root_axis(Axis axis) { root_axis_ = axis; }

  int size() const { return static_cast<int>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  const QueryNode& node(QueryNodeId id) const {
    return nodes_[static_cast<size_t>(id)];
  }
  QueryNodeId root() const { return nodes_.empty() ? kInvalidQueryNode : 0; }

  /// The output node: the explicitly marked one, else the root.
  QueryNodeId output() const;

  /// Structural sanity: non-empty, every tag non-empty, no "*" with a
  /// value predicate of kEquals (ambiguous), parent links consistent.
  Status Validate() const;

  /// Query node ids of all leaves, ascending.
  std::vector<QueryNodeId> Leaves() const;
  /// Root-to-leaf node id sequences, one per leaf, in leaf order.
  std::vector<std::vector<QueryNodeId>> RootToLeafPaths() const;
  /// True when the query is a simple path (every node has <= 1 child).
  bool IsPath() const;
  /// True when any node has `ordered` set.
  bool HasOrderConstraints() const;

  /// Nodes in a topological order with parents before children (in fact
  /// insertion order already guarantees this; provided for clarity).
  std::vector<QueryNodeId> TopologicalOrder() const;

  /// XPath-like rendering, re-parseable by ParseQuery. Example:
  /// //book[ordered][title="XML"]//author[~"lu"]!
  /// ('!' marks a non-root output node).
  std::string ToString() const;

  friend bool operator==(const TwigQuery&, const TwigQuery&) = default;

 private:
  void AppendNodeString(QueryNodeId id, bool as_spine,
                        std::string* out) const;

  std::vector<QueryNode> nodes_;
  Axis root_axis_ = Axis::kDescendant;
};

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_TWIG_QUERY_H_
