#ifndef LOTUSX_TWIG_EVALUATOR_H_
#define LOTUSX_TWIG_EVALUATOR_H_

#include <string_view>

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Which twig-join algorithm the evaluator runs.
enum class Algorithm {
  kAuto,            // TJFast (LotusX's engine); PathStack for pure paths
  kStructuralJoin,  // binary stack-tree joins (baseline)
  kPathStack,       // path queries only
  kTwigStack,       // holistic with containment labels
  kTJFast,          // holistic with extended Dewey (leaf streams only)
};

std::string_view AlgorithmName(Algorithm algorithm);

/// Evaluation options. Every field maps 1:1 onto a planner hint
/// (plan::HintsFrom) — the planner bakes them into the physical plan
/// instead of branching inside the algorithms.
struct EvalOptions {
  Algorithm algorithm = Algorithm::kAuto;
  /// Apply order constraints during evaluation. When false, ordered
  /// queries are answered as if unordered (used by the E4 ablation to
  /// price the naive post-filter externally).
  bool apply_order = true;
  /// Enforce order constraints inside the holistic algorithms' merge
  /// phase (pruning partial tuples early) instead of post-filtering
  /// complete matches. Same answers either way; E4 measures the
  /// difference in work.
  bool integrate_order = true;
  /// Greedy selectivity ordering of the binary structural join's edges
  /// (smallest candidate stream first); only affects kStructuralJoin.
  /// E3 prices it against the naive query order.
  bool reorder_binary_joins = false;
  /// Prune every input stream to the positions the query can actually
  /// bind (SchemaBindings over the DataGuide) before the join — the
  /// structural-summary optimization the E10 ablation prices. Never
  /// changes answers (schema matching is complete); off by default so
  /// algorithm comparisons stay on the classic streams.
  bool schema_prune_streams = false;
};

/// Front door of the twig engine — a thin shim over the cost-based query
/// planner (twig/plan/physical_plan.h): validates the query, maps the
/// options to planner hints, builds a priced physical-operator plan, and
/// executes it. All plans return exactly the same match set (a property
/// the plan-equivalence suite asserts).
StatusOr<QueryResult> Evaluate(const index::IndexedDocument& indexed,
                               const TwigQuery& query,
                               const EvalOptions& options = {});

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_EVALUATOR_H_
