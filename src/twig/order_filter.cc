#include "twig/order_filter.h"

#include <algorithm>

namespace lotusx::twig {

bool SatisfiesOrderConstraints(const xml::Document& document,
                               const TwigQuery& query, const Match& match) {
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    const QueryNode& node = query.node(q);
    if (!node.ordered || node.children.size() < 2) continue;
    for (size_t i = 0; i + 1 < node.children.size(); ++i) {
      xml::NodeId left =
          match.bindings[static_cast<size_t>(node.children[i])];
      xml::NodeId right =
          match.bindings[static_cast<size_t>(node.children[i + 1])];
      if (document.node(left).subtree_end >= right) return false;
    }
  }
  return true;
}

void FilterByOrder(const xml::Document& document, const TwigQuery& query,
                   std::vector<Match>* matches) {
  std::erase_if(*matches, [&](const Match& match) {
    return !SatisfiesOrderConstraints(document, query, match);
  });
}

}  // namespace lotusx::twig
