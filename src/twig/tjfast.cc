#include "twig/tjfast.h"

#include <algorithm>

#include "common/timer.h"
#include "twig/candidates.h"
#include "twig/path_merge.h"

namespace lotusx::twig {

namespace {

/// Alignment machinery: match the query path pattern (root-to-leaf tags
/// with axes) against a decoded tag path. Pattern position i corresponds
/// to query node path[i]; alignment[i] is the depth (index into the tag
/// path) assigned to it. The last pattern position is pinned to the last
/// tag-path position (the leaf element itself).
class PathAligner {
 public:
  PathAligner(const xml::Document& document, const TwigQuery& query,
              const std::vector<QueryNodeId>& path)
      : document_(document), query_(query), path_(path) {
    // Pre-resolve pattern tags: kInvalidTagId means the tag does not occur
    // in the document at all (no alignment possible), -2 means wildcard.
    for (QueryNodeId q : path_) {
      const std::string& tag = query_.node(q).tag;
      pattern_tags_.push_back(tag == "*" ? kWildcard
                                         : document_.FindTag(tag));
    }
  }

  static constexpr xml::TagId kWildcard = -2;

  /// Aligns the pattern onto `tag_path` (tags of the decoded
  /// root-to-element path); returns the number of alignments. Row k
  /// (path_.size() entries, valid until the next Align call) is at
  /// alignment(k). Rows and scratch live in member buffers so the
  /// per-element alignment allocates nothing once warm.
  size_t Align(const std::vector<xml::TagId>& tag_path) {
    rows_.clear();
    if (tag_path.empty()) return 0;
    int32_t last = static_cast<int32_t>(tag_path.size()) - 1;
    if (!TagMatches(pattern_tags_.back(),
                    tag_path[static_cast<size_t>(last)])) {
      return 0;
    }
    current_.assign(path_.size(), -1);
    current_[path_.size() - 1] = last;
    Extend(tag_path, static_cast<int32_t>(path_.size()) - 1);
    return rows_.size() / path_.size();
  }

  const int32_t* alignment(size_t k) const {
    return rows_.data() + k * path_.size();
  }

 private:
  static bool TagMatches(xml::TagId pattern, xml::TagId actual) {
    return pattern == kWildcard || pattern == actual;
  }

  /// Fills positions pattern_index-1 .. 0 given that pattern_index is
  /// already placed at current_[pattern_index].
  void Extend(const std::vector<xml::TagId>& tag_path,
              int32_t pattern_index) {
    if (pattern_index == 0) {
      // The query root placement must respect the root axis: '/' anchors
      // it at the document root.
      int32_t pos = current_[0];
      if (query_.root_axis() == Axis::kChild && pos != 0) return;
      rows_.insert(rows_.end(), current_.begin(), current_.end());
      return;
    }
    int32_t child_pos = current_[static_cast<size_t>(pattern_index)];
    Axis axis =
        query_.node(path_[static_cast<size_t>(pattern_index)]).incoming_axis;
    xml::TagId want = pattern_tags_[static_cast<size_t>(pattern_index - 1)];
    if (axis == Axis::kChild) {
      int32_t pos = child_pos - 1;
      if (pos < 0 ||
          !TagMatches(want, tag_path[static_cast<size_t>(pos)])) {
        return;
      }
      current_[static_cast<size_t>(pattern_index - 1)] = pos;
      Extend(tag_path, pattern_index - 1);
    } else {
      for (int32_t pos = child_pos - 1;
           pos >= pattern_index - 1;  // need room for the remaining prefix
           --pos) {
        if (!TagMatches(want, tag_path[static_cast<size_t>(pos)])) continue;
        current_[static_cast<size_t>(pattern_index - 1)] = pos;
        Extend(tag_path, pattern_index - 1);
      }
    }
  }

  const xml::Document& document_;
  const TwigQuery& query_;
  const std::vector<QueryNodeId>& path_;
  std::vector<xml::TagId> pattern_tags_;
  std::vector<int32_t> rows_;      // alignments, row-major, stride path_
  std::vector<int32_t> current_;   // partial alignment being extended
};

}  // namespace

QueryResult TjFastEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    bool integrate_order,
    const std::vector<std::vector<index::PathId>>* schema_bindings,
    EvalContext* ctx) {
  EvalContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  Timer timer;
  QueryResult result;
  result.stats.algorithm = "tjfast";
  const xml::Document& document = indexed.document();
  const labeling::TagTransducer& transducer = indexed.transducer();
  const labeling::ExtendedDeweyStore& labels = indexed.extended_dewey();
  labeling::XTagId root_tag =
      document.empty() ? -1 : document.node(document.root()).tag;

  std::vector<std::vector<QueryNodeId>> paths = query.RootToLeafPaths();
  std::vector<SolutionTable> solutions(paths.size());
  for (size_t p = 0; p < paths.size(); ++p) {
    solutions[p].stride = paths[p].size();
  }
  std::vector<labeling::XTagId> tag_path;

  for (size_t p = 0; p < paths.size(); ++p) {
    const std::vector<QueryNodeId>& path = paths[p];
    QueryNodeId leaf = path.back();
    CandidateStream stream = OpenCandidates(
        indexed, query, leaf, ctx,
        schema_bindings == nullptr
            ? nullptr
            : &(*schema_bindings)[static_cast<size_t>(leaf)]);
    result.stats.candidates_scanned += stream.count();
    PathAligner aligner(document, query, path);

    for (; !stream.AtEnd(); stream.Next()) {
      xml::NodeId element = stream.Key();
      // Decode the element's root-to-node tag path from its extended
      // Dewey label alone (this is the TJFast trick: no ancestor streams).
      labeling::ExtendedDeweyStore::DecodeTagPath(
          transducer, root_tag, labels.label(element), &tag_path);
      size_t num_alignments = aligner.Align(tag_path);
      for (size_t k = 0; k < num_alignments; ++k) {
        const int32_t* alignment = aligner.alignment(k);
        // Materialize the ancestor at each aligned depth by walking the
        // parent chain once from the element, writing the binding row
        // straight into the solution table (rolled back below if a
        // predicate fails).
        size_t at = solutions[p].rows.size();
        solutions[p].rows.resize(at + path.size(), xml::kInvalidNodeId);
        xml::NodeId* binding = solutions[p].rows.data() + at;
        binding[path.size() - 1] = element;
        {
          xml::NodeId walk = element;
          int32_t walk_depth = document.node(element).depth;
          size_t i = path.size() - 1;
          while (i > 0) {
            --i;
            int32_t want_depth = alignment[i];
            while (walk_depth > want_depth) {
              walk = document.node(walk).parent;
              --walk_depth;
            }
            binding[i] = walk;
          }
        }
        // Verify internal value predicates (not attested by the label).
        bool ok = true;
        for (size_t i = 0; ok && i + 1 < path.size(); ++i) {
          if (query.node(path[i]).predicate.active() &&
              !NodeSatisfies(indexed, query, path[i], binding[i])) {
            ok = false;
          }
        }
        if (!ok) solutions[p].rows.resize(at);
      }
    }
    result.stats.intermediate_tuples += solutions[p].num_rows();
    // Distinct alignments can yield identical bindings only when depths
    // coincide, which they cannot; still, keep the rows sorted for a
    // deterministic merge.
    solutions[p].SortRows();
  }

  MergeOptions merge_options;
  merge_options.prune_order = integrate_order;
  merge_options.document = &document;
  result.matches =
      MergePathSolutions(query, paths, solutions,
                         &result.stats.intermediate_tuples, merge_options);
  result.stats.matches = result.matches.size();
  FillPostingStats(*ctx, &result.stats);
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
