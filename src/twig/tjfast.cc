#include "twig/tjfast.h"

#include <algorithm>

#include "common/timer.h"
#include "twig/candidates.h"
#include "twig/path_merge.h"

namespace lotusx::twig {

namespace {

/// Alignment machinery: match the query path pattern (root-to-leaf tags
/// with axes) against a decoded tag path. Pattern position i corresponds
/// to query node path[i]; alignment[i] is the depth (index into the tag
/// path) assigned to it. The last pattern position is pinned to the last
/// tag-path position (the leaf element itself).
class PathAligner {
 public:
  PathAligner(const xml::Document& document, const TwigQuery& query,
              const std::vector<QueryNodeId>& path)
      : document_(document), query_(query), path_(path) {
    // Pre-resolve pattern tags: kInvalidTagId means the tag does not occur
    // in the document at all (no alignment possible), -2 means wildcard.
    for (QueryNodeId q : path_) {
      const std::string& tag = query_.node(q).tag;
      pattern_tags_.push_back(tag == "*" ? kWildcard
                                         : document_.FindTag(tag));
    }
  }

  static constexpr xml::TagId kWildcard = -2;

  /// All alignments of the pattern onto `tag_path` (tags of the decoded
  /// root-to-element path). Each result has path_.size() entries.
  std::vector<std::vector<int32_t>> Align(
      const std::vector<xml::TagId>& tag_path) const {
    std::vector<std::vector<int32_t>> alignments;
    if (tag_path.empty()) return alignments;
    int32_t last = static_cast<int32_t>(tag_path.size()) - 1;
    if (!TagMatches(pattern_tags_.back(), tag_path[static_cast<size_t>(last)])) {
      return alignments;
    }
    std::vector<int32_t> current(path_.size(), -1);
    current[path_.size() - 1] = last;
    Extend(tag_path, static_cast<int32_t>(path_.size()) - 1, &current,
           &alignments);
    return alignments;
  }

 private:
  static bool TagMatches(xml::TagId pattern, xml::TagId actual) {
    return pattern == kWildcard || pattern == actual;
  }

  /// Fills positions pattern_index-1 .. 0 given that pattern_index is
  /// already placed at (*current)[pattern_index].
  void Extend(const std::vector<xml::TagId>& tag_path, int32_t pattern_index,
              std::vector<int32_t>* current,
              std::vector<std::vector<int32_t>>* alignments) const {
    if (pattern_index == 0) {
      // The query root placement must respect the root axis: '/' anchors
      // it at the document root.
      int32_t pos = (*current)[0];
      if (query_.root_axis() == Axis::kChild && pos != 0) return;
      alignments->push_back(*current);
      return;
    }
    int32_t child_pos = (*current)[static_cast<size_t>(pattern_index)];
    Axis axis =
        query_.node(path_[static_cast<size_t>(pattern_index)]).incoming_axis;
    xml::TagId want = pattern_tags_[static_cast<size_t>(pattern_index - 1)];
    if (axis == Axis::kChild) {
      int32_t pos = child_pos - 1;
      if (pos < 0 ||
          !TagMatches(want, tag_path[static_cast<size_t>(pos)])) {
        return;
      }
      (*current)[static_cast<size_t>(pattern_index - 1)] = pos;
      Extend(tag_path, pattern_index - 1, current, alignments);
    } else {
      for (int32_t pos = child_pos - 1;
           pos >= pattern_index - 1;  // need room for the remaining prefix
           --pos) {
        if (!TagMatches(want, tag_path[static_cast<size_t>(pos)])) continue;
        (*current)[static_cast<size_t>(pattern_index - 1)] = pos;
        Extend(tag_path, pattern_index - 1, current, alignments);
      }
    }
  }

  const xml::Document& document_;
  const TwigQuery& query_;
  const std::vector<QueryNodeId>& path_;
  std::vector<xml::TagId> pattern_tags_;
};

}  // namespace

QueryResult TjFastEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    bool integrate_order,
    const std::vector<std::vector<index::PathId>>* schema_bindings) {
  Timer timer;
  QueryResult result;
  result.stats.algorithm = "tjfast";
  const xml::Document& document = indexed.document();
  const labeling::TagTransducer& transducer = indexed.transducer();
  const labeling::ExtendedDeweyStore& labels = indexed.extended_dewey();
  labeling::XTagId root_tag =
      document.empty() ? -1 : document.node(document.root()).tag;

  std::vector<std::vector<QueryNodeId>> paths = query.RootToLeafPaths();
  std::vector<std::vector<std::vector<xml::NodeId>>> solutions(paths.size());

  for (size_t p = 0; p < paths.size(); ++p) {
    const std::vector<QueryNodeId>& path = paths[p];
    QueryNodeId leaf = path.back();
    std::vector<xml::NodeId> stream = CandidatesFor(
        indexed, query, leaf,
        schema_bindings == nullptr
            ? nullptr
            : &(*schema_bindings)[static_cast<size_t>(leaf)]);
    result.stats.candidates_scanned += stream.size();
    PathAligner aligner(document, query, path);

    for (xml::NodeId element : stream) {
      // Decode the element's root-to-node tag path from its extended
      // Dewey label alone (this is the TJFast trick: no ancestor streams).
      std::vector<labeling::XTagId> tag_path =
          labeling::ExtendedDeweyStore::DecodeTagPath(
              transducer, root_tag, labels.label(element));
      for (const std::vector<int32_t>& alignment : aligner.Align(tag_path)) {
        // Materialize the ancestor at each aligned depth by walking the
        // parent chain once from the element.
        std::vector<xml::NodeId> binding(path.size(), xml::kInvalidNodeId);
        binding[path.size() - 1] = element;
        {
          xml::NodeId walk = element;
          int32_t walk_depth = document.node(element).depth;
          size_t i = path.size() - 1;
          while (i > 0) {
            --i;
            int32_t want_depth = alignment[i];
            while (walk_depth > want_depth) {
              walk = document.node(walk).parent;
              --walk_depth;
            }
            binding[i] = walk;
          }
        }
        // Verify internal value predicates (not attested by the label).
        bool ok = true;
        for (size_t i = 0; ok && i + 1 < path.size(); ++i) {
          if (query.node(path[i]).predicate.active() &&
              !NodeSatisfies(indexed, query, path[i], binding[i])) {
            ok = false;
          }
        }
        if (ok) solutions[p].push_back(std::move(binding));
      }
    }
    result.stats.intermediate_tuples += solutions[p].size();
    // Distinct alignments can yield identical bindings only when depths
    // coincide, which they cannot; still, keep the lists sorted for a
    // deterministic merge.
    std::sort(solutions[p].begin(), solutions[p].end());
  }

  MergeOptions merge_options;
  merge_options.prune_order = integrate_order;
  merge_options.document = &document;
  result.matches =
      MergePathSolutions(query, paths, solutions,
                         &result.stats.intermediate_tuples, merge_options);
  result.stats.matches = result.matches.size();
  result.stats.elapsed_ms = timer.ElapsedMillis();
  return result;
}

}  // namespace lotusx::twig
