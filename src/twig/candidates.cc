#include "twig/candidates.h"

#include <algorithm>

#include "common/string_util.h"

namespace lotusx::twig {

namespace {

/// Sorted intersection of `a` and `b` into `out`.
std::vector<xml::NodeId> Intersect(std::span<const xml::NodeId> a,
                                   std::span<const xml::NodeId> b) {
  std::vector<xml::NodeId> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

/// Value-node ids satisfying a kContains/kEquals predicate's keyword part:
/// the intersection of all token posting lists. Empty `tokens` yields an
/// empty result (callers special-case it).
std::vector<xml::NodeId> TokenIntersection(
    const index::IndexedDocument& indexed,
    const std::vector<std::string>& tokens) {
  std::vector<xml::NodeId> result;
  for (size_t i = 0; i < tokens.size(); ++i) {
    std::span<const xml::NodeId> postings =
        indexed.terms().Postings(tokens[i]);
    if (postings.empty()) return {};
    if (i == 0) {
      result.assign(postings.begin(), postings.end());
    } else {
      result = Intersect(result, postings);
      if (result.empty()) return {};
    }
  }
  return result;
}

/// The node's "value" under the predicate model: direct-text content for
/// elements, the attribute value for attributes.
std::string NodeValue(const xml::Document& document, xml::NodeId node) {
  if (document.node(node).kind == xml::NodeKind::kAttribute) {
    return std::string(TrimAscii(document.Value(node)));
  }
  return document.ContentString(node);
}

}  // namespace

bool NodeSatisfies(const index::IndexedDocument& indexed,
                   const TwigQuery& query, QueryNodeId q, xml::NodeId node) {
  const QueryNode& query_node = query.node(q);
  const xml::Document& document = indexed.document();
  const xml::Document::Node& doc_node = document.node(node);
  if (doc_node.kind == xml::NodeKind::kText) return false;
  if (query_node.tag == "*") {
    if (doc_node.kind != xml::NodeKind::kElement) return false;
  } else if (document.TagName(node) != query_node.tag) {
    return false;
  }
  switch (query_node.predicate.op) {
    case ValuePredicate::Op::kNone:
      return true;
    case ValuePredicate::Op::kEquals:
      return NodeValue(document, node) ==
             TrimAscii(query_node.predicate.text);
    case ValuePredicate::Op::kContains: {
      std::vector<std::string> tokens =
          TokenizeKeywords(query_node.predicate.text);
      if (tokens.empty()) return false;
      std::vector<std::string> node_tokens =
          TokenizeKeywords(NodeValue(document, node));
      for (const std::string& token : tokens) {
        if (std::find(node_tokens.begin(), node_tokens.end(), token) ==
            node_tokens.end()) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

std::vector<xml::NodeId> CandidatesFor(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    QueryNodeId node, const std::vector<index::PathId>* allowed_paths) {
  const QueryNode& query_node = query.node(node);
  const xml::Document& document = indexed.document();

  // Tag stream (or all elements for the wildcard).
  std::vector<xml::NodeId> stream;
  if (query_node.tag == "*") {
    stream.reserve(static_cast<size_t>(document.num_nodes()));
    for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
      if (document.node(id).kind == xml::NodeKind::kElement) {
        stream.push_back(id);
      }
    }
  } else {
    xml::TagId tag = document.FindTag(query_node.tag);
    if (tag == xml::kInvalidTagId) return {};
    std::span<const xml::NodeId> s = indexed.tag_streams().stream(tag);
    stream.assign(s.begin(), s.end());
  }
  // A child-axis query root must be the document root itself.
  if (node == query.root() && query.root_axis() == Axis::kChild) {
    std::erase_if(stream,
                  [&](xml::NodeId id) { return id != document.root(); });
  }
  // Structural-summary pruning: drop elements at infeasible paths.
  if (allowed_paths != nullptr) {
    const index::DataGuide& guide = indexed.dataguide();
    std::erase_if(stream, [&](xml::NodeId id) {
      return !std::binary_search(allowed_paths->begin(),
                                 allowed_paths->end(), guide.PathOf(id));
    });
  }
  if (!query_node.predicate.active()) return stream;

  std::vector<std::string> tokens =
      TokenizeKeywords(query_node.predicate.text);
  if (tokens.empty()) {
    if (query_node.predicate.op == ValuePredicate::Op::kContains) return {};
    // Equality against a token-free string: verify directly.
    std::vector<xml::NodeId> result;
    std::string_view want = TrimAscii(query_node.predicate.text);
    for (xml::NodeId id : stream) {
      if (NodeValue(document, id) == want) result.push_back(id);
    }
    return result;
  }

  std::vector<xml::NodeId> with_tokens = TokenIntersection(indexed, tokens);
  std::vector<xml::NodeId> result = Intersect(stream, with_tokens);
  if (query_node.predicate.op == ValuePredicate::Op::kEquals) {
    std::string_view want = TrimAscii(query_node.predicate.text);
    std::erase_if(result, [&](xml::NodeId id) {
      return NodeValue(document, id) != want;
    });
  }
  return result;
}

}  // namespace lotusx::twig
