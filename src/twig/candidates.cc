#include "twig/candidates.h"

#include <algorithm>
#include <string>
#include <string_view>

#include "common/string_util.h"
#include "index/posting_blocks.h"

namespace lotusx::twig {

namespace {

/// The node's "value" under the predicate model: direct-text content for
/// elements, the attribute value for attributes.
std::string NodeValue(const xml::Document& document, xml::NodeId node) {
  if (document.node(node).kind == xml::NodeKind::kAttribute) {
    return std::string(TrimAscii(document.Value(node)));
  }
  return document.ContentString(node);
}

bool PathAllowed(const index::IndexedDocument& indexed,
                 const std::vector<index::PathId>* allowed_paths,
                 xml::NodeId id) {
  if (allowed_paths == nullptr) return true;
  return std::binary_search(allowed_paths->begin(), allowed_paths->end(),
                            indexed.dataguide().PathOf(id));
}

/// K-way leapfrog equality intersection over block cursors: every
/// emitted id is present in all lists. Galloping SeekGE lets selective
/// token lists drag the tag stream forward block-skips at a time.
/// `emit` filters/collects each common id.
template <typename Emit>
void LeapfrogIntersect(std::vector<index::PostingBlocks::Cursor>* cursors,
                       Emit&& emit) {
  uint32_t target = 0;
  for (index::PostingBlocks::Cursor& cursor : *cursors) {
    if (cursor.AtEnd()) return;
    target = std::max(target, cursor.Key());
  }
  while (true) {
    bool all_equal = true;
    for (index::PostingBlocks::Cursor& cursor : *cursors) {
      if (!cursor.SeekGE(target)) return;
      if (cursor.Key() != target) {
        target = cursor.Key();
        all_equal = false;
        break;
      }
    }
    if (!all_equal) continue;
    emit(static_cast<xml::NodeId>(target));
    if (target == UINT32_MAX) return;
    ++target;
  }
}

}  // namespace

bool NodeSatisfies(const index::IndexedDocument& indexed,
                   const TwigQuery& query, QueryNodeId q, xml::NodeId node) {
  const QueryNode& query_node = query.node(q);
  const xml::Document& document = indexed.document();
  const xml::Document::Node& doc_node = document.node(node);
  if (doc_node.kind == xml::NodeKind::kText) return false;
  if (query_node.tag == "*") {
    if (doc_node.kind != xml::NodeKind::kElement) return false;
  } else if (document.TagName(node) != query_node.tag) {
    return false;
  }
  switch (query_node.predicate.op) {
    case ValuePredicate::Op::kNone:
      return true;
    case ValuePredicate::Op::kEquals:
      return NodeValue(document, node) ==
             TrimAscii(query_node.predicate.text);
    case ValuePredicate::Op::kContains: {
      std::vector<std::string> tokens =
          TokenizeKeywords(query_node.predicate.text);
      if (tokens.empty()) return false;
      std::vector<std::string> node_tokens =
          TokenizeKeywords(NodeValue(document, node));
      for (const std::string& token : tokens) {
        if (std::find(node_tokens.begin(), node_tokens.end(), token) ==
            node_tokens.end()) {
          return false;
        }
      }
      return true;
    }
  }
  return false;
}

CandidateStream OpenCandidates(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    QueryNodeId node, EvalContext* ctx,
    const std::vector<index::PathId>* allowed_paths) {
  const QueryNode& query_node = query.node(node);
  const xml::Document& document = indexed.document();
  Arena* arena = &ctx->arena;
  index::PostingStats* stats = &ctx->postings;

  // A child-axis query root can only bind the document root: resolve the
  // whole stream to at most that one node.
  if (node == query.root() && query.root_axis() == Axis::kChild) {
    ArenaVector<xml::NodeId> out(arena);
    xml::NodeId root = document.root();
    if (root != xml::kInvalidNodeId &&
        NodeSatisfies(indexed, query, node, root) &&
        PathAllowed(indexed, allowed_paths, root)) {
      out.push_back(root);
    }
    return CandidateStream::FromSpan(out.span());
  }

  const bool wildcard = query_node.tag == "*";
  const index::PostingBlocks* blocks = nullptr;
  if (!wildcard) {
    xml::TagId tag = document.FindTag(query_node.tag);
    if (tag == xml::kInvalidTagId) return {};
    blocks = &indexed.tag_streams().blocks(tag);
  }

  std::vector<std::string> tokens;
  if (query_node.predicate.active()) {
    tokens = TokenizeKeywords(query_node.predicate.text);
    if (tokens.empty()) {
      if (query_node.predicate.op == ValuePredicate::Op::kContains) {
        return {};
      }
      // Equality against a token-free string: verify values directly.
      ArenaVector<xml::NodeId> out(arena);
      std::string_view want = TrimAscii(query_node.predicate.text);
      if (wildcard) {
        for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
          if (document.node(id).kind == xml::NodeKind::kElement &&
              PathAllowed(indexed, allowed_paths, id) &&
              NodeValue(document, id) == want) {
            out.push_back(id);
          }
        }
      } else {
        index::PostingBlocks::Cursor cursor =
            blocks->NewCursor(arena, stats);
        for (; !cursor.AtEnd(); cursor.Next()) {
          auto id = static_cast<xml::NodeId>(cursor.Key());
          if (PathAllowed(indexed, allowed_paths, id) &&
              NodeValue(document, id) == want) {
            out.push_back(id);
          }
        }
      }
      return CandidateStream::FromSpan(out.span());
    }
  }

  if (!tokens.empty()) {
    // Leapfrog-intersect the token posting lists (and the tag stream,
    // when there is one) — the selective lists steer, whole blocks of
    // the wide lists are skipped undecoded.
    std::vector<index::PostingBlocks::Cursor> cursors;
    cursors.reserve(tokens.size() + 1);
    if (!wildcard) cursors.push_back(blocks->NewCursor(arena, stats));
    for (const std::string& token : tokens) {
      const index::PostingBlocks* postings =
          indexed.terms().PostingsFor(token);
      if (postings == nullptr || postings->empty()) return {};
      cursors.push_back(postings->NewCursor(arena, stats));
    }
    const bool verify_equals =
        query_node.predicate.op == ValuePredicate::Op::kEquals;
    std::string_view want = TrimAscii(query_node.predicate.text);
    ArenaVector<xml::NodeId> out(arena);
    LeapfrogIntersect(&cursors, [&](xml::NodeId id) {
      if (wildcard &&
          document.node(id).kind != xml::NodeKind::kElement) {
        return;
      }
      if (!PathAllowed(indexed, allowed_paths, id)) return;
      if (verify_equals && NodeValue(document, id) != want) return;
      out.push_back(id);
    });
    return CandidateStream::FromSpan(out.span());
  }

  // No predicate from here on.
  if (wildcard) {
    ArenaVector<xml::NodeId> out(arena);
    for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
      if (document.node(id).kind == xml::NodeKind::kElement &&
          PathAllowed(indexed, allowed_paths, id)) {
        out.push_back(id);
      }
    }
    return CandidateStream::FromSpan(out.span());
  }
  if (allowed_paths != nullptr) {
    ArenaVector<xml::NodeId> out(arena);
    index::PostingBlocks::Cursor cursor = blocks->NewCursor(arena, stats);
    for (; !cursor.AtEnd(); cursor.Next()) {
      auto id = static_cast<xml::NodeId>(cursor.Key());
      if (PathAllowed(indexed, allowed_paths, id)) out.push_back(id);
    }
    return CandidateStream::FromSpan(out.span());
  }
  // Pure tag stream: stream the compressed blocks lazily — the join
  // decides which blocks ever get decoded.
  return CandidateStream::FromBlocks(blocks, arena, stats);
}

std::vector<xml::NodeId> CandidatesFor(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    QueryNodeId node, const std::vector<index::PathId>* allowed_paths) {
  EvalContext ctx;
  CandidateStream stream =
      OpenCandidates(indexed, query, node, &ctx, allowed_paths);
  std::vector<xml::NodeId> out;
  out.reserve(stream.count());
  for (; !stream.AtEnd(); stream.Next()) out.push_back(stream.Key());
  return out;
}

}  // namespace lotusx::twig
