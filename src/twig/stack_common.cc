#include "twig/stack_common.h"

#include "common/invariant.h"
#include "common/logging.h"

namespace lotusx::twig::internal_stack {

namespace {

/// Recursive expansion: `position` indexes into `path`; `entry_index` is
/// the chosen stack entry for path[position]. `partial` is filled from the
/// leaf backwards.
void Expand(const xml::Document& document, const TwigQuery& query,
            const std::vector<QueryNodeId>& path,
            const std::vector<Stack>& stacks, size_t position,
            int entry_index, std::vector<xml::NodeId>* partial,
            SolutionTable* solutions) {
  QueryNodeId q = path[position];
  LOTUSX_DCHECK(entry_index >= 0 &&
                static_cast<size_t>(entry_index) <
                    stacks[static_cast<size_t>(q)].size())
      << "entry index " << entry_index << " out of stack " << q;
  const StackEntry& entry =
      stacks[static_cast<size_t>(q)][static_cast<size_t>(entry_index)];
  (*partial)[position] = entry.element;
  if (position == 0) {
    solutions->AppendRow(partial->data());
    return;
  }
  QueryNodeId parent_q = path[position - 1];
  LOTUSX_DCHECK_LT(entry.parent_top,
                   static_cast<int>(stacks[static_cast<size_t>(parent_q)]
                                        .size()))
      << "parent_top dangles past stack " << parent_q;
  Axis axis = query.node(q).incoming_axis;
  int32_t child_depth = document.node(entry.element).depth;
  // Entries 0..entry.parent_top of the parent stack all contain this
  // element (push-time invariant) — except that when the query repeats a
  // tag (//s//s), the element itself may sit on the parent stack; it is
  // not a *proper* ancestor of itself and must be skipped.
  for (int j = 0; j <= entry.parent_top; ++j) {
    const StackEntry& candidate =
        stacks[static_cast<size_t>(parent_q)][static_cast<size_t>(j)];
    if (candidate.element == entry.element) continue;
    LOTUSX_DCHECK(document.IsAncestor(candidate.element, entry.element))
        << "recorded parent entry " << candidate.element
        << " is not an ancestor of " << entry.element;
    if (axis == Axis::kChild &&
        document.node(candidate.element).depth != child_depth - 1) {
      continue;
    }
    Expand(document, query, path, stacks, position - 1, j, partial,
           solutions);
  }
}

}  // namespace

void EmitPathSolutions(const xml::Document& document, const TwigQuery& query,
                       const std::vector<QueryNodeId>& path,
                       const std::vector<Stack>& stacks, int leaf_index,
                       std::vector<xml::NodeId>* scratch,
                       SolutionTable* solutions) {
  DCHECK(!path.empty());
  DCHECK(solutions->stride == path.size());
  scratch->assign(path.size(), xml::kInvalidNodeId);
  Expand(document, query, path, stacks, path.size() - 1, leaf_index,
         scratch, solutions);
}

}  // namespace lotusx::twig::internal_stack
