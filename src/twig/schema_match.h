#ifndef LOTUSX_TWIG_SCHEMA_MATCH_H_
#define LOTUSX_TWIG_SCHEMA_MATCH_H_

#include <vector>

#include "index/indexed_document.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Schema-level twig evaluation: matches `query` against the DataGuide
/// (the summary tree with one node per distinct label path) instead of
/// the document. Returns, for every query node, the exact set of paths
/// (ascending PathId) it can bind to in some embedding. Value predicates
/// require the path to carry text (or be an attribute path); their actual
/// text condition is not checked at this level.
///
/// This is the primitive behind LotusX's position-awareness
/// (autocomplete), position-aware tag substitution (rewrite), and
/// cardinality estimation (selectivity): it runs on a structure that is
/// orders of magnitude smaller than the document.
std::vector<std::vector<index::PathId>> SchemaBindings(
    const index::IndexedDocument& indexed, const TwigQuery& query);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_SCHEMA_MATCH_H_
