#ifndef LOTUSX_TWIG_STRUCTURAL_JOIN_H_
#define LOTUSX_TWIG_STRUCTURAL_JOIN_H_

#include "index/indexed_document.h"
#include "twig/eval_context.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Pre-holistic baseline: decomposes the twig into its tree edges and
/// evaluates them one at a time with the stack-tree structural join
/// (Al-Khalifa et al., ICDE 2002), materializing the full intermediate
/// binding table after every edge. Correct for all twigs, but exhibits the
/// classic intermediate-result blowup on branchy queries that holistic
/// algorithms (TwigStack, TJFast) were designed to avoid — which is
/// exactly what experiment E3 demonstrates.
///
/// Order constraints are NOT applied here; the evaluator post-filters.
/// `schema_bindings`, when non-null (one sorted PathId list per query
/// node, from SchemaBindings), prunes each input stream to feasible
/// positions before joining.
///
/// With `reorder_joins`, edges are processed greedily by candidate-stream
/// size (parent-first constraint respected) instead of query order — the
/// classic join-ordering lever: putting a selective branch early shrinks
/// every later intermediate table. Same answers either way.
/// `ctx` supplies the per-query arena and posting counters; a local one
/// is created when null (direct calls in tests).
QueryResult StructuralJoinEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    const std::vector<std::vector<index::PathId>>* schema_bindings = nullptr,
    bool reorder_joins = false, EvalContext* ctx = nullptr);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_STRUCTURAL_JOIN_H_
