#ifndef LOTUSX_TWIG_STACK_COMMON_H_
#define LOTUSX_TWIG_STACK_COMMON_H_

#include <vector>

#include "twig/twig_query.h"
#include "xml/dom.h"

namespace lotusx::twig::internal_stack {

/// Stack entry of the holistic algorithms (TwigStack / PathStack). The
/// parent pointer records how much of the parent query node's stack
/// contained this element at push time: entries 0..parent_top (inclusive)
/// all contain it.
struct StackEntry {
  xml::NodeId element = xml::kInvalidNodeId;
  int parent_top = -1;
};

/// Per-query-node stack.
using Stack = std::vector<StackEntry>;

/// Pops entries whose subtree ends before `next_start` (they can contain
/// nothing that starts later).
inline void CleanStack(const xml::Document& document, Stack* stack,
                       xml::NodeId next_start) {
  while (!stack->empty() &&
         document.node(stack->back().element).subtree_end < next_start) {
    stack->pop_back();
  }
}

/// Expands every root-to-leaf solution ending at `stacks[path.back()]`'s
/// entry `leaf_index`, appending one binding vector (aligned with `path`,
/// root first) per solution to `solutions`. Parent-child edges are
/// verified by depth (stack entries are ancestors of the leaf element, so
/// depth equality implies parenthood).
void EmitPathSolutions(const xml::Document& document, const TwigQuery& query,
                       const std::vector<QueryNodeId>& path,
                       const std::vector<Stack>& stacks, int leaf_index,
                       std::vector<std::vector<xml::NodeId>>* solutions);

}  // namespace lotusx::twig::internal_stack

#endif  // LOTUSX_TWIG_STACK_COMMON_H_
