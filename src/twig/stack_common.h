#ifndef LOTUSX_TWIG_STACK_COMMON_H_
#define LOTUSX_TWIG_STACK_COMMON_H_

#include <vector>

#include "common/invariant.h"
#include "twig/path_merge.h"
#include "twig/twig_query.h"
#include "xml/dom.h"

namespace lotusx::twig::internal_stack {

/// Stack entry of the holistic algorithms (TwigStack / PathStack). The
/// parent pointer records how much of the parent query node's stack
/// contained this element at push time: entries 0..parent_top (inclusive)
/// all contain it.
struct StackEntry {
  xml::NodeId element = xml::kInvalidNodeId;
  int parent_top = -1;
};

/// Per-query-node stack.
using Stack = std::vector<StackEntry>;

/// Pops entries whose subtree ends before `next_start` (they can contain
/// nothing that starts later).
inline void CleanStack(const xml::Document& document, Stack* stack,
                       xml::NodeId next_start) {
  while (!stack->empty() &&
         document.node(stack->back().element).subtree_end < next_start) {
    stack->pop_back();
  }
}

/// Pushes `element` onto `stack`, recording how much of `parent_stack`
/// (null for the query root) contained it at push time. Invariant-checking
/// builds verify the stack discipline the holistic algorithms rely on:
/// entries on one stack are strictly nested in document order (so the push
/// must follow a CleanStack for `element`), and the recorded parent entry
/// contains the element — entries below it then do too, by nesting.
inline void PushStackEntry(const xml::Document& document, Stack* stack,
                           xml::NodeId element, const Stack* parent_stack) {
  int parent_top =
      parent_stack == nullptr ? -1
                              : static_cast<int>(parent_stack->size()) - 1;
  LOTUSX_DCHECK(element >= 0 && element < document.num_nodes())
      << "push of invalid element " << element;
  if (!stack->empty()) {
    const StackEntry& top = stack->back();
    LOTUSX_DCHECK_LT(top.element, element)
        << "push breaks document order on stack";
    LOTUSX_DCHECK_LE(element, document.node(top.element).subtree_end)
        << "element " << element << " not nested in stack top "
        << top.element << " (missing CleanStack?)";
  }
  if (parent_top >= 0) {
    // The same element may sit atop the parent stack when the query
    // repeats a tag (//a//a), hence <= rather than <.
    const StackEntry& up = (*parent_stack)[static_cast<size_t>(parent_top)];
    LOTUSX_DCHECK_LE(up.element, element)
        << "parent stack top " << up.element << " after element " << element;
    LOTUSX_DCHECK_LE(element, document.node(up.element).subtree_end)
        << "parent stack top " << up.element << " does not contain "
        << element;
  }
  stack->push_back(StackEntry{element, parent_top});
}

/// Expands every root-to-leaf solution ending at `stacks[path.back()]`'s
/// entry `leaf_index`, appending one row (aligned with `path`, root
/// first) per solution to `solutions` (stride must equal path.size()).
/// Parent-child edges are verified by depth (stack entries are ancestors
/// of the leaf element, so depth equality implies parenthood). `scratch`
/// is caller-owned working space, resized here and reused across calls so
/// the per-leaf emission allocates nothing once warm.
void EmitPathSolutions(const xml::Document& document, const TwigQuery& query,
                       const std::vector<QueryNodeId>& path,
                       const std::vector<Stack>& stacks, int leaf_index,
                       std::vector<xml::NodeId>* scratch,
                       SolutionTable* solutions);

}  // namespace lotusx::twig::internal_stack

#endif  // LOTUSX_TWIG_STACK_COMMON_H_
