#include "twig/query_parser.h"

#include <cctype>

namespace lotusx::twig {

namespace {

/// Recursive-descent parser over the twig syntax.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  StatusOr<TwigQuery> Parse() {
    TwigQuery query;
    Axis axis = Axis::kDescendant;
    LOTUSX_RETURN_IF_ERROR(ParseAxis(&axis));
    QueryNodeId last = kInvalidQueryNode;
    LOTUSX_RETURN_IF_ERROR(ParseStepInto(&query, kInvalidQueryNode, axis,
                                         &last));
    while (!AtEnd()) {
      LOTUSX_RETURN_IF_ERROR(ParseAxis(&axis));
      LOTUSX_RETURN_IF_ERROR(ParseStepInto(&query, last, axis, &last));
    }
    if (!explicit_output_) query.SetOutput(last);
    LOTUSX_RETURN_IF_ERROR(query.Validate());
    return query;
  }

 private:
  bool AtEnd() const { return pos_ >= text_.size(); }
  char Peek() const { return text_[pos_]; }

  Status Error(std::string_view message) const {
    return Status::InvalidArgument("query syntax error at offset " +
                                   std::to_string(pos_) + ": " +
                                   std::string(message));
  }

  Status ParseAxis(Axis* axis) {
    if (AtEnd() || Peek() != '/') return Error("expected '/' or '//'");
    ++pos_;
    if (!AtEnd() && Peek() == '/') {
      ++pos_;
      *axis = Axis::kDescendant;
    } else {
      *axis = Axis::kChild;
    }
    return Status::OK();
  }

  /// Axis inside a branch qualifier: optional, default child.
  Status ParseBranchAxis(Axis* axis) {
    if (!AtEnd() && Peek() == '/') return ParseAxis(axis);
    *axis = Axis::kChild;
    return Status::OK();
  }

  Status ParseName(std::string* name) {
    name->clear();
    if (!AtEnd() && Peek() == '*') {
      ++pos_;
      *name = "*";
      return Status::OK();
    }
    if (!AtEnd() && Peek() == '@') {
      name->push_back('@');
      ++pos_;
    }
    while (!AtEnd()) {
      char c = Peek();
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
          c == '-' || c == '.' || c == ':') {
        name->push_back(c);
        ++pos_;
      } else {
        break;
      }
    }
    if (name->empty() || *name == "@") return Error("expected tag name");
    return Status::OK();
  }

  Status ParseString(std::string* out) {
    if (AtEnd() || Peek() != '"') return Error("expected '\"'");
    ++pos_;
    out->clear();
    while (true) {
      if (AtEnd()) return Error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (c == '\\') {
        if (AtEnd()) return Error("dangling escape");
        c = text_[pos_++];
        if (c != '"' && c != '\\') return Error("bad escape");
      }
      out->push_back(c);
    }
  }

  /// Parses one step and attaches it under `parent` (kInvalidQueryNode for
  /// the root). Returns the new node id via `out_node`.
  Status ParseStepInto(TwigQuery* query, QueryNodeId parent, Axis axis,
                       QueryNodeId* out_node) {
    std::string name;
    LOTUSX_RETURN_IF_ERROR(ParseName(&name));
    QueryNodeId node = parent == kInvalidQueryNode
                           ? query->AddRoot(name, axis)
                           : query->AddChild(parent, axis, name);
    if (!AtEnd() && Peek() == '!') {
      ++pos_;
      if (explicit_output_) return Error("multiple '!' output markers");
      explicit_output_ = true;
      query->SetOutput(node);
    }
    while (!AtEnd() && Peek() == '[') {
      ++pos_;
      LOTUSX_RETURN_IF_ERROR(ParseQualifier(query, node));
      if (AtEnd() || Peek() != ']') return Error("expected ']'");
      ++pos_;
    }
    *out_node = node;
    return Status::OK();
  }

  Status ParseQualifier(TwigQuery* query, QueryNodeId node) {
    if (AtEnd()) return Error("empty qualifier");
    char c = Peek();
    if (c == '=' || c == '~') {
      ++pos_;
      ValuePredicate predicate;
      predicate.op = c == '=' ? ValuePredicate::Op::kEquals
                              : ValuePredicate::Op::kContains;
      LOTUSX_RETURN_IF_ERROR(ParseString(&predicate.text));
      if (query->node(node).predicate.active()) {
        return Error("node already has a value predicate");
      }
      query->SetPredicate(node, std::move(predicate));
      return Status::OK();
    }
    // 'ordered' keyword — but only when followed by ']', so a branch step
    // named "ordered" is still expressible as [ordered/...] etc.
    if (text_.substr(pos_, 7) == "ordered" &&
        (pos_ + 7 >= text_.size() || text_[pos_ + 7] == ']')) {
      pos_ += 7;
      query->SetOrdered(node, true);
      return Status::OK();
    }
    // Branch: a relative path under `node`.
    Axis axis = Axis::kChild;
    LOTUSX_RETURN_IF_ERROR(ParseBranchAxis(&axis));
    QueryNodeId last = kInvalidQueryNode;
    LOTUSX_RETURN_IF_ERROR(ParseStepInto(query, node, axis, &last));
    while (!AtEnd() && Peek() == '/') {
      LOTUSX_RETURN_IF_ERROR(ParseAxis(&axis));
      LOTUSX_RETURN_IF_ERROR(ParseStepInto(query, last, axis, &last));
    }
    return Status::OK();
  }

  std::string_view text_;
  size_t pos_ = 0;
  bool explicit_output_ = false;
};

}  // namespace

StatusOr<TwigQuery> ParseQuery(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty query string");
  }
  return Parser(text).Parse();
}

}  // namespace lotusx::twig
