#ifndef LOTUSX_TWIG_QUERY_PARSER_H_
#define LOTUSX_TWIG_QUERY_PARSER_H_

#include <string_view>

#include "common/status_or.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// Parses the XPath-like twig syntax used throughout LotusX:
///
///   query     := axis step (axis step)*
///   axis      := '//' | '/'
///   step      := name '!'? qualifier*
///   name      := TAG | '@' TAG | '*'
///   qualifier := '[' 'ordered' ']'
///             |  '[' '=' STRING ']'            value equality
///             |  '[' '~' STRING ']'            keyword containment
///             |  '[' axis? step (axis step)* ']'   branch (default: '/')
///   STRING    := '"' chars with \" and \\ escapes '"'
///
/// Examples:
///   //book/title
///   //book[ordered][author[~"lu"]]/title!
///   //dblp//article[year[="2012"]]/title
///
/// The output node defaults to the last step of the spine unless some step
/// carries '!'. ParseQuery(query.ToString()) == query for every valid
/// query (round-trip property, tested).
StatusOr<TwigQuery> ParseQuery(std::string_view text);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_QUERY_PARSER_H_
