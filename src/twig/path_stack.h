#ifndef LOTUSX_TWIG_PATH_STACK_H_
#define LOTUSX_TWIG_PATH_STACK_H_

#include "index/indexed_document.h"
#include "twig/eval_context.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::twig {

/// PathStack (Bruno et al., SIGMOD 2002): holistic join for *path*
/// queries. Streams of all query nodes are merged in document order; each
/// element is pushed onto its node's stack with a pointer into the parent
/// stack, and solutions are expanded when leaf elements arrive. Unlike
/// TwigStack it performs no head-element skipping, so it scans every
/// candidate — the natural baseline between the binary join and TwigStack
/// in experiment E3.
///
/// Requires query.IsPath(); returns InvalidArgument otherwise.
StatusOr<QueryResult> PathStackEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    const std::vector<std::vector<index::PathId>>* schema_bindings = nullptr,
    EvalContext* ctx = nullptr);

}  // namespace lotusx::twig

#endif  // LOTUSX_TWIG_PATH_STACK_H_
