#include "twig/twig_query.h"

#include <algorithm>

#include "common/logging.h"

namespace lotusx::twig {

namespace {

/// Quotes `text` with '"' and backslash-escapes '"' and '\'.
std::string QuoteText(std::string_view text) {
  std::string out = "\"";
  for (char c : text) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

QueryNodeId TwigQuery::AddRoot(std::string_view tag,
                               Axis axis_from_document_root) {
  CHECK(nodes_.empty()) << "AddRoot on non-empty query";
  QueryNode node;
  node.tag = std::string(tag);
  node.incoming_axis = axis_from_document_root;
  root_axis_ = axis_from_document_root;
  nodes_.push_back(std::move(node));
  return 0;
}

QueryNodeId TwigQuery::AddChild(QueryNodeId parent, Axis axis,
                                std::string_view tag) {
  CHECK(parent >= 0 && parent < size());
  QueryNode node;
  node.tag = std::string(tag);
  node.incoming_axis = axis;
  node.parent = parent;
  QueryNodeId id = size();
  nodes_.push_back(std::move(node));
  nodes_[static_cast<size_t>(parent)].children.push_back(id);
  return id;
}

void TwigQuery::SetPredicate(QueryNodeId node, ValuePredicate predicate) {
  nodes_[static_cast<size_t>(node)].predicate = std::move(predicate);
}

void TwigQuery::SetOrdered(QueryNodeId node, bool ordered) {
  nodes_[static_cast<size_t>(node)].ordered = ordered;
}

void TwigQuery::SetOutput(QueryNodeId node) {
  for (QueryNode& n : nodes_) n.is_output = false;
  nodes_[static_cast<size_t>(node)].is_output = true;
}

void TwigQuery::SetTag(QueryNodeId node, std::string_view tag) {
  nodes_[static_cast<size_t>(node)].tag = std::string(tag);
}

void TwigQuery::SetIncomingAxis(QueryNodeId node, Axis axis) {
  nodes_[static_cast<size_t>(node)].incoming_axis = axis;
  if (node == root()) root_axis_ = axis;
}

QueryNodeId TwigQuery::output() const {
  for (QueryNodeId id = 0; id < size(); ++id) {
    if (nodes_[static_cast<size_t>(id)].is_output) return id;
  }
  return root();
}

Status TwigQuery::Validate() const {
  if (nodes_.empty()) return Status::InvalidArgument("empty query");
  for (QueryNodeId id = 0; id < size(); ++id) {
    const QueryNode& node = nodes_[static_cast<size_t>(id)];
    if (node.tag.empty()) {
      return Status::InvalidArgument("query node with empty tag");
    }
    if (node.tag == "*" && node.predicate.op == ValuePredicate::Op::kEquals) {
      return Status::InvalidArgument(
          "wildcard node cannot carry an equality predicate");
    }
    if (id == 0) {
      if (node.parent != kInvalidQueryNode) {
        return Status::InvalidArgument("root with a parent");
      }
    } else {
      if (node.parent < 0 || node.parent >= size() || node.parent >= id) {
        return Status::InvalidArgument("parent must precede child");
      }
      const QueryNode& parent = nodes_[static_cast<size_t>(node.parent)];
      if (std::find(parent.children.begin(), parent.children.end(), id) ==
          parent.children.end()) {
        return Status::InvalidArgument("inconsistent parent/child links");
      }
    }
  }
  return Status::OK();
}

std::vector<QueryNodeId> TwigQuery::Leaves() const {
  std::vector<QueryNodeId> leaves;
  for (QueryNodeId id = 0; id < size(); ++id) {
    if (nodes_[static_cast<size_t>(id)].children.empty()) {
      leaves.push_back(id);
    }
  }
  return leaves;
}

std::vector<std::vector<QueryNodeId>> TwigQuery::RootToLeafPaths() const {
  std::vector<std::vector<QueryNodeId>> paths;
  for (QueryNodeId leaf : Leaves()) {
    std::vector<QueryNodeId> path;
    for (QueryNodeId id = leaf; id != kInvalidQueryNode;
         id = nodes_[static_cast<size_t>(id)].parent) {
      path.push_back(id);
    }
    std::reverse(path.begin(), path.end());
    paths.push_back(std::move(path));
  }
  return paths;
}

bool TwigQuery::IsPath() const {
  for (const QueryNode& node : nodes_) {
    if (node.children.size() > 1) return false;
  }
  return true;
}

bool TwigQuery::HasOrderConstraints() const {
  for (const QueryNode& node : nodes_) {
    if (node.ordered && node.children.size() > 1) return true;
  }
  return false;
}

std::vector<QueryNodeId> TwigQuery::TopologicalOrder() const {
  std::vector<QueryNodeId> order(nodes_.size());
  for (QueryNodeId id = 0; id < size(); ++id) {
    order[static_cast<size_t>(id)] = id;
  }
  return order;
}

void TwigQuery::AppendNodeString(QueryNodeId id, bool /*as_spine*/,
                                 std::string* out) const {
  const QueryNode& node = nodes_[static_cast<size_t>(id)];
  QueryNodeId out_node = output();
  *out += node.tag;
  if (id == out_node) *out += '!';
  if (node.ordered) *out += "[ordered]";
  switch (node.predicate.op) {
    case ValuePredicate::Op::kNone:
      break;
    case ValuePredicate::Op::kEquals:
      *out += "[=" + QuoteText(node.predicate.text) + "]";
      break;
    case ValuePredicate::Op::kContains:
      *out += "[~" + QuoteText(node.predicate.text) + "]";
      break;
  }
  // The spine always continues through the LAST child so that re-parsing
  // reconstructs children in the same order (which matters for ordered
  // nodes); earlier children render as [branch] qualifiers. The output
  // node is marked with '!' wherever it sits.
  QueryNodeId spine_child =
      node.children.empty() ? kInvalidQueryNode : node.children.back();
  for (QueryNodeId child : node.children) {
    if (child == spine_child) continue;
    const QueryNode& c = nodes_[static_cast<size_t>(child)];
    *out += '[';
    if (c.incoming_axis == Axis::kDescendant) *out += "//";
    AppendNodeString(child, /*as_spine=*/false, out);
    *out += ']';
  }
  if (spine_child != kInvalidQueryNode) {
    const QueryNode& c = nodes_[static_cast<size_t>(spine_child)];
    *out += c.incoming_axis == Axis::kDescendant ? "//" : "/";
    AppendNodeString(spine_child, /*as_spine=*/true, out);
  }
}

std::string TwigQuery::ToString() const {
  if (nodes_.empty()) return "";
  std::string out = root_axis_ == Axis::kDescendant ? "//" : "/";
  AppendNodeString(root(), /*as_spine=*/true, &out);
  return out;
}

}  // namespace lotusx::twig
