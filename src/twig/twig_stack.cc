#include "twig/twig_stack.h"

#include <limits>

#include "common/timer.h"
#include "twig/candidates.h"
#include "twig/path_merge.h"
#include "twig/stack_common.h"


namespace lotusx::twig {

namespace {

using internal_stack::CleanStack;
using internal_stack::Stack;

constexpr xml::NodeId kExhausted = std::numeric_limits<xml::NodeId>::max();

/// Runtime state of one TwigStack execution.
class TwigStackRun {
 public:
  TwigStackRun(const index::IndexedDocument& indexed, const TwigQuery& query,
               bool integrate_order,
               const std::vector<std::vector<index::PathId>>* schema_bindings,
               EvalContext* ctx)
      : document_(indexed.document()),
        query_(query),
        ctx_(ctx),
        integrate_order_(integrate_order),
        stacks_(static_cast<size_t>(query.size())) {
    streams_.reserve(static_cast<size_t>(query.size()));
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      streams_.push_back(OpenCandidates(
          indexed, query, q, ctx,
          schema_bindings == nullptr
              ? nullptr
              : &(*schema_bindings)[static_cast<size_t>(q)]));
    }
    paths_ = query.RootToLeafPaths();
    // Leaf -> index of its root-to-leaf path.
    path_of_leaf_.assign(static_cast<size_t>(query.size()), -1);
    for (size_t p = 0; p < paths_.size(); ++p) {
      path_of_leaf_[static_cast<size_t>(paths_[p].back())] =
          static_cast<int>(p);
    }
    path_solutions_.resize(paths_.size());
    for (size_t p = 0; p < paths_.size(); ++p) {
      path_solutions_[p].stride = paths_[p].size();
    }
  }

  QueryResult Run() {
    Timer timer;
    QueryResult result;
    result.stats.algorithm = "twigstack";
    for (const CandidateStream& stream : streams_) {
      result.stats.candidates_scanned += stream.count();
    }

    while (!End(query_.root())) {
      QueryNodeId q = GetNext(query_.root());
      CHECK(!Exhausted(q)) << "getNext returned exhausted node " << q;
      xml::NodeId element = Current(q);
      QueryNodeId parent = query_.node(q).parent;
      if (parent != kInvalidQueryNode) {
        CleanStack(document_, &stacks_[static_cast<size_t>(parent)],
                   element);
      }
      if (parent == kInvalidQueryNode ||
          !stacks_[static_cast<size_t>(parent)].empty()) {
        CleanStack(document_, &stacks_[static_cast<size_t>(q)], element);
        MoveStreamToStack(q);
        if (query_.node(q).children.empty()) {
          int path = path_of_leaf_[static_cast<size_t>(q)];
          internal_stack::EmitPathSolutions(
              document_, query_, paths_[static_cast<size_t>(path)], stacks_,
              static_cast<int>(stacks_[static_cast<size_t>(q)].size()) - 1,
              &emit_scratch_,
              &path_solutions_[static_cast<size_t>(path)]);
          stacks_[static_cast<size_t>(q)].pop_back();
        }
      } else {
        Advance(q);
      }
    }

    for (const SolutionTable& solutions : path_solutions_) {
      result.stats.intermediate_tuples += solutions.num_rows();
    }
    MergeOptions merge_options;
    merge_options.prune_order = integrate_order_;
    merge_options.document = &document_;
    result.matches =
        MergePathSolutions(query_, paths_, path_solutions_,
                           &result.stats.intermediate_tuples, merge_options);
    result.stats.matches = result.matches.size();
    FillPostingStats(*ctx_, &result.stats);
    result.stats.elapsed_ms = timer.ElapsedMillis();
    return result;
  }

 private:
  bool Exhausted(QueryNodeId q) const {
    return streams_[static_cast<size_t>(q)].AtEnd();
  }
  /// Current element, or kExhausted as +infinity sentinel.
  xml::NodeId Current(QueryNodeId q) const {
    return Exhausted(q) ? kExhausted
                        : streams_[static_cast<size_t>(q)].Key();
  }
  /// End of the current element's subtree (+infinity when exhausted).
  xml::NodeId CurrentEnd(QueryNodeId q) const {
    return Exhausted(q) ? kExhausted
                        : document_.node(Current(q)).subtree_end;
  }
  void Advance(QueryNodeId q) { streams_[static_cast<size_t>(q)].Next(); }

  /// True when every leaf stream in q's subtree is exhausted.
  bool End(QueryNodeId q) const {
    const QueryNode& node = query_.node(q);
    if (node.children.empty()) return Exhausted(q);
    for (QueryNodeId child : node.children) {
      if (!End(child)) return false;
    }
    return true;
  }

  /// The getNext of the TwigStack paper: returns a query node in q's
  /// subtree whose head element is guaranteed to have a descendant
  /// extension for every ancestor-descendant sub-edge. Dead subtrees —
  /// those whose leaf streams are all exhausted, so no *future* element
  /// can create a new path solution for them — are masked out; without
  /// this, exhausting one branch would wedge or terminate the whole run
  /// while sibling branches still have solutions to emit.
  /// Must only be called on a live (non-End) node; the returned node
  /// always has a valid head element.
  QueryNodeId GetNext(QueryNodeId q) {
    const QueryNode& node = query_.node(q);
    if (node.children.empty()) return q;
    QueryNodeId n_min = kInvalidQueryNode;
    QueryNodeId n_max = kInvalidQueryNode;
    for (QueryNodeId child : node.children) {
      if (End(child)) continue;  // dead branch
      QueryNodeId n = GetNext(child);
      if (n != child) return n;
      if (n_min == kInvalidQueryNode || Current(child) < Current(n_min)) {
        n_min = child;
      }
      if (n_max == kInvalidQueryNode || Current(child) > Current(n_max)) {
        n_max = child;
      }
    }
    CHECK(n_min != kInvalidQueryNode) << "GetNext on dead subtree";
    // Skip q's elements that end before the latest live child head begins
    // — they cannot contain all child heads.
    while (CurrentEnd(q) < Current(n_max)) Advance(q);
    if (Current(q) < Current(n_min)) return q;
    return n_min;
  }

  void MoveStreamToStack(QueryNodeId q) {
    QueryNodeId parent = query_.node(q).parent;
    internal_stack::PushStackEntry(
        document_, &stacks_[static_cast<size_t>(q)], Current(q),
        parent == kInvalidQueryNode ? nullptr
                                    : &stacks_[static_cast<size_t>(parent)]);
    Advance(q);
  }

  const xml::Document& document_;
  const TwigQuery& query_;
  EvalContext* ctx_;
  bool integrate_order_;
  std::vector<CandidateStream> streams_;
  std::vector<Stack> stacks_;
  std::vector<std::vector<QueryNodeId>> paths_;
  std::vector<int> path_of_leaf_;
  std::vector<SolutionTable> path_solutions_;
  std::vector<xml::NodeId> emit_scratch_;
};

}  // namespace

QueryResult TwigStackEvaluate(
    const index::IndexedDocument& indexed, const TwigQuery& query,
    bool integrate_order,
    const std::vector<std::vector<index::PathId>>* schema_bindings,
    EvalContext* ctx) {
  EvalContext local_ctx;
  if (ctx == nullptr) ctx = &local_ctx;
  return TwigStackRun(indexed, query, integrate_order, schema_bindings, ctx)
      .Run();
}

}  // namespace lotusx::twig
