#ifndef LOTUSX_KEYWORD_KEYWORD_SEARCH_H_
#define LOTUSX_KEYWORD_KEYWORD_SEARCH_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status_or.h"
#include "index/indexed_document.h"

namespace lotusx::keyword {

/// One keyword-search answer: the SLCA element whose subtree covers every
/// query keyword, with a relevance score.
struct KeywordHit {
  xml::NodeId node = xml::kInvalidNodeId;
  double score = 0;
  /// One witness value node per query keyword (document order of the
  /// keywords as typed), for snippet highlighting.
  std::vector<xml::NodeId> witnesses;
};

struct KeywordSearchOptions {
  size_t limit = 20;
};

/// Schema-free keyword search with Smallest-LCA semantics (XKSearch, Xu &
/// Papakonstantinou, SIGMOD 2005): an element qualifies when its subtree
/// contains every keyword and no proper descendant's subtree also does.
/// This is the zero-knowledge entry point of the LotusX workflow — a user
/// can type plain words first, inspect which elements connect them, and
/// then refine the hit's structure into a twig on the canvas.
///
/// Keywords are tokenized like indexed text (lowercase alphanumerics).
/// Returns InvalidArgument when no keyword survives tokenization; an
/// unknown keyword yields an empty hit list.
///
/// Hits are scored by keyword rarity (summed IDF) damped by subtree size
/// (a tighter connection is worth more), best first.
StatusOr<std::vector<KeywordHit>> SlcaSearch(
    const index::IndexedDocument& indexed, std::string_view keywords,
    const KeywordSearchOptions& options = {});

}  // namespace lotusx::keyword

#endif  // LOTUSX_KEYWORD_KEYWORD_SEARCH_H_
