#include "keyword/keyword_search.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/string_util.h"

namespace lotusx::keyword {

namespace {

using xml::Document;
using xml::NodeId;

NodeId Lca(const Document& document, NodeId a, NodeId b) {
  int32_t da = document.node(a).depth;
  int32_t db = document.node(b).depth;
  while (da > db) {
    a = document.node(a).parent;
    --da;
  }
  while (db > da) {
    b = document.node(b).parent;
    --db;
  }
  while (a != b) {
    a = document.node(a).parent;
    b = document.node(b).parent;
  }
  return a;
}

/// Closest posting <= v (kInvalidNodeId if none).
NodeId ClosestLeft(std::span<const NodeId> postings, NodeId v) {
  auto it = std::upper_bound(postings.begin(), postings.end(), v);
  if (it == postings.begin()) return xml::kInvalidNodeId;
  return *(it - 1);
}

/// Closest posting >= v (kInvalidNodeId if none).
NodeId ClosestRight(std::span<const NodeId> postings, NodeId v) {
  auto it = std::lower_bound(postings.begin(), postings.end(), v);
  if (it == postings.end()) return xml::kInvalidNodeId;
  return *it;
}

}  // namespace

StatusOr<std::vector<KeywordHit>> SlcaSearch(
    const index::IndexedDocument& indexed, std::string_view keywords,
    const KeywordSearchOptions& options) {
  std::vector<std::string> tokens = TokenizeKeywords(keywords);
  if (tokens.empty()) {
    return Status::InvalidArgument("no searchable keyword in input");
  }
  // Deduplicate tokens (a repeated keyword adds no constraint).
  std::sort(tokens.begin(), tokens.end());
  tokens.erase(std::unique(tokens.begin(), tokens.end()), tokens.end());

  const Document& document = indexed.document();
  const index::TermIndex& terms = indexed.terms();
  // SLCA's closest-left/right probes need random access across each whole
  // list, so decode every keyword's postings up front — one block pass
  // per list, not per probe.
  std::vector<std::vector<NodeId>> decoded;
  decoded.reserve(tokens.size());
  for (const std::string& token : tokens) {
    std::vector<NodeId> postings = terms.DecodePostings(token);
    if (postings.empty()) return std::vector<KeywordHit>{};
    decoded.push_back(std::move(postings));
  }
  std::vector<std::span<const NodeId>> lists;
  lists.reserve(decoded.size());
  for (const std::vector<NodeId>& postings : decoded) {
    lists.emplace_back(postings);
  }
  // Drive the scan from the rarest keyword (XKSearch's indexed lookup
  // eager strategy): every SLCA contains one of its occurrences.
  size_t smallest = 0;
  for (size_t i = 1; i < lists.size(); ++i) {
    if (lists[i].size() < lists[smallest].size()) smallest = i;
  }

  struct Candidate {
    NodeId node;
    std::vector<NodeId> witnesses;  // aligned with `tokens`
  };
  std::vector<Candidate> candidates;
  for (NodeId v : lists[smallest]) {
    // Per-list anchor: the deeper of lca(v, closest-left), lca(v,
    // closest-right). All anchors are ancestors-or-self of v, hence form
    // a chain; the shallowest anchor covers one witness of every list.
    Candidate candidate;
    candidate.node = v;
    candidate.witnesses.assign(tokens.size(), xml::kInvalidNodeId);
    candidate.witnesses[smallest] = v;
    int32_t best_depth = document.node(v).depth;
    for (size_t i = 0; i < lists.size(); ++i) {
      if (i == smallest) continue;
      NodeId left = ClosestLeft(lists[i], v);
      NodeId right = ClosestRight(lists[i], v);
      NodeId anchor = xml::kInvalidNodeId;
      NodeId witness = xml::kInvalidNodeId;
      if (left != xml::kInvalidNodeId) {
        anchor = Lca(document, v, left);
        witness = left;
      }
      if (right != xml::kInvalidNodeId) {
        NodeId right_anchor = Lca(document, v, right);
        if (anchor == xml::kInvalidNodeId ||
            document.node(right_anchor).depth >
                document.node(anchor).depth) {
          anchor = right_anchor;
          witness = right;
        }
      }
      DCHECK(anchor != xml::kInvalidNodeId);
      candidate.witnesses[i] = witness;
      if (document.node(anchor).depth < best_depth) {
        best_depth = document.node(anchor).depth;
        candidate.node = anchor;
      }
    }
    candidates.push_back(std::move(candidate));
  }

  // Keep the *smallest* LCAs: drop a candidate when another candidate
  // lies strictly inside its subtree. Candidates sorted by preorder rank;
  // by the interval property the immediate next distinct candidate is
  // inside iff any is.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.node < b.node;
            });
  candidates.erase(std::unique(candidates.begin(), candidates.end(),
                               [](const Candidate& a, const Candidate& b) {
                                 return a.node == b.node;
                               }),
                   candidates.end());
  std::vector<Candidate> slcas;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i + 1 < candidates.size() &&
        document.IsAncestor(candidates[i].node, candidates[i + 1].node)) {
      continue;  // a smaller LCA exists inside
    }
    slcas.push_back(std::move(candidates[i]));
  }

  // Score: summed keyword rarity, damped by how large the connecting
  // subtree is (tight connections rank first).
  double n = std::max<uint32_t>(terms.num_value_nodes(), 1);
  double idf_sum = 0;
  for (const std::string& token : tokens) {
    idf_sum += std::log(1.0 + n / terms.DocFrequency(token));
  }
  std::vector<KeywordHit> hits;
  hits.reserve(slcas.size());
  for (Candidate& candidate : slcas) {
    KeywordHit hit;
    hit.node = candidate.node;
    hit.witnesses = std::move(candidate.witnesses);
    double subtree_size =
        document.node(hit.node).subtree_end - hit.node + 1;
    hit.score = idf_sum / (1.0 + std::log(subtree_size));
    hits.push_back(std::move(hit));
  }
  std::sort(hits.begin(), hits.end(),
            [](const KeywordHit& a, const KeywordHit& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.node < b.node;
            });
  if (hits.size() > options.limit) hits.resize(options.limit);
  return hits;
}

}  // namespace lotusx::keyword
