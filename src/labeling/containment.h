#ifndef LOTUSX_LABELING_CONTAINMENT_H_
#define LOTUSX_LABELING_CONTAINMENT_H_

#include <cstdint>
#include <vector>

#include "xml/dom.h"

namespace lotusx::labeling {

/// Region (containment) label: the classic (start, end, level) interval
/// encoding. `start` is the node's preorder rank, `end` the largest
/// preorder rank in its subtree, `level` its depth. Structural
/// relationships reduce to interval containment, which is what TwigStack
/// and the binary structural joins operate on.
struct ContainmentLabel {
  int32_t start = 0;
  int32_t end = 0;
  int32_t level = 0;

  friend bool operator==(const ContainmentLabel&,
                         const ContainmentLabel&) = default;
};

/// a proper-ancestor-of b.
inline bool IsAncestor(const ContainmentLabel& a, const ContainmentLabel& b) {
  return a.start < b.start && b.end <= a.end;
}

/// a parent-of b.
inline bool IsParent(const ContainmentLabel& a, const ContainmentLabel& b) {
  return IsAncestor(a, b) && a.level + 1 == b.level;
}

/// Document-order comparison (preorder rank).
inline bool Precedes(const ContainmentLabel& a, const ContainmentLabel& b) {
  return a.start < b.start;
}

/// Per-document containment label table, indexed by NodeId.
class ContainmentLabels {
 public:
  /// Builds labels for every node of a finalized document.
  static ContainmentLabels Build(const xml::Document& document);

  const ContainmentLabel& label(xml::NodeId id) const {
    return labels_[static_cast<size_t>(id)];
  }
  size_t size() const { return labels_.size(); }
  size_t MemoryUsage() const {
    return labels_.capacity() * sizeof(ContainmentLabel);
  }

 private:
  std::vector<ContainmentLabel> labels_;
};

}  // namespace lotusx::labeling

#endif  // LOTUSX_LABELING_CONTAINMENT_H_
