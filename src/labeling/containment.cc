#include "labeling/containment.h"

namespace lotusx::labeling {

ContainmentLabels ContainmentLabels::Build(const xml::Document& document) {
  CHECK(document.finalized());
  ContainmentLabels result;
  result.labels_.resize(static_cast<size_t>(document.num_nodes()));
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    result.labels_[static_cast<size_t>(id)] = ContainmentLabel{
        .start = id, .end = node.subtree_end, .level = node.depth};
  }
  return result;
}

}  // namespace lotusx::labeling
