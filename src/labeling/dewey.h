#ifndef LOTUSX_LABELING_DEWEY_H_
#define LOTUSX_LABELING_DEWEY_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace lotusx::labeling {

/// A Dewey label is the sequence of per-level components on the path from
/// the root (exclusive) to a node; the root's label is empty. Views are
/// spans into a flat per-document store (DeweyStore).
using DeweyView = std::span<const int32_t>;

/// True when `a` is a proper ancestor of `b`: a is a proper prefix of b.
bool IsAncestorLabel(DeweyView a, DeweyView b);

/// True when `a` is the parent of `b`.
bool IsParentLabel(DeweyView a, DeweyView b);

/// Document-order comparison: negative / 0 / positive like strcmp. A
/// proper prefix precedes its extensions (ancestors come first in
/// document order).
int CompareLabels(DeweyView a, DeweyView b);

/// Number of leading components shared by `a` and `b` — the label length
/// of their lowest common ancestor.
size_t CommonPrefixLength(DeweyView a, DeweyView b);

/// "1.3.0" rendering for debugging and EXPLAIN output; "<root>" for empty.
std::string LabelToString(DeweyView label);

/// Flat storage of one label per document node.
class DeweyStore {
 public:
  /// Ordinal Dewey: the i-th child (counting all node kinds) gets
  /// component i.
  static DeweyStore Build(const xml::Document& document);

  DeweyView label(xml::NodeId id) const {
    size_t i = static_cast<size_t>(id);
    return DeweyView(components_).subspan(
        static_cast<size_t>(offsets_[i]),
        static_cast<size_t>(offsets_[i + 1] - offsets_[i]));
  }
  size_t size() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  size_t MemoryUsage() const {
    return offsets_.capacity() * sizeof(int32_t) +
           components_.capacity() * sizeof(int32_t);
  }

 protected:
  friend class ExtendedDeweyStore;
  std::vector<int32_t> offsets_;     // size num_nodes + 1
  std::vector<int32_t> components_;  // concatenated labels
};

}  // namespace lotusx::labeling

#endif  // LOTUSX_LABELING_DEWEY_H_
