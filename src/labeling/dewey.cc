#include "labeling/dewey.h"

#include <algorithm>

namespace lotusx::labeling {

bool IsAncestorLabel(DeweyView a, DeweyView b) {
  if (a.size() >= b.size()) return false;
  return std::equal(a.begin(), a.end(), b.begin());
}

bool IsParentLabel(DeweyView a, DeweyView b) {
  return a.size() + 1 == b.size() && IsAncestorLabel(a, b);
}

int CompareLabels(DeweyView a, DeweyView b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  if (a.size() == b.size()) return 0;
  return a.size() < b.size() ? -1 : 1;
}

size_t CommonPrefixLength(DeweyView a, DeweyView b) {
  size_t n = std::min(a.size(), b.size());
  size_t i = 0;
  while (i < n && a[i] == b[i]) ++i;
  return i;
}

std::string LabelToString(DeweyView label) {
  if (label.empty()) return "<root>";
  std::string out;
  for (size_t i = 0; i < label.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(label[i]);
  }
  return out;
}

DeweyStore DeweyStore::Build(const xml::Document& document) {
  CHECK(document.finalized());
  DeweyStore store;
  int32_t n = document.num_nodes();
  store.offsets_.resize(static_cast<size_t>(n) + 1, 0);
  // First pass: each node's label length equals its depth.
  int64_t total = 0;
  for (xml::NodeId id = 0; id < n; ++id) {
    store.offsets_[static_cast<size_t>(id)] = static_cast<int32_t>(total);
    total += document.node(id).depth;
  }
  store.offsets_[static_cast<size_t>(n)] = static_cast<int32_t>(total);
  store.components_.resize(static_cast<size_t>(total));
  // Second pass: child ordinal = position among all siblings; the parent's
  // label is already complete because parents precede children.
  std::vector<int32_t> next_ordinal(static_cast<size_t>(n), 0);
  for (xml::NodeId id = 1; id < n; ++id) {
    xml::NodeId parent = document.node(id).parent;
    int32_t ordinal = next_ordinal[static_cast<size_t>(parent)]++;
    int32_t offset = store.offsets_[static_cast<size_t>(id)];
    int32_t parent_offset = store.offsets_[static_cast<size_t>(parent)];
    int32_t parent_len = document.node(parent).depth;
    std::copy(store.components_.begin() + parent_offset,
              store.components_.begin() + parent_offset + parent_len,
              store.components_.begin() + offset);
    store.components_[static_cast<size_t>(offset + parent_len)] = ordinal;
  }
  return store;
}

}  // namespace lotusx::labeling
