#include "labeling/extended_dewey.h"

#include <algorithm>
#include <unordered_set>

namespace lotusx::labeling {

namespace {

XTagId NodeXTag(const xml::Document& document, xml::NodeId id,
                XTagId text_tag) {
  const xml::Document::Node& node = document.node(id);
  return node.kind == xml::NodeKind::kText ? text_tag : node.tag;
}

}  // namespace

TagTransducer TagTransducer::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TagTransducer transducer;
  transducer.text_tag_ = document.num_tags();
  size_t universe = static_cast<size_t>(document.num_tags()) + 1;
  transducer.children_.resize(universe);
  transducer.child_index_.resize(universe);

  // Collect distinct child tags per parent tag.
  std::vector<std::unordered_set<XTagId>> seen(universe);
  for (xml::NodeId id = 1; id < document.num_nodes(); ++id) {
    xml::NodeId parent = document.node(id).parent;
    XTagId parent_tag = NodeXTag(document, parent, transducer.text_tag_);
    XTagId child_tag = NodeXTag(document, id, transducer.text_tag_);
    if (seen[static_cast<size_t>(parent_tag)].insert(child_tag).second) {
      transducer.children_[static_cast<size_t>(parent_tag)].push_back(
          child_tag);
    }
  }
  // Deterministic order (ascending tag id) so decode agrees with encode
  // regardless of document traversal order.
  for (size_t tag = 0; tag < universe; ++tag) {
    std::vector<XTagId>& children = transducer.children_[tag];
    std::sort(children.begin(), children.end());
    for (size_t i = 0; i < children.size(); ++i) {
      transducer.child_index_[tag].emplace(children[i],
                                           static_cast<int32_t>(i));
    }
  }
  return transducer;
}

const std::vector<XTagId>& TagTransducer::ChildTags(XTagId tag) const {
  if (tag < 0 || static_cast<size_t>(tag) >= children_.size()) return empty_;
  return children_[static_cast<size_t>(tag)];
}

int32_t TagTransducer::ChildIndex(XTagId parent, XTagId child) const {
  if (parent < 0 || static_cast<size_t>(parent) >= child_index_.size()) {
    return -1;
  }
  const auto& index = child_index_[static_cast<size_t>(parent)];
  auto it = index.find(child);
  return it == index.end() ? -1 : it->second;
}

size_t TagTransducer::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& v : children_) bytes += v.capacity() * sizeof(XTagId);
  for (const auto& m : child_index_) {
    bytes += m.size() * (sizeof(XTagId) + sizeof(int32_t) + 16);
  }
  return bytes;
}

ExtendedDeweyStore ExtendedDeweyStore::Build(
    const xml::Document& document, const TagTransducer& transducer) {
  CHECK(document.finalized());
  ExtendedDeweyStore result;
  DeweyStore& store = result.store_;
  int32_t n = document.num_nodes();
  store.offsets_.resize(static_cast<size_t>(n) + 1, 0);
  int64_t total = 0;
  for (xml::NodeId id = 0; id < n; ++id) {
    store.offsets_[static_cast<size_t>(id)] = static_cast<int32_t>(total);
    total += document.node(id).depth;
  }
  store.offsets_[static_cast<size_t>(n)] = static_cast<int32_t>(total);
  store.components_.resize(static_cast<size_t>(total));

  // Last component handed out per parent node (-1 before the first child).
  std::vector<int32_t> last_component(static_cast<size_t>(n), -1);
  for (xml::NodeId id = 1; id < n; ++id) {
    xml::NodeId parent = document.node(id).parent;
    XTagId parent_tag = NodeXTag(document, parent, transducer.text_tag());
    XTagId child_tag = NodeXTag(document, id, transducer.text_tag());
    int32_t k =
        static_cast<int32_t>(transducer.ChildTags(parent_tag).size());
    int32_t i = transducer.ChildIndex(parent_tag, child_tag);
    CHECK_GE(i, 0) << "transducer missing edge " << parent_tag << "->"
                   << child_tag;
    // Smallest c > last with c ≡ i (mod k).
    int32_t c = last_component[static_cast<size_t>(parent)] + 1;
    c += ((i - (c % k)) % k + k) % k;
    last_component[static_cast<size_t>(parent)] = c;

    int32_t offset = store.offsets_[static_cast<size_t>(id)];
    int32_t parent_offset = store.offsets_[static_cast<size_t>(parent)];
    int32_t parent_len = document.node(parent).depth;
    std::copy(store.components_.begin() + parent_offset,
              store.components_.begin() + parent_offset + parent_len,
              store.components_.begin() + offset);
    store.components_[static_cast<size_t>(offset + parent_len)] = c;
  }
  return result;
}

std::vector<XTagId> ExtendedDeweyStore::DecodeTagPath(
    const TagTransducer& transducer, XTagId root_tag, DeweyView label) {
  std::vector<XTagId> path;
  DecodeTagPath(transducer, root_tag, label, &path);
  return path;
}

void ExtendedDeweyStore::DecodeTagPath(const TagTransducer& transducer,
                                       XTagId root_tag, DeweyView label,
                                       std::vector<XTagId>* path) {
  path->clear();
  path->reserve(label.size() + 1);
  path->push_back(root_tag);
  XTagId current = root_tag;
  for (int32_t component : label) {
    const std::vector<XTagId>& children = transducer.ChildTags(current);
    CHECK(!children.empty()) << "cannot decode below leaf tag " << current;
    size_t i = static_cast<size_t>(component) % children.size();
    current = children[i];
    path->push_back(current);
  }
}

}  // namespace lotusx::labeling
