#ifndef LOTUSX_LABELING_EXTENDED_DEWEY_H_
#define LOTUSX_LABELING_EXTENDED_DEWEY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "labeling/dewey.h"
#include "xml/dom.h"

namespace lotusx::labeling {

/// Tag identifier in the transducer's universe: document TagIds for
/// elements/attributes plus one synthetic id for text nodes.
using XTagId = int32_t;

/// DTD-like finite-state transducer inferred from the data: for every tag
/// it records the ordered set of child tags observed anywhere in the
/// document. This is the decoding automaton for extended Dewey labels (Lu
/// et al., "TJFast"): a label component modulo the parent's child-tag
/// count identifies the child's tag, so the entire root-to-node *tag path*
/// can be recovered from a node's label alone — the property LotusX's
/// position-aware features exploit.
class TagTransducer {
 public:
  /// Builds the transducer over a finalized document.
  static TagTransducer Build(const xml::Document& document);

  /// Synthetic tag id used for text nodes ("#text").
  XTagId text_tag() const { return text_tag_; }

  /// Ordered (ascending XTagId) child tags observed under `tag`.
  const std::vector<XTagId>& ChildTags(XTagId tag) const;

  /// Index of `child` within ChildTags(parent); -1 when never observed.
  int32_t ChildIndex(XTagId parent, XTagId child) const;

  size_t MemoryUsage() const;

 private:
  XTagId text_tag_ = 0;
  std::vector<std::vector<XTagId>> children_;        // by parent tag
  std::vector<std::unordered_map<XTagId, int32_t>> child_index_;
  std::vector<XTagId> empty_;
};

/// Extended Dewey labels. Component construction (per TJFast): for the
/// j-th labeled child of a node whose tag has k possible child tags, the
/// child with child-tag-index i receives the smallest component c that is
/// (a) larger than the previous sibling's component (or >= 0 for the
/// first) and (b) congruent to i modulo k. Ancestor/descendant and
/// document-order semantics are identical to ordinal Dewey; additionally
/// DecodeTagPath recovers the tag path.
class ExtendedDeweyStore {
 public:
  static ExtendedDeweyStore Build(const xml::Document& document,
                                  const TagTransducer& transducer);

  DeweyView label(xml::NodeId id) const { return store_.label(id); }
  size_t size() const { return store_.size(); }
  size_t MemoryUsage() const { return store_.MemoryUsage(); }

  /// Decodes the tag path (root tag first, the node's own tag last) of the
  /// node carrying `label`. `root_tag` is the document root's tag.
  static std::vector<XTagId> DecodeTagPath(const TagTransducer& transducer,
                                           XTagId root_tag, DeweyView label);

  /// Same, into a caller-owned buffer (cleared first) so tight decode
  /// loops can reuse one allocation across elements.
  static void DecodeTagPath(const TagTransducer& transducer, XTagId root_tag,
                            DeweyView label, std::vector<XTagId>* path);

 private:
  DeweyStore store_;
};

}  // namespace lotusx::labeling

#endif  // LOTUSX_LABELING_EXTENDED_DEWEY_H_
