#ifndef LOTUSX_COMMON_METRICS_H_
#define LOTUSX_COMMON_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/sync.h"

namespace lotusx::metrics {

/// Process-wide observability registry: named counters, gauges, and
/// fixed-bucket latency histograms, cheap enough to leave compiled into
/// every hot path. Writers touch only relaxed atomics (one fetch_add per
/// counter bump); the registry mutex is taken only on first registration
/// and on Snapshot(). Metric objects live for the whole process — Get*
/// pointers never dangle and may be cached in function-local statics at
/// the call site, which is the intended usage pattern:
///
///   static metrics::Counter* searches =
///       metrics::Registry::Default().GetCounter("lotusx_search_total");
///   searches->Increment();
///
/// Naming scheme (docs/DEVELOPMENT.md "Observability"):
///   lotusx_<component>_<quantity>[_total|_usec]{label="value"}
/// Counters end in _total, durations are microseconds (_usec), and the
/// exposition format is the Prometheus text format.

/// Global kill switch for the *instrumentation call sites* (metric
/// objects themselves always record when called). SetEnabled(false) lets
/// the overhead bench price the bare pipeline; returns the previous
/// value. Reading it is one relaxed atomic load.
bool Enabled();
bool SetEnabled(bool enabled);

/// One label pair; labels render inside {} in registration order.
using Label = std::pair<std::string, std::string>;
using Labels = std::vector<Label>;

/// Monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous signed value (queue depths, sizes).
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void ResetForTest() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time copy of one histogram; bucket i counts observations
/// <= bounds[i], with one extra overflow (+Inf) bucket at the end.
struct HistogramSnapshot {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;  // bounds.size() + 1 entries
  uint64_t count = 0;
  double sum = 0;

  /// Bucket-interpolated quantile (q in [0, 1]); 0 when empty. Values in
  /// the overflow bucket report the largest finite bound.
  double Quantile(double q) const;
  double Mean() const { return count == 0 ? 0 : sum / static_cast<double>(count); }
};

/// Fixed-bucket histogram. Observe() is wait-free: one relaxed fetch_add
/// into the bucket, a CAS-loop add into the sum, and a release
/// fetch_add of the count — Snapshot() reads the count with acquire
/// ordering first, so in any snapshot `sum` and the bucket totals cover
/// at least `count` complete observations (no torn values).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);
  HistogramSnapshot Snapshot() const;
  uint64_t count() const { return count_.load(std::memory_order_acquire); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  void ResetForTest();

  /// Default latency ladder in microseconds: 1us .. 10s, roughly
  /// 1-2.5-5 per decade.
  static const std::vector<double>& LatencyBucketsUsec();

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> counts_;
  std::atomic<double> sum_{0};
  std::atomic<uint64_t> count_{0};
};

/// Everything the registry knows at one instant, in deterministic
/// (lexicographic) order; ToText() renders the Prometheus text format
/// the STATS protocol verb returns.
struct MetricsSnapshot {
  struct CounterValue {
    std::string name;
    Labels labels;
    uint64_t value = 0;
  };
  struct GaugeValue {
    std::string name;
    Labels labels;
    int64_t value = 0;
  };
  struct HistogramValue {
    std::string name;
    Labels labels;
    HistogramSnapshot histogram;
  };

  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  std::string ToText() const;

  /// Sum of one counter family across all label sets.
  uint64_t CounterTotal(std::string_view name) const;
  /// Total observation count of one histogram family across label sets.
  uint64_t HistogramCountTotal(std::string_view name) const;
  /// First gauge with this family name, or `fallback` when absent.
  int64_t GaugeValueOr(std::string_view name, int64_t fallback = 0) const;
};

/// Named metric registry. Get* registers on first use and returns the
/// existing metric on every later call with the same (name, labels) —
/// the returned pointer is stable for the registry's lifetime.
/// Registry::Default() is the process-wide instance (never destroyed);
/// tests may build private registries.
///
/// Locking protocol (register-then-lock-free-bump): `mu_` is held only
/// while registering a metric or copying a snapshot; the returned
/// Counter/Gauge/Histogram pointers are bumped lock-free afterwards.
/// Every public method is LOTUSX_EXCLUDES(mu_): none may be called
/// while the caller already interacts with the registry lock — in
/// particular a metric factory must never call back into Get*.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  static Registry& Default();

  Counter* GetCounter(std::string_view name, const Labels& labels = {})
      LOTUSX_EXCLUDES(mu_);
  Gauge* GetGauge(std::string_view name, const Labels& labels = {})
      LOTUSX_EXCLUDES(mu_);
  /// `bounds` is consulted only on first registration of (name, labels).
  Histogram* GetHistogram(std::string_view name, const Labels& labels = {},
                          const std::vector<double>& bounds =
                              Histogram::LatencyBucketsUsec())
      LOTUSX_EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const LOTUSX_EXCLUDES(mu_);
  /// Snapshot().ToText() — the STATS exposition.
  std::string RenderText() const LOTUSX_EXCLUDES(mu_) {
    return Snapshot().ToText();
  }

  /// Zeroes every registered metric (they stay registered, so cached
  /// pointers remain valid). Test isolation only.
  void ResetForTest() LOTUSX_EXCLUDES(mu_);

 private:
  template <typename Metric>
  struct Entry {
    std::string name;
    Labels labels;
    std::unique_ptr<Metric> metric;
  };

  template <typename Metric>
  using EntryMap = std::map<std::string, std::unique_ptr<Entry<Metric>>>;

  /// Registration slow path shared by the three Get*: finds `id` in
  /// `entries` or default-constructs Metric{args...} under the lock.
  template <typename Metric, typename... Args>
  Metric* FindOrCreateLocked(EntryMap<Metric>& entries, const std::string& id,
                             std::string_view name, const Labels& labels,
                             Args&&... args) LOTUSX_REQUIRES(mu_);

  mutable Mutex mu_;
  // Keyed by the rendered `name{labels}` id; std::map keeps the
  // exposition deterministically sorted. The map structure is guarded;
  // the Metric objects pointed to are internally atomic and are bumped
  // without the lock (that is the point of the registry).
  EntryMap<Counter> counters_ LOTUSX_GUARDED_BY(mu_);
  EntryMap<Gauge> gauges_ LOTUSX_GUARDED_BY(mu_);
  EntryMap<Histogram> histograms_ LOTUSX_GUARDED_BY(mu_);
};

}  // namespace lotusx::metrics

#endif  // LOTUSX_COMMON_METRICS_H_
