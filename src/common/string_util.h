#ifndef LOTUSX_COMMON_STRING_UTIL_H_
#define LOTUSX_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace lotusx {

/// Splits `text` on every occurrence of `sep`. Empty pieces are kept, so
/// Split("a,,b", ',') == {"a", "", "b"} and Split("", ',') == {""}.
std::vector<std::string> Split(std::string_view text, char sep);

/// Splits and drops empty pieces: SplitSkipEmpty("a,,b", ',') == {"a","b"}.
std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII-only lowercase copy (XML tag matching in this library is
/// case-sensitive; lowering is used only for keyword normalization).
std::string ToLowerAscii(std::string_view text);

/// Trims ASCII whitespace (space, \t, \r, \n) from both ends.
std::string_view TrimAscii(std::string_view text);

bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);

/// True for ASCII whitespace as defined by the XML spec (space \t \r \n).
inline bool IsXmlWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

/// Breaks free text into lowercase alphanumeric keyword tokens; everything
/// else is a separator. "Data-Engineering 2012" -> {"data","engineering",
/// "2012"}. This is the tokenizer used by the term index and completion.
std::vector<std::string> TokenizeKeywords(std::string_view text);

/// Case-insensitive (ASCII) prefix test used by auto-completion.
bool PrefixMatchesAsciiCaseInsensitive(std::string_view candidate,
                                       std::string_view prefix);

/// Edit (Levenshtein) distance; used by rewrite's tag-substitution rule.
/// Cost 1 per insert/delete/substitute.
int EditDistance(std::string_view a, std::string_view b);

}  // namespace lotusx

#endif  // LOTUSX_COMMON_STRING_UTIL_H_
