#ifndef LOTUSX_COMMON_LOGGING_H_
#define LOTUSX_COMMON_LOGGING_H_

#include <cstdlib>
#include <functional>
#include <iostream>
#include <optional>
#include <sstream>
#include <string_view>

namespace lotusx {

enum class LogSeverity { kInfo = 0, kWarning = 1, kError = 2, kFatal = 3 };

namespace internal_logging {

/// Stream-style message collector. The entire line — severity,
/// timestamp, thread id, source location, message, trailing newline —
/// is formatted into one buffer first and flushed with a single write
/// on destruction, so concurrent loggers never interleave mid-line.
/// Aborts the process for kFatal messages (used by CHECK failures).
class LogMessage {
 public:
  LogMessage(LogSeverity severity, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogSeverity severity_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when a log statement is compiled out.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style helper: `&` binds looser than `<<`, so the entire streamed
/// chain is evaluated before being discarded as void inside the ternary
/// CHECK expansion.
class Voidify {
 public:
  void operator&(std::ostream&) {}
  void operator&(NullStream&) {}
};

inline NullStream& GetNullStream() {
  static NullStream stream;
  return stream;
}

}  // namespace internal_logging

/// Minimum severity that actually reaches stderr (default: kWarning so that
/// tests and benchmarks stay quiet). Returns the previous threshold.
LogSeverity SetMinLogSeverity(LogSeverity severity);
LogSeverity MinLogSeverity();

/// Parses a severity name ("info", "warning"/"warn", "error", "fatal",
/// case-insensitive) or numeric value ("0".."3"); nullopt on anything
/// else.
std::optional<LogSeverity> ParseLogSeverity(std::string_view text);

/// Applies the LOTUSX_MIN_LOG_SEVERITY environment variable (parsed with
/// ParseLogSeverity; unset or unparsable leaves the threshold alone).
/// Runs automatically before the first log line / threshold query, so
/// `LOTUSX_MIN_LOG_SEVERITY=info bin` just works; exposed for tests and
/// for re-reading after setenv.
void InitLogSeverityFromEnv();

/// Redirects formatted log lines (newline included) to `sink` instead of
/// stderr; pass nullptr to restore stderr. Returns the previous sink.
/// Used by tests to capture output; the sink is called under the global
/// logging mutex, so it needs no synchronization of its own but must not
/// log.
using LogSink = std::function<void(std::string_view)>;
LogSink SetLogSinkForTest(LogSink sink);

}  // namespace lotusx

#define LOTUSX_LOG(severity)                                          \
  ::lotusx::internal_logging::LogMessage(                             \
      ::lotusx::LogSeverity::k##severity, __FILE__, __LINE__)         \
      .stream()

/// Aborts with a message when `cond` is false. Active in all build modes —
/// index and join invariants are cheap relative to the work they guard.
#define CHECK(cond)                                                   \
  (cond) ? (void)0                                                    \
         : ::lotusx::internal_logging::Voidify() &                    \
               ::lotusx::internal_logging::LogMessage(                \
                   ::lotusx::LogSeverity::kFatal, __FILE__, __LINE__) \
                       .stream()                                      \
                   << "Check failed: " #cond " "

#define CHECK_EQ(a, b) CHECK((a) == (b))
#define CHECK_NE(a, b) CHECK((a) != (b))
#define CHECK_LT(a, b) CHECK((a) < (b))
#define CHECK_LE(a, b) CHECK((a) <= (b))
#define CHECK_GT(a, b) CHECK((a) > (b))
#define CHECK_GE(a, b) CHECK((a) >= (b))

#ifndef NDEBUG
#define DCHECK(cond) CHECK(cond)
#else
// Release builds: `cond` stays syntactically checked (inside sizeof, never
// evaluated) and the streamed message compiles against NullStream.
#define DCHECK(cond)                                \
  true ? (void)sizeof((cond) ? 1 : 0)               \
       : ::lotusx::internal_logging::Voidify() &    \
             ::lotusx::internal_logging::GetNullStream()
#endif

#endif  // LOTUSX_COMMON_LOGGING_H_
