#include "common/profiler.h"

#include <cxxabi.h>
#include <dlfcn.h>
#include <execinfo.h>
#include <pthread.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <thread>
#include <unordered_map>

#include "common/sync.h"

namespace lotusx::prof {

namespace {

/// Sample ring dimensions: 4096 stacks of 48 frames bounds the ring at
/// ~1.6 MiB and caps a 10 s @ 99 Hz profile with 4x headroom over the
/// expected ~1000 samples per busy thread.
constexpr uint32_t kMaxSamples = 4096;
constexpr int kMaxDepth = 48;

struct RawSample {
  int32_t depth = 0;
  int32_t tid = 0;
  void* pcs[kMaxDepth];
};

/// The ring is allocated on first Collect() (never in signal context)
/// and leaked: a handler racing process shutdown must never observe a
/// freed ring.
RawSample* g_ring = nullptr;

std::atomic<bool> g_armed{false};
std::atomic<uint32_t> g_sample_count{0};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint64_t> g_signals{0};
/// Single-flight latch for Collect(); atomic (not a Mutex) so the
/// "busy" answer never blocks.
std::atomic<bool> g_collecting{false};

/// Registered threads for wall-mode delivery and stack naming.
struct RegisteredThread {
  pthread_t handle;
  int32_t tid;
  std::string name;
};

struct ThreadRegistry {
  Mutex mu;
  std::vector<RegisteredThread> threads LOTUSX_GUARDED_BY(mu);
};

ThreadRegistry& Registry() {
  static ThreadRegistry* registry = new ThreadRegistry();  // leaked, like
  return *registry;  // the ring: late unregister must never see a corpse
}

int32_t CurrentTid() {
  return static_cast<int32_t>(::syscall(SYS_gettid));
}

/// SIGPROF handler: one fetch_add to claim a slot, one backtrace() into
/// it. No locks, no allocation, no library calls beyond backtrace.
// SAFETY: backtrace(3) is not on the POSIX async-signal-safe list, but
// its glibc implementation only walks frame tables once libgcc's
// unwinder is resident — Collect() primes it with a throwaway call
// before installing this handler, so the dlopen/malloc path cannot run
// in signal context. This is the standard technique of in-process
// samplers (gperftools, absl symbolizer).
void ProfileSignalHandler(int /*signum*/) {
  g_signals.fetch_add(1, std::memory_order_relaxed);
  if (!g_armed.load(std::memory_order_acquire)) return;
  const uint32_t index =
      g_sample_count.fetch_add(1, std::memory_order_relaxed);
  if (index >= kMaxSamples) {
    g_dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RawSample& sample = g_ring[index];
  sample.tid = CurrentTid();
  sample.depth = ::backtrace(sample.pcs, kMaxDepth);
}

/// Best-effort frame name: dynamic symbol + demangle, else the raw
/// address. Executables that want readable engine frames link with
/// ENABLE_EXPORTS (-rdynamic) so dladdr can see their static symbols.
std::string SymbolizeFrame(void* pc) {
  Dl_info info;
  if (::dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
    int demangle_status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr,
                                          &demangle_status);
    if (demangle_status == 0 && demangled != nullptr) {
      std::string name(demangled);
      std::free(demangled);
      return name;
    }
    if (demangled != nullptr) std::free(demangled);
    return info.dli_sname;
  }
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%llx",
                static_cast<unsigned long long>(
                    reinterpret_cast<uintptr_t>(pc)));
  return buffer;
}

std::string FormatFixed(double value, int digits = 3) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void SleepUntil(std::chrono::steady_clock::time_point deadline) {
  // Chunked so an interrupted nanosleep (SIGPROF lands on this thread
  // too under CPU mode) re-checks the clock instead of trusting the
  // remaining-time result.
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const auto remaining = deadline - now;
    std::this_thread::sleep_for(
        std::min<std::chrono::steady_clock::duration>(
            remaining, std::chrono::milliseconds(5)));
  }
}

}  // namespace

void RegisterCurrentThread(std::string_view name) {
  ThreadRegistry& registry = Registry();
  MutexLock lock(registry.mu);
  const int32_t tid = CurrentTid();
  for (RegisteredThread& thread : registry.threads) {
    if (thread.tid == tid) {
      thread.name = std::string(name);
      return;
    }
  }
  registry.threads.push_back(
      RegisteredThread{::pthread_self(), tid, std::string(name)});
}

void UnregisterCurrentThread() {
  ThreadRegistry& registry = Registry();
  MutexLock lock(registry.mu);
  const int32_t tid = CurrentTid();
  registry.threads.erase(
      std::remove_if(registry.threads.begin(), registry.threads.end(),
                     [tid](const RegisteredThread& thread) {
                       return thread.tid == tid;
                     }),
      registry.threads.end());
}

std::string_view ModeName(Mode mode) {
  switch (mode) {
    case Mode::kCpu:
      return "cpu";
    case Mode::kWall:
      return "wall";
  }
  return "?";
}

uint64_t SignalsDelivered() {
  return g_signals.load(std::memory_order_relaxed);
}

bool Busy() { return g_collecting.load(std::memory_order_relaxed); }

StatusOr<ProfileResult> Collect(Mode mode, double duration_ms, int hz) {
  duration_ms = std::clamp(duration_ms, 10.0, 10'000.0);
  hz = std::clamp(hz, 1, 1000);

  if (g_collecting.exchange(true, std::memory_order_acq_rel)) {
    return Status::FailedPrecondition(
        "a profile is already being collected");
  }

  if (g_ring == nullptr) {
    g_ring = new RawSample[kMaxSamples];  // leaked by design, see decl
  }
  // Prime the unwinder outside signal context (loads libgcc once).
  void* prime[2];
  ::backtrace(prime, 2);

  // Names snapshot BEFORE arming: reading the registry during
  // collection would lock against threads being sampled.
  std::unordered_map<int32_t, std::string> names;
  std::vector<RegisteredThread> wall_targets;
  {
    ThreadRegistry& registry = Registry();
    MutexLock lock(registry.mu);
    for (const RegisteredThread& thread : registry.threads) {
      names[thread.tid] = thread.name;
      wall_targets.push_back(thread);
    }
  }
  if (mode == Mode::kWall && wall_targets.empty()) {
    g_collecting.store(false, std::memory_order_release);
    return Status::FailedPrecondition(
        "wall profile requires registered threads "
        "(prof::RegisterCurrentThread)");
  }

  g_sample_count.store(0, std::memory_order_relaxed);
  g_dropped.store(0, std::memory_order_relaxed);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = &ProfileSignalHandler;
  ::sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESTART;
  struct sigaction previous;
  ::sigaction(SIGPROF, &action, &previous);
  g_armed.store(true, std::memory_order_release);

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::microseconds(static_cast<int64_t>(duration_ms * 1000.0));
  const int64_t period_us = std::max<int64_t>(1'000'000 / hz, 100);

  std::thread ticker;
  if (mode == Mode::kCpu) {
    // Process CPU-time timer: SIGPROF lands on whichever thread is on
    // a core when the tick fires — proportional attribution for free.
    struct itimerval timer;
    timer.it_interval.tv_sec = static_cast<time_t>(period_us / 1'000'000);
    timer.it_interval.tv_usec =
        static_cast<suseconds_t>(period_us % 1'000'000);
    timer.it_value = timer.it_interval;
    ::setitimer(ITIMER_PROF, &timer, nullptr);
    SleepUntil(deadline);
    struct itimerval off;
    std::memset(&off, 0, sizeof(off));
    ::setitimer(ITIMER_PROF, &off, nullptr);
  } else {
    // Wall mode: tick every registered thread whether running or
    // blocked. Targets must outlive the window (workers register via
    // RAII and outlive any in-flight profile by construction).
    ticker = std::thread([&wall_targets, deadline, period_us] {
      while (std::chrono::steady_clock::now() < deadline) {
        for (const RegisteredThread& thread : wall_targets) {
          ::pthread_kill(thread.handle, SIGPROF);
        }
        std::this_thread::sleep_for(std::chrono::microseconds(period_us));
      }
    });
    SleepUntil(deadline);
    ticker.join();
  }

  g_armed.store(false, std::memory_order_release);
  // Discard any still-pending tick, then detach the handler. SIG_IGN
  // (not SIG_DFL: default SIGPROF action kills the process) makes the
  // disarmed profiler truly quiescent — zero handler invocations until
  // the next Collect().
  struct sigaction ignore;
  std::memset(&ignore, 0, sizeof(ignore));
  ignore.sa_handler = SIG_IGN;
  ::sigemptyset(&ignore.sa_mask);
  ::sigaction(SIGPROF, &ignore, nullptr);

  ProfileResult result;
  result.mode = mode;
  result.duration_ms = duration_ms;
  result.frequency_hz = hz;
  const uint32_t raw_count =
      std::min(g_sample_count.load(std::memory_order_relaxed), kMaxSamples);
  result.dropped = g_dropped.load(std::memory_order_relaxed);

  // Fold: symbolize each distinct pc once, then collapse identical
  // stacks. backtrace() reports innermost-first; collapsed format wants
  // root-first with the leaf last.
  std::unordered_map<void*, std::string> symbols;
  auto frame_name = [&symbols](void* pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, SymbolizeFrame(pc)).first;
    }
    return it->second;
  };
  std::map<std::string, uint64_t> folded;
  for (uint32_t i = 0; i < raw_count; ++i) {
    const RawSample& sample = g_ring[i];
    if (sample.depth <= 0) {
      ++result.dropped;
      continue;
    }
    // Skip the profiler's own frames: the handler and the kernel's
    // signal trampoline sit innermost on every stack.
    int first = 0;
    for (int f = 0; f < sample.depth; ++f) {
      const std::string& name = frame_name(sample.pcs[f]);
      if (name.find("ProfileSignalHandler") != std::string::npos ||
          name.find("__restore_rt") != std::string::npos) {
        first = f + 1;
      }
    }
    std::string stack;
    auto name_it = names.find(sample.tid);
    stack = name_it != names.end()
                ? name_it->second
                : "thread-" + std::to_string(sample.tid);
    for (int f = sample.depth - 1; f >= first; --f) {
      stack += ';';
      stack += frame_name(sample.pcs[f]);
    }
    ++result.samples;
    ++folded[stack];
  }
  result.collapsed.assign(folded.begin(), folded.end());
  std::sort(result.collapsed.begin(), result.collapsed.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  g_collecting.store(false, std::memory_order_release);
  return result;
}

std::string RenderCollapsed(const ProfileResult& result) {
  std::string out;
  for (const auto& [stack, count] : result.collapsed) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::string RenderProfileJson(const ProfileResult& result) {
  std::string out = "{\"mode\":\"";
  out += ModeName(result.mode);
  out += "\",\"duration_ms\":" + FormatFixed(result.duration_ms, 1);
  out += ",\"frequency_hz\":" + std::to_string(result.frequency_hz);
  out += ",\"samples\":" + std::to_string(result.samples);
  out += ",\"dropped\":" + std::to_string(result.dropped);
  out += ",\"stacks\":[";
  bool first = true;
  for (const auto& [stack, count] : result.collapsed) {
    if (!first) out += ',';
    first = false;
    out += "{\"stack\":\"";
    AppendJsonEscaped(&out, stack);
    out += "\",\"count\":" + std::to_string(count) + "}";
  }
  out += "]}";
  return out;
}

}  // namespace lotusx::prof
