#ifndef LOTUSX_COMMON_STATUS_H_
#define LOTUSX_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace lotusx {

/// Canonical error space for the whole library (RocksDB/Abseil style).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIOError,
  kUnimplemented,
  kInternal,
};

/// Returns a stable human-readable name ("InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Value-type status carried through every fallible API. The library does
/// not use exceptions; constructors that can fail are replaced by factory
/// functions returning Status or StatusOr<T>.
class Status {
 public:
  /// Default-constructed status is OK.
  Status() : code_(StatusCode::kOk) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string_view msg) {
    return Status(StatusCode::kInvalidArgument, msg);
  }
  static Status NotFound(std::string_view msg) {
    return Status(StatusCode::kNotFound, msg);
  }
  static Status AlreadyExists(std::string_view msg) {
    return Status(StatusCode::kAlreadyExists, msg);
  }
  static Status OutOfRange(std::string_view msg) {
    return Status(StatusCode::kOutOfRange, msg);
  }
  static Status FailedPrecondition(std::string_view msg) {
    return Status(StatusCode::kFailedPrecondition, msg);
  }
  static Status Corruption(std::string_view msg) {
    return Status(StatusCode::kCorruption, msg);
  }
  static Status IOError(std::string_view msg) {
    return Status(StatusCode::kIOError, msg);
  }
  static Status Unimplemented(std::string_view msg) {
    return Status(StatusCode::kUnimplemented, msg);
  }
  static Status Internal(std::string_view msg) {
    return Status(StatusCode::kInternal, msg);
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsInvalidArgument() const {
    return code_ == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }
  bool IsIOError() const { return code_ == StatusCode::kIOError; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  Status(StatusCode code, std::string_view msg)
      : code_(code), message_(msg) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace lotusx

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if not OK.
#define LOTUSX_RETURN_IF_ERROR(expr)                \
  do {                                              \
    ::lotusx::Status _status = (expr);              \
    if (!_status.ok()) return _status;              \
  } while (0)

#endif  // LOTUSX_COMMON_STATUS_H_
