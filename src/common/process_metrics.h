#ifndef LOTUSX_COMMON_PROCESS_METRICS_H_
#define LOTUSX_COMMON_PROCESS_METRICS_H_

#include <string_view>

namespace lotusx::metrics {

/// Refreshes the process-level gauges in the default registry:
///
///   lotusx_process_uptime_seconds   since lotusx_common was loaded
///   lotusx_process_rss_bytes        resident set (/proc/self/statm)
///   lotusx_process_open_fds         open descriptors (/proc/self/fd)
///   lotusx_build_info{version,git_sha} == 1 (constant)
///
/// Gauges are point-in-time, so the scrape paths (the STATS verb and
/// the admin plane's /metrics) call this just before rendering instead
/// of running a background updater thread. On platforms without
/// procfs, rss/fd report 0. Cheap enough to call per scrape.
void UpdateProcessMetrics();

/// Build identity baked in at compile time ("unknown" when the git SHA
/// was unavailable at configure time).
std::string_view BuildVersion();
std::string_view BuildGitSha();

/// Seconds since lotusx_common was loaded (the same clock the
/// lotusx_process_uptime_seconds gauge reports). Works even when
/// metrics are disabled, so /healthz can always report uptime.
double ProcessUptimeSeconds();

}  // namespace lotusx::metrics

#endif  // LOTUSX_COMMON_PROCESS_METRICS_H_
