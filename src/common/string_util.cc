#include "common/string_util.h"

#include <algorithm>
#include <cctype>

namespace lotusx {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      return pieces;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitSkipEmpty(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  for (std::string& piece : Split(text, sep)) {
    if (!piece.empty()) pieces.push_back(std::move(piece));
  }
  return pieces;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result += sep;
    result += parts[i];
  }
  return result;
}

std::string ToLowerAscii(std::string_view text) {
  std::string result(text);
  std::transform(result.begin(), result.end(), result.begin(), [](char c) {
    return static_cast<char>(
        std::tolower(static_cast<unsigned char>(c)));
  });
  return result;
}

std::string_view TrimAscii(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() && IsXmlWhitespace(text[begin])) ++begin;
  size_t end = text.size();
  while (end > begin && IsXmlWhitespace(text[end - 1])) --end;
  return text.substr(begin, end - begin);
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::vector<std::string> TokenizeKeywords(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current += static_cast<char>(
          std::tolower(static_cast<unsigned char>(c)));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

bool PrefixMatchesAsciiCaseInsensitive(std::string_view candidate,
                                       std::string_view prefix) {
  if (candidate.size() < prefix.size()) return false;
  for (size_t i = 0; i < prefix.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(candidate[i])) !=
        std::tolower(static_cast<unsigned char>(prefix[i]))) {
      return false;
    }
  }
  return true;
}

int EditDistance(std::string_view a, std::string_view b) {
  // Single-row dynamic program; O(|a|*|b|) time, O(|b|) space.
  std::vector<int> row(b.size() + 1);
  for (size_t j = 0; j <= b.size(); ++j) row[j] = static_cast<int>(j);
  for (size_t i = 1; i <= a.size(); ++i) {
    int diagonal = row[0];
    row[0] = static_cast<int>(i);
    for (size_t j = 1; j <= b.size(); ++j) {
      int substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, substitute});
    }
  }
  return row[b.size()];
}

}  // namespace lotusx
