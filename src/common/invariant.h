#ifndef LOTUSX_COMMON_INVARIANT_H_
#define LOTUSX_COMMON_INVARIANT_H_

#include <algorithm>
#include <functional>
#include <sstream>
#include <string>

#include "common/logging.h"
#include "common/status.h"

/// Debug invariant layer.
///
/// Two complementary mechanisms:
///
///  1. LOTUSX_DCHECK* — assertion macros guarding hot-path invariants
///     (stack discipline in the twig joins, label ordering, cursor
///     bounds). They abort on violation, and compile to nothing unless
///     LOTUSX_ENABLE_INVARIANT_CHECKS is defined — which the build system
///     does for Debug and all sanitized builds (cmake/Sanitizers.cmake),
///     so the fuzz/stress suites always run with the net up while release
///     hot paths pay nothing.
///
///  2. LOTUSX_ENSURE / ValidateInvariants() — deep structural validation
///     that is *always* compiled: core index structures expose
///     `Status ValidateInvariants(...)` methods built on LOTUSX_ENSURE,
///     which returns Status::Corruption instead of aborting. Tests, the
///     stress suite, and the engine's --validate mode call these to audit
///     a whole index image regardless of build mode.

#if defined(LOTUSX_ENABLE_INVARIANT_CHECKS)
#define LOTUSX_DCHECK(cond) CHECK(cond)
#else
#define LOTUSX_DCHECK(cond) DCHECK(cond)
#endif

#define LOTUSX_DCHECK_EQ(a, b) LOTUSX_DCHECK((a) == (b))
#define LOTUSX_DCHECK_NE(a, b) LOTUSX_DCHECK((a) != (b))
#define LOTUSX_DCHECK_LT(a, b) LOTUSX_DCHECK((a) < (b))
#define LOTUSX_DCHECK_LE(a, b) LOTUSX_DCHECK((a) <= (b))
#define LOTUSX_DCHECK_GT(a, b) LOTUSX_DCHECK((a) > (b))
#define LOTUSX_DCHECK_GE(a, b) LOTUSX_DCHECK((a) >= (b))

/// Asserts that `range` is sorted non-decreasing / strictly increasing.
#define LOTUSX_DCHECK_SORTED(range) \
  LOTUSX_DCHECK(::lotusx::invariant::IsSorted(range)) << "range not sorted "
#define LOTUSX_DCHECK_STRICTLY_SORTED(range)                \
  LOTUSX_DCHECK(::lotusx::invariant::IsStrictlySorted(range)) \
      << "range not strictly sorted "

/// Inside a `Status ValidateInvariants(...)` method: returns
/// Status::Corruption naming the violated condition when `cond` is false.
/// The trailing Detail() call lets callers append context:
///   LOTUSX_ENSURE(a == b) << "tag " << tag;
#define LOTUSX_ENSURE(cond)                                      \
  if (cond) {                                                    \
  } else /* NOLINT(readability-else-after-return) */             \
    return ::lotusx::invariant::EnsureFailure(#cond, __FILE__, __LINE__)

namespace lotusx::invariant {

template <typename Range>
bool IsSorted(const Range& range) {
  return std::is_sorted(std::begin(range), std::end(range));
}

template <typename Range>
bool IsStrictlySorted(const Range& range) {
  return std::adjacent_find(std::begin(range), std::end(range),
                            std::greater_equal<>()) == std::end(range);
}

/// Builder for LOTUSX_ENSURE failure messages; converts implicitly to
/// Status so `return EnsureFailure(...) << detail` works.
class EnsureFailure {
 public:
  EnsureFailure(const char* condition, const char* file, int line) {
    stream_ << file << ":" << line << ": invariant violated: " << condition;
  }

  template <typename T>
  EnsureFailure& operator<<(const T& value) {
    stream_ << " " << value;
    return *this;
  }

  operator Status() const {  // NOLINT(google-explicit-constructor)
    return Status::Corruption(stream_.str());
  }

 private:
  std::ostringstream stream_;
};

}  // namespace lotusx::invariant

#endif  // LOTUSX_COMMON_INVARIANT_H_
