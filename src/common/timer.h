#ifndef LOTUSX_COMMON_TIMER_H_
#define LOTUSX_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace lotusx {

/// Monotonic wall-clock stopwatch used by benchmarks and EXPLAIN-style
/// statistics. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }
  double ElapsedMicros() const {
    return static_cast<double>(ElapsedNanos()) / 1e3;
  }
  double ElapsedMillis() const {
    return static_cast<double>(ElapsedNanos()) / 1e6;
  }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) / 1e9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_TIMER_H_
