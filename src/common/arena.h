#ifndef LOTUSX_COMMON_ARENA_H_
#define LOTUSX_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

namespace lotusx {

/// Bump allocator for per-query scratch: posting-block decode buffers,
/// filtered candidate streams, and any other allocation whose lifetime is
/// exactly one query. Allocation is a pointer bump (no per-allocation
/// header, no free list); nothing is freed individually — Reset() recycles
/// every block at once, so a pooled EvalContext reuses the same memory
/// across queries and the hot path stops paying malloc/free per stream.
///
/// Only trivially-destructible payloads are supported (the arena never
/// runs destructors); AllocateArray enforces that at compile time.
class Arena {
 public:
  explicit Arena(size_t initial_block_bytes = kDefaultBlockBytes)
      : next_block_bytes_(initial_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Uninitialized storage of `bytes` bytes aligned to `align` (a power
  /// of two). Never fails short of OOM; zero-byte requests get a valid
  /// (unique-per-call not guaranteed) pointer.
  void* Allocate(size_t bytes, size_t align = alignof(std::max_align_t)) {
    size_t pos = (pos_ + align - 1) & ~(align - 1);
    if (pos + bytes > limit_) {
      AddBlock(bytes + align);
      pos = (pos_ + align - 1) & ~(align - 1);
    }
    pos_ = pos + bytes;
    bytes_allocated_ += bytes;
    return current_ + pos;
  }

  /// Typed uninitialized array of `count` elements.
  template <typename T>
  std::span<T> AllocateArray(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    void* memory = Allocate(count * sizeof(T), alignof(T));
    return {static_cast<T*>(memory), count};
  }

  /// Recycles every block for reuse: subsequent allocations fill the
  /// already-reserved memory again. Keeps only the largest block (the
  /// steady state after a few queries is one right-sized block).
  void Reset() {
    if (blocks_.size() > 1) {
      size_t largest = 0;
      for (size_t i = 1; i < blocks_.size(); ++i) {
        if (blocks_[i].size > blocks_[largest].size) largest = i;
      }
      if (largest != 0) std::swap(blocks_[0], blocks_[largest]);
      blocks_.resize(1);
    }
    if (!blocks_.empty()) {
      current_ = blocks_[0].memory.get();
      limit_ = blocks_[0].size;
    } else {
      current_ = nullptr;
      limit_ = 0;
    }
    pos_ = 0;
    bytes_allocated_ = 0;
  }

  /// Bytes handed out since construction / the last Reset (excludes
  /// alignment padding).
  size_t bytes_allocated() const { return bytes_allocated_; }

  /// Bytes of backing memory currently reserved from the heap.
  size_t bytes_reserved() const {
    size_t total = 0;
    for (const Block& block : blocks_) total += block.size;
    return total;
  }

 private:
  static constexpr size_t kDefaultBlockBytes = 16 * 1024;

  struct Block {
    std::unique_ptr<char[]> memory;
    size_t size = 0;
  };

  void AddBlock(size_t min_bytes) {
    size_t size = next_block_bytes_;
    while (size < min_bytes) size *= 2;
    next_block_bytes_ = size * 2;  // geometric growth caps block count
    Block block;
    block.memory = std::make_unique<char[]>(size);
    block.size = size;
    current_ = block.memory.get();
    limit_ = size;
    pos_ = 0;
    blocks_.insert(blocks_.begin(), std::move(block));
  }

  std::vector<Block> blocks_;
  char* current_ = nullptr;  // blocks_[0]'s memory while allocating
  size_t pos_ = 0;
  size_t limit_ = 0;
  size_t next_block_bytes_;
  size_t bytes_allocated_ = 0;
};

/// Growable array over arena storage: the minimal push_back surface the
/// candidate-stream builders need (std::vector cannot target an Arena
/// without a full allocator shim). Doubles its arena block when full; the
/// abandoned old block is reclaimed by the owning arena's Reset like
/// everything else.
template <typename T>
class ArenaVector {
 public:
  explicit ArenaVector(Arena* arena) : arena_(arena) {}

  void push_back(T value) {
    if (size_ == capacity_) Grow();
    data_[size_++] = value;
  }

  void clear() { size_ = 0; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  T* data() { return data_; }
  T& operator[](size_t i) { return data_[i]; }
  const T& operator[](size_t i) const { return data_[i]; }

  /// The filled prefix as a span (valid until the owning arena resets).
  std::span<const T> span() const { return {data_, size_}; }

 private:
  void Grow() {
    size_t new_capacity = capacity_ == 0 ? 64 : capacity_ * 2;
    std::span<T> grown = arena_->AllocateArray<T>(new_capacity);
    for (size_t i = 0; i < size_; ++i) grown[i] = data_[i];
    data_ = grown.data();
    capacity_ = new_capacity;
  }

  Arena* arena_;
  T* data_ = nullptr;
  size_t size_ = 0;
  size_t capacity_ = 0;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_ARENA_H_
