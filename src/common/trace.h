#ifndef LOTUSX_COMMON_TRACE_H_
#define LOTUSX_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"

namespace lotusx::trace {

/// Request-scoped tracing: RAII spans that record per-stage wall time
/// into the metrics registry (`lotusx_stage_latency_usec{stage="..."}`)
/// and build a span tree on the request's root QueryTrace for the
/// slow-query log (`SLOWLOG`), the trace ring (`TRACE LAST/EXPORT`,
/// Chrome trace-event JSON), and the structured log line.
///
/// Usage in the pipeline:
///   trace::QueryTrace query_trace("engine");      // one per query
///   { trace::StageSpan span(trace::Stage::kParse); ... }
///   { trace::StageSpan span(trace::Stage::kRank); ... }
///   // ~QueryTrace records lotusx_search_latency_usec{source="engine"}
///   // and emits one structured slow-query log line above the threshold.
///
/// StageSpan finds the active QueryTrace through a thread-local, so
/// deeply nested layers (the planner and executor inside Evaluate) feed
/// the breakdown of whichever query is running on their thread without
/// plumbing a context parameter through every signature. A StageSpan
/// with no active QueryTrace still feeds the stage histogram.
///
/// Nesting builds a tree: the outermost QueryTrace of a request is the
/// *root*; nested traces and stage spans append timestamped spans to it
/// and forward their stage times into the root's breakdown, so the
/// root's slow-query entry sees work done by inner layers. ThreadPool
/// tasks do not inherit the thread-local — a task that should account
/// into its parent request wraps itself in `QueryTrace::Adoption`.

/// The pipeline stages, in pipeline order.
enum class Stage { kParse, kPlan, kExecute, kRank, kRewrite, kSerialize };
inline constexpr int kNumStages = 6;

std::string_view StageName(Stage stage);

/// Queries slower than this emit one structured warning log line
/// ("slow-query ...", see docs/DEVELOPMENT.md), land in the SLOWLOG
/// ring, and are retained in the trace ring regardless of sampling.
/// Negative disables; 0 logs every traced query. Initialized from the
/// LOTUSX_SLOW_QUERY_MS environment variable when set, else 250 ms.
/// Returns the previous threshold.
double SetSlowQueryThresholdMillis(double ms);
double SlowQueryThresholdMillis();

/// Fraction of requests whose full span tree is retained in the trace
/// ring (TRACE LAST / TRACE EXPORT / /tracez). Sampling is decided
/// deterministically from the trace ID, so one request's verdict is
/// identical on every layer. Slow queries are always retained.
/// Initialized from LOTUSX_TRACE_SAMPLE when set (a fraction in
/// [0, 1]), else 0.01. Returns the previous rate.
double SetTraceSampleRate(double rate);
double TraceSampleRate();

/// Mints a process-unique, never-zero request trace ID (well mixed, so
/// sampling can hash it). The connection layer mints one per command;
/// standalone entry points (REPL, tests, benches) get one implicitly
/// from the root QueryTrace constructor.
uint64_t MintTraceId();

/// `0x%016x` rendering used by logs, SLOWLOG, and TRACE; ParseTraceId
/// accepts the same form with or without the `0x` prefix and returns 0
/// on malformed input (0 is never a valid ID).
std::string FormatTraceId(uint64_t trace_id);
uint64_t ParseTraceId(std::string_view text);

/// One timed node of a request's span tree. Offsets are microseconds
/// relative to the root trace's start; `thread` is a small per-OS-thread
/// ordinal (stable within the process) so pool-worker spans group by
/// thread in Chrome trace viewers.
struct TraceSpan {
  std::string name;
  double start_us = 0;
  double duration_us = 0;
  int depth = 0;
  uint32_t thread = 0;
};

/// Wall-time trace of one query through the pipeline. Construction
/// installs it as the current trace of this thread (saving any previous
/// one, so nesting is safe); destruction records the total latency into
/// `lotusx_search_latency_usec{source="<component>"}` and emits the
/// slow-query log line when the threshold is exceeded.
///
/// The outermost trace of a request (the *root*) additionally owns the
/// request's identity and span tree: it carries the trace ID, the
/// wall-clock start, the merged stage breakdown, and the recorded
/// spans. On destruction the root publishes itself to the SLOWLOG ring
/// (when slow) and the trace ring (when sampled or slow) — see
/// trace_store.h.
class QueryTrace {
 public:
  /// `component` labels the latency series ("engine", "session",
  /// "net", ...). A root trace uses `trace_id` when non-zero, else
  /// mints one; nested traces always inherit the root's ID.
  /// `observe_latency=false` skips the per-component latency histogram:
  /// the connection layer's per-command root passes false because its
  /// latency is already on `lotusx_net_command_latency_usec{verb}`, and
  /// three more contended atomics per command are measurable — the root
  /// then exists purely to carry the trace ID and catch slow commands.
  explicit QueryTrace(std::string_view component, uint64_t trace_id = 0,
                      bool observe_latency = true);
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// The query text for the slow-query log (set it lazily — it is only
  /// read when the query turns out slow, but must be set before the
  /// trace is destroyed).
  void set_query(std::string query) LOTUSX_EXCLUDES(mu_);
  /// Non-owning variant for hot callers whose string provably outlives
  /// the trace (the connection layer's per-command root): skips the
  /// copy — and its heap allocation — on every request. The pointee is
  /// read once, at destruction, and only when the trace is retained or
  /// logged. An owning set_query() takes precedence if both are set.
  void set_query_view(std::string_view query) LOTUSX_EXCLUDES(mu_);
  /// Chosen algorithm / plan reason / "cache-hit" for the log line.
  void set_detail(std::string detail) LOTUSX_EXCLUDES(mu_);

  /// Accumulates into this trace's breakdown and, when nested, into the
  /// request root's as well (so the root's SLOWLOG entry accounts work
  /// done by inner layers and adopted pool tasks). Lock-free: stage
  /// accumulators are relaxed atomics, cheap enough for every request.
  void AddStageMillis(Stage stage, double ms);
  double stage_millis(Stage stage) const;

  /// The request ID shared by every trace in this tree (never 0).
  uint64_t trace_id() const { return trace_id_; }
  /// Query fingerprint of the statement this request executed (0 until
  /// the engine computes one). Stored on the root so the connection
  /// layer can join a command back to its statement-store row, and so
  /// the SLOWLOG entry carries it. Relaxed atomic: set once by the
  /// engine, read by the destructor and the connection layer.
  void set_fingerprint(uint64_t fingerprint) {
    root_->fingerprint_.store(fingerprint, std::memory_order_relaxed);
  }
  uint64_t fingerprint() const {
    return root_->fingerprint_.load(std::memory_order_relaxed);
  }
  /// Whether the deterministic sampler retains this request's spans.
  bool sampled() const { return sampled_; }
  /// This request's root trace (`this` for the outermost).
  QueryTrace* root() const { return root_; }
  /// Microseconds since the root trace started (span timestamp base).
  double ElapsedMicrosInRoot() const;

  /// Appends one span to the root's tree (bounded; excess spans are
  /// counted as dropped, not stored). Called by StageSpan/NamedSpan.
  /// No-op unless the request is sampled: the span tree is detail for
  /// the trace ring, and paying a shared-mutex hop plus an allocation
  /// per span on every request blows the observability budget. Stage
  /// totals (the SLOWLOG breakdown) are always accumulated.
  void AppendSpan(TraceSpan span) LOTUSX_EXCLUDES(mu_);

  /// The innermost live QueryTrace of the calling thread, or nullptr.
  static QueryTrace* Current();

  /// Installs a *foreign* trace — typically the submitting thread's
  /// Current() captured at fan-out — as the calling thread's current
  /// trace for the scope, so pool-worker spans account into the parent
  /// request instead of vanishing. Null `parent` is a no-op, which
  /// keeps call sites unconditional. The parent must outlive the scope
  /// (ThreadPool fan-out joins before the parent trace dies).
  class Adoption {
   public:
    explicit Adoption(QueryTrace* parent);
    ~Adoption();

    Adoption(const Adoption&) = delete;
    Adoption& operator=(const Adoption&) = delete;

   private:
    QueryTrace* saved_ = nullptr;
    int saved_depth_ = 0;
    bool engaged_ = false;
  };

 private:
  void AddStageLocal(Stage stage, double ms);

  const std::string component_;
  QueryTrace* const previous_;  // outer trace of this thread, if any
  QueryTrace* const root_;      // outermost trace of the request
  uint64_t trace_id_ = 0;
  bool sampled_ = false;
  const bool observe_latency_;
  int depth_ = 0;               // span-tree depth (root == 0)
  uint32_t thread_ = 0;         // per-thread ordinal at construction
  int64_t wall_start_us_ = 0;   // unix µs of root start, set at retention
  double start_us_in_root_ = 0;
  Timer timer_;

  /// Adopted pool workers accumulate stage times concurrently with the
  /// owning thread on every request, so the breakdown is relaxed
  /// atomics rather than locked state.
  std::atomic<double> stage_ms_[kNumStages] = {};
  /// See set_fingerprint(); meaningful on the root only.
  std::atomic<uint64_t> fingerprint_{0};

  /// Strings and the span tree are touched rarely (query/detail once
  /// per request, spans only when sampled), so they stay locked. The
  /// lock is uncontended outside sampled batch fan-out.
  mutable Mutex mu_;
  std::string query_ LOTUSX_GUARDED_BY(mu_);
  std::string_view query_view_ LOTUSX_GUARDED_BY(mu_);
  std::string detail_ LOTUSX_GUARDED_BY(mu_);
  std::vector<TraceSpan> spans_ LOTUSX_GUARDED_BY(mu_);
  size_t dropped_spans_ LOTUSX_GUARDED_BY(mu_) = 0;
};

/// RAII stage timer: on destruction records the elapsed time into the
/// per-stage histogram, into the current thread's QueryTrace (if any),
/// and as a span on the request root. Effectively free when metrics are
/// disabled.
class StageSpan {
 public:
  explicit StageSpan(Stage stage);
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Stage stage_;
  QueryTrace* trace_ = nullptr;
  double start_us_ = 0;
  int depth_ = 0;
  Timer timer_;
};

/// RAII span with a free-form name (no stage histogram): marks units of
/// work that are not pipeline stages, e.g. one batch chunk on a pool
/// worker. No-op without an active QueryTrace or with metrics disabled.
class NamedSpan {
 public:
  explicit NamedSpan(std::string_view name);
  ~NamedSpan();

  NamedSpan(const NamedSpan&) = delete;
  NamedSpan& operator=(const NamedSpan&) = delete;

 private:
  std::string name_;
  QueryTrace* trace_ = nullptr;
  double start_us_ = 0;
  int depth_ = 0;
};

}  // namespace lotusx::trace

#endif  // LOTUSX_COMMON_TRACE_H_
