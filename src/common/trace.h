#ifndef LOTUSX_COMMON_TRACE_H_
#define LOTUSX_COMMON_TRACE_H_

#include <string>
#include <string_view>

#include "common/timer.h"

namespace lotusx::trace {

/// Pipeline tracing: RAII spans that record per-stage wall time into the
/// metrics registry (`lotusx_stage_latency_usec{stage="..."}`) and, when
/// a QueryTrace is active on the current thread, accumulate a per-query
/// stage breakdown for the slow-query log.
///
/// Usage in the pipeline:
///   trace::QueryTrace query_trace("engine");      // one per query
///   { trace::StageSpan span(trace::Stage::kParse); ... }
///   { trace::StageSpan span(trace::Stage::kRank); ... }
///   // ~QueryTrace records lotusx_search_latency_usec{source="engine"}
///   // and emits one structured slow-query log line above the threshold.
///
/// StageSpan finds the active QueryTrace through a thread-local, so
/// deeply nested layers (the planner and executor inside Evaluate) feed
/// the breakdown of whichever query is running on their thread without
/// plumbing a context parameter through every signature. A StageSpan
/// with no active QueryTrace still feeds the stage histogram.

/// The pipeline stages, in pipeline order.
enum class Stage { kParse, kPlan, kExecute, kRank, kRewrite, kSerialize };
inline constexpr int kNumStages = 6;

std::string_view StageName(Stage stage);

/// Queries slower than this emit one structured warning log line
/// ("slow-query ...", see docs/DEVELOPMENT.md). Negative disables the
/// log; 0 logs every traced query. Initialized from the
/// LOTUSX_SLOW_QUERY_MS environment variable when set, else 250 ms.
/// Returns the previous threshold.
double SetSlowQueryThresholdMillis(double ms);
double SlowQueryThresholdMillis();

/// Wall-time trace of one query through the pipeline. Construction
/// installs it as the current trace of this thread (saving any previous
/// one, so nesting is safe — the outermost trace owns the query);
/// destruction records the total latency into
/// `lotusx_search_latency_usec{source="<component>"}` and emits the
/// slow-query log line when the threshold is exceeded.
class QueryTrace {
 public:
  /// `component` labels the latency series ("engine", "session", ...).
  explicit QueryTrace(std::string_view component);
  ~QueryTrace();

  QueryTrace(const QueryTrace&) = delete;
  QueryTrace& operator=(const QueryTrace&) = delete;

  /// The query text for the slow-query log (set it lazily — it is only
  /// read when the query turns out slow, but must be set before the
  /// trace is destroyed).
  void set_query(std::string query) { query_ = std::move(query); }
  /// Chosen algorithm / plan reason / "cache-hit" for the log line.
  void set_detail(std::string detail) { detail_ = std::move(detail); }

  void AddStageMillis(Stage stage, double ms);
  double stage_millis(Stage stage) const {
    return stage_ms_[static_cast<int>(stage)];
  }

  /// The innermost live QueryTrace of the calling thread, or nullptr.
  static QueryTrace* Current();

 private:
  std::string component_;
  std::string query_;
  std::string detail_;
  double stage_ms_[kNumStages] = {};
  Timer timer_;
  QueryTrace* previous_ = nullptr;
};

/// RAII stage timer: on destruction records the elapsed time into the
/// per-stage histogram and into the current thread's QueryTrace (if
/// any). Effectively free when metrics are disabled.
class StageSpan {
 public:
  explicit StageSpan(Stage stage) : stage_(stage) {}
  ~StageSpan();

  StageSpan(const StageSpan&) = delete;
  StageSpan& operator=(const StageSpan&) = delete;

 private:
  Stage stage_;
  Timer timer_;
};

}  // namespace lotusx::trace

#endif  // LOTUSX_COMMON_TRACE_H_
