#ifndef LOTUSX_COMMON_PROFILER_H_
#define LOTUSX_COMMON_PROFILER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status_or.h"

namespace lotusx::prof {

/// On-demand sampling profiler for the serving process, surfaced by the
/// PROFILE protocol verb and /profilez. Two modes share one sample ring
/// and one render path:
///
///   * CPU  — setitimer(ITIMER_PROF): the kernel delivers SIGPROF to
///     whichever thread is burning CPU when the process's CPU clock
///     ticks, so busy threads are sampled in proportion to their use
///     and an idle process yields (correctly) nothing.
///   * Wall — a ticker thread pthread_kill()s every *registered* thread
///     each period, so blocked threads (lock waits, epoll_wait) are
///     sampled too.
///
/// The signal handler appends a raw stack to a pre-sized ring with one
/// atomic fetch_add — no locks, no allocation (backtrace() is primed
/// before arming so libgcc's unwinder loads outside signal context).
/// Symbolization (dladdr + demangle) and folding happen after disarm.
///
/// Exactly one profile runs at a time; a second request fails with
/// FailedPrecondition instead of queueing (a profiler that backs up
/// behind itself is worse than one that says "busy"). When no profile
/// is armed the profiler is quiescent: handler uninstalled, timer
/// zeroed, zero signals delivered — pinned by ProfilerTest.

/// Registers the calling thread for wall-mode sampling and names it in
/// collapsed stacks ("worker-3;Engine::Search;..."). CPU mode samples
/// unregistered threads too (the kernel picks the target); they render
/// under "thread-<tid>". Unregister before thread exit.
void RegisterCurrentThread(std::string_view name);
void UnregisterCurrentThread();

/// RAII registration for pool workers.
class ScopedThreadRegistration {
 public:
  explicit ScopedThreadRegistration(std::string_view name) {
    RegisterCurrentThread(name);
  }
  ~ScopedThreadRegistration() { UnregisterCurrentThread(); }
  ScopedThreadRegistration(const ScopedThreadRegistration&) = delete;
  ScopedThreadRegistration& operator=(const ScopedThreadRegistration&) =
      delete;
};

enum class Mode {
  kCpu,
  kWall,
};

std::string_view ModeName(Mode mode);

/// One folded profile: collapsed stacks and collection accounting.
struct ProfileResult {
  Mode mode = Mode::kCpu;
  double duration_ms = 0;  // requested collection window
  int frequency_hz = 0;
  uint64_t samples = 0;  // stacks captured into the ring
  uint64_t dropped = 0;  // lost to ring overflow or unwind failure
  /// flamegraph.pl-ready lines: "thread;outer;...;leaf" -> count,
  /// sorted by count descending then lexicographically.
  std::vector<std::pair<std::string, uint64_t>> collapsed;
};

/// Collects one profile, blocking the calling thread for `duration_ms`
/// (clamped to [10ms, 10s]). `hz` is the target sampling frequency
/// (clamped to [1, 1000]; default 99 — prime, so it cannot alias with
/// millisecond-periodic work). Fails with FailedPrecondition when a
/// profile is already running.
StatusOr<ProfileResult> Collect(Mode mode, double duration_ms, int hz = 99);

/// Renders the classic collapsed-stack text format, one line per
/// distinct stack: `frame;frame;...;leaf count\n` — directly consumable
/// by flamegraph.pl / speedscope / inferno.
std::string RenderCollapsed(const ProfileResult& result);

/// JSON envelope with the same stacks plus collection metadata.
std::string RenderProfileJson(const ProfileResult& result);

/// Total SIGPROF deliveries observed by the handler over the process
/// lifetime. The quiescence test pins that this does not move while no
/// profile is armed.
uint64_t SignalsDelivered();

/// True while a profile is being collected (the protocol layer uses
/// this for HELP/diagnostics, not for synchronization).
bool Busy();

}  // namespace lotusx::prof

#endif  // LOTUSX_COMMON_PROFILER_H_
