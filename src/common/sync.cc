#include "common/sync.h"

namespace lotusx {

// SAFETY: the analysis cannot model handing a held std::mutex to
// std::condition_variable::wait — the capability is released and
// reacquired inside wait(), so `mu` is held again on return exactly as
// LOTUSX_REQUIRES(mu) promises the caller.
void CondVar::Wait(Mutex& mu) LOTUSX_NO_THREAD_SAFETY_ANALYSIS {
  std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
  cv_.wait(lock);
  lock.release();  // ownership stays with the caller's scoped lock
}

}  // namespace lotusx
