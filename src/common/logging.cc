#include "common/logging.h"

namespace lotusx {

namespace {
LogSeverity g_min_severity = LogSeverity::kWarning;

std::string_view SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogSeverity SetMinLogSeverity(LogSeverity severity) {
  LogSeverity previous = g_min_severity;
  g_min_severity = severity;
  return previous;
}

LogSeverity MinLogSeverity() { return g_min_severity; }

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << file << ":" << line
          << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= g_min_severity || severity_ == LogSeverity::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace lotusx
