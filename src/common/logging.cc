#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <mutex>  // NOLINT(lotusx-sync): std::once_flag only
#include <string>
#include <thread>

#include "common/string_util.h"
#include "common/sync.h"

namespace lotusx {

namespace {

std::atomic<int> g_min_severity{static_cast<int>(LogSeverity::kWarning)};
std::once_flag g_env_once;

// Serializes the final write (and any test sink) so lines from
// concurrent threads never interleave even on platforms where a single
// stderr write is not atomic.
Mutex g_write_mu;
LogSink g_sink LOTUSX_GUARDED_BY(g_write_mu);

void ApplyEnvSeverity() {
  if (const char* env = std::getenv("LOTUSX_MIN_LOG_SEVERITY")) {
    if (std::optional<LogSeverity> severity = ParseLogSeverity(env)) {
      g_min_severity.store(static_cast<int>(*severity),
                           std::memory_order_relaxed);
    }
  }
}

std::string_view SeverityName(LogSeverity severity) {
  switch (severity) {
    case LogSeverity::kInfo:
      return "INFO";
    case LogSeverity::kWarning:
      return "WARN";
    case LogSeverity::kError:
      return "ERROR";
    case LogSeverity::kFatal:
      return "FATAL";
  }
  return "?";
}

/// A short stable id for the calling thread (hashed std::thread::id,
/// folded to 5 digits — enough to tell interleaved workers apart).
unsigned ShortThreadId() {
  thread_local const unsigned id = static_cast<unsigned>(
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % 100000);
  return id;
}

/// UTC wall-clock "HH:MM:SS.uuuuuu".
std::string Timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t seconds = std::chrono::system_clock::to_time_t(now);
  const auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          now.time_since_epoch())
                          .count() %
                      1'000'000;
  std::tm utc{};
  gmtime_r(&seconds, &utc);
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%02d:%02d:%02d.%06d", utc.tm_hour,
                utc.tm_min, utc.tm_sec, static_cast<int>(micros));
  return buffer;
}

}  // namespace

LogSeverity SetMinLogSeverity(LogSeverity severity) {
  // Resolve the environment first so an explicit call always wins over
  // LOTUSX_MIN_LOG_SEVERITY regardless of ordering.
  std::call_once(g_env_once, ApplyEnvSeverity);
  return static_cast<LogSeverity>(g_min_severity.exchange(
      static_cast<int>(severity), std::memory_order_relaxed));
}

LogSeverity MinLogSeverity() {
  std::call_once(g_env_once, ApplyEnvSeverity);
  return static_cast<LogSeverity>(
      g_min_severity.load(std::memory_order_relaxed));
}

std::optional<LogSeverity> ParseLogSeverity(std::string_view text) {
  const std::string lowered = ToLowerAscii(TrimAscii(text));
  if (lowered == "info" || lowered == "0") return LogSeverity::kInfo;
  if (lowered == "warning" || lowered == "warn" || lowered == "1") {
    return LogSeverity::kWarning;
  }
  if (lowered == "error" || lowered == "2") return LogSeverity::kError;
  if (lowered == "fatal" || lowered == "3") return LogSeverity::kFatal;
  return std::nullopt;
}

void InitLogSeverityFromEnv() {
  std::call_once(g_env_once, [] {});  // absorb the lazy hook
  ApplyEnvSeverity();
}

LogSink SetLogSinkForTest(LogSink sink) {
  MutexLock lock(g_write_mu);
  LogSink previous = std::move(g_sink);
  g_sink = std::move(sink);
  return previous;
}

namespace internal_logging {

LogMessage::LogMessage(LogSeverity severity, const char* file, int line)
    : severity_(severity) {
  stream_ << "[" << SeverityName(severity) << " " << Timestamp() << " t"
          << ShortThreadId() << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (severity_ >= MinLogSeverity() || severity_ == LogSeverity::kFatal) {
    stream_ << '\n';
    const std::string line = stream_.str();
    MutexLock lock(g_write_mu);
    if (g_sink) {
      g_sink(line);
    } else {
      // One fwrite + flush: the whole line reaches stderr in a single
      // call, never interleaved with another thread's message.
      std::fwrite(line.data(), 1, line.size(), stderr);
      std::fflush(stderr);
    }
  }
  if (severity_ == LogSeverity::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace lotusx
