#include "common/process_metrics.h"

#include <dirent.h>
#include <unistd.h>

#include <cstdio>
#include <cstdint>

#include "common/metrics.h"
#include "common/timer.h"

#ifndef LOTUSX_GIT_SHA
#define LOTUSX_GIT_SHA "unknown"
#endif

namespace lotusx::metrics {

namespace {

constexpr std::string_view kVersion = "0.7.0";
constexpr std::string_view kGitSha = LOTUSX_GIT_SHA;

/// Process start proxy: initialized when lotusx_common is loaded, which
/// for every binary in this repo is within milliseconds of main().
const Timer g_process_start;

int64_t ReadRssBytes() {
  std::FILE* statm = std::fopen("/proc/self/statm", "r");
  if (statm == nullptr) return 0;
  long long total_pages = 0;
  long long rss_pages = 0;
  const int fields = std::fscanf(statm, "%lld %lld", &total_pages, &rss_pages);
  std::fclose(statm);
  if (fields != 2) return 0;
  return static_cast<int64_t>(rss_pages) * ::sysconf(_SC_PAGESIZE);
}

int64_t CountOpenFds() {
  DIR* dir = ::opendir("/proc/self/fd");
  if (dir == nullptr) return 0;
  int64_t count = 0;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    ++count;
  }
  ::closedir(dir);
  // Do not count the directory stream used for the scan itself.
  return count > 0 ? count - 1 : 0;
}

}  // namespace

void UpdateProcessMetrics() {
  if (!Enabled()) return;
  static Registry& registry = Registry::Default();
  static Gauge* uptime =
      registry.GetGauge("lotusx_process_uptime_seconds");
  static Gauge* rss = registry.GetGauge("lotusx_process_rss_bytes");
  static Gauge* fds = registry.GetGauge("lotusx_process_open_fds");
  static Gauge* build_info = registry.GetGauge(
      "lotusx_build_info", {{"version", std::string(kVersion)},
                            {"git_sha", std::string(kGitSha)}});
  uptime->Set(static_cast<int64_t>(g_process_start.ElapsedSeconds()));
  rss->Set(ReadRssBytes());
  fds->Set(CountOpenFds());
  build_info->Set(1);
}

std::string_view BuildVersion() { return kVersion; }

std::string_view BuildGitSha() { return kGitSha; }

double ProcessUptimeSeconds() { return g_process_start.ElapsedSeconds(); }

}  // namespace lotusx::metrics
