#ifndef LOTUSX_COMMON_STATUS_OR_H_
#define LOTUSX_COMMON_STATUS_OR_H_

#include <optional>
#include <utility>

#include "common/logging.h"
#include "common/status.h"

namespace lotusx {

/// Holds either a value of type T or a non-OK Status explaining why the
/// value is absent. Mirrors absl::StatusOr semantics; accessing the value of
/// an errored StatusOr aborts via CHECK.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. A default StatusOr is an Internal
  /// error rather than a value, so the "empty" state is never silently OK.
  StatusOr() : status_(Status::Internal("uninitialized StatusOr")) {}
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    CHECK(!status_.ok()) << "StatusOr constructed with OK status but no value";
  }
  StatusOr(T value)  // NOLINT
      : status_(Status::OK()), value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    CHECK(ok()) << "value() on errored StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  // Without this overload, `*std::move(status_or)` binds the const&
  // accessor and silently deep-copies T — a sampling profile of the
  // serving path caught exactly that on the Search result.
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace lotusx

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// status from the enclosing function.
#define LOTUSX_ASSIGN_OR_RETURN(lhs, expr)             \
  LOTUSX_ASSIGN_OR_RETURN_IMPL_(                       \
      LOTUSX_STATUS_CONCAT_(_status_or_, __LINE__), lhs, expr)

#define LOTUSX_STATUS_CONCAT_INNER_(a, b) a##b
#define LOTUSX_STATUS_CONCAT_(a, b) LOTUSX_STATUS_CONCAT_INNER_(a, b)
#define LOTUSX_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#endif  // LOTUSX_COMMON_STATUS_OR_H_
