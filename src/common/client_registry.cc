#include "common/client_registry.h"

#include <cstdio>

namespace lotusx {

ClientRegistry::Handle::Handle(uint64_t id, int fd, std::string peer)
    : id_(id), fd_(fd), peer_(std::move(peer)) {}

void ClientRegistry::Handle::Touch() {
  last_activity_ns_.store(connected_.ElapsedNanos(),
                          std::memory_order_relaxed);
}

void ClientRegistry::Handle::RecordBytesIn(uint64_t n) {
  bytes_in_.fetch_add(n, std::memory_order_relaxed);
  Touch();
}

void ClientRegistry::Handle::RecordBytesOut(uint64_t n) {
  bytes_out_.fetch_add(n, std::memory_order_relaxed);
  Touch();
}

void ClientRegistry::Handle::SetPipelined(uint64_t depth) {
  pipelined_.store(depth, std::memory_order_relaxed);
}

void ClientRegistry::Handle::SetInFlight(bool in_flight) {
  in_flight_.store(in_flight, std::memory_order_relaxed);
}

void ClientRegistry::Handle::SetLastVerb(std::string_view verb) {
  MutexLock lock(mu_);
  last_verb_ = verb;
}

void ClientRegistry::Handle::RecordCommand() {
  commands_.fetch_add(1, std::memory_order_relaxed);
}

void ClientRegistry::Handle::SetLastFingerprint(uint64_t fingerprint) {
  if (fingerprint == 0) return;
  last_fingerprint_.store(fingerprint, std::memory_order_relaxed);
}

ClientRegistry& ClientRegistry::Default() {
  // Leaked: handles may outlive main() in detached shutdown paths.
  static ClientRegistry* registry = new ClientRegistry();
  return *registry;
}

std::shared_ptr<ClientRegistry::Handle> ClientRegistry::Register(
    int fd, std::string peer) {
  MutexLock lock(mu_);
  const uint64_t id = next_id_++;
  auto handle =
      std::shared_ptr<Handle>(new Handle(id, fd, std::move(peer)));
  clients_.emplace(id, handle);
  return handle;
}

void ClientRegistry::Unregister(const std::shared_ptr<Handle>& handle) {
  if (handle == nullptr) return;
  MutexLock lock(mu_);
  clients_.erase(handle->id_);
}

std::vector<ClientInfo> ClientRegistry::Snapshot() const {
  MutexLock lock(mu_);
  std::vector<ClientInfo> out;
  out.reserve(clients_.size());
  for (const auto& [id, handle] : clients_) {
    ClientInfo info;
    info.id = id;
    info.fd = handle->fd_;
    info.peer = handle->peer_;
    const int64_t age_ns = handle->connected_.ElapsedNanos();
    info.age_seconds = static_cast<double>(age_ns) / 1e9;
    const int64_t last_ns =
        handle->last_activity_ns_.load(std::memory_order_relaxed);
    info.idle_seconds =
        static_cast<double>(age_ns > last_ns ? age_ns - last_ns : 0) / 1e9;
    info.in_flight = handle->in_flight_.load(std::memory_order_relaxed);
    info.pipelined = handle->pipelined_.load(std::memory_order_relaxed);
    info.bytes_in = handle->bytes_in_.load(std::memory_order_relaxed);
    info.bytes_out = handle->bytes_out_.load(std::memory_order_relaxed);
    info.commands = handle->commands_.load(std::memory_order_relaxed);
    info.last_fingerprint =
        handle->last_fingerprint_.load(std::memory_order_relaxed);
    {
      MutexLock verb_lock(handle->mu_);
      info.last_verb = handle->last_verb_;
    }
    out.push_back(std::move(info));
  }
  return out;
}

size_t ClientRegistry::size() const {
  MutexLock lock(mu_);
  return clients_.size();
}

std::string RenderClientsText(const std::vector<ClientInfo>& clients) {
  if (clients.empty()) return "(none)";
  std::string out;
  char buffer[64];
  for (const ClientInfo& client : clients) {
    if (!out.empty()) out += '\n';
    out += "id=" + std::to_string(client.id);
    out += " fd=" + std::to_string(client.fd);
    out += " peer=" + client.peer;
    std::snprintf(buffer, sizeof(buffer), " age_s=%.1f idle_s=%.1f",
                  client.age_seconds, client.idle_seconds);
    out += buffer;
    out += client.in_flight ? " in_flight=1" : " in_flight=0";
    out += " pipelined=" + std::to_string(client.pipelined);
    out += " bytes_in=" + std::to_string(client.bytes_in);
    out += " bytes_out=" + std::to_string(client.bytes_out);
    out += " commands=" + std::to_string(client.commands);
    out += " last_verb=";
    out += client.last_verb.empty() ? "-" : client.last_verb;
    if (client.last_fingerprint != 0) {
      std::snprintf(buffer, sizeof(buffer), " fingerprint=0x%016llx",
                    static_cast<unsigned long long>(client.last_fingerprint));
      out += buffer;
    }
  }
  return out;
}

}  // namespace lotusx
