#ifndef LOTUSX_COMMON_TRACE_STORE_H_
#define LOTUSX_COMMON_TRACE_STORE_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.h"
#include "common/trace.h"

namespace lotusx::trace {

/// Retention for completed requests: two bounded, lock-annotated ring
/// buffers fed by ~QueryTrace (root traces only) and drained by the
/// introspection surfaces — the SLOWLOG / TRACE / CLIENTS protocol
/// verbs and the HTTP admin plane (/slowlog.json, /tracez).
///
/// Both rings keep the newest N entries; writers never block on
/// readers beyond the ring mutex, and an idle ring costs nothing.

/// One slow query: identity, text, and the merged per-stage breakdown
/// (including stages executed by adopted pool workers).
struct SlowQueryEntry {
  uint64_t id = 0;  // monotonically increasing, assigned by the ring
  uint64_t trace_id = 0;
  /// Statement fingerprint (twig/fingerprint.h) of the query this
  /// request executed; 0 when no fingerprinted search ran. Joins a slow
  /// query back to its STATEMENTS row.
  uint64_t fingerprint = 0;
  int64_t wall_start_us = 0;  // unix µs when the request started
  std::string component;
  std::string query;
  std::string detail;  // algorithm / plan reason / "cache-hit"
  double total_ms = 0;
  double stage_ms[kNumStages] = {};
};

/// One retained request trace: the root's identity plus its span tree.
struct CompletedTrace {
  uint64_t trace_id = 0;
  int64_t wall_start_us = 0;  // unix µs when the request started
  std::string component;
  std::string query;
  std::string detail;
  double total_ms = 0;
  bool slow = false;
  uint32_t thread = 0;  // root thread ordinal
  std::vector<TraceSpan> spans;
  size_t dropped_spans = 0;
};

/// Ring of the most recent slow queries (`SLOWLOG GET|LEN|RESET`,
/// `/slowlog.json`). Slow queries are always captured — sampling only
/// affects the trace ring.
class SlowLog {
 public:
  explicit SlowLog(size_t capacity = 128);

  /// The process-wide ring used by ~QueryTrace and the verbs.
  static SlowLog& Default();

  void Add(SlowQueryEntry entry) LOTUSX_EXCLUDES(mu_);
  /// Newest first, at most `n` entries.
  std::vector<SlowQueryEntry> Last(size_t n) const LOTUSX_EXCLUDES(mu_);
  /// Entries currently retained (`SLOWLOG LEN`).
  size_t Len() const LOTUSX_EXCLUDES(mu_);
  /// Slow queries ever recorded (survives Reset; monotonic).
  uint64_t TotalAdded() const LOTUSX_EXCLUDES(mu_);
  void Reset() LOTUSX_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<SlowQueryEntry> ring_ LOTUSX_GUARDED_BY(mu_);
  uint64_t next_id_ LOTUSX_GUARDED_BY(mu_) = 1;
};

/// Ring of sampled/slow request traces (`TRACE LAST|EXPORT`, `/tracez`).
class TraceStore {
 public:
  explicit TraceStore(size_t capacity = 256);

  /// The process-wide ring used by ~QueryTrace and the verbs.
  static TraceStore& Default();

  void Add(CompletedTrace trace) LOTUSX_EXCLUDES(mu_);
  /// Newest first, at most `n` traces.
  std::vector<CompletedTrace> Last(size_t n) const LOTUSX_EXCLUDES(mu_);
  /// The most recent retained trace with this ID, if still in the ring.
  std::optional<CompletedTrace> Find(uint64_t trace_id) const
      LOTUSX_EXCLUDES(mu_);
  size_t Len() const LOTUSX_EXCLUDES(mu_);
  void Reset() LOTUSX_EXCLUDES(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_;
  std::deque<CompletedTrace> ring_ LOTUSX_GUARDED_BY(mu_);
};

/// Renderers shared by the protocol verbs and the HTTP admin plane.
/// Text forms are one entry per line (SLOWLOG) or an indented span
/// tree (TRACE LAST); JSON forms are stable machine-readable objects;
/// ChromeTraceJson is the Chrome trace-event format
/// (`{"traceEvents": [...]}`), directly loadable in Perfetto.
std::string RenderSlowLogText(const std::vector<SlowQueryEntry>& entries);
std::string RenderSlowLogJson(const std::vector<SlowQueryEntry>& entries);
std::string RenderTraceText(const std::vector<CompletedTrace>& traces);
std::string ChromeTraceJson(const std::vector<CompletedTrace>& traces);

}  // namespace lotusx::trace

#endif  // LOTUSX_COMMON_TRACE_STORE_H_
