#include "common/statement_store.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>

namespace lotusx::stmt {

namespace {

std::atomic<bool> g_enabled{true};

std::string FormatFixed(double value, int digits = 3) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

std::string FormatHex(uint64_t fingerprint) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(fingerprint));
  return buffer;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool SetEnabled(bool enabled) {
  return g_enabled.exchange(enabled, std::memory_order_relaxed);
}

StatementStore::StatementStore(size_t capacity, metrics::Registry* registry) {
  if (capacity == 0) capacity = 1;
  per_shard_capacity_ = (capacity + kNumShards - 1) / kNumShards;
  shards_.reserve(kNumShards);
  for (size_t i = 0; i < kNumShards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (registry != nullptr) {
    evicted_total_ = registry->GetCounter("lotusx_evicted_statements_total");
  }
}

StatementStore& StatementStore::Default() {
  // Leaked so shutdown-order races with in-flight Record() calls cannot
  // touch a destroyed store (same lifetime policy as metrics::Registry).
  static StatementStore* store =
      new StatementStore(kDefaultCapacity, &metrics::Registry::Default());
  return *store;
}

void StatementStore::Record(const ExecutionRecord& record) {
  if (record.fingerprint == 0) return;
  Shard& shard = ShardFor(record.fingerprint);
  uint64_t evicted = 0;
  {
    MutexLock lock(shard.mu);
    auto it = shard.entries.find(record.fingerprint);
    if (it == shard.entries.end()) {
      auto entry = std::make_unique<Entry>();
      entry->query_text = std::string(record.query_text);
      shard.order.push_front(record.fingerprint);
      entry->lru = shard.order.begin();
      it = shard.entries.emplace(record.fingerprint, std::move(entry)).first;
      if (shard.entries.size() > per_shard_capacity_) {
        const uint64_t coldest = shard.order.back();
        shard.order.pop_back();
        shard.entries.erase(coldest);
        ++shard.evictions;
        ++evicted;
      }
    } else {
      shard.order.splice(shard.order.begin(), shard.order, it->second->lru);
    }
    Entry& entry = *it->second;
    ++entry.calls;
    if (record.error) ++entry.errors;
    if (record.cache_hit) ++entry.cache_hits;
    entry.rows += record.rows;
    entry.blocks_decoded += record.blocks_decoded;
    entry.blocks_skipped += record.blocks_skipped;
    entry.bytes_decoded += record.bytes_decoded;
    entry.total_usec += record.latency_usec;
    entry.latency.Observe(record.latency_usec);
    if (!record.algorithm.empty()) {
      PlanChoiceStat* plan = nullptr;
      for (PlanChoiceStat& candidate : entry.plans) {
        if (candidate.algorithm == record.algorithm) {
          plan = &candidate;
          break;
        }
      }
      if (plan == nullptr) {
        entry.plans.push_back(PlanChoiceStat{std::string(record.algorithm)});
        plan = &entry.plans.back();
      }
      ++plan->calls;
      if (record.estimated_rows >= 0) {
        ++plan->estimated;
        const double actual = static_cast<double>(record.actual_rows);
        plan->abs_row_error_sum +=
            std::abs(record.estimated_rows - actual) / std::max(actual, 1.0);
      }
    }
  }
  if (evicted > 0 && evicted_total_ != nullptr) {
    evicted_total_->Increment(evicted);
  }
}

StatementSnapshot StatementStore::SnapshotEntry(uint64_t fingerprint,
                                                const Entry& entry) const {
  StatementSnapshot snapshot;
  snapshot.fingerprint = fingerprint;
  snapshot.query_text = entry.query_text;
  snapshot.calls = entry.calls;
  snapshot.errors = entry.errors;
  snapshot.rows = entry.rows;
  snapshot.cache_hits = entry.cache_hits;
  snapshot.blocks_decoded = entry.blocks_decoded;
  snapshot.blocks_skipped = entry.blocks_skipped;
  snapshot.bytes_decoded = entry.bytes_decoded;
  snapshot.total_usec = entry.total_usec;
  snapshot.latency_usec = entry.latency.Snapshot();
  snapshot.plans = entry.plans;
  std::sort(snapshot.plans.begin(), snapshot.plans.end(),
            [](const PlanChoiceStat& a, const PlanChoiceStat& b) {
              return a.calls > b.calls;
            });
  return snapshot;
}

std::vector<StatementSnapshot> StatementStore::Top(size_t n) const {
  std::vector<StatementSnapshot> all;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    all.reserve(all.size() + shard->entries.size());
    for (const auto& [fingerprint, entry] : shard->entries) {
      all.push_back(SnapshotEntry(fingerprint, *entry));
    }
  }
  std::sort(all.begin(), all.end(),
            [](const StatementSnapshot& a, const StatementSnapshot& b) {
              if (a.total_usec != b.total_usec) {
                return a.total_usec > b.total_usec;
              }
              return a.fingerprint < b.fingerprint;  // deterministic ties
            });
  if (all.size() > n) all.resize(n);
  return all;
}

std::optional<StatementSnapshot> StatementStore::Find(
    uint64_t fingerprint) const {
  if (fingerprint == 0) return std::nullopt;
  Shard& shard = ShardFor(fingerprint);
  MutexLock lock(shard.mu);
  auto it = shard.entries.find(fingerprint);
  if (it == shard.entries.end()) return std::nullopt;
  return SnapshotEntry(fingerprint, *it->second);
}

void StatementStore::Reset() {
  for (auto& shard : shards_) {
    MutexLock lock(shard->mu);
    shard->entries.clear();
    shard->order.clear();
  }
}

size_t StatementStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->entries.size();
  }
  return total;
}

uint64_t StatementStore::evictions() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->evictions;
  }
  return total;
}

size_t StatementStore::capacity() const {
  return kNumShards * per_shard_capacity_;
}

std::string RenderStatementsText(
    const std::vector<StatementSnapshot>& stmts) {
  if (stmts.empty()) return "(empty)";
  std::string out;
  for (const StatementSnapshot& s : stmts) {
    if (!out.empty()) out += '\n';
    out += "fingerprint=" + FormatHex(s.fingerprint);
    out += " calls=" + std::to_string(s.calls);
    out += " errors=" + std::to_string(s.errors);
    out += " total_ms=" + FormatFixed(s.total_usec / 1000.0);
    out += " p50_us=" + FormatFixed(s.latency_usec.Quantile(0.5), 1);
    out += " p99_us=" + FormatFixed(s.latency_usec.Quantile(0.99), 1);
    out += " rows=" + std::to_string(s.rows);
    out += " cache_hits=" + std::to_string(s.cache_hits);
    out += " blocks_decoded=" + std::to_string(s.blocks_decoded);
    out += " blocks_skipped=" + std::to_string(s.blocks_skipped);
    out += " bytes_decoded=" + std::to_string(s.bytes_decoded);
    out += " plans=";
    if (s.plans.empty()) out += "(none)";
    bool first = true;
    for (const PlanChoiceStat& plan : s.plans) {
      if (!first) out += ',';
      first = false;
      out += plan.algorithm + ":" + std::to_string(plan.calls);
      if (plan.estimated > 0) {
        out += "(err=" + FormatFixed(plan.MeanRowError(), 2) + ")";
      }
    }
    out += " query=\"" + s.query_text + "\"";
  }
  return out;
}

std::string RenderStatementsJson(
    const std::vector<StatementSnapshot>& stmts) {
  std::string out = "{\"statements\":[";
  bool first_stmt = true;
  for (const StatementSnapshot& s : stmts) {
    if (!first_stmt) out += ',';
    first_stmt = false;
    out += "{\"fingerprint\":\"" + FormatHex(s.fingerprint) + "\"";
    out += ",\"query\":\"";
    AppendJsonEscaped(&out, s.query_text);
    out += "\",\"calls\":" + std::to_string(s.calls);
    out += ",\"errors\":" + std::to_string(s.errors);
    out += ",\"rows\":" + std::to_string(s.rows);
    out += ",\"cache_hits\":" + std::to_string(s.cache_hits);
    out += ",\"blocks_decoded\":" + std::to_string(s.blocks_decoded);
    out += ",\"blocks_skipped\":" + std::to_string(s.blocks_skipped);
    out += ",\"bytes_decoded\":" + std::to_string(s.bytes_decoded);
    out += ",\"total_ms\":" + FormatFixed(s.total_usec / 1000.0);
    out += ",\"latency_usec\":{";
    out += "\"p50\":" + FormatFixed(s.latency_usec.Quantile(0.5), 1);
    out += ",\"p95\":" + FormatFixed(s.latency_usec.Quantile(0.95), 1);
    out += ",\"p99\":" + FormatFixed(s.latency_usec.Quantile(0.99), 1);
    out += ",\"mean\":" + FormatFixed(s.latency_usec.Mean(), 1);
    out += "}";
    out += ",\"plans\":[";
    bool first_plan = true;
    for (const PlanChoiceStat& plan : s.plans) {
      if (!first_plan) out += ',';
      first_plan = false;
      out += "{\"algorithm\":\"";
      AppendJsonEscaped(&out, plan.algorithm);
      out += "\",\"calls\":" + std::to_string(plan.calls);
      out += ",\"mean_row_error\":" + FormatFixed(plan.MeanRowError(), 3);
      out += "}";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

}  // namespace lotusx::stmt
