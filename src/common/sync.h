#ifndef LOTUSX_COMMON_SYNC_H_
#define LOTUSX_COMMON_SYNC_H_

// The LotusX synchronization layer: capability-annotated wrappers over
// the standard primitives, so Clang Thread Safety Analysis
// (-Wthread-safety -Wthread-safety-beta, the `thread-safety` CMake
// preset) can prove lock discipline at compile time. On non-Clang
// compilers every annotation degrades to a no-op and the wrappers cost
// exactly what the std types cost (all methods are inline forwarding
// calls).
//
// Rules (enforced by tools/lint.py and CI, see docs/DEVELOPMENT.md
// "Lock discipline"):
//   * No naked std::mutex / std::lock_guard / std::unique_lock /
//     std::condition_variable outside this file — use lotusx::Mutex,
//     MutexLock, ReaderMutexLock, CondVar.
//   * Every Mutex field carries at least one LOTUSX_GUARDED_BY sibling:
//     a lock that protects nothing is either dead or undocumented.
//   * LOTUSX_NO_THREAD_SAFETY_ANALYSIS requires an adjacent
//     `// SAFETY:` comment explaining why the analysis is wrong there.
//
// Annotation cheat sheet:
//   LOTUSX_GUARDED_BY(mu)      field may only be touched with mu held
//   LOTUSX_PT_GUARDED_BY(mu)   pointee may only be touched with mu held
//   LOTUSX_REQUIRES(mu)        caller must already hold mu
//   LOTUSX_EXCLUDES(mu)        caller must NOT hold mu (anti-deadlock)
//   LOTUSX_ACQUIRE/RELEASE     function acquires/releases mu itself
//   LOTUSX_ACQUIRED_BEFORE/AFTER  global lock ordering between mutexes

#include <condition_variable>  // NOLINT(lotusx-sync): the one wrapping site
#include <mutex>               // NOLINT(lotusx-sync): the one wrapping site
#include <shared_mutex>        // NOLINT(lotusx-sync): the one wrapping site

// ---------------------------------------------------------------------------
// Attribute plumbing. Clang implements Thread Safety Analysis as plain
// GNU attributes; GCC/MSVC do not know them, so everything vanishes
// there (the wrappers still compile and behave identically).
#if defined(__clang__) && !defined(SWIG)
#define LOTUSX_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define LOTUSX_THREAD_ANNOTATION__(x)  // no-op outside Clang
#endif

#define LOTUSX_CAPABILITY(x) LOTUSX_THREAD_ANNOTATION__(capability(x))
#define LOTUSX_SCOPED_CAPABILITY LOTUSX_THREAD_ANNOTATION__(scoped_lockable)
#define LOTUSX_GUARDED_BY(x) LOTUSX_THREAD_ANNOTATION__(guarded_by(x))
#define LOTUSX_PT_GUARDED_BY(x) LOTUSX_THREAD_ANNOTATION__(pt_guarded_by(x))
#define LOTUSX_ACQUIRED_BEFORE(...) \
  LOTUSX_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define LOTUSX_ACQUIRED_AFTER(...) \
  LOTUSX_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
#define LOTUSX_REQUIRES(...) \
  LOTUSX_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define LOTUSX_REQUIRES_SHARED(...) \
  LOTUSX_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
#define LOTUSX_ACQUIRE(...) \
  LOTUSX_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define LOTUSX_ACQUIRE_SHARED(...) \
  LOTUSX_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define LOTUSX_RELEASE(...) \
  LOTUSX_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define LOTUSX_RELEASE_SHARED(...) \
  LOTUSX_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define LOTUSX_RELEASE_GENERIC(...) \
  LOTUSX_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))
#define LOTUSX_TRY_ACQUIRE(...) \
  LOTUSX_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define LOTUSX_TRY_ACQUIRE_SHARED(...) \
  LOTUSX_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))
#define LOTUSX_EXCLUDES(...) \
  LOTUSX_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
#define LOTUSX_ASSERT_CAPABILITY(x) \
  LOTUSX_THREAD_ANNOTATION__(assert_capability(x))
#define LOTUSX_ASSERT_SHARED_CAPABILITY(x) \
  LOTUSX_THREAD_ANNOTATION__(assert_shared_capability(x))
#define LOTUSX_RETURN_CAPABILITY(x) \
  LOTUSX_THREAD_ANNOTATION__(lock_returned(x))
// Escape hatch: disables the analysis for one function. A use without an
// adjacent `// SAFETY:` comment is a lint error — if you cannot explain
// why the analysis is wrong, it probably is not.
#define LOTUSX_NO_THREAD_SAFETY_ANALYSIS \
  LOTUSX_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace lotusx {

class CondVar;

/// Exclusive mutex (wraps std::mutex) carrying the "mutex" capability.
/// Prefer the RAII MutexLock over manual Lock()/Unlock() pairs — the
/// analysis accepts both, but a scoped lock cannot leak on an early
/// return or exception.
class LOTUSX_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() LOTUSX_ACQUIRE() { mu_.lock(); }
  void Unlock() LOTUSX_RELEASE() { mu_.unlock(); }
  bool TryLock() LOTUSX_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;  // CondVar::Wait needs the native handle
  std::mutex mu_;
};

/// Reader/writer mutex (wraps std::shared_mutex): many concurrent
/// readers via ReaderMutexLock / ReaderLock(), one writer via
/// WriterMutexLock / Lock().
class LOTUSX_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() LOTUSX_ACQUIRE() { mu_.lock(); }
  void Unlock() LOTUSX_RELEASE() { mu_.unlock(); }
  bool TryLock() LOTUSX_TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void ReaderLock() LOTUSX_ACQUIRE_SHARED() { mu_.lock_shared(); }
  void ReaderUnlock() LOTUSX_RELEASE_SHARED() { mu_.unlock_shared(); }
  bool ReaderTryLock() LOTUSX_TRY_ACQUIRE_SHARED(true) {
    return mu_.try_lock_shared();
  }

 private:
  std::shared_mutex mu_;
};

/// RAII exclusive lock over a Mutex (the std::lock_guard equivalent).
class LOTUSX_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) LOTUSX_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() LOTUSX_RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// RAII exclusive lock over a SharedMutex.
class LOTUSX_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) LOTUSX_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~WriterMutexLock() LOTUSX_RELEASE() { mu_.Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// RAII shared (reader) lock over a SharedMutex.
class LOTUSX_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) LOTUSX_ACQUIRE_SHARED(mu)
      : mu_(mu) {
    mu_.ReaderLock();
  }
  ~ReaderMutexLock() LOTUSX_RELEASE() { mu_.ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

/// Condition variable bound to lotusx::Mutex. Wait() atomically releases
/// and reacquires the mutex, so the capability is held again when it
/// returns — write waits as explicit loops in the locked scope, where
/// the analysis can see the guarded reads:
///
///   MutexLock lock(mu_);
///   while (!ready_) cv_.Wait(mu_);   // ready_ is GUARDED_BY(mu_)
///
/// (A predicate-lambda overload is deliberately absent: the analysis
/// cannot see that a lambda body runs with the lock held, so the loop
/// form is both clearer and checkable.)
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until signaled; `mu` must be held and is held again on
  /// return (released while blocked, like std::condition_variable).
  void Wait(Mutex& mu) LOTUSX_REQUIRES(mu);

  void Signal() { cv_.notify_one(); }
  void SignalAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_SYNC_H_
