#ifndef LOTUSX_COMMON_THREAD_POOL_H_
#define LOTUSX_COMMON_THREAD_POOL_H_

#include <cstddef>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"
#include "common/timer.h"

namespace lotusx {

/// Fixed-size worker pool over a bounded MPMC task queue.
///
/// Producers call Submit() (blocking while the queue is full) or
/// TrySubmit() (non-blocking); `num_threads` workers drain the queue in
/// FIFO order. Shutdown() is graceful: it stops new submissions, lets the
/// workers finish every task already queued, and joins them — the
/// destructor does the same. All methods are safe to call from any number
/// of threads concurrently.
///
/// The bounded queue is deliberate back-pressure: a producer that outruns
/// the workers blocks instead of growing an unbounded backlog, which is
/// what a serving layer wants under overload.
///
/// Locking: `mu_` guards the queue and the shutdown flag; `join_mu_`
/// serializes the join phase of Shutdown() (see the LOTUSX_EXCLUDES
/// contracts — a task running on a worker must never call Shutdown(),
/// it would join itself). The two mutexes are never held together.
class ThreadPool {
 public:
  /// `num_threads` workers (>= 1) over a queue of at most `queue_capacity`
  /// pending tasks (>= 1).
  explicit ThreadPool(size_t num_threads,
                      size_t queue_capacity = kDefaultQueueCapacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, blocking while the queue is full. Returns false
  /// (without running the task) once Shutdown() has begun.
  bool Submit(std::function<void()> task) LOTUSX_EXCLUDES(mu_);

  /// Non-blocking Submit: returns false when the queue is full or the
  /// pool is shutting down.
  bool TrySubmit(std::function<void()> task) LOTUSX_EXCLUDES(mu_);

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent and safe to race from multiple threads: `join_mu_`
  /// elects one caller to join, and no caller returns before every
  /// worker has exited. Also called by the destructor. Must not be
  /// called from a pooled task (a worker cannot join itself).
  void Shutdown() LOTUSX_EXCLUDES(mu_, join_mu_);

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks currently waiting in the queue (not yet picked up by a
  /// worker). Mirrors the lotusx_threadpool_queue_depth gauge.
  size_t queue_depth() const LOTUSX_EXCLUDES(mu_);

  /// std::thread::hardware_concurrency() with a floor of 1.
  static size_t DefaultThreadCount();

  static constexpr size_t kDefaultQueueCapacity = 1024;

 private:
  /// A queued task plus its enqueue time, so the worker can record how
  /// long it waited (lotusx_threadpool_task_wait_usec).
  struct PendingTask {
    std::function<void()> fn;
    Timer queued;
  };

  void WorkerLoop() LOTUSX_EXCLUDES(mu_);
  /// Appends `task` and records the enqueue metrics.
  void EnqueueLocked(PendingTask task) LOTUSX_REQUIRES(mu_);

  const size_t queue_capacity_;
  mutable Mutex mu_;
  Mutex join_mu_;  // serializes the join phase of Shutdown()
  CondVar not_empty_;  // signaled on push and shutdown
  CondVar not_full_;   // signaled on pop and shutdown
  std::deque<PendingTask> queue_ LOTUSX_GUARDED_BY(mu_);
  bool shutdown_ LOTUSX_GUARDED_BY(mu_) = false;
  // True once some Shutdown() caller has joined every worker; later
  // (and concurrent) callers block on join_mu_, observe it, and return
  // without touching the joined threads again.
  bool joined_ LOTUSX_GUARDED_BY(join_mu_) = false;
  // Immutable after construction (the constructor populates it before
  // the pool is visible to any other thread); the thread objects are
  // only joined under join_mu_.
  std::vector<std::thread> workers_;
  // Process-wide metrics shared by every pool (registered once in the
  // constructor): queue depth gauge, task counter, wait/run histograms.
  metrics::Gauge* queue_depth_gauge_ = nullptr;
  metrics::Counter* tasks_total_ = nullptr;
  metrics::Histogram* task_wait_usec_ = nullptr;
  metrics::Histogram* task_run_usec_ = nullptr;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_THREAD_POOL_H_
