#ifndef LOTUSX_COMMON_THREAD_POOL_H_
#define LOTUSX_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/timer.h"

namespace lotusx {

/// Fixed-size worker pool over a bounded MPMC task queue.
///
/// Producers call Submit() (blocking while the queue is full) or
/// TrySubmit() (non-blocking); `num_threads` workers drain the queue in
/// FIFO order. Shutdown() is graceful: it stops new submissions, lets the
/// workers finish every task already queued, and joins them — the
/// destructor does the same. All methods are safe to call from any number
/// of threads concurrently.
///
/// The bounded queue is deliberate back-pressure: a producer that outruns
/// the workers blocks instead of growing an unbounded backlog, which is
/// what a serving layer wants under overload.
class ThreadPool {
 public:
  /// `num_threads` workers (>= 1) over a queue of at most `queue_capacity`
  /// pending tasks (>= 1).
  explicit ThreadPool(size_t num_threads,
                      size_t queue_capacity = kDefaultQueueCapacity);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `task`, blocking while the queue is full. Returns false
  /// (without running the task) once Shutdown() has begun.
  bool Submit(std::function<void()> task);

  /// Non-blocking Submit: returns false when the queue is full or the
  /// pool is shutting down.
  bool TrySubmit(std::function<void()> task);

  /// Stops accepting tasks, drains the queue, and joins the workers.
  /// Idempotent; also called by the destructor.
  void Shutdown();

  size_t num_threads() const { return workers_.size(); }
  size_t queue_capacity() const { return queue_capacity_; }

  /// Tasks currently waiting in the queue (not yet picked up by a
  /// worker). Mirrors the lotusx_threadpool_queue_depth gauge.
  size_t queue_depth() const;

  /// std::thread::hardware_concurrency() with a floor of 1.
  static size_t DefaultThreadCount();

  static constexpr size_t kDefaultQueueCapacity = 1024;

 private:
  /// A queued task plus its enqueue time, so the worker can record how
  /// long it waited (lotusx_threadpool_task_wait_usec).
  struct PendingTask {
    std::function<void()> fn;
    Timer queued;
  };

  void WorkerLoop();
  void Enqueued();

  const size_t queue_capacity_;
  mutable std::mutex mu_;
  std::mutex join_mu_;  // serializes the join phase of Shutdown()
  std::condition_variable not_empty_;  // signaled on push and shutdown
  std::condition_variable not_full_;   // signaled on pop and shutdown
  std::deque<PendingTask> queue_;
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
  // Process-wide metrics shared by every pool (registered once in the
  // constructor): queue depth gauge, task counter, wait/run histograms.
  metrics::Gauge* queue_depth_gauge_ = nullptr;
  metrics::Counter* tasks_total_ = nullptr;
  metrics::Histogram* task_wait_usec_ = nullptr;
  metrics::Histogram* task_run_usec_ = nullptr;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_THREAD_POOL_H_
