#ifndef LOTUSX_COMMON_RANDOM_H_
#define LOTUSX_COMMON_RANDOM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lotusx {

/// Deterministic 64-bit PRNG (splitmix64 seeding + xoshiro-style output).
/// Every generator and benchmark in this repository takes an explicit seed
/// so runs are reproducible across machines.
class Random {
 public:
  explicit Random(uint64_t seed);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). `bound` must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool NextBool(double p);

  /// Zipf-distributed rank in [0, n) with exponent `skew` (skew=0 is
  /// uniform; typical text skew is ~1.0). Exact sampling via a cached
  /// cumulative-weight table and binary search; the table is rebuilt only
  /// when (n, skew) changes.
  size_t NextZipf(size_t n, double skew);

  /// Random lowercase ASCII word of length in [min_len, max_len].
  std::string NextWord(int min_len, int max_len);

  /// Shuffles `items` in place (Fisher-Yates).
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[2];

  // Lazily built Zipf CDF for the most recent (n, skew) pair.
  size_t zipf_n_ = 0;
  double zipf_skew_ = -1.0;
  std::vector<double> zipf_cdf_;
};

}  // namespace lotusx

#endif  // LOTUSX_COMMON_RANDOM_H_
