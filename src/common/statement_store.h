#ifndef LOTUSX_COMMON_STATEMENT_STORE_H_
#define LOTUSX_COMMON_STATEMENT_STORE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/sync.h"

namespace lotusx::stmt {

/// pg_stat_statements for twig queries: a bounded, sharded aggregate
/// store keyed by query fingerprint (twig/fingerprint.h). Each entry
/// accumulates everything needed to answer "which query *shapes*
/// dominate this server" — calls, errors, rows, latency distribution,
/// result-cache behavior, posting-block I/O, and the planner's
/// per-shape algorithm choices with their estimated-vs-actual row
/// error. Fed by Engine::Search; drained by the STATEMENTS protocol
/// verb and /statements.json.
///
/// The store lives in common/ below the twig layer, so it speaks raw
/// fingerprints and caller-supplied strings — it has no idea what a
/// TwigQuery is. Engine bridges the two.

/// Kill switch for the *recording call sites*, independent of (and
/// checked in addition to) metrics::Enabled(): the overhead bench
/// twin prices the pipeline with statements off while metrics stay
/// on. Defaults to enabled; returns the previous value.
bool Enabled();
bool SetEnabled(bool enabled);

/// One finished execution of a fingerprinted query, as reported by the
/// engine. All byte/block counters are per-execution deltas.
struct ExecutionRecord {
  uint64_t fingerprint = 0;
  /// Normalized query text (literals replaced by `?`); stored on the
  /// shape's first sighting, ignored afterwards.
  std::string_view query_text;
  /// Join algorithm the planner picked (empty for cache hits / errors —
  /// no plan ran).
  std::string_view algorithm;
  bool error = false;
  bool cache_hit = false;
  double latency_usec = 0;
  uint64_t rows = 0;
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
  /// Planner's match-cardinality estimate; negative when no estimate
  /// exists for this execution (cache hit, error before planning).
  double estimated_rows = -1;
  uint64_t actual_rows = 0;
};

/// Per-shape distribution of planner choices: how often each join
/// algorithm was picked and how far its row estimates were off
/// (mean over |estimate - actual| / max(actual, 1), executions that
/// carried an estimate only).
struct PlanChoiceStat {
  std::string algorithm;
  uint64_t calls = 0;
  uint64_t estimated = 0;       // executions contributing to the error
  double abs_row_error_sum = 0;  // sum of relative absolute errors

  double MeanRowError() const {
    return estimated == 0 ? 0 : abs_row_error_sum / static_cast<double>(estimated);
  }
};

/// Point-in-time copy of one statement entry.
struct StatementSnapshot {
  uint64_t fingerprint = 0;
  std::string query_text;
  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t rows = 0;
  uint64_t cache_hits = 0;
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
  double total_usec = 0;
  metrics::HistogramSnapshot latency_usec;
  /// Sorted by calls descending.
  std::vector<PlanChoiceStat> plans;
};

/// The store proper. Sharded by fingerprint: Record() takes exactly one
/// shard mutex for a map probe plus a dozen integer adds, keeping it
/// inside the same <2% overhead budget as the metrics registry. Each
/// shard evicts its least-recently-*executed* shape beyond capacity
/// (cold shapes age out; the hot set that dominates load stays), and
/// every eviction bumps `lotusx_evicted_statements_total`.
class StatementStore {
 public:
  static constexpr size_t kDefaultCapacity = 512;
  static constexpr size_t kNumShards = 8;

  explicit StatementStore(size_t capacity = kDefaultCapacity,
                          metrics::Registry* registry = nullptr);

  /// Process-wide instance (never destroyed), wired to the default
  /// metrics registry.
  static StatementStore& Default();

  /// Aggregates one execution. No-op when the kill switch is off is the
  /// *caller's* job (check stmt::Enabled() before building the record);
  /// Record itself always records.
  void Record(const ExecutionRecord& record);

  /// Top `n` statements by total execution time, descending — the
  /// pg_stat_statements default ordering, because "slow and frequent"
  /// is the workload view that pays for optimizer attention.
  std::vector<StatementSnapshot> Top(size_t n) const;

  /// Snapshot of one shape, if tracked.
  std::optional<StatementSnapshot> Find(uint64_t fingerprint) const;

  /// Drops every entry (eviction counters and the registry total are
  /// cumulative and survive).
  void Reset();

  /// Tracked shapes right now; approximate under concurrent writers
  /// (shards are sampled one at a time).
  size_t size() const;
  /// Shapes evicted over the store's lifetime.
  uint64_t evictions() const;
  /// Effective capacity: kNumShards * ceil(capacity / kNumShards).
  size_t capacity() const;

 private:
  struct Entry {
    std::string query_text;
    uint64_t calls = 0;
    uint64_t errors = 0;
    uint64_t rows = 0;
    uint64_t cache_hits = 0;
    uint64_t blocks_decoded = 0;
    uint64_t blocks_skipped = 0;
    uint64_t bytes_decoded = 0;
    double total_usec = 0;
    metrics::Histogram latency{metrics::Histogram::LatencyBucketsUsec()};
    std::vector<PlanChoiceStat> plans;  // tiny closed set of algorithms
    std::list<uint64_t>::iterator lru;  // position in the shard's LRU list
  };

  struct Shard {
    mutable Mutex mu;
    std::unordered_map<uint64_t, std::unique_ptr<Entry>> entries
        LOTUSX_GUARDED_BY(mu);
    /// Most recently executed fingerprint at the front.
    std::list<uint64_t> order LOTUSX_GUARDED_BY(mu);
    uint64_t evictions LOTUSX_GUARDED_BY(mu) = 0;
  };

  StatementSnapshot SnapshotEntry(uint64_t fingerprint,
                                  const Entry& entry) const;
  Shard& ShardFor(uint64_t fingerprint) const {
    // Fingerprints are splitmix-finalized, so low bits are already
    // well mixed.
    return *shards_[fingerprint % kNumShards];
  }

  size_t per_shard_capacity_;
  // unique_ptr: a Shard owns a Mutex and must never relocate.
  std::vector<std::unique_ptr<Shard>> shards_;
  metrics::Counter* evicted_total_ = nullptr;  // may be null (tests)
};

/// Renderers shared by the STATEMENTS verb and /statements.json.
/// Text is one aligned row per statement; JSON is a stable
/// machine-readable object with per-statement quantiles.
std::string RenderStatementsText(const std::vector<StatementSnapshot>& stmts);
std::string RenderStatementsJson(const std::vector<StatementSnapshot>& stmts);

}  // namespace lotusx::stmt

#endif  // LOTUSX_COMMON_STATEMENT_STORE_H_
