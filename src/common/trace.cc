#include "common/trace.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "common/logging.h"
#include "common/metrics.h"

namespace lotusx::trace {

namespace {

thread_local QueryTrace* g_current_trace = nullptr;

/// Threshold in microseconds; negative disables the slow-query log.
std::atomic<int64_t> g_slow_query_usec = [] {
  if (const char* env = std::getenv("LOTUSX_SLOW_QUERY_MS")) {
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    if (end != env && *end == '\0') return static_cast<int64_t>(ms * 1000.0);
  }
  return static_cast<int64_t>(250 * 1000);  // 250 ms default
}();

metrics::Histogram* StageHistogram(Stage stage) {
  static metrics::Histogram* histograms[kNumStages] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kNumStages; ++i) {
      histograms[i] = metrics::Registry::Default().GetHistogram(
          "lotusx_stage_latency_usec",
          {{"stage", std::string(StageName(static_cast<Stage>(i)))}});
    }
  });
  return histograms[static_cast<int>(stage)];
}

std::string FormatMillis(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kPlan:
      return "plan";
    case Stage::kExecute:
      return "execute";
    case Stage::kRank:
      return "rank";
    case Stage::kRewrite:
      return "rewrite";
    case Stage::kSerialize:
      return "serialize";
  }
  return "?";
}

double SetSlowQueryThresholdMillis(double ms) {
  const int64_t usec = ms < 0 ? -1 : static_cast<int64_t>(ms * 1000.0);
  return static_cast<double>(g_slow_query_usec.exchange(
             usec, std::memory_order_relaxed)) /
         1000.0;
}

double SlowQueryThresholdMillis() {
  const int64_t usec = g_slow_query_usec.load(std::memory_order_relaxed);
  return usec < 0 ? -1 : static_cast<double>(usec) / 1000.0;
}

QueryTrace::QueryTrace(std::string_view component)
    : component_(component), previous_(g_current_trace) {
  g_current_trace = this;
}

QueryTrace::~QueryTrace() {
  g_current_trace = previous_;
  if (!metrics::Enabled()) return;
  const double total_ms = timer_.ElapsedMillis();
  static metrics::Registry& registry = metrics::Registry::Default();
  registry
      .GetHistogram("lotusx_search_latency_usec", {{"source", component_}})
      ->Observe(total_ms * 1000.0);
  const double threshold_ms = SlowQueryThresholdMillis();
  const bool slow = threshold_ms >= 0 && total_ms >= threshold_ms;
  if (!slow && MinLogSeverity() > LogSeverity::kInfo) return;
  if (slow) {
    static metrics::Counter* slow_queries =
        registry.GetCounter("lotusx_slow_queries_total");
    slow_queries->Increment();
  }
  // One structured line: key=value pairs, stages only when they ran.
  // Stage times overlap (rewrite re-enters plan/execute), so they need
  // not sum to total_ms. Fast queries get the same line at Info, so
  // verbose mode traces every query.
  std::string line = std::string(slow ? "slow-query" : "query") +
                     " source=" + component_ +
                     " total_ms=" + FormatMillis(total_ms);
  if (!detail_.empty()) line += " algorithm=" + detail_;
  line += " query=\"" + query_ + "\" stages=";
  bool first = true;
  for (int i = 0; i < kNumStages; ++i) {
    if (stage_ms_[i] <= 0) continue;
    if (!first) line += ',';
    first = false;
    line += StageName(static_cast<Stage>(i));
    line += ':';
    line += FormatMillis(stage_ms_[i]);
  }
  if (first) line += "(none)";
  if (slow) {
    LOTUSX_LOG(Warning) << line;
  } else {
    LOTUSX_LOG(Info) << line;
  }
}

void QueryTrace::AddStageMillis(Stage stage, double ms) {
  stage_ms_[static_cast<int>(stage)] += ms;
}

QueryTrace* QueryTrace::Current() { return g_current_trace; }

StageSpan::~StageSpan() {
  if (!metrics::Enabled()) return;
  const double us = timer_.ElapsedMicros();
  StageHistogram(stage_)->Observe(us);
  if (QueryTrace* trace = QueryTrace::Current()) {
    trace->AddStageMillis(stage_, us / 1000.0);
  }
}

}  // namespace lotusx::trace
