#include "common/trace.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>  // NOLINT(lotusx-sync): std::once_flag only, no locking
#include <unordered_map>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/trace_store.h"

namespace lotusx::trace {

namespace {

thread_local QueryTrace* g_current_trace = nullptr;
/// Span-tree depth of the next span opened on this thread. QueryTrace
/// and StageSpan/NamedSpan strictly nest per thread, so a plain
/// counter stays balanced; Adoption saves/restores it around foreign
/// scopes.
thread_local int g_span_depth = 0;

/// Span storage cap per request: a runaway query (deep rewrite loops,
/// huge batches) degrades to a dropped-span count instead of unbounded
/// memory.
constexpr size_t kMaxSpansPerTrace = 512;

/// Threshold in microseconds; negative disables the slow-query log.
std::atomic<int64_t> g_slow_query_usec = [] {
  if (const char* env = std::getenv("LOTUSX_SLOW_QUERY_MS")) {
    char* end = nullptr;
    const double ms = std::strtod(env, &end);
    if (end != env && *end == '\0') return static_cast<int64_t>(ms * 1000.0);
  }
  return static_cast<int64_t>(250 * 1000);  // 250 ms default
}();

/// Trace-ring sampling rate in [0, 1].
std::atomic<double> g_trace_sample_rate = [] {
  if (const char* env = std::getenv("LOTUSX_TRACE_SAMPLE")) {
    char* end = nullptr;
    const double rate = std::strtod(env, &end);
    if (end != env && *end == '\0' && rate >= 0.0 && rate <= 1.0) {
      return rate;
    }
  }
  return 0.01;  // retain 1% of requests by default
}();

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Deterministic per-request sampling verdict: hash the ID into [0, 1)
/// and compare against the rate, so every layer that sees the same
/// trace ID reaches the same verdict.
bool SampleDecision(uint64_t trace_id) {
  const double rate = g_trace_sample_rate.load(std::memory_order_relaxed);
  if (rate >= 1.0) return true;
  if (rate <= 0.0) return false;
  const uint64_t mixed = SplitMix64(trace_id);
  return static_cast<double>(mixed >> 11) * 0x1.0p-53 < rate;
}

/// Small per-OS-thread ordinal (1, 2, ...) used as the `tid` of
/// exported trace events — readable where gettid() values are not.
uint32_t ThreadOrdinal() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t ordinal = next.fetch_add(1, std::memory_order_relaxed);
  return ordinal;
}

int64_t UnixMicrosNow() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Per-component request-latency histogram, cached per thread: the
/// lookup runs in every QueryTrace destructor, and hitting the registry
/// (global mutex + label-map allocation) per request is measurable at
/// serving throughput. Components form a tiny closed set, so the cache
/// stays a handful of entries.
metrics::Histogram* ComponentLatencyHistogram(const std::string& component) {
  thread_local std::unordered_map<std::string, metrics::Histogram*> cache;
  auto it = cache.find(component);
  if (it != cache.end()) return it->second;
  metrics::Histogram* histogram = metrics::Registry::Default().GetHistogram(
      "lotusx_search_latency_usec", {{"source", component}});
  cache.emplace(component, histogram);
  return histogram;
}

metrics::Histogram* StageHistogram(Stage stage) {
  static metrics::Histogram* histograms[kNumStages] = {};
  static std::once_flag once;
  std::call_once(once, [] {
    for (int i = 0; i < kNumStages; ++i) {
      histograms[i] = metrics::Registry::Default().GetHistogram(
          "lotusx_stage_latency_usec",
          {{"stage", std::string(StageName(static_cast<Stage>(i)))}});
    }
  });
  return histograms[static_cast<int>(stage)];
}

std::string FormatMillis(double ms) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", ms);
  return buffer;
}

}  // namespace

std::string_view StageName(Stage stage) {
  switch (stage) {
    case Stage::kParse:
      return "parse";
    case Stage::kPlan:
      return "plan";
    case Stage::kExecute:
      return "execute";
    case Stage::kRank:
      return "rank";
    case Stage::kRewrite:
      return "rewrite";
    case Stage::kSerialize:
      return "serialize";
  }
  return "?";
}

double SetSlowQueryThresholdMillis(double ms) {
  const int64_t usec = ms < 0 ? -1 : static_cast<int64_t>(ms * 1000.0);
  return static_cast<double>(g_slow_query_usec.exchange(
             usec, std::memory_order_relaxed)) /
         1000.0;
}

double SlowQueryThresholdMillis() {
  const int64_t usec = g_slow_query_usec.load(std::memory_order_relaxed);
  return usec < 0 ? -1 : static_cast<double>(usec) / 1000.0;
}

double SetTraceSampleRate(double rate) {
  if (rate < 0.0) rate = 0.0;
  if (rate > 1.0) rate = 1.0;
  return g_trace_sample_rate.exchange(rate, std::memory_order_relaxed);
}

double TraceSampleRate() {
  return g_trace_sample_rate.load(std::memory_order_relaxed);
}

uint64_t MintTraceId() {
  // Counter seeded with boot-time entropy: IDs stay unique within a
  // process and do not repeat the same sequence across restarts. Each
  // thread claims a block of ordinals at a time so the shared counter
  // is touched once per 4096 mints, not once per request (a contended
  // fetch_add per command is measurable at serving throughput).
  constexpr uint64_t kBlock = 4096;
  static std::atomic<uint64_t> next_block{
      SplitMix64(static_cast<uint64_t>(UnixMicrosNow()))};
  thread_local uint64_t cursor = 0;
  thread_local uint64_t remaining = 0;
  if (remaining == 0) {
    cursor = next_block.fetch_add(kBlock, std::memory_order_relaxed);
    remaining = kBlock;
  }
  --remaining;
  const uint64_t id = SplitMix64(++cursor);
  return id != 0 ? id : 1;
}

std::string FormatTraceId(uint64_t trace_id) {
  char buffer[24];
  std::snprintf(buffer, sizeof(buffer), "0x%016llx",
                static_cast<unsigned long long>(trace_id));
  return buffer;
}

uint64_t ParseTraceId(std::string_view text) {
  if (text.size() >= 2 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X')) {
    text.remove_prefix(2);
  }
  if (text.empty() || text.size() > 16) return 0;
  uint64_t value = 0;
  for (char c : text) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return 0;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  return value;
}

QueryTrace::QueryTrace(std::string_view component, uint64_t trace_id,
                       bool observe_latency)
    : component_(component),
      previous_(g_current_trace),
      root_(previous_ != nullptr ? previous_->root_ : this),
      observe_latency_(observe_latency) {
  g_current_trace = this;
  depth_ = g_span_depth++;
  thread_ = ThreadOrdinal();
  if (root_ == this) {
    trace_id_ = trace_id != 0 ? trace_id : MintTraceId();
    sampled_ = SampleDecision(trace_id_);
    // wall_start_us_ is derived at destruction (total - elapsed): the
    // wall clock is only read for retained traces, not per request.
  } else {
    trace_id_ = root_->trace_id_;
    sampled_ = root_->sampled_;
    start_us_in_root_ = root_->timer_.ElapsedMicros();
  }
}

QueryTrace::~QueryTrace() {
  g_current_trace = previous_;
  --g_span_depth;
  if (!metrics::Enabled()) return;
  const double total_ms = timer_.ElapsedMillis();
  if (observe_latency_) {
    ComponentLatencyHistogram(component_)->Observe(total_ms * 1000.0);
  }

  const double threshold_ms = SlowQueryThresholdMillis();
  const bool slow = threshold_ms >= 0 && total_ms >= threshold_ms;
  const bool verbose = MinLogSeverity() <= LogSeverity::kInfo;
  if (root_ != this) {
    // A nested trace is one span of its request: account it on the
    // root (when the request keeps spans at all) and fall through to
    // the per-component log line when there is something to say.
    if (sampled_) {
      root_->AppendSpan(TraceSpan{component_, start_us_in_root_,
                                  total_ms * 1000.0, depth_, thread_});
    }
    if (!slow && !verbose) return;
  } else if (!slow && !sampled_ && !verbose) {
    // Fast path for the unremarkable 99%: nothing retained, nothing
    // logged — skip the lock and the string copies entirely.
    return;
  }

  std::string query;
  std::string detail;
  double stage_ms[kNumStages];
  std::vector<TraceSpan> spans;
  size_t dropped_spans = 0;
  {
    MutexLock lock(mu_);
    query = query_.empty() ? std::string(query_view_) : query_;
    detail = detail_;
    spans = std::move(spans_);
    dropped_spans = dropped_spans_;
  }
  for (int i = 0; i < kNumStages; ++i) {
    stage_ms[i] = stage_ms_[i].load(std::memory_order_relaxed);
  }

  if (root_ == this) {
    wall_start_us_ =
        UnixMicrosNow() - static_cast<int64_t>(total_ms * 1000.0);
    if (slow) {
      SlowQueryEntry entry;
      entry.trace_id = trace_id_;
      entry.fingerprint = fingerprint_.load(std::memory_order_relaxed);
      entry.wall_start_us = wall_start_us_;
      entry.component = component_;
      entry.query = query;
      entry.detail = detail;
      entry.total_ms = total_ms;
      for (int i = 0; i < kNumStages; ++i) entry.stage_ms[i] = stage_ms[i];
      SlowLog::Default().Add(std::move(entry));
    }
    if (slow || sampled_) {
      CompletedTrace completed;
      completed.trace_id = trace_id_;
      completed.wall_start_us = wall_start_us_;
      completed.component = component_;
      completed.query = query;
      completed.detail = detail;
      completed.total_ms = total_ms;
      completed.slow = slow;
      completed.thread = thread_;
      completed.spans = std::move(spans);
      completed.dropped_spans = dropped_spans;
      TraceStore::Default().Add(std::move(completed));
    }
  }

  if (!slow && !verbose) return;
  if (slow) {
    static metrics::Counter* slow_queries =
        metrics::Registry::Default().GetCounter("lotusx_slow_queries_total");
    slow_queries->Increment();
  }
  // One structured line: key=value pairs, stages only when they ran.
  // Stage times overlap (rewrite re-enters plan/execute), so they need
  // not sum to total_ms. Fast queries get the same line at Info, so
  // verbose mode traces every query.
  std::string line = std::string(slow ? "slow-query" : "query") +
                     " source=" + component_ +
                     " trace=" + FormatTraceId(trace_id_) +
                     " total_ms=" + FormatMillis(total_ms);
  if (!detail.empty()) line += " algorithm=" + detail;
  line += " query=\"" + query + "\" stages=";
  bool first = true;
  for (int i = 0; i < kNumStages; ++i) {
    if (stage_ms[i] <= 0) continue;
    if (!first) line += ',';
    first = false;
    line += StageName(static_cast<Stage>(i));
    line += ':';
    line += FormatMillis(stage_ms[i]);
  }
  if (first) line += "(none)";
  if (slow) {
    LOTUSX_LOG(Warning) << line;
  } else {
    LOTUSX_LOG(Info) << line;
  }
}

void QueryTrace::set_query(std::string query) {
  MutexLock lock(mu_);
  query_ = std::move(query);
}

void QueryTrace::set_query_view(std::string_view query) {
  MutexLock lock(mu_);
  query_view_ = query;
}

void QueryTrace::set_detail(std::string detail) {
  MutexLock lock(mu_);
  detail_ = std::move(detail);
}

void QueryTrace::AddStageLocal(Stage stage, double ms) {
  stage_ms_[static_cast<int>(stage)].fetch_add(ms,
                                               std::memory_order_relaxed);
}

void QueryTrace::AddStageMillis(Stage stage, double ms) {
  AddStageLocal(stage, ms);
  if (root_ != this) root_->AddStageLocal(stage, ms);
}

double QueryTrace::stage_millis(Stage stage) const {
  return stage_ms_[static_cast<int>(stage)].load(std::memory_order_relaxed);
}

double QueryTrace::ElapsedMicrosInRoot() const {
  return root_->timer_.ElapsedMicros();
}

void QueryTrace::AppendSpan(TraceSpan span) {
  QueryTrace* root = root_;
  if (!root->sampled_) return;  // span detail is for sampled requests
  MutexLock lock(root->mu_);
  if (root->spans_.size() >= kMaxSpansPerTrace) {
    ++root->dropped_spans_;
    return;
  }
  root->spans_.push_back(std::move(span));
}

QueryTrace* QueryTrace::Current() { return g_current_trace; }

QueryTrace::Adoption::Adoption(QueryTrace* parent) {
  if (parent == nullptr) return;
  engaged_ = true;
  saved_ = g_current_trace;
  saved_depth_ = g_span_depth;
  g_current_trace = parent;
  g_span_depth = parent->depth_ + 1;
}

QueryTrace::Adoption::~Adoption() {
  if (!engaged_) return;
  g_current_trace = saved_;
  g_span_depth = saved_depth_;
}

StageSpan::StageSpan(Stage stage) : stage_(stage) {
  if (!metrics::Enabled()) return;
  trace_ = QueryTrace::Current();
  if (trace_ != nullptr) {
    start_us_ = trace_->ElapsedMicrosInRoot();
    depth_ = g_span_depth++;
  }
}

StageSpan::~StageSpan() {
  if (trace_ != nullptr) --g_span_depth;
  if (!metrics::Enabled()) return;
  const double us = timer_.ElapsedMicros();
  StageHistogram(stage_)->Observe(us);
  if (trace_ == nullptr) return;
  trace_->AddStageMillis(stage_, us / 1000.0);
  if (trace_->sampled()) {
    trace_->AppendSpan(TraceSpan{std::string(StageName(stage_)), start_us_,
                                 us, depth_, ThreadOrdinal()});
  }
}

NamedSpan::NamedSpan(std::string_view name) {
  if (!metrics::Enabled()) return;
  trace_ = QueryTrace::Current();
  // A span is this class's only output, so an unsampled request makes
  // the whole scope a no-op (stage accounting still happens via the
  // StageSpans inside).
  if (trace_ != nullptr && !trace_->sampled()) trace_ = nullptr;
  if (trace_ != nullptr) {
    name_ = name;
    start_us_ = trace_->ElapsedMicrosInRoot();
    depth_ = g_span_depth++;
  }
}

NamedSpan::~NamedSpan() {
  if (trace_ == nullptr) return;
  --g_span_depth;
  if (!metrics::Enabled()) return;
  const double dur_us = trace_->ElapsedMicrosInRoot() - start_us_;
  trace_->AppendSpan(
      TraceSpan{std::move(name_), start_us_, dur_us, depth_, ThreadOrdinal()});
}

}  // namespace lotusx::trace
