#ifndef LOTUSX_COMMON_CLIENT_REGISTRY_H_
#define LOTUSX_COMMON_CLIENT_REGISTRY_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/sync.h"
#include "common/timer.h"

namespace lotusx {

/// Point-in-time view of one connected client (the `CLIENTS` verb).
struct ClientInfo {
  uint64_t id = 0;
  int fd = -1;
  std::string peer;          // "ip:port"
  double age_seconds = 0;    // since the connection was accepted
  double idle_seconds = 0;   // since the last byte in either direction
  bool in_flight = false;    // a command batch is executing right now
  uint64_t pipelined = 0;    // commands queued behind the in-flight one
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  uint64_t commands = 0;     // commands executed over the connection
  /// Statement fingerprint of the most recent command that ran a search
  /// (0 until one does) — joins the client to its STATEMENTS row.
  uint64_t last_fingerprint = 0;
  std::string last_verb;     // most recent command verb, uppercased
};

/// Process-wide registry of live client connections, kept in
/// src/common so the protocol interpreter (which must render `CLIENTS`
/// without depending on the serving layer) and src/net (which owns the
/// sockets) can share it.
///
/// Each connection holds a Handle: hot-path updates (bytes, pipeline
/// depth, in-flight flag) are relaxed atomics written by whichever
/// thread touches the socket or runs the batch; only the last-verb
/// string takes the handle's mutex. Handles are shared_ptrs so a
/// snapshot or a late worker update can never touch a freed entry.
class ClientRegistry {
 public:
  class Handle {
   public:
    /// Byte counters also restart the idle clock.
    void RecordBytesIn(uint64_t n);
    void RecordBytesOut(uint64_t n);
    void SetPipelined(uint64_t depth);
    void SetInFlight(bool in_flight);
    void SetLastVerb(std::string_view verb) LOTUSX_EXCLUDES(mu_);
    /// Bumped once per executed command (the cumulative count CLIENTS
    /// shows, unlike `pipelined`, which is instantaneous queue depth).
    void RecordCommand();
    /// Remembers the fingerprint of the last search-running command;
    /// 0 values are ignored so non-search commands do not erase it.
    void SetLastFingerprint(uint64_t fingerprint);

   private:
    friend class ClientRegistry;
    Handle(uint64_t id, int fd, std::string peer);
    void Touch();

    const uint64_t id_;
    const int fd_;
    const std::string peer_;
    const Timer connected_;
    std::atomic<int64_t> last_activity_ns_{0};  // offset from connected_
    std::atomic<uint64_t> bytes_in_{0};
    std::atomic<uint64_t> bytes_out_{0};
    std::atomic<uint64_t> pipelined_{0};
    std::atomic<bool> in_flight_{false};
    std::atomic<uint64_t> commands_{0};
    std::atomic<uint64_t> last_fingerprint_{0};
    mutable Mutex mu_;
    std::string last_verb_ LOTUSX_GUARDED_BY(mu_);
  };

  static ClientRegistry& Default();

  std::shared_ptr<Handle> Register(int fd, std::string peer)
      LOTUSX_EXCLUDES(mu_);
  void Unregister(const std::shared_ptr<Handle>& handle) LOTUSX_EXCLUDES(mu_);

  /// All live clients, ordered by id (accept order).
  std::vector<ClientInfo> Snapshot() const LOTUSX_EXCLUDES(mu_);
  size_t size() const LOTUSX_EXCLUDES(mu_);

 private:
  mutable Mutex mu_;
  std::map<uint64_t, std::shared_ptr<Handle>> clients_ LOTUSX_GUARDED_BY(mu_);
  uint64_t next_id_ LOTUSX_GUARDED_BY(mu_) = 1;
};

/// One `key=value` line per client, newest last ("(none)" when empty).
std::string RenderClientsText(const std::vector<ClientInfo>& clients);

}  // namespace lotusx

#endif  // LOTUSX_COMMON_CLIENT_REGISTRY_H_
