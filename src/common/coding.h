#ifndef LOTUSX_COMMON_CODING_H_
#define LOTUSX_COMMON_CODING_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lotusx {

/// ZigZag mapping of signed to unsigned integers (protobuf-compatible):
/// small magnitudes of either sign become small unsigned values, which is
/// what makes zigzag-delta-varint effective on nearly-sorted payload
/// channels (term frequencies, positions).
inline uint32_t ZigZagEncode32(int32_t value) {
  return (static_cast<uint32_t>(value) << 1) ^
         static_cast<uint32_t>(value >> 31);
}
inline int32_t ZigZagDecode32(uint32_t value) {
  return static_cast<int32_t>((value >> 1) ^ (~(value & 1) + 1));
}
inline uint64_t ZigZagEncode64(int64_t value) {
  return (static_cast<uint64_t>(value) << 1) ^
         static_cast<uint64_t>(value >> 63);
}
inline int64_t ZigZagDecode64(uint64_t value) {
  return static_cast<int64_t>((value >> 1) ^ (~(value & 1) + 1));
}

/// Append-only little-endian binary encoder used by index persistence.
/// Varints use the LEB128 wire format (protobuf-compatible).
class Encoder {
 public:
  explicit Encoder(std::string* out) : out_(out) {}

  void PutFixed32(uint32_t value);
  void PutFixed64(uint64_t value);
  void PutVarint32(uint32_t value);
  void PutVarint64(uint64_t value);
  /// Length-prefixed (varint32) byte string.
  void PutString(std::string_view value);
  /// Varint64 count followed by delta-encoded varints; `values` must be
  /// non-decreasing (posting lists are).
  void PutSortedU32List(const std::vector<uint32_t>& values);
  /// Varint64 count followed by plain varints (no ordering requirement).
  void PutU32List(const std::vector<uint32_t>& values);

 private:
  std::string* out_;
};

/// Streaming decoder over an immutable buffer; every Get reports
/// truncation/corruption via Status instead of crashing.
class Decoder {
 public:
  explicit Decoder(std::string_view data) : data_(data) {}

  Status GetFixed32(uint32_t* value);
  Status GetFixed64(uint64_t* value);
  Status GetVarint32(uint32_t* value);
  Status GetVarint64(uint64_t* value);
  Status GetString(std::string* value);
  Status GetSortedU32List(std::vector<uint32_t>* values);
  Status GetU32List(std::vector<uint32_t>* values);

  bool Done() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

/// Reads an entire file into `contents`.
Status ReadFileToString(const std::string& path, std::string* contents);

/// Atomically-ish writes `contents` to `path` (write then rename is not
/// needed offline; plain truncate+write with error checking).
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace lotusx

#endif  // LOTUSX_COMMON_CODING_H_
