#include "common/random.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace lotusx {

namespace {
uint64_t SplitMix64(uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  state_[0] = SplitMix64(sm);
  state_[1] = SplitMix64(sm);
  if (state_[0] == 0 && state_[1] == 0) state_[0] = 1;  // avoid all-zero
}

uint64_t Random::NextUint64() {
  // xoroshiro128+.
  uint64_t s0 = state_[0];
  uint64_t s1 = state_[1];
  uint64_t result = s0 + s1;
  s1 ^= s0;
  state_[0] = RotL(s0, 55) ^ s1 ^ (s1 << 14);
  state_[1] = RotL(s1, 36);
  return result;
}

uint64_t Random::NextBounded(uint64_t bound) {
  CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Random::NextInRange(int64_t lo, int64_t hi) {
  CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextBounded(span));
}

double Random::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Random::NextBool(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

size_t Random::NextZipf(size_t n, double skew) {
  CHECK_GT(n, 0u);
  if (n == 1) return 0;
  if (skew <= 0.0) return NextBounded(n);
  if (zipf_n_ != n || zipf_skew_ != skew) {
    zipf_cdf_.resize(n);
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
      zipf_cdf_[i] = total;
    }
    for (double& c : zipf_cdf_) c /= total;
    zipf_n_ = n;
    zipf_skew_ = skew;
  }
  double u = NextDouble();
  auto it = std::lower_bound(zipf_cdf_.begin(), zipf_cdf_.end(), u);
  if (it == zipf_cdf_.end()) return n - 1;
  return static_cast<size_t>(it - zipf_cdf_.begin());
}

std::string Random::NextWord(int min_len, int max_len) {
  CHECK_GE(min_len, 1);
  CHECK_LE(min_len, max_len);
  int len = static_cast<int>(NextInRange(min_len, max_len));
  std::string word(static_cast<size_t>(len), 'a');
  for (char& c : word) {
    c = static_cast<char>('a' + NextBounded(26));
  }
  return word;
}

}  // namespace lotusx
