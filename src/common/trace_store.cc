#include "common/trace_store.h"

#include <algorithm>
#include <cstdio>
#include <ctime>

namespace lotusx::trace {

namespace {

std::string FormatFixed(double value, int digits = 3) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.*f", digits, value);
  return buffer;
}

/// ISO-8601 UTC with millisecond precision, e.g. 2026-08-08T12:00:01.042Z.
std::string FormatWallTime(int64_t unix_us) {
  const time_t seconds = static_cast<time_t>(unix_us / 1'000'000);
  const int millis = static_cast<int>((unix_us % 1'000'000) / 1000);
  struct tm parts {};
  ::gmtime_r(&seconds, &parts);
  char buffer[80];
  std::snprintf(buffer, sizeof(buffer),
                "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ", parts.tm_year + 1900,
                parts.tm_mon + 1, parts.tm_mday, parts.tm_hour, parts.tm_min,
                parts.tm_sec, millis);
  return buffer;
}

void AppendJsonEscaped(std::string* out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned char>(c));
          *out += buffer;
        } else {
          *out += c;
        }
    }
  }
}

void AppendStagesText(std::string* out, const double (&stage_ms)[kNumStages]) {
  bool first = true;
  for (int i = 0; i < kNumStages; ++i) {
    if (stage_ms[i] <= 0) continue;
    if (!first) *out += ',';
    first = false;
    *out += StageName(static_cast<Stage>(i));
    *out += ':';
    *out += FormatFixed(stage_ms[i]);
  }
  if (first) *out += "(none)";
}

}  // namespace

SlowLog::SlowLog(size_t capacity) : capacity_(capacity > 0 ? capacity : 1) {}

SlowLog& SlowLog::Default() {
  // Leaked so shutdown-order races with late traces cannot touch a
  // destroyed ring (same lifetime policy as metrics::Registry).
  static SlowLog* ring = new SlowLog();
  return *ring;
}

void SlowLog::Add(SlowQueryEntry entry) {
  MutexLock lock(mu_);
  entry.id = next_id_++;
  ring_.push_back(std::move(entry));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<SlowQueryEntry> SlowLog::Last(size_t n) const {
  MutexLock lock(mu_);
  const size_t count = std::min(n, ring_.size());
  std::vector<SlowQueryEntry> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]);
  }
  return out;
}

size_t SlowLog::Len() const {
  MutexLock lock(mu_);
  return ring_.size();
}

uint64_t SlowLog::TotalAdded() const {
  MutexLock lock(mu_);
  return next_id_ - 1;
}

void SlowLog::Reset() {
  MutexLock lock(mu_);
  ring_.clear();
}

TraceStore::TraceStore(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

TraceStore& TraceStore::Default() {
  // Leaked for the same reason as SlowLog::Default().
  static TraceStore* ring = new TraceStore();
  return *ring;
}

void TraceStore::Add(CompletedTrace trace) {
  MutexLock lock(mu_);
  ring_.push_back(std::move(trace));
  while (ring_.size() > capacity_) ring_.pop_front();
}

std::vector<CompletedTrace> TraceStore::Last(size_t n) const {
  MutexLock lock(mu_);
  const size_t count = std::min(n, ring_.size());
  std::vector<CompletedTrace> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    out.push_back(ring_[ring_.size() - 1 - i]);
  }
  return out;
}

std::optional<CompletedTrace> TraceStore::Find(uint64_t trace_id) const {
  MutexLock lock(mu_);
  for (size_t i = ring_.size(); i > 0; --i) {
    if (ring_[i - 1].trace_id == trace_id) return ring_[i - 1];
  }
  return std::nullopt;
}

size_t TraceStore::Len() const {
  MutexLock lock(mu_);
  return ring_.size();
}

void TraceStore::Reset() {
  MutexLock lock(mu_);
  ring_.clear();
}

std::string RenderSlowLogText(const std::vector<SlowQueryEntry>& entries) {
  if (entries.empty()) return "(empty)";
  std::string out;
  for (const SlowQueryEntry& entry : entries) {
    if (!out.empty()) out += '\n';
    out += "id=" + std::to_string(entry.id);
    out += " trace=" + FormatTraceId(entry.trace_id);
    if (entry.fingerprint != 0) {
      out += " fingerprint=" + FormatTraceId(entry.fingerprint);
    }
    out += " time=" + FormatWallTime(entry.wall_start_us);
    out += " total_ms=" + FormatFixed(entry.total_ms);
    out += " source=" + entry.component;
    if (!entry.detail.empty()) out += " algorithm=" + entry.detail;
    out += " query=\"" + entry.query + "\"";
    out += " stages=";
    AppendStagesText(&out, entry.stage_ms);
  }
  return out;
}

std::string RenderSlowLogJson(const std::vector<SlowQueryEntry>& entries) {
  std::string out = "{\"entries\":[";
  bool first_entry = true;
  for (const SlowQueryEntry& entry : entries) {
    if (!first_entry) out += ',';
    first_entry = false;
    out += "{\"id\":" + std::to_string(entry.id);
    out += ",\"trace_id\":\"" + FormatTraceId(entry.trace_id) + "\"";
    out += ",\"fingerprint\":\"" + FormatTraceId(entry.fingerprint) + "\"";
    out += ",\"time\":\"" + FormatWallTime(entry.wall_start_us) + "\"";
    out += ",\"unix_us\":" + std::to_string(entry.wall_start_us);
    out += ",\"total_ms\":" + FormatFixed(entry.total_ms);
    out += ",\"source\":\"";
    AppendJsonEscaped(&out, entry.component);
    out += "\",\"algorithm\":\"";
    AppendJsonEscaped(&out, entry.detail);
    out += "\",\"query\":\"";
    AppendJsonEscaped(&out, entry.query);
    out += "\",\"stages\":{";
    bool first_stage = true;
    for (int i = 0; i < kNumStages; ++i) {
      if (entry.stage_ms[i] <= 0) continue;
      if (!first_stage) out += ',';
      first_stage = false;
      out += '"';
      out += StageName(static_cast<Stage>(i));
      out += "\":" + FormatFixed(entry.stage_ms[i]);
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string RenderTraceText(const std::vector<CompletedTrace>& traces) {
  if (traces.empty()) return "(empty)";
  std::string out;
  for (const CompletedTrace& trace : traces) {
    if (!out.empty()) out += '\n';
    out += "trace " + FormatTraceId(trace.trace_id);
    out += " time=" + FormatWallTime(trace.wall_start_us);
    out += " source=" + trace.component;
    out += " total_ms=" + FormatFixed(trace.total_ms);
    out += trace.slow ? " slow=yes" : " slow=no";
    if (!trace.detail.empty()) out += " algorithm=" + trace.detail;
    out += " query=\"" + trace.query + "\"";
    out += " spans=" + std::to_string(trace.spans.size());
    if (trace.dropped_spans > 0) {
      out += " dropped=" + std::to_string(trace.dropped_spans);
    }
    std::vector<TraceSpan> ordered = trace.spans;
    std::stable_sort(ordered.begin(), ordered.end(),
                     [](const TraceSpan& a, const TraceSpan& b) {
                       return a.start_us < b.start_us;
                     });
    for (const TraceSpan& span : ordered) {
      out += '\n';
      out.append(2 * static_cast<size_t>(std::max(span.depth, 1)), ' ');
      out += "+" + FormatFixed(span.start_us / 1000.0) + "ms ";
      out += FormatFixed(span.duration_us / 1000.0) + "ms ";
      out += "[t" + std::to_string(span.thread) + "] ";
      out += span.name;
    }
  }
  return out;
}

std::string ChromeTraceJson(const std::vector<CompletedTrace>& traces) {
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto append_event = [&](std::string_view name, double ts_us, double dur_us,
                          uint32_t tid, const std::string& args) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    AppendJsonEscaped(&out, name);
    out += "\",\"ph\":\"X\",\"ts\":" + FormatFixed(ts_us);
    out += ",\"dur\":" + FormatFixed(std::max(dur_us, 0.0));
    out += ",\"pid\":1,\"tid\":" + std::to_string(tid);
    out += ",\"args\":{" + args + "}}";
  };
  for (const CompletedTrace& trace : traces) {
    std::string args = "\"trace_id\":\"" + FormatTraceId(trace.trace_id) +
                       "\",\"query\":\"";
    AppendJsonEscaped(&args, trace.query);
    args += "\",\"slow\":";
    args += trace.slow ? "true" : "false";
    const double base_us = static_cast<double>(trace.wall_start_us);
    append_event(trace.component, base_us, trace.total_ms * 1000.0,
                 trace.thread, args);
    for (const TraceSpan& span : trace.spans) {
      append_event(span.name, base_us + span.start_us, span.duration_us,
                   span.thread,
                   "\"depth\":" + std::to_string(span.depth));
    }
  }
  out += "]}";
  return out;
}

}  // namespace lotusx::trace
