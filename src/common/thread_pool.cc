#include "common/thread_pool.h"

#include <string>
#include <utility>

#include "common/logging.h"
#include "common/profiler.h"

namespace lotusx {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  CHECK_GT(num_threads, 0u);
  CHECK_GT(queue_capacity, 0u);
  metrics::Registry& registry = metrics::Registry::Default();
  queue_depth_gauge_ = registry.GetGauge("lotusx_threadpool_queue_depth");
  tasks_total_ = registry.GetCounter("lotusx_threadpool_tasks_total");
  task_wait_usec_ = registry.GetHistogram("lotusx_threadpool_task_wait_usec");
  task_run_usec_ = registry.GetHistogram("lotusx_threadpool_task_run_usec");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] {
      // Wall-mode profiles sample registered threads only; naming the
      // workers makes pool time attributable in collapsed stacks.
      prof::ScopedThreadRegistration registration("worker-" +
                                                  std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::EnqueueLocked(PendingTask task) {
  queue_.push_back(std::move(task));
  tasks_total_->Increment();
  queue_depth_gauge_->Add(1);
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    while (!shutdown_ && queue_.size() >= queue_capacity_) {
      not_full_.Wait(mu_);
    }
    if (shutdown_) return false;
    EnqueueLocked(PendingTask{std::move(task), Timer()});
  }
  not_empty_.Signal();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    MutexLock lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    EnqueueLocked(PendingTask{std::move(task), Timer()});
  }
  not_empty_.Signal();
  return true;
}

void ThreadPool::Shutdown() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  not_empty_.SignalAll();
  not_full_.SignalAll();
  // join_mu_ elects one caller to join the workers. Concurrent (and
  // later) callers block here until the winner is done, observe
  // joined_, and return — so no Shutdown() call ever returns while a
  // worker is still running, and no thread is joined twice.
  MutexLock join_lock(join_mu_);
  if (joined_) return;
  for (std::thread& worker : workers_) {
    worker.join();
  }
  joined_ = true;
}

size_t ThreadPool::queue_depth() const {
  MutexLock lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    PendingTask task;
    {
      MutexLock lock(mu_);
      while (!shutdown_ && queue_.empty()) {
        not_empty_.Wait(mu_);
      }
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Add(-1);
    }
    not_full_.Signal();
    if (metrics::Enabled()) {
      task_wait_usec_->Observe(task.queued.ElapsedMicros());
      Timer run_timer;
      task.fn();
      task_run_usec_->Observe(run_timer.ElapsedMicros());
    } else {
      task.fn();
    }
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace lotusx
