#include "common/thread_pool.h"

#include <utility>

#include "common/logging.h"

namespace lotusx {

ThreadPool::ThreadPool(size_t num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity) {
  CHECK_GT(num_threads, 0u);
  CHECK_GT(queue_capacity, 0u);
  metrics::Registry& registry = metrics::Registry::Default();
  queue_depth_gauge_ = registry.GetGauge("lotusx_threadpool_queue_depth");
  tasks_total_ = registry.GetCounter("lotusx_threadpool_tasks_total");
  task_wait_usec_ = registry.GetHistogram("lotusx_threadpool_task_wait_usec");
  task_run_usec_ = registry.GetHistogram("lotusx_threadpool_task_run_usec");
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Enqueued() {
  tasks_total_->Increment();
  queue_depth_gauge_->Add(1);
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] {
      return shutdown_ || queue_.size() < queue_capacity_;
    });
    if (shutdown_) return false;
    queue_.push_back(PendingTask{std::move(task), Timer()});
    Enqueued();
  }
  not_empty_.notify_one();
  return true;
}

bool ThreadPool::TrySubmit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_ || queue_.size() >= queue_capacity_) return false;
    queue_.push_back(PendingTask{std::move(task), Timer()});
    Enqueued();
  }
  not_empty_.notify_one();
  return true;
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  // join_mu_ serializes concurrent Shutdown() callers: the loser blocks
  // until the winner has joined every worker (joinable() is then false),
  // so no caller returns while workers are still running.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

size_t ThreadPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    PendingTask task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Add(-1);
    }
    not_full_.notify_one();
    if (metrics::Enabled()) {
      task_wait_usec_->Observe(task.queued.ElapsedMicros());
      Timer run_timer;
      task.fn();
      task_run_usec_->Observe(run_timer.ElapsedMicros());
    } else {
      task.fn();
    }
  }
}

size_t ThreadPool::DefaultThreadCount() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

}  // namespace lotusx
