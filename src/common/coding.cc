#include "common/coding.h"

#include <cstdio>
#include <limits>

namespace lotusx {

void Encoder::PutFixed32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutFixed64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

void Encoder::PutVarint32(uint32_t value) { PutVarint64(value); }

void Encoder::PutVarint64(uint64_t value) {
  while (value >= 0x80) {
    out_->push_back(static_cast<char>((value & 0x7F) | 0x80));
    value >>= 7;
  }
  out_->push_back(static_cast<char>(value));
}

void Encoder::PutString(std::string_view value) {
  PutVarint32(static_cast<uint32_t>(value.size()));
  out_->append(value.data(), value.size());
}

void Encoder::PutSortedU32List(const std::vector<uint32_t>& values) {
  PutVarint64(values.size());
  uint32_t previous = 0;
  for (uint32_t v : values) {
    PutVarint32(v - previous);
    previous = v;
  }
}

void Encoder::PutU32List(const std::vector<uint32_t>& values) {
  PutVarint64(values.size());
  for (uint32_t v : values) PutVarint32(v);
}

Status Decoder::GetFixed32(uint32_t* value) {
  if (remaining() < 4) return Status::Corruption("truncated fixed32");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  *value = v;
  return Status::OK();
}

Status Decoder::GetFixed64(uint64_t* value) {
  if (remaining() < 8) return Status::Corruption("truncated fixed64");
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  *value = v;
  return Status::OK();
}

Status Decoder::GetVarint32(uint32_t* value) {
  uint64_t v = 0;
  LOTUSX_RETURN_IF_ERROR(GetVarint64(&v));
  if (v > UINT32_MAX) return Status::Corruption("varint32 overflow");
  *value = static_cast<uint32_t>(v);
  return Status::OK();
}

Status Decoder::GetVarint64(uint64_t* value) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (pos_ >= data_.size()) return Status::Corruption("truncated varint");
    if (shift >= 64) return Status::Corruption("varint too long");
    unsigned char byte = static_cast<unsigned char>(data_[pos_++]);
    // At shift 63 only the low bit still fits; a 10th byte above 1 would
    // silently shift its payload out, decoding an overlong input to a
    // wrong value instead of rejecting it.
    if (shift == 63 && byte > 1) {
      return Status::Corruption("varint overflows uint64");
    }
    v |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  *value = v;
  return Status::OK();
}

Status Decoder::GetString(std::string* value) {
  uint32_t size = 0;
  LOTUSX_RETURN_IF_ERROR(GetVarint32(&size));
  if (remaining() < size) return Status::Corruption("truncated string");
  value->assign(data_.data() + pos_, size);
  pos_ += size;
  return Status::OK();
}

Status Decoder::GetSortedU32List(std::vector<uint32_t>* values) {
  uint64_t count = 0;
  LOTUSX_RETURN_IF_ERROR(GetVarint64(&count));
  if (count > remaining()) {
    // Each element takes at least one byte; reject absurd counts before
    // reserving memory for them.
    return Status::Corruption("sorted list count exceeds buffer");
  }
  values->clear();
  values->reserve(count);
  uint32_t current = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t delta = 0;
    LOTUSX_RETURN_IF_ERROR(GetVarint32(&delta));
    // A wrapping accumulator would silently break the sortedness the
    // callers (posting lists, tag streams) rely on.
    if (delta > std::numeric_limits<uint32_t>::max() - current) {
      return Status::Corruption("sorted list overflows uint32");
    }
    current += delta;
    values->push_back(current);
  }
  return Status::OK();
}

Status Decoder::GetU32List(std::vector<uint32_t>* values) {
  uint64_t count = 0;
  LOTUSX_RETURN_IF_ERROR(GetVarint64(&count));
  if (count > remaining()) {
    return Status::Corruption("list count exceeds buffer");
  }
  values->clear();
  values->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t v = 0;
    LOTUSX_RETURN_IF_ERROR(GetVarint32(&v));
    values->push_back(v);
  }
  return Status::OK();
}

Status ReadFileToString(const std::string& path, std::string* contents) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::IOError("cannot open for read: " + path);
  }
  contents->clear();
  char buffer[1 << 16];
  size_t read = 0;
  while ((read = std::fread(buffer, 1, sizeof(buffer), file)) > 0) {
    contents->append(buffer, read);
  }
  bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) return Status::IOError("read error: " + path);
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IOError("cannot open for write: " + path);
  }
  size_t written = std::fwrite(contents.data(), 1, contents.size(), file);
  bool failed = written != contents.size();
  failed |= std::fclose(file) != 0;
  if (failed) return Status::IOError("write error: " + path);
  return Status::OK();
}

}  // namespace lotusx
