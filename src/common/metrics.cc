#include "common/metrics.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"

namespace lotusx::metrics {

namespace {

std::atomic<bool> g_enabled{true};

/// Portable atomic add for doubles (fetch_add on atomic<double> is C++20
/// but spotty across standard libraries).
void AtomicAddDouble(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

/// `name{k="v",k2="v2"}`; label values escape \, ", and newlines per the
/// Prometheus text format.
std::string RenderId(std::string_view name, const Labels& labels) {
  std::string id(name);
  if (labels.empty()) return id;
  id += '{';
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) id += ',';
    id += labels[i].first;
    id += "=\"";
    for (char c : labels[i].second) {
      if (c == '\\' || c == '"') id += '\\';
      if (c == '\n') {
        id += "\\n";
        continue;
      }
      id += c;
    }
    id += '"';
  }
  id += '}';
  return id;
}

/// The histogram series id with an extra label appended (for le="...").
std::string RenderIdWith(std::string_view name, const Labels& labels,
                         std::string_view key, std::string_view value) {
  Labels extended = labels;
  extended.emplace_back(std::string(key), std::string(value));
  return RenderId(name, extended);
}

}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }

bool SetEnabled(bool enabled) {
  return g_enabled.exchange(enabled, std::memory_order_relaxed);
}

double HistogramSnapshot::Quantile(double q) const {
  if (count == 0 || counts.empty()) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(count);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    const uint64_t before = cumulative;
    cumulative += counts[i];
    if (static_cast<double>(cumulative) < target) continue;
    if (i >= bounds.size()) {
      // Overflow bucket: the largest finite bound is the best answer.
      return bounds.empty() ? 0 : bounds.back();
    }
    const double lower = i == 0 ? 0 : bounds[i - 1];
    const double upper = bounds[i];
    if (counts[i] == 0) return upper;
    const double fraction =
        (target - static_cast<double>(before)) / static_cast<double>(counts[i]);
    return lower + (upper - lower) * std::clamp(fraction, 0.0, 1.0);
  }
  return bounds.empty() ? 0 : bounds.back();
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1) {
  CHECK(std::is_sorted(bounds_.begin(), bounds_.end()))
      << "histogram bucket bounds must be sorted";
}

void Histogram::Observe(double value) {
  const size_t bucket = static_cast<size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), value) -
      bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  AtomicAddDouble(sum_, value);
  // Release-publish: a snapshot that reads `count` with acquire ordering
  // is guaranteed to see the bucket and sum contributions of at least
  // that many observations.
  count_.fetch_add(1, std::memory_order_release);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  snapshot.count = count_.load(std::memory_order_acquire);
  snapshot.sum = sum_.load(std::memory_order_relaxed);
  snapshot.bounds = bounds_;
  snapshot.counts.reserve(counts_.size());
  for (const std::atomic<uint64_t>& bucket : counts_) {
    snapshot.counts.push_back(bucket.load(std::memory_order_relaxed));
  }
  return snapshot;
}

void Histogram::ResetForTest() {
  for (std::atomic<uint64_t>& bucket : counts_) {
    bucket.store(0, std::memory_order_relaxed);
  }
  sum_.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
}

const std::vector<double>& Histogram::LatencyBucketsUsec() {
  static const std::vector<double> buckets = {
      1,      2.5,    5,      10,     25,     50,     100,   250,
      500,    1e3,    2.5e3,  5e3,    1e4,    2.5e4,  5e4,   1e5,
      2.5e5,  5e5,    1e6,    2.5e6,  5e6,    1e7};
  return buckets;
}

Registry& Registry::Default() {
  // Leaked on purpose: metric pointers cached in function-local statics
  // (and bumped from detached worker threads) must outlive every user.
  static Registry* registry = new Registry();
  return *registry;
}

template <typename Metric, typename... Args>
Metric* Registry::FindOrCreateLocked(EntryMap<Metric>& entries,
                                     const std::string& id,
                                     std::string_view name,
                                     const Labels& labels, Args&&... args) {
  auto it = entries.find(id);
  if (it == entries.end()) {
    auto entry = std::make_unique<Entry<Metric>>();
    entry->name = std::string(name);
    entry->labels = labels;
    entry->metric = std::make_unique<Metric>(std::forward<Args>(args)...);
    it = entries.emplace(id, std::move(entry)).first;
  }
  return it->second->metric.get();
}

Counter* Registry::GetCounter(std::string_view name, const Labels& labels) {
  const std::string id = RenderId(name, labels);
  MutexLock lock(mu_);
  return FindOrCreateLocked(counters_, id, name, labels);
}

Gauge* Registry::GetGauge(std::string_view name, const Labels& labels) {
  const std::string id = RenderId(name, labels);
  MutexLock lock(mu_);
  return FindOrCreateLocked(gauges_, id, name, labels);
}

Histogram* Registry::GetHistogram(std::string_view name, const Labels& labels,
                                  const std::vector<double>& bounds) {
  const std::string id = RenderId(name, labels);
  MutexLock lock(mu_);
  return FindOrCreateLocked(histograms_, id, name, labels, bounds);
}

MetricsSnapshot Registry::Snapshot() const {
  MetricsSnapshot snapshot;
  MutexLock lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [id, entry] : counters_) {
    snapshot.counters.push_back(
        {entry->name, entry->labels, entry->metric->value()});
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [id, entry] : gauges_) {
    snapshot.gauges.push_back(
        {entry->name, entry->labels, entry->metric->value()});
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [id, entry] : histograms_) {
    snapshot.histograms.push_back(
        {entry->name, entry->labels, entry->metric->Snapshot()});
  }
  return snapshot;
}

void Registry::ResetForTest() {
  MutexLock lock(mu_);
  for (auto& [id, entry] : counters_) entry->metric->ResetForTest();
  for (auto& [id, entry] : gauges_) entry->metric->ResetForTest();
  for (auto& [id, entry] : histograms_) entry->metric->ResetForTest();
}

std::string MetricsSnapshot::ToText() const {
  std::string out;
  for (const CounterValue& counter : counters) {
    out += RenderId(counter.name, counter.labels);
    out += ' ';
    out += std::to_string(counter.value);
    out += '\n';
  }
  for (const GaugeValue& gauge : gauges) {
    out += RenderId(gauge.name, gauge.labels);
    out += ' ';
    out += std::to_string(gauge.value);
    out += '\n';
  }
  for (const HistogramValue& histogram : histograms) {
    const HistogramSnapshot& h = histogram.histogram;
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      const std::string le =
          i < h.bounds.size() ? FormatDouble(h.bounds[i]) : "+Inf";
      out += RenderIdWith(histogram.name + "_bucket", histogram.labels, "le",
                          le);
      out += ' ';
      out += std::to_string(cumulative);
      out += '\n';
    }
    out += RenderId(histogram.name + "_sum", histogram.labels);
    out += ' ';
    out += FormatDouble(h.sum);
    out += '\n';
    out += RenderId(histogram.name + "_count", histogram.labels);
    out += ' ';
    out += std::to_string(h.count);
    out += '\n';
  }
  return out;
}

uint64_t MetricsSnapshot::CounterTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const CounterValue& counter : counters) {
    if (counter.name == name) total += counter.value;
  }
  return total;
}

uint64_t MetricsSnapshot::HistogramCountTotal(std::string_view name) const {
  uint64_t total = 0;
  for (const HistogramValue& histogram : histograms) {
    if (histogram.name == name) total += histogram.histogram.count;
  }
  return total;
}

int64_t MetricsSnapshot::GaugeValueOr(std::string_view name,
                                      int64_t fallback) const {
  for (const GaugeValue& gauge : gauges) {
    if (gauge.name == name) return gauge.value;
  }
  return fallback;
}

}  // namespace lotusx::metrics
