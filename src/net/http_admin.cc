#include "net/http_admin.h"

#include <algorithm>
#include <cctype>

namespace lotusx::net {

namespace {

std::string ToLower(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    out.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  return out;
}

/// The terminator of the header block starting at `from`, or npos.
/// Accepts bare-LF framing alongside CRLF so `printf | nc` works.
size_t FindHeaderEnd(const std::string& buffer, size_t* terminator_len) {
  const size_t crlf = buffer.find("\r\n\r\n");
  const size_t lf = buffer.find("\n\n");
  if (crlf == std::string::npos && lf == std::string::npos) {
    return std::string::npos;
  }
  if (crlf != std::string::npos && (lf == std::string::npos || crlf < lf)) {
    *terminator_len = 4;
    return crlf;
  }
  *terminator_len = 2;
  return lf;
}

HttpResponse ErrorResponse(int status) {
  HttpResponse response;
  response.status = status;
  response.body = std::string(HttpStatusText(status)) + "\n";
  return response;
}

}  // namespace

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 431:
      return "Request Header Fields Too Large";
    case 503:
      return "Service Unavailable";
    default:
      return "Error";
  }
}

std::string EncodeHttpResponse(const HttpResponse& response, bool head_only,
                               bool keep_alive) {
  std::string out = keep_alive ? "HTTP/1.1 " : "HTTP/1.0 ";
  out += std::to_string(response.status);
  out += ' ';
  out += HttpStatusText(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += keep_alive ? "\r\nConnection: keep-alive" : "\r\nConnection: close";
  out += "\r\n\r\n";
  if (!head_only) out += response.body;
  return out;
}

HttpConnectionState::HttpConnectionState(size_t max_request_bytes)
    : max_request_bytes_(max_request_bytes) {}

bool HttpConnectionState::Feed(std::string_view data,
                               const HttpHandler& handler, std::string* out) {
  if (failed_) return false;
  buffer_.append(data);
  for (;;) {
    size_t terminator_len = 0;
    const size_t header_end = FindHeaderEnd(buffer_, &terminator_len);
    if (header_end == std::string::npos) {
      // An attacker streaming an endless request line must not grow the
      // buffer without bound; 431 matches "your headers never ended".
      if (buffer_.size() > max_request_bytes_) {
        *out += EncodeHttpResponse(ErrorResponse(431), /*head_only=*/false,
                                   /*keep_alive=*/false);
        failed_ = true;
        return false;
      }
      return true;  // incomplete: wait for more bytes
    }
    const bool keep = DispatchOne(header_end, handler, out);
    buffer_.erase(0, header_end + terminator_len);
    if (!keep) {
      failed_ = true;
      return false;
    }
  }
}

bool HttpConnectionState::DispatchOne(size_t header_end,
                                      const HttpHandler& handler,
                                      std::string* out) {
  const std::string_view head =
      std::string_view(buffer_).substr(0, header_end);
  const size_t line_end = head.find('\n');
  std::string_view request_line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  if (!request_line.empty() && request_line.back() == '\r') {
    request_line.remove_suffix(1);
  }

  // METHOD SP TARGET SP VERSION
  const size_t method_end = request_line.find(' ');
  const size_t target_end =
      method_end == std::string_view::npos
          ? std::string_view::npos
          : request_line.find(' ', method_end + 1);
  if (method_end == std::string_view::npos ||
      target_end == std::string_view::npos) {
    *out += EncodeHttpResponse(ErrorResponse(400), /*head_only=*/false,
                               /*keep_alive=*/false);
    return false;
  }
  const std::string_view method = request_line.substr(0, method_end);
  std::string_view target =
      request_line.substr(method_end + 1, target_end - method_end - 1);
  const std::string_view version = request_line.substr(target_end + 1);

  // Version before method: a line whose third token is not an HTTP
  // version is not an HTTP request at all (400), whereas 405 is for
  // well-formed requests using a verb this plane doesn't serve.
  if (version != "HTTP/1.0" && version != "HTTP/1.1") {
    *out += EncodeHttpResponse(ErrorResponse(400), /*head_only=*/false,
                               /*keep_alive=*/false);
    return false;
  }
  if (method != "GET" && method != "HEAD") {
    *out += EncodeHttpResponse(ErrorResponse(405), /*head_only=*/false,
                               /*keep_alive=*/false);
    return false;
  }

  // HTTP/1.1 defaults to keep-alive unless the client opts out; 1.0
  // always closes (no `keep-alive` negotiation in a minimal plane).
  bool keep_alive = version == "HTTP/1.1";
  if (keep_alive &&
      ToLower(head).find("connection: close") != std::string::npos) {
    keep_alive = false;
  }

  // Split the target at the first '?': handlers match on the bare
  // path and parse the (undecoded) query string when they want it.
  std::string_view query_string;
  const size_t query = target.find('?');
  if (query != std::string_view::npos) {
    query_string = target.substr(query + 1);
    target = target.substr(0, query);
  }

  const HttpResponse response = handler(target, query_string);
  *out += EncodeHttpResponse(response, /*head_only=*/method == "HEAD",
                             keep_alive);
  return keep_alive;
}

}  // namespace lotusx::net
