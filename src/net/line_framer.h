#ifndef LOTUSX_NET_LINE_FRAMER_H_
#define LOTUSX_NET_LINE_FRAMER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lotusx::net {

/// Incremental request framer for the wire protocol: commands arrive as
/// '\n'-terminated lines (an optional preceding '\r' is stripped, so
/// netcat/telnet-style CRLF clients just work). TCP gives no message
/// boundaries — one read may carry half a command or fifty — so the
/// framer buffers the trailing partial line between Feed() calls.
///
/// A line longer than `max_line_bytes` poisons the framer: the byte
/// stream can no longer be resynchronized (the overlong "line" may run to
/// the end of the connection), so Feed() keeps failing and the caller is
/// expected to report the error and close. Single-threaded; every
/// Connection owns one, touched only by the event loop.
class LineFramer {
 public:
  explicit LineFramer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  /// Consumes `data`, appending every completed line (terminator removed)
  /// to `*lines`. Returns InvalidArgument once a line exceeds
  /// max_line_bytes; completed lines framed before the overflow are still
  /// delivered on that call.
  Status Feed(std::string_view data, std::vector<std::string>* lines);

  /// Bytes of the buffered partial line.
  size_t buffered() const { return partial_.size(); }
  bool poisoned() const { return poisoned_; }

 private:
  const size_t max_line_bytes_;
  std::string partial_;
  bool poisoned_ = false;
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_LINE_FRAMER_H_
