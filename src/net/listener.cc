#include "net/listener.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace lotusx::net {

namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<Listener> Listener::Bind(const std::string& host, uint16_t port,
                                  int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return Status::IOError(Errno("socket"));

  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad listen address '" + host + "'");
  }
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::IOError(Errno("bind " + host + ":" +
                                          std::to_string(port)));
    ::close(fd);
    return status;
  }
  if (::listen(fd, backlog) != 0) {
    Status status = Status::IOError(Errno("listen"));
    ::close(fd);
    return status;
  }

  // Recover the kernel-assigned port when the caller asked for port 0.
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    Status status = Status::IOError(Errno("getsockname"));
    ::close(fd);
    return status;
  }
  return Listener(fd, ntohs(bound.sin_port));
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(other.port_) {}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = other.port_;
  }
  return *this;
}

Listener::~Listener() { Close(); }

StatusOr<int> Listener::Accept() {
  if (fd_ < 0) return Status::FailedPrecondition("listener is closed");
  int conn = ::accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (conn >= 0) {
    int one = 1;
    ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return conn;
  }
  if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
  return Status::IOError(Errno("accept"));
}

void Listener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

}  // namespace lotusx::net
