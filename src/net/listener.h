#ifndef LOTUSX_NET_LISTENER_H_
#define LOTUSX_NET_LISTENER_H_

#include <cstdint>
#include <string>

#include "common/status_or.h"

namespace lotusx::net {

/// A bound, listening, non-blocking TCP socket. Move-only RAII over the
/// file descriptor; the Server owns one and polls it through epoll.
class Listener {
 public:
  /// Binds and listens on host:port (port 0 picks an ephemeral port;
  /// port() reports the real one). SO_REUSEADDR is set so restarts do
  /// not trip over TIME_WAIT.
  static StatusOr<Listener> Bind(const std::string& host, uint16_t port,
                                 int backlog);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Accepts one pending connection as a non-blocking, close-on-exec fd.
  /// Returns OK(-1) when no connection is pending (EAGAIN) — the caller
  /// re-arms epoll — and an error Status on real accept failures.
  StatusOr<int> Accept();

  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  Listener(int fd, uint16_t port) : fd_(fd), port_(port) {}

  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_LISTENER_H_
