#ifndef LOTUSX_NET_SERVER_H_
#define LOTUSX_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/metrics.h"
#include "common/status_or.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "index/indexed_document.h"
#include "net/connection.h"
#include "net/http_admin.h"
#include "net/listener.h"
#include "session/session.h"

namespace lotusx::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 picks an ephemeral port; Server::port() reports the real one.
  uint16_t port = 0;
  int backlog = 128;
  /// Connections beyond this are answered with one ERR frame and closed.
  size_t max_connections = 1024;
  size_t max_line_bytes = 64 * 1024;
  size_t max_pipelined_commands = 256;
  size_t max_output_bytes = 4 * 1024 * 1024;
  /// Close connections with no traffic and no queued work after this
  /// long; 0 disables idle timeouts.
  int idle_timeout_ms = 0;
  /// RequestDrain() force-closes stragglers after this long.
  int drain_timeout_ms = 5000;
  /// Command-execution workers; 0 = ThreadPool::DefaultThreadCount().
  size_t num_workers = 0;
  /// HTTP admin plane (GET /metrics, /healthz, /slowlog.json, /tracez,
  /// /statements.json, /profilez, /indexz) on a second listener handled
  /// inline by the event loop. -1
  /// disables; 0 picks an ephemeral port (Server::admin_port() reports
  /// the real one). The admin listener keeps accepting during a drain
  /// so /healthz can answer 503 until the loop exits.
  int admin_port = -1;
  /// Admin connections beyond this are closed on accept.
  size_t max_admin_connections = 32;
  session::SessionOptions session;
};

/// Epoll-based TCP front end for the session protocol.
///
/// One event-loop thread owns every socket: it accepts, reads, frames
/// request lines, writes response frames, and closes. Command execution
/// (Session::Run and friends, the expensive part) is fanned out to a
/// ThreadPool, at most one in-flight batch per connection so each
/// connection's Session stays single-threaded. Workers hand finished
/// responses back through Connection::output_ and wake the loop via an
/// eventfd.
///
/// Responses are byte-counted OK/ERR frames (net/wire.h); requests are
/// newline-terminated command lines, pipelining encouraged — see
/// docs/PROTOCOL.md "Wire transport".
///
/// Shutdown is graceful: RequestDrain() (async-signal-safe, call it from
/// a SIGTERM handler) stops accepting, lets queued commands finish,
/// flushes every response, then the loop exits; AwaitTermination() joins
/// the loop and drains the worker pool. Stop() does both; so does the
/// destructor.
class Server {
 public:
  static StatusOr<std::unique_ptr<Server>> Start(
      const index::IndexedDocument& indexed, ServerOptions options);

  /// Use Start() — this constructor only wires together already-created
  /// resources and is public so the factory can std::make_unique it.
  Server(const index::IndexedDocument& indexed, ServerOptions options,
         Listener listener, std::optional<Listener> admin_listener,
         int epoll_fd, int wake_fd);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  uint16_t port() const { return port_; }
  /// 0 when the admin plane is disabled.
  uint16_t admin_port() const { return admin_port_; }

  /// Begins graceful shutdown and returns immediately. Async-signal-safe
  /// (one atomic store and one eventfd write).
  void RequestDrain();

  /// Blocks until the event loop has exited (i.e. the drain finished or
  /// timed out), then shuts down the worker pool. Safe to call from
  /// multiple threads; must be preceded by RequestDrain() or it waits
  /// forever.
  void AwaitTermination() LOTUSX_EXCLUDES(join_mu_);

  /// RequestDrain() + AwaitTermination().
  void Stop() LOTUSX_EXCLUDES(join_mu_);

  int64_t active_connections() const {
    return active_connections_.load(std::memory_order_relaxed);
  }

  // ------------------------------------------- Connection plumbing
  // (called by Connection from loop and worker threads; not for users)

  /// Runs conn->ExecuteBatch() on the worker pool.
  void SubmitExecution(std::shared_ptr<Connection> conn);

  /// Queues `conn` for loop-side attention (flush/close/re-arm) and
  /// wakes the event loop. Called by workers after framing a response.
  void NotifyDirty(std::shared_ptr<Connection> conn) LOTUSX_EXCLUDES(mu_);

 private:
  void EventLoop() LOTUSX_EXCLUDES(mu_);
  void AcceptPending();
  /// Flush / deferred-error / close / epoll re-arm for one connection.
  void ProcessConnection(const std::shared_ptr<Connection>& conn);
  void ProcessDirty() LOTUSX_EXCLUDES(mu_);
  void UpdateInterest(const std::shared_ptr<Connection>& conn);
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  void CloseIdleConnections();
  void BeginDraining();
  /// epoll_wait timeout: -1 when nothing is time-driven, else a tick
  /// coarse enough to be cheap and fine enough for idle/drain deadlines.
  int WaitTimeoutMs() const;

  // --- admin plane (all on the event-loop thread) ---
  void AcceptAdminPending();
  void HandleAdminEvent(int fd, uint32_t events);
  void UpdateAdminInterest(int fd);
  void CloseAdminConnection(int fd);
  HttpResponse HandleAdminRequest(std::string_view path,
                                  std::string_view query);

  const index::IndexedDocument& indexed_;
  const ServerOptions options_;
  const uint16_t port_;

  // --- event-loop-only state ---
  Listener listener_;
  std::unordered_map<int, std::shared_ptr<Connection>> connections_;
  std::unordered_map<int, uint32_t> registered_events_;
  /// One buffered HTTP admin connection; small enough to live inline
  /// on the loop (responses are registry/ring renders, no engine work).
  struct AdminConnection {
    HttpConnectionState state;
    std::string outbox;
    size_t outbox_offset = 0;
    bool close_after_flush = false;
  };
  std::optional<Listener> admin_listener_;
  uint16_t admin_port_ = 0;
  std::unordered_map<int, AdminConnection> admin_connections_;
  bool draining_ = false;
  Timer drain_clock_;

  const int epoll_fd_;
  const int wake_fd_;  // eventfd: workers + RequestDrain wake the loop

  std::atomic<bool> drain_requested_{false};
  std::atomic<int64_t> active_connections_{0};

  Mutex mu_;
  /// Connections with worker-produced output (or finished batches)
  /// awaiting loop-side processing.
  std::vector<std::shared_ptr<Connection>> dirty_ LOTUSX_GUARDED_BY(mu_);

  Mutex join_mu_;  // elects the AwaitTermination caller that joins
  bool joined_ LOTUSX_GUARDED_BY(join_mu_) = false;

  ThreadPool pool_;
  std::thread loop_thread_;

  metrics::Gauge* connections_gauge_ = nullptr;
  metrics::Counter* accepted_total_ = nullptr;
  metrics::Counter* rejected_total_ = nullptr;
  metrics::Counter* idle_timeouts_total_ = nullptr;
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_SERVER_H_
