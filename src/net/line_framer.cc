#include "net/line_framer.h"

namespace lotusx::net {

Status LineFramer::Feed(std::string_view data,
                        std::vector<std::string>* lines) {
  if (poisoned_) {
    return Status::InvalidArgument("line exceeds " +
                                   std::to_string(max_line_bytes_) +
                                   " bytes");
  }
  size_t pos = 0;
  while (pos < data.size()) {
    size_t newline = data.find('\n', pos);
    if (newline == std::string_view::npos) {
      partial_.append(data.substr(pos));
      break;
    }
    partial_.append(data.substr(pos, newline - pos));
    if (!partial_.empty() && partial_.back() == '\r') partial_.pop_back();
    if (partial_.size() > max_line_bytes_) {
      poisoned_ = true;
      partial_.clear();
      return Status::InvalidArgument("line exceeds " +
                                     std::to_string(max_line_bytes_) +
                                     " bytes");
    }
    lines->push_back(std::move(partial_));
    partial_.clear();
    pos = newline + 1;
  }
  if (partial_.size() > max_line_bytes_) {
    poisoned_ = true;
    partial_.clear();
    return Status::InvalidArgument("line exceeds " +
                                   std::to_string(max_line_bytes_) +
                                   " bytes");
  }
  return Status::OK();
}

}  // namespace lotusx::net
