#include "net/connection.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status_or.h"
#include "common/trace.h"
#include "net/server.h"
#include "net/wire.h"

namespace lotusx::net {

namespace {

metrics::Counter* BytesReadCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter("lotusx_net_bytes_read_total");
  return counter;
}

metrics::Counter* BytesWrittenCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_bytes_written_total");
  return counter;
}

metrics::Counter* CommandsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter("lotusx_net_commands_total");
  return counter;
}

metrics::Counter* CommandErrorsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_command_errors_total");
  return counter;
}

metrics::Counter* FramingErrorsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_framing_errors_total");
  return counter;
}

/// Uppercased first token of the command, collapsed into "other" for
/// verbs outside the whitelist so a hostile client cannot grow the
/// metric registry (or the CLIENTS display) without bound.
std::string ExtractVerb(std::string_view command) {
  static const std::vector<std::string> kVerbs = {
      "ADD",     "TAG",     "EDGE",       "TYPE",       "ACCEPT",
      "TYPEVAL", "VALUE",   "ORDERED",    "OUTPUT",     "MOVE",
      "REMOVE",  "QUERY",   "RUN",        "FIND",       "STATS",
      "EXPLAIN", "XPATH",   "XQUERY",     "SVG",        "SAVECANVAS",
      "LOADCANVAS", "HISTORY", "EXAMPLE", "PARSE",      "CHECKPOINT",
      "UNDO",    "SHOW",    "RESET",      "HELP",       "SLOWLOG",
      "TRACE",   "CLIENTS", "STATEMENTS", "PROFILE"};
  size_t start = 0;
  while (start < command.size() &&
         (command[start] == ' ' || command[start] == '\t')) {
    ++start;
  }
  size_t end = start;
  while (end < command.size() && command[end] != ' ' &&
         command[end] != '\t') {
    ++end;
  }
  std::string verb;
  verb.reserve(end - start);
  for (size_t i = start; i < end; ++i) {
    verb.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(command[i]))));
  }
  if (std::find(kVerbs.begin(), kVerbs.end(), verb) == kVerbs.end()) {
    verb = "other";
  }
  return verb;
}

/// Cached per thread: the registry lookup (global mutex + label-map
/// allocation) is measurable at serving throughput, and the verb set is
/// closed, so the cache stays ~30 entries per worker.
metrics::Histogram* VerbLatency(const std::string& verb) {
  thread_local std::unordered_map<std::string, metrics::Histogram*> cache;
  auto it = cache.find(verb);
  if (it != cache.end()) return it->second;
  metrics::Histogram* histogram = metrics::Registry::Default().GetHistogram(
      "lotusx_net_command_latency_usec", {{"verb", verb}});
  cache.emplace(verb, histogram);
  return histogram;
}

/// "ip:port" of the connected peer, best-effort ("unknown" on failure).
std::string PeerString(int fd) {
  sockaddr_storage addr{};
  socklen_t len = sizeof(addr);
  if (::getpeername(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return "unknown";
  }
  char host[INET6_ADDRSTRLEN] = {0};
  uint16_t port = 0;
  if (addr.ss_family == AF_INET) {
    const auto* v4 = reinterpret_cast<const sockaddr_in*>(&addr);
    ::inet_ntop(AF_INET, &v4->sin_addr, host, sizeof(host));
    port = ntohs(v4->sin_port);
  } else if (addr.ss_family == AF_INET6) {
    const auto* v6 = reinterpret_cast<const sockaddr_in6*>(&addr);
    ::inet_ntop(AF_INET6, &v6->sin6_addr, host, sizeof(host));
    port = ntohs(v6->sin6_port);
  } else {
    return "unknown";
  }
  return std::string(host) + ":" + std::to_string(port);
}

}  // namespace

Connection::Connection(int fd, Server* server,
                       const index::IndexedDocument& indexed,
                       const session::SessionOptions& session_options,
                       const ConnectionLimits& limits)
    : fd_(fd),
      server_(server),
      limits_(limits),
      client_(ClientRegistry::Default().Register(fd, PeerString(fd))),
      framer_(limits.max_line_bytes),
      session_(indexed, session_options),
      interpreter_(&session_) {}

Connection::~Connection() {
  // Usually already gone via MarkClosed; Unregister is idempotent.
  ClientRegistry::Default().Unregister(client_);
}

void Connection::OnReadable() {
  char buf[16384];
  while (!stop_reading_ && !fatal_error_) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      last_activity_.Restart();
      BytesReadCounter()->Increment(static_cast<uint64_t>(n));
      client_->RecordBytesIn(static_cast<uint64_t>(n));
      std::vector<std::string> lines;
      Status framed =
          framer_.Feed(std::string_view(buf, static_cast<size_t>(n)), &lines);
      if (!lines.empty()) EnqueueLines(&lines);
      if (!framed.ok()) {
        // The stream cannot be re-synchronized past an overlong line.
        // The ERR frame is deferred (MaybeEmitFramingError) so responses
        // to commands that preceded the bad line keep their order.
        stop_reading_ = true;
        MutexLock lock(mu_);
        framing_error_ = framed.message();
        break;
      }
      // Backpressure: once the command queue or the un-read response
      // buffer is full, leave the rest in the kernel buffer; the loop
      // drops EPOLLIN until the queues shrink (level-triggered epoll
      // re-signals when we re-subscribe).
      MutexLock lock(mu_);
      if (pending_.size() >= limits_.max_pipelined_commands ||
          output_.size() >= limits_.max_output_bytes) {
        break;
      }
    } else if (n == 0) {
      // Peer half-closed: answer everything already queued, then close.
      stop_reading_ = true;
      MutexLock lock(mu_);
      close_after_flush_ = true;
      break;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      fatal_error_ = true;
      break;
    }
  }
}

void Connection::EnqueueLines(std::vector<std::string>* lines) {
  bool start_batch = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    for (std::string& line : *lines) pending_.push_back(std::move(line));
    client_->SetPipelined(pending_.size());
    if (!task_in_flight_ && !pending_.empty()) {
      task_in_flight_ = true;
      start_batch = true;
    }
  }
  if (start_batch) server_->SubmitExecution(shared_from_this());
}

void Connection::ExecuteBatch() {
  client_->SetInFlight(true);
  for (;;) {
    std::string command;
    {
      MutexLock lock(mu_);
      if (closed_ || pending_.empty()) {
        task_in_flight_ = false;
        client_->SetPipelined(pending_.size());
        break;
      }
      command = std::move(pending_.front());
      pending_.pop_front();
      client_->SetPipelined(pending_.size());
    }
    const std::string verb = ExtractVerb(command);
    client_->SetLastVerb(verb);
    client_->RecordCommand();
    Timer timer;
    StatusOr<std::string> result;
    {
      // Request root: every span and stage recorded anywhere below this
      // command — session, engine, pool chunks — hangs off one trace ID
      // minted here at the connection layer.
      std::optional<trace::QueryTrace> trace;
      if (metrics::Enabled()) {
        // observe_latency=false: the per-verb histogram above already
        // times every command; source="net" in the search-latency
        // series would be redundant and costs contended atomics.
        trace.emplace("net", /*trace_id=*/0, /*observe_latency=*/false);
        trace->set_query_view(command);  // `command` outlives the scope
      }
      result = interpreter_.Execute(command);
      // The session stamps the statement fingerprint on the trace root
      // when the command ran a search; read it back before the root
      // dies so CLIENTS can join this client to its STATEMENTS row.
      if (trace.has_value()) {
        client_->SetLastFingerprint(trace->fingerprint());
      }
    }
    VerbLatency(verb)->Observe(timer.ElapsedMicros());
    CommandsCounter()->Increment();
    std::string frame;
    if (result.ok()) {
      frame = EncodeFrame(true, *result);
    } else {
      CommandErrorsCounter()->Increment();
      frame = EncodeFrame(false, result.status().ToString());
    }
    {
      MutexLock lock(mu_);
      output_.append(frame);
    }
    server_->NotifyDirty(shared_from_this());
  }
  client_->SetInFlight(false);
  // Final wake: the loop may now re-arm EPOLLIN (backpressure released),
  // emit a deferred framing error, or close a drained connection.
  server_->NotifyDirty(shared_from_this());
}

void Connection::FlushWrites() {
  {
    MutexLock lock(mu_);
    if (!output_.empty()) {
      if (write_offset_ == write_buffer_.size()) {
        write_buffer_.clear();
        write_offset_ = 0;
      }
      write_buffer_.append(output_);
      output_.clear();
    }
  }
  while (write_offset_ < write_buffer_.size() && !fatal_error_) {
    ssize_t n = ::send(fd_, write_buffer_.data() + write_offset_,
                       write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      BytesWrittenCounter()->Increment(static_cast<uint64_t>(n));
      client_->RecordBytesOut(static_cast<uint64_t>(n));
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      fatal_error_ = true;
    }
  }
  if (write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
  }
}

void Connection::MaybeEmitFramingError() {
  MutexLock lock(mu_);
  if (framing_error_.empty() || task_in_flight_ || !pending_.empty()) return;
  output_.append(EncodeFrame(false, framing_error_));
  framing_error_.clear();
  close_after_flush_ = true;
  FramingErrorsCounter()->Increment();
}

uint32_t Connection::DesiredEvents() {
  size_t pending_count;
  size_t output_bytes;
  bool error_pending;
  {
    MutexLock lock(mu_);
    pending_count = pending_.size();
    output_bytes = output_.size();
    error_pending = !framing_error_.empty();
  }
  size_t unsent = output_bytes + (write_buffer_.size() - write_offset_);
  uint32_t events = 0;
  if (unsent > 0) events |= EPOLLOUT;
  if (!stop_reading_ && !fatal_error_ && !error_pending &&
      pending_count < limits_.max_pipelined_commands &&
      unsent < limits_.max_output_bytes) {
    events |= EPOLLIN;
  }
  return events;
}

bool Connection::ReadyToClose() {
  if (fatal_error_) return true;
  MutexLock lock(mu_);
  return close_after_flush_ && pending_.empty() && !task_in_flight_ &&
         framing_error_.empty() && output_.empty() &&
         write_offset_ == write_buffer_.size();
}

void Connection::BeginDrain() {
  stop_reading_ = true;
  MutexLock lock(mu_);
  close_after_flush_ = true;
}

void Connection::MarkClosed() {
  ClientRegistry::Default().Unregister(client_);
  MutexLock lock(mu_);
  closed_ = true;
  pending_.clear();
  output_.clear();
}

bool Connection::IdleCandidate() {
  if (write_offset_ < write_buffer_.size()) return false;
  MutexLock lock(mu_);
  return pending_.empty() && !task_in_flight_ && output_.empty() &&
         framing_error_.empty() && !close_after_flush_;
}

}  // namespace lotusx::net
