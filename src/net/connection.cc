#include "net/connection.h"

#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <utility>
#include <vector>

#include "common/metrics.h"
#include "common/status_or.h"
#include "net/server.h"
#include "net/wire.h"

namespace lotusx::net {

namespace {

metrics::Counter* BytesReadCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter("lotusx_net_bytes_read_total");
  return counter;
}

metrics::Counter* BytesWrittenCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_bytes_written_total");
  return counter;
}

metrics::Counter* CommandsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter("lotusx_net_commands_total");
  return counter;
}

metrics::Counter* CommandErrorsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_command_errors_total");
  return counter;
}

metrics::Counter* FramingErrorsCounter() {
  static metrics::Counter* counter =
      metrics::Registry::Default().GetCounter(
          "lotusx_net_framing_errors_total");
  return counter;
}

/// Per-verb latency histogram. Unknown verbs collapse into {verb="other"}
/// so a hostile client cannot grow the metric registry without bound.
metrics::Histogram* VerbLatency(std::string_view command) {
  static const std::vector<std::string> kVerbs = {
      "ADD",     "TAG",     "EDGE",       "TYPE",       "ACCEPT",
      "TYPEVAL", "VALUE",   "ORDERED",    "OUTPUT",     "MOVE",
      "REMOVE",  "QUERY",   "RUN",        "FIND",       "STATS",
      "EXPLAIN", "XPATH",   "XQUERY",     "SVG",        "SAVECANVAS",
      "LOADCANVAS", "HISTORY", "EXAMPLE", "PARSE",      "CHECKPOINT",
      "UNDO",    "SHOW",    "RESET",      "HELP"};
  size_t start = 0;
  while (start < command.size() &&
         (command[start] == ' ' || command[start] == '\t')) {
    ++start;
  }
  size_t end = start;
  while (end < command.size() && command[end] != ' ' &&
         command[end] != '\t') {
    ++end;
  }
  std::string verb;
  verb.reserve(end - start);
  for (size_t i = start; i < end; ++i) {
    verb.push_back(static_cast<char>(
        std::toupper(static_cast<unsigned char>(command[i]))));
  }
  if (std::find(kVerbs.begin(), kVerbs.end(), verb) == kVerbs.end()) {
    verb = "other";
  }
  return metrics::Registry::Default().GetHistogram(
      "lotusx_net_command_latency_usec", {{"verb", verb}});
}

}  // namespace

Connection::Connection(int fd, Server* server,
                       const index::IndexedDocument& indexed,
                       const session::SessionOptions& session_options,
                       const ConnectionLimits& limits)
    : fd_(fd),
      server_(server),
      limits_(limits),
      framer_(limits.max_line_bytes),
      session_(indexed, session_options),
      interpreter_(&session_) {}

Connection::~Connection() = default;

void Connection::OnReadable() {
  char buf[16384];
  while (!stop_reading_ && !fatal_error_) {
    ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      last_activity_.Restart();
      BytesReadCounter()->Increment(static_cast<uint64_t>(n));
      std::vector<std::string> lines;
      Status framed =
          framer_.Feed(std::string_view(buf, static_cast<size_t>(n)), &lines);
      if (!lines.empty()) EnqueueLines(&lines);
      if (!framed.ok()) {
        // The stream cannot be re-synchronized past an overlong line.
        // The ERR frame is deferred (MaybeEmitFramingError) so responses
        // to commands that preceded the bad line keep their order.
        stop_reading_ = true;
        MutexLock lock(mu_);
        framing_error_ = framed.message();
        break;
      }
      // Backpressure: once the command queue or the un-read response
      // buffer is full, leave the rest in the kernel buffer; the loop
      // drops EPOLLIN until the queues shrink (level-triggered epoll
      // re-signals when we re-subscribe).
      MutexLock lock(mu_);
      if (pending_.size() >= limits_.max_pipelined_commands ||
          output_.size() >= limits_.max_output_bytes) {
        break;
      }
    } else if (n == 0) {
      // Peer half-closed: answer everything already queued, then close.
      stop_reading_ = true;
      MutexLock lock(mu_);
      close_after_flush_ = true;
      break;
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      fatal_error_ = true;
      break;
    }
  }
}

void Connection::EnqueueLines(std::vector<std::string>* lines) {
  bool start_batch = false;
  {
    MutexLock lock(mu_);
    if (closed_) return;
    for (std::string& line : *lines) pending_.push_back(std::move(line));
    if (!task_in_flight_ && !pending_.empty()) {
      task_in_flight_ = true;
      start_batch = true;
    }
  }
  if (start_batch) server_->SubmitExecution(shared_from_this());
}

void Connection::ExecuteBatch() {
  for (;;) {
    std::string command;
    {
      MutexLock lock(mu_);
      if (closed_ || pending_.empty()) {
        task_in_flight_ = false;
        break;
      }
      command = std::move(pending_.front());
      pending_.pop_front();
    }
    Timer timer;
    StatusOr<std::string> result = interpreter_.Execute(command);
    VerbLatency(command)->Observe(timer.ElapsedMicros());
    CommandsCounter()->Increment();
    std::string frame;
    if (result.ok()) {
      frame = EncodeFrame(true, *result);
    } else {
      CommandErrorsCounter()->Increment();
      frame = EncodeFrame(false, result.status().ToString());
    }
    {
      MutexLock lock(mu_);
      output_.append(frame);
    }
    server_->NotifyDirty(shared_from_this());
  }
  // Final wake: the loop may now re-arm EPOLLIN (backpressure released),
  // emit a deferred framing error, or close a drained connection.
  server_->NotifyDirty(shared_from_this());
}

void Connection::FlushWrites() {
  {
    MutexLock lock(mu_);
    if (!output_.empty()) {
      if (write_offset_ == write_buffer_.size()) {
        write_buffer_.clear();
        write_offset_ = 0;
      }
      write_buffer_.append(output_);
      output_.clear();
    }
  }
  while (write_offset_ < write_buffer_.size() && !fatal_error_) {
    ssize_t n = ::send(fd_, write_buffer_.data() + write_offset_,
                       write_buffer_.size() - write_offset_, MSG_NOSIGNAL);
    if (n > 0) {
      write_offset_ += static_cast<size_t>(n);
      BytesWrittenCounter()->Increment(static_cast<uint64_t>(n));
    } else if (errno == EINTR) {
      continue;
    } else if (errno == EAGAIN || errno == EWOULDBLOCK) {
      break;
    } else {
      fatal_error_ = true;
    }
  }
  if (write_offset_ == write_buffer_.size()) {
    write_buffer_.clear();
    write_offset_ = 0;
  }
}

void Connection::MaybeEmitFramingError() {
  MutexLock lock(mu_);
  if (framing_error_.empty() || task_in_flight_ || !pending_.empty()) return;
  output_.append(EncodeFrame(false, framing_error_));
  framing_error_.clear();
  close_after_flush_ = true;
  FramingErrorsCounter()->Increment();
}

uint32_t Connection::DesiredEvents() {
  size_t pending_count;
  size_t output_bytes;
  bool error_pending;
  {
    MutexLock lock(mu_);
    pending_count = pending_.size();
    output_bytes = output_.size();
    error_pending = !framing_error_.empty();
  }
  size_t unsent = output_bytes + (write_buffer_.size() - write_offset_);
  uint32_t events = 0;
  if (unsent > 0) events |= EPOLLOUT;
  if (!stop_reading_ && !fatal_error_ && !error_pending &&
      pending_count < limits_.max_pipelined_commands &&
      unsent < limits_.max_output_bytes) {
    events |= EPOLLIN;
  }
  return events;
}

bool Connection::ReadyToClose() {
  if (fatal_error_) return true;
  MutexLock lock(mu_);
  return close_after_flush_ && pending_.empty() && !task_in_flight_ &&
         framing_error_.empty() && output_.empty() &&
         write_offset_ == write_buffer_.size();
}

void Connection::BeginDrain() {
  stop_reading_ = true;
  MutexLock lock(mu_);
  close_after_flush_ = true;
}

void Connection::MarkClosed() {
  MutexLock lock(mu_);
  closed_ = true;
  pending_.clear();
  output_.clear();
}

bool Connection::IdleCandidate() {
  if (write_offset_ < write_buffer_.size()) return false;
  MutexLock lock(mu_);
  return pending_.empty() && !task_in_flight_ && output_.empty() &&
         framing_error_.empty() && !close_after_flush_;
}

}  // namespace lotusx::net
