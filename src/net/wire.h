#ifndef LOTUSX_NET_WIRE_H_
#define LOTUSX_NET_WIRE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lotusx::net {

/// Response framing for the wire protocol (docs/PROTOCOL.md "Wire
/// transport"). Requests are bare command lines; responses are
/// byte-counted so multi-line payloads (SHOW, RUN, STATS, ...) survive
/// pipelining:
///
///   OK <n>\n<n payload bytes>\n      successful command
///   ERR <n>\n<n message bytes>\n     failed command (status text)
///
/// <n> counts the payload bytes only — not the trailing '\n', which is a
/// human-friendliness separator so `nc` output stays readable. An empty
/// payload frames as "OK 0\n\n". Every command line elicits exactly one
/// frame, in order, which is what makes pipelined parsing deterministic.

/// One decoded response frame.
struct Frame {
  bool ok = false;
  std::string payload;
};

/// Renders a frame; `payload` must be unterminated (the interpreter's
/// framing contract, pinned by protocol_test).
std::string EncodeFrame(bool ok, std::string_view payload);

/// Incremental client-side decoder for a stream of frames — the test
/// client and the server bench both parse responses through this.
/// Single-threaded.
class FrameParser {
 public:
  /// Consumes `data`, appending every completed frame to `*frames`.
  /// Returns Corruption on a malformed header and stays failed.
  Status Feed(std::string_view data, std::vector<Frame>* frames);

  /// Bytes buffered toward the next incomplete frame.
  size_t buffered() const { return buffer_.size(); }

 private:
  /// Frame currently being decoded: header not yet complete, or payload
  /// bytes still outstanding.
  enum class State { kHeader, kPayload };

  State state_ = State::kHeader;
  std::string buffer_;
  bool current_ok_ = false;
  size_t payload_remaining_ = 0;
  bool failed_ = false;
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_WIRE_H_
