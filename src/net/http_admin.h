#ifndef LOTUSX_NET_HTTP_ADMIN_H_
#define LOTUSX_NET_HTTP_ADMIN_H_

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace lotusx::net {

/// Minimal server-side HTTP/1.0-1.1 machinery for the admin plane
/// (/metrics, /healthz, /slowlog.json, /tracez). Deliberately tiny:
/// GET and HEAD only, request bodies ignored, no chunked encoding, no
/// TLS. Kept socket-free so the parser is unit-testable byte-by-byte;
/// the Server feeds it from the event loop.

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Reason phrase for the handful of statuses the admin plane emits.
std::string_view HttpStatusText(int status);

/// Serializes status line + headers (+ body unless `head_only`).
/// `keep_alive` picks the HTTP/1.1 + keep-alive form; otherwise the
/// response closes the connection (HTTP/1.0 semantics).
std::string EncodeHttpResponse(const HttpResponse& response, bool head_only,
                               bool keep_alive);

/// Maps a request to a response. `path` has the query string already
/// split off; `query` is everything after the first '?' (empty when
/// the target had none), undecoded — handlers that take parameters
/// (e.g. /profilez?seconds=2) parse it themselves.
using HttpHandler =
    std::function<HttpResponse(std::string_view path, std::string_view query)>;

/// Incremental per-connection request parser. Feed() consumes raw
/// socket bytes, dispatches every complete request to `handler`, and
/// appends the encoded responses to `*out` — sequential pipelined GETs
/// in one read are all answered. Returns false when the connection
/// must close once `*out` has flushed: a malformed or oversized
/// request (answered with 400/405/431), an HTTP/1.0 request, or an
/// explicit `Connection: close`.
class HttpConnectionState {
 public:
  explicit HttpConnectionState(size_t max_request_bytes = 8192);

  bool Feed(std::string_view data, const HttpHandler& handler,
            std::string* out);

 private:
  /// Handles the buffered complete request ending at `header_end`.
  /// Returns false to close (error or no keep-alive).
  bool DispatchOne(size_t header_end, const HttpHandler& handler,
                   std::string* out);

  const size_t max_request_bytes_;
  std::string buffer_;
  bool failed_ = false;
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_HTTP_ADMIN_H_
