#include "net/wire.h"

#include <cstdlib>

namespace lotusx::net {

std::string EncodeFrame(bool ok, std::string_view payload) {
  std::string frame;
  frame.reserve(payload.size() + 16);
  frame.append(ok ? "OK " : "ERR ");
  frame.append(std::to_string(payload.size()));
  frame.push_back('\n');
  frame.append(payload);
  frame.push_back('\n');
  return frame;
}

Status FrameParser::Feed(std::string_view data, std::vector<Frame>* frames) {
  if (failed_) return Status::Corruption("frame stream already corrupt");
  buffer_.append(data);
  while (true) {
    if (state_ == State::kHeader) {
      size_t newline = buffer_.find('\n');
      if (newline == std::string::npos) return Status::OK();
      std::string_view header(buffer_.data(), newline);
      size_t space = header.find(' ');
      std::string_view verdict =
          space == std::string_view::npos ? header : header.substr(0, space);
      if (verdict == "OK") {
        current_ok_ = true;
      } else if (verdict == "ERR") {
        current_ok_ = false;
      } else {
        failed_ = true;
        return Status::Corruption("bad frame header: '" + std::string(header) +
                                  "'");
      }
      if (space == std::string_view::npos || space + 1 >= header.size()) {
        failed_ = true;
        return Status::Corruption("frame header missing byte count");
      }
      size_t count = 0;
      for (char c : header.substr(space + 1)) {
        if (c < '0' || c > '9') {
          failed_ = true;
          return Status::Corruption("non-numeric frame byte count");
        }
        count = count * 10 + static_cast<size_t>(c - '0');
      }
      payload_remaining_ = count;
      buffer_.erase(0, newline + 1);
      state_ = State::kPayload;
    }
    // Payload plus the trailing separator '\n'.
    if (buffer_.size() < payload_remaining_ + 1) return Status::OK();
    if (buffer_[payload_remaining_] != '\n') {
      failed_ = true;
      return Status::Corruption("frame payload not followed by newline");
    }
    frames->push_back(
        Frame{current_ok_, buffer_.substr(0, payload_remaining_)});
    buffer_.erase(0, payload_remaining_ + 1);
    state_ = State::kHeader;
  }
}

}  // namespace lotusx::net
