#include "net/server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/process_metrics.h"
#include "common/profiler.h"
#include "common/statement_store.h"
#include "common/trace_store.h"
#include "net/wire.h"

namespace lotusx::net {

StatusOr<std::unique_ptr<Server>> Server::Start(
    const index::IndexedDocument& indexed, ServerOptions options) {
  LOTUSX_ASSIGN_OR_RETURN(
      Listener listener,
      Listener::Bind(options.host, options.port, options.backlog));
  std::optional<Listener> admin_listener;
  if (options.admin_port >= 0) {
    LOTUSX_ASSIGN_OR_RETURN(
        Listener bound,
        Listener::Bind(options.host,
                       static_cast<uint16_t>(options.admin_port),
                       options.backlog));
    admin_listener.emplace(std::move(bound));
  }

  int epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd < 0) return Status::IOError("epoll_create1 failed");
  int wake_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (wake_fd < 0) {
    ::close(epoll_fd);
    return Status::IOError("eventfd failed");
  }

  int listener_fd = listener.fd();
  int admin_fd = admin_listener.has_value() ? admin_listener->fd() : -1;
  auto server = std::make_unique<Server>(indexed, std::move(options),
                                         std::move(listener),
                                         std::move(admin_listener), epoll_fd,
                                         wake_fd);

  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listener_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listener_fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(listener) failed");
  }
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd;
  if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
    return Status::IOError("epoll_ctl(eventfd) failed");
  }
  if (admin_fd >= 0) {
    ev.events = EPOLLIN;
    ev.data.fd = admin_fd;
    if (::epoll_ctl(epoll_fd, EPOLL_CTL_ADD, admin_fd, &ev) != 0) {
      return Status::IOError("epoll_ctl(admin listener) failed");
    }
  }

  server->loop_thread_ = std::thread([s = server.get()] { s->EventLoop(); });
  return server;
}

Server::Server(const index::IndexedDocument& indexed, ServerOptions options,
               Listener listener, std::optional<Listener> admin_listener,
               int epoll_fd, int wake_fd)
    : indexed_(indexed),
      options_(std::move(options)),
      port_(listener.port()),
      listener_(std::move(listener)),
      admin_listener_(std::move(admin_listener)),
      admin_port_(admin_listener_.has_value() ? admin_listener_->port() : 0),
      epoll_fd_(epoll_fd),
      wake_fd_(wake_fd),
      pool_(options_.num_workers > 0 ? options_.num_workers
                                     : ThreadPool::DefaultThreadCount()) {
  metrics::Registry& registry = metrics::Registry::Default();
  connections_gauge_ = registry.GetGauge("lotusx_net_connections_active");
  accepted_total_ = registry.GetCounter("lotusx_net_accepted_total");
  rejected_total_ = registry.GetCounter("lotusx_net_rejected_total");
  idle_timeouts_total_ =
      registry.GetCounter("lotusx_net_idle_timeouts_total");
}

Server::~Server() {
  Stop();
  ::close(epoll_fd_);
  ::close(wake_fd_);
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::AwaitTermination() {
  {
    MutexLock lock(join_mu_);
    if (!joined_) {
      // Start() may have failed before the loop thread existed.
      if (loop_thread_.joinable()) loop_thread_.join();
      joined_ = true;
    }
  }
  pool_.Shutdown();
}

void Server::Stop() {
  RequestDrain();
  AwaitTermination();
}

void Server::SubmitExecution(std::shared_ptr<Connection> conn) {
  std::shared_ptr<Connection> keep = conn;
  if (!pool_.Submit([conn = std::move(conn)] { conn->ExecuteBatch(); })) {
    // Pool already shut down (we are past AwaitTermination); nobody will
    // read these responses, so just release the in-flight claim.
    keep->MarkClosed();
    NotifyDirty(std::move(keep));
  }
}

void Server::NotifyDirty(std::shared_ptr<Connection> conn) {
  {
    MutexLock lock(mu_);
    dirty_.push_back(std::move(conn));
  }
  uint64_t one = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void Server::EventLoop() {
  // Wall-mode profiles want the loop thread too: time blocked in
  // epoll_wait is exactly what distinguishes an idle server from one
  // stuck flushing a slow client.
  prof::ScopedThreadRegistration profiler_registration("event-loop");
  std::array<epoll_event, 64> events;
  for (;;) {
    int n = ::epoll_wait(epoll_fd_, events.data(),
                         static_cast<int>(events.size()), WaitTimeoutMs());
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll itself failed: tear everything down below
    }
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t ev = events[i].events;
      if (fd == wake_fd_) {
        uint64_t value;
        [[maybe_unused]] ssize_t r = ::read(wake_fd_, &value, sizeof(value));
        continue;  // the work itself arrives via dirty_
      }
      if (fd == listener_.fd()) {
        AcceptPending();
        continue;
      }
      if (admin_listener_.has_value() && fd == admin_listener_->fd()) {
        AcceptAdminPending();
        continue;
      }
      if (admin_connections_.count(fd) != 0) {
        HandleAdminEvent(fd, ev);
        continue;
      }
      auto it = connections_.find(fd);
      if (it == connections_.end()) continue;  // closed earlier this round
      std::shared_ptr<Connection> conn = it->second;
      if (ev & EPOLLIN) conn->OnReadable();
      if (ev & EPOLLOUT) conn->FlushWrites();
      if ((ev & (EPOLLERR | EPOLLHUP)) && !conn->ReadyToClose() &&
          !(ev & EPOLLIN)) {
        // Peer reset while we were not even reading (backpressure or
        // drain): no bytes will tell us, so close on the epoll signal.
        CloseConnection(conn);
        continue;
      }
      ProcessConnection(conn);
    }
    ProcessDirty();
    if (drain_requested_.load(std::memory_order_acquire) && !draining_) {
      BeginDraining();
    }
    if (options_.idle_timeout_ms > 0) CloseIdleConnections();
    if (draining_) {
      if (connections_.empty()) break;
      if (drain_clock_.ElapsedMillis() >=
          static_cast<double>(options_.drain_timeout_ms)) {
        break;  // stragglers are force-closed below
      }
    }
  }
  // Force-close whatever is left (drain timeout or epoll failure).
  std::vector<std::shared_ptr<Connection>> remaining;
  remaining.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) remaining.push_back(conn);
  for (auto& conn : remaining) CloseConnection(conn);
  listener_.Close();
  // The admin plane outlives the drain (so /healthz can answer 503 the
  // whole time) and only comes down with the loop itself.
  std::vector<int> admin_fds;
  admin_fds.reserve(admin_connections_.size());
  for (auto& [fd, state] : admin_connections_) admin_fds.push_back(fd);
  for (int fd : admin_fds) CloseAdminConnection(fd);
  if (admin_listener_.has_value()) admin_listener_->Close();
}

void Server::BeginDraining() {
  draining_ = true;
  drain_clock_.Restart();
  listener_.Close();  // closing the fd deregisters it from epoll
  std::vector<std::shared_ptr<Connection>> conns;
  conns.reserve(connections_.size());
  for (auto& [fd, conn] : connections_) conns.push_back(conn);
  for (auto& conn : conns) {
    conn->BeginDrain();
    ProcessConnection(conn);  // idle connections close right here
  }
}

void Server::AcceptPending() {
  for (;;) {
    StatusOr<int> accepted = listener_.Accept();
    if (!accepted.ok()) break;  // EMFILE etc.: retry on the next event
    int fd = *accepted;
    if (fd < 0) break;  // would-block: queue drained
    if (connections_.size() >= options_.max_connections) {
      std::string frame = EncodeFrame(false, "server at connection limit");
      [[maybe_unused]] ssize_t n =
          ::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL);
      ::close(fd);
      rejected_total_->Increment();
      continue;
    }
    ConnectionLimits limits;
    limits.max_line_bytes = options_.max_line_bytes;
    limits.max_pipelined_commands = options_.max_pipelined_commands;
    limits.max_output_bytes = options_.max_output_bytes;
    auto conn = std::make_shared<Connection>(fd, this, indexed_,
                                             options_.session, limits);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    registered_events_[fd] = EPOLLIN;
    connections_[fd] = std::move(conn);
    accepted_total_->Increment();
    connections_gauge_->Add(1);
    active_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ProcessDirty() {
  std::vector<std::shared_ptr<Connection>> dirty;
  {
    MutexLock lock(mu_);
    dirty.swap(dirty_);
  }
  for (auto& conn : dirty) ProcessConnection(conn);
}

void Server::ProcessConnection(const std::shared_ptr<Connection>& conn) {
  auto it = connections_.find(conn->fd());
  // A closed fd number may already belong to a newer connection; only
  // act when this exact connection is still registered.
  if (it == connections_.end() || it->second != conn) return;
  conn->MaybeEmitFramingError();
  conn->FlushWrites();
  if (conn->has_fatal_error() || conn->ReadyToClose()) {
    CloseConnection(conn);
    return;
  }
  UpdateInterest(conn);
}

void Server::UpdateInterest(const std::shared_ptr<Connection>& conn) {
  uint32_t want = conn->DesiredEvents();
  uint32_t& registered = registered_events_[conn->fd()];
  if (want == registered) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = conn->fd();
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd(), &ev) == 0) {
    registered = want;
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  auto it = connections_.find(conn->fd());
  if (it == connections_.end() || it->second != conn) return;
  conn->MarkClosed();
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd(), nullptr);
  ::close(conn->fd());
  registered_events_.erase(conn->fd());
  connections_.erase(it);
  connections_gauge_->Add(-1);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
}

void Server::CloseIdleConnections() {
  std::vector<std::shared_ptr<Connection>> idle;
  for (auto& [fd, conn] : connections_) {
    if (conn->IdleCandidate() &&
        conn->IdleMillis() >= static_cast<double>(options_.idle_timeout_ms)) {
      idle.push_back(conn);
    }
  }
  for (auto& conn : idle) {
    idle_timeouts_total_->Increment();
    CloseConnection(conn);
  }
}

void Server::AcceptAdminPending() {
  for (;;) {
    StatusOr<int> accepted = admin_listener_->Accept();
    if (!accepted.ok()) break;
    int fd = *accepted;
    if (fd < 0) break;  // would-block: queue drained
    if (admin_connections_.size() >= options_.max_admin_connections) {
      ::close(fd);
      continue;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    registered_events_[fd] = EPOLLIN;
    admin_connections_[fd];  // default-construct the connection state
  }
}

void Server::HandleAdminEvent(int fd, uint32_t events) {
  auto it = admin_connections_.find(fd);
  if (it == admin_connections_.end()) return;
  AdminConnection& conn = it->second;

  if (events & EPOLLIN) {
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
      if (n > 0) {
        const bool keep = conn.state.Feed(
            std::string_view(buf, static_cast<size_t>(n)),
            [this](std::string_view path, std::string_view query) {
              return HandleAdminRequest(path, query);
            },
            &conn.outbox);
        if (!keep) conn.close_after_flush = true;
        continue;
      }
      if (n == 0) {  // peer closed; flush what we owe, then close
        conn.close_after_flush = true;
        break;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      CloseAdminConnection(fd);
      return;
    }
  }
  if (events & (EPOLLERR | EPOLLHUP)) {
    CloseAdminConnection(fd);
    return;
  }

  // Flush the outbox opportunistically (also covers EPOLLOUT wakeups).
  while (conn.outbox_offset < conn.outbox.size()) {
    ssize_t n = ::send(fd, conn.outbox.data() + conn.outbox_offset,
                       conn.outbox.size() - conn.outbox_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn.outbox_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    CloseAdminConnection(fd);
    return;
  }
  if (conn.outbox_offset >= conn.outbox.size()) {
    conn.outbox.clear();
    conn.outbox_offset = 0;
    if (conn.close_after_flush) {
      CloseAdminConnection(fd);
      return;
    }
  }
  UpdateAdminInterest(fd);
}

void Server::UpdateAdminInterest(int fd) {
  auto it = admin_connections_.find(fd);
  if (it == admin_connections_.end()) return;
  uint32_t want = EPOLLIN;
  if (it->second.outbox_offset < it->second.outbox.size()) want |= EPOLLOUT;
  uint32_t& registered = registered_events_[fd];
  if (want == registered) return;
  epoll_event ev{};
  ev.events = want;
  ev.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev) == 0) {
    registered = want;
  }
}

void Server::CloseAdminConnection(int fd) {
  auto it = admin_connections_.find(fd);
  if (it == admin_connections_.end()) return;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  registered_events_.erase(fd);
  admin_connections_.erase(it);
}

namespace {

/// Value of `key` in an undecoded query string ("a=1&b=2"), or "".
std::string_view QueryParam(std::string_view query, std::string_view key) {
  while (!query.empty()) {
    const size_t amp = query.find('&');
    std::string_view pair = query.substr(0, amp);
    query = amp == std::string_view::npos ? std::string_view()
                                          : query.substr(amp + 1);
    const size_t eq = pair.find('=');
    if (eq != std::string_view::npos && pair.substr(0, eq) == key) {
      return pair.substr(eq + 1);
    }
  }
  return {};
}

/// JSON body for /indexz: build-time and memory accounting per index
/// component plus the posting-block shape of the tag streams.
std::string RenderIndexJson(const index::IndexedDocument& indexed) {
  const index::IndexBuildStats& stats = indexed.build_stats();
  const index::TagStreams& streams = indexed.tag_streams();

  uint64_t posting_blocks = 0;
  uint64_t posting_entries = 0;
  for (int32_t tag = 0; tag < streams.num_tags(); ++tag) {
    posting_blocks += streams.blocks(tag).num_blocks();
    posting_entries += streams.blocks(tag).size();
  }

  char buffer[64];
  std::string out = "{";
  out += "\"document\":{\"nodes\":" +
         std::to_string(indexed.document().num_nodes());
  out += ",\"tags\":" + std::to_string(indexed.document().num_tags());
  out += ",\"bytes\":" + std::to_string(stats.document_bytes) + "}";

  const auto component = [&](std::string_view name, double build_ms,
                             size_t bytes) {
    out += ",\"";
    out += name;
    std::snprintf(buffer, sizeof(buffer),
                  "\":{\"build_ms\":%.3f,\"bytes\":%zu}", build_ms, bytes);
    out += buffer;
  };
  component("containment", stats.containment_ms, stats.containment_bytes);
  component("dewey", stats.dewey_ms, stats.dewey_bytes);
  component("extended_dewey", stats.extended_dewey_ms,
            stats.extended_dewey_bytes);
  component("transducer", stats.transducer_ms, stats.transducer_bytes);
  component("dataguide", stats.dataguide_ms, stats.dataguide_bytes);
  component("tag_streams", stats.tag_streams_ms, stats.tag_streams_bytes);
  component("term_index", stats.term_index_ms, stats.term_index_bytes);
  component("tag_trie", stats.tag_trie_ms, stats.tag_trie_bytes);

  out += ",\"posting_blocks\":{\"blocks\":" + std::to_string(posting_blocks);
  out += ",\"entries\":" + std::to_string(posting_entries);
  out += ",\"block_entries\":" +
         std::to_string(index::PostingBlocks::kBlockEntries);
  out += ",\"memory_bytes\":" + std::to_string(streams.MemoryUsage()) + "}";

  std::snprintf(buffer, sizeof(buffer), ",\"total_build_ms\":%.3f",
                stats.total_ms);
  out += buffer;
  out += ",\"total_bytes\":" + std::to_string(stats.total_bytes());
  out += "}";
  return out;
}

}  // namespace

HttpResponse Server::HandleAdminRequest(std::string_view path,
                                        std::string_view query) {
  HttpResponse response;
  if (path == "/metrics") {
    metrics::UpdateProcessMetrics();
    response.content_type = "text/plain; version=0.0.4; charset=utf-8";
    response.body = metrics::Registry::Default().RenderText();
    return response;
  }
  if (path == "/healthz") {
    // Runs on the loop thread, so reading draining_ is race-free.
    response.content_type = "application/json";
    if (draining_) response.status = 503;
    char buffer[64];
    std::string body = "{\"status\":\"";
    body += draining_ ? "draining" : "ok";
    std::snprintf(buffer, sizeof(buffer), "\",\"uptime_sec\":%.1f",
                  metrics::ProcessUptimeSeconds());
    body += buffer;
    body += ",\"version\":\"";
    body += metrics::BuildVersion();
    body += "\",\"git_sha\":\"";
    body += metrics::BuildGitSha();
    body += "\",\"draining\":";
    body += draining_ ? "true" : "false";
    body += "}\n";
    response.body = std::move(body);
    return response;
  }
  if (path == "/slowlog.json") {
    trace::SlowLog& ring = trace::SlowLog::Default();
    response.content_type = "application/json";
    response.body = trace::RenderSlowLogJson(ring.Last(ring.Len()));
    return response;
  }
  if (path == "/tracez") {
    trace::TraceStore& store = trace::TraceStore::Default();
    response.content_type = "application/json";
    response.body = trace::ChromeTraceJson(store.Last(store.Len()));
    return response;
  }
  if (path == "/statements.json") {
    stmt::StatementStore& store = stmt::StatementStore::Default();
    response.content_type = "application/json";
    response.body = stmt::RenderStatementsJson(store.Top(store.size()));
    return response;
  }
  if (path == "/profilez") {
    // Blocks the event loop for the whole window — admin requests are
    // handled inline — so serving stalls while the profile runs. That
    // is acceptable for a debug endpoint (and Collect clamps to 10s);
    // prefer the PROFILE verb, which runs on a worker thread.
    double seconds = 1.0;
    const std::string_view param = QueryParam(query, "seconds");
    if (!param.empty()) {
      seconds = std::atof(std::string(param).c_str());
      if (seconds <= 0) {
        response.status = 400;
        response.body = "seconds must be a positive number\n";
        return response;
      }
    }
    const prof::Mode mode =
        QueryParam(query, "mode") == "wall" ? prof::Mode::kWall
                                            : prof::Mode::kCpu;
    StatusOr<prof::ProfileResult> profile =
        prof::Collect(mode, seconds * 1000.0);
    if (!profile.ok()) {
      response.status = 503;
      response.body = std::string(profile.status().message()) + "\n";
      return response;
    }
    if (QueryParam(query, "format") == "json") {
      response.content_type = "application/json";
      response.body = prof::RenderProfileJson(*profile);
    } else {
      response.body = prof::RenderCollapsed(*profile);
    }
    return response;
  }
  if (path == "/indexz") {
    response.content_type = "application/json";
    response.body = RenderIndexJson(indexed_);
    return response;
  }
  response.status = 404;
  response.body = "not found\n";
  return response;
}

int Server::WaitTimeoutMs() const {
  int timeout = -1;
  if (options_.idle_timeout_ms > 0 && !connections_.empty()) {
    // Coarse tick: idle closes land within ~a quarter period of the
    // deadline, which is plenty for a keep-alive reaper.
    timeout = std::clamp(options_.idle_timeout_ms / 4, 10, 1000);
  }
  if (draining_) {
    timeout = timeout < 0 ? 50 : std::min(timeout, 50);
  }
  return timeout;
}

}  // namespace lotusx::net
