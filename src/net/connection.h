#ifndef LOTUSX_NET_CONNECTION_H_
#define LOTUSX_NET_CONNECTION_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>

#include "common/client_registry.h"
#include "common/sync.h"
#include "common/timer.h"
#include "index/indexed_document.h"
#include "net/line_framer.h"
#include "session/protocol.h"
#include "session/session.h"

namespace lotusx::net {

class Server;

/// Per-connection resource limits, copied out of ServerOptions.
struct ConnectionLimits {
  size_t max_line_bytes = 64 * 1024;
  /// Commands queued but not yet executed before the server stops
  /// reading from this socket (pipelining backpressure).
  size_t max_pipelined_commands = 256;
  /// Bytes of un-sent response before the server stops reading (a client
  /// that pipelines but never reads cannot balloon our memory).
  size_t max_output_bytes = 4 * 1024 * 1024;
};

/// One client connection: socket fd, its private Session + interpreter,
/// a request framer, and the pending-command / response-byte queues that
/// tie the event loop to the worker pool.
///
/// Threading: the event loop owns the fd (all reads, writes, epoll
/// bookkeeping, and closing happen there). Command execution runs on the
/// server's ThreadPool, but with AT MOST ONE task in flight per
/// connection (`task_in_flight_`), so the Session/interpreter — which are
/// not thread-safe — are only ever touched by one worker at a time, and
/// the handoff happens through `mu_`. Fields below are split accordingly:
/// loop-only fields carry no annotation, cross-thread state is
/// LOTUSX_GUARDED_BY(mu_).
class Connection : public std::enable_shared_from_this<Connection> {
 public:
  Connection(int fd, Server* server, const index::IndexedDocument& indexed,
             const session::SessionOptions& session_options,
             const ConnectionLimits& limits);
  ~Connection();

  Connection(const Connection&) = delete;
  Connection& operator=(const Connection&) = delete;

  int fd() const { return fd_; }

  // ------------------------------------------------ event-loop interface

  /// Drains the socket into the framer, queues completed command lines,
  /// and kicks off a worker batch when none is in flight.
  void OnReadable() LOTUSX_EXCLUDES(mu_);

  /// Moves queued response bytes to the socket until EAGAIN.
  void FlushWrites() LOTUSX_EXCLUDES(mu_);

  /// Emits the deferred framing-error ERR frame once every command that
  /// preceded the overlong line has answered (responses must stay in
  /// request order), then arranges close-after-flush.
  void MaybeEmitFramingError() LOTUSX_EXCLUDES(mu_);

  /// The epoll interest this connection currently wants:
  /// EPOLLIN unless reading is stopped or backpressure thresholds are
  /// exceeded; EPOLLOUT while response bytes are waiting.
  uint32_t DesiredEvents() LOTUSX_EXCLUDES(mu_);

  /// True once the connection is finished: a fatal socket error, or
  /// close-after-flush with everything executed and flushed.
  bool ReadyToClose() LOTUSX_EXCLUDES(mu_);

  /// Graceful-drain entry: stop reading new commands, answer what is
  /// queued, then close.
  void BeginDrain() LOTUSX_EXCLUDES(mu_);

  /// Marks the connection closed so a late worker batch aborts instead
  /// of appending output nobody will read. Called by the loop just
  /// before it closes the fd.
  void MarkClosed() LOTUSX_EXCLUDES(mu_);

  /// True when the peer may be idle-timed out: nothing queued, nothing
  /// executing, nothing to flush.
  bool IdleCandidate() LOTUSX_EXCLUDES(mu_);

  /// Milliseconds since the last byte arrived from the peer.
  double IdleMillis() const { return last_activity_.ElapsedMillis(); }

  bool has_fatal_error() const { return fatal_error_; }

  // ---------------------------------------------- worker-pool interface

  /// Executes queued commands one at a time until the queue is empty (or
  /// the connection closed), framing each response into the output
  /// buffer and waking the event loop. Runs on a pool worker; the
  /// single-task-in-flight discipline makes it the sole toucher of
  /// `session_` / `interpreter_`.
  void ExecuteBatch() LOTUSX_EXCLUDES(mu_);

 private:
  /// Queues completed lines and starts a worker batch if needed.
  void EnqueueLines(std::vector<std::string>* lines) LOTUSX_EXCLUDES(mu_);

  const int fd_;
  Server* const server_;
  const ConnectionLimits limits_;
  /// CLIENTS-verb registry entry; the pointer is set once in the
  /// constructor and never reseated, so loop and worker threads may
  /// update through it without the connection's mutex.
  const std::shared_ptr<ClientRegistry::Handle> client_;

  // --- event-loop-only state (never touched by workers) ---
  LineFramer framer_;
  std::string write_buffer_;   // bytes handed to the socket, maybe partial
  size_t write_offset_ = 0;    // sent prefix of write_buffer_
  bool stop_reading_ = false;  // EOF, drain, or framing error
  bool fatal_error_ = false;   // read/write failed: close without flushing
  Timer last_activity_;

  // --- worker-only state (serialized by the one-task-in-flight rule) ---
  session::Session session_;
  session::ProtocolInterpreter interpreter_;

  // --- cross-thread state ---
  Mutex mu_;
  /// Framed command lines awaiting execution (loop pushes, worker pops).
  std::deque<std::string> pending_ LOTUSX_GUARDED_BY(mu_);
  /// Encoded response frames awaiting the socket (worker appends, loop
  /// drains into write_buffer_).
  std::string output_ LOTUSX_GUARDED_BY(mu_);
  /// At most one ExecuteBatch task exists while this is true.
  bool task_in_flight_ LOTUSX_GUARDED_BY(mu_) = false;
  /// Set by the loop when the fd is (about to be) closed.
  bool closed_ LOTUSX_GUARDED_BY(mu_) = false;
  /// Finish queued work, flush, then close (EOF or drain).
  bool close_after_flush_ LOTUSX_GUARDED_BY(mu_) = false;
  /// Non-empty once the framer rejected an overlong line; the message is
  /// emitted as the connection's final ERR frame by
  /// MaybeEmitFramingError.
  std::string framing_error_ LOTUSX_GUARDED_BY(mu_);
};

}  // namespace lotusx::net

#endif  // LOTUSX_NET_CONNECTION_H_
