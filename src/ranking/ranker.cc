#include "ranking/ranker.h"

#include <algorithm>
#include <cmath>

#include "common/string_util.h"

namespace lotusx::ranking {

namespace {

/// TF-IDF of `term` within value node `node`: tf * ln(1 + N/df).
double TfIdf(const index::TermIndex& terms, std::string_view term,
             xml::NodeId node) {
  uint32_t tf = terms.TermFrequencyIn(term, node);
  if (tf == 0) return 0;
  uint32_t df = terms.DocFrequency(term);
  double n = std::max<uint32_t>(terms.num_value_nodes(), 1);
  return (1.0 + std::log(static_cast<double>(tf))) *
         std::log(1.0 + n / static_cast<double>(df));
}

}  // namespace

RankedResult Ranker::Score(const twig::TwigQuery& query,
                           const twig::Match& match,
                           const RankingOptions& options) const {
  const xml::Document& document = indexed_.document();
  const index::DataGuide& guide = indexed_.dataguide();
  RankedResult result;
  result.match = match;
  result.output =
      match.bindings[static_cast<size_t>(query.output())];

  // 1. Content relevance.
  for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
    const twig::ValuePredicate& predicate = query.node(q).predicate;
    xml::NodeId bound = match.bindings[static_cast<size_t>(q)];
    if (predicate.op == twig::ValuePredicate::Op::kContains) {
      for (const std::string& term : TokenizeKeywords(predicate.text)) {
        result.content_score += TfIdf(indexed_.terms(), term, bound);
      }
    } else if (predicate.op == twig::ValuePredicate::Op::kEquals) {
      // Exact matches are maximally relevant for that node.
      result.content_score += 2.0;
    }
  }

  // 2. Structural compactness. Root span: fraction of the document the
  // match covers (smaller is tighter); edge slack: depth gap on
  // descendant edges beyond the minimal 1.
  xml::NodeId root_binding = match.bindings[0];
  double span =
      static_cast<double>(document.node(root_binding).subtree_end -
                          root_binding + 1);
  double span_score =
      1.0 / (1.0 + std::log(span));
  double slack = 0;
  for (twig::QueryNodeId q = 1; q < query.size(); ++q) {
    xml::NodeId child = match.bindings[static_cast<size_t>(q)];
    xml::NodeId parent =
        match.bindings[static_cast<size_t>(query.node(q).parent)];
    slack += document.node(child).depth - document.node(parent).depth - 1;
  }
  double slack_score = 1.0 / (1.0 + slack);
  result.structure_score = 0.5 * span_score + 0.5 * slack_score;

  // 3. Position specificity: -log of the relative frequency of the bound
  // paths (rare positions are more informative), averaged over nodes.
  double total_nodes = std::max(1, document.num_nodes());
  double specificity = 0;
  for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
    xml::NodeId bound = match.bindings[static_cast<size_t>(q)];
    index::PathId path = guide.PathOf(bound);
    if (path == index::kInvalidPathId) continue;
    double frequency = guide.node(path).count / total_nodes;
    specificity += -std::log(frequency);
  }
  result.specificity_score = specificity / query.size();

  result.score = options.content_weight * result.content_score +
                 options.structure_weight * result.structure_score +
                 options.specificity_weight * result.specificity_score;
  return result;
}

std::vector<RankedResult> Ranker::Rank(
    const twig::TwigQuery& query, const std::vector<twig::Match>& matches,
    const RankingOptions& options) const {
  std::vector<RankedResult> results;
  results.reserve(matches.size());
  for (const twig::Match& match : matches) {
    results.push_back(Score(query, match, options));
  }
  std::sort(results.begin(), results.end(),
            [](const RankedResult& a, const RankedResult& b) {
              if (a.score != b.score) return a.score > b.score;
              if (a.output != b.output) return a.output < b.output;
              return a.match < b.match;
            });
  if (options.top_k > 0 && results.size() > options.top_k) {
    results.resize(options.top_k);
  }
  return results;
}

}  // namespace lotusx::ranking
