#ifndef LOTUSX_RANKING_RANKER_H_
#define LOTUSX_RANKING_RANKER_H_

#include <string>
#include <vector>

#include "index/indexed_document.h"
#include "twig/match.h"
#include "twig/twig_query.h"

namespace lotusx::ranking {

/// One scored answer. `output` is the binding of the query's output node;
/// `score` is the combined relevance score (higher = better).
struct RankedResult {
  twig::Match match;
  xml::NodeId output = xml::kInvalidNodeId;
  double score = 0;
  double content_score = 0;
  double structure_score = 0;
  double specificity_score = 0;
};

/// Mixing weights of the three scoring signals. The defaults follow the
/// reconstruction in DESIGN.md; the E5 bench ablates them.
struct RankingOptions {
  double content_weight = 1.0;
  double structure_weight = 0.5;
  double specificity_weight = 0.25;
  /// 0 keeps every result.
  size_t top_k = 0;
};

/// LotusX's answer-ranking strategy (reconstructed from the abstract's
/// claim of "a new ranking strategy"; the exact formula is not in the
/// available text — see DESIGN.md). Combines:
///
///  1. Content relevance — TF-IDF of the keywords of every kContains
///     predicate inside the bound value node; exact-match (kEquals)
///     predicates contribute a fixed bonus.
///  2. Structural compactness — tight matches beat sprawling ones: the
///     score decays with the size of the subtree spanned by the match
///     root and with the slack of descendant edges (an actual
///     parent-child pair scores higher than a distant one).
///  3. Position specificity — matches bound to rare label paths (per the
///     DataGuide) are more informative than ones on ubiquitous paths.
class Ranker {
 public:
  explicit Ranker(const index::IndexedDocument& indexed)
      : indexed_(indexed) {}

  /// Scores one match.
  RankedResult Score(const twig::TwigQuery& query, const twig::Match& match,
                     const RankingOptions& options = {}) const;

  /// Scores and sorts all matches, best first; deterministic tie-break by
  /// document order of the output binding. Truncates to top_k when set.
  std::vector<RankedResult> Rank(const twig::TwigQuery& query,
                                 const std::vector<twig::Match>& matches,
                                 const RankingOptions& options = {}) const;

 private:
  const index::IndexedDocument& indexed_;
};

}  // namespace lotusx::ranking

#endif  // LOTUSX_RANKING_RANKER_H_
