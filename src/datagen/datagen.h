#ifndef LOTUSX_DATAGEN_DATAGEN_H_
#define LOTUSX_DATAGEN_DATAGEN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "xml/dom.h"

namespace lotusx::datagen {

/// Deterministic synthetic datasets standing in for the corpora the LotusX
/// demo indexed (DBLP, XMark and store-style catalogs are the staple
/// datasets of the twig-search literature). Same options + same seed =>
/// byte-identical document. See DESIGN.md "Substitutions".

/// DBLP-like bibliography:
///   dblp > (article|inproceedings|book)* each with @key, author+, title,
///   year, and journal/booktitle/publisher; titles and author names drawn
///   from Zipf-skewed pools so term statistics look text-like.
struct DblpOptions {
  uint64_t seed = 42;
  int num_publications = 1000;
  int author_pool_size = 200;
  int title_vocabulary = 400;
  double zipf_skew = 0.9;
};
xml::Document GenerateDblp(const DblpOptions& options);

/// Online-store catalog with recursive category nesting:
///   store > category+ (category*) > product* with name, brand, price,
///   description, stock @units, review* (rating, comment). Product
///   children always appear in the same document order, which makes this
///   the dataset of choice for order-sensitive queries (E4), and its
///   heterogeneous paths (same tags under different parents) stress
///   position-aware completion (E2).
struct StoreOptions {
  uint64_t seed = 42;
  int num_products = 500;
  int max_category_depth = 3;
  int categories_per_level = 4;
  double zipf_skew = 1.0;
};
xml::Document GenerateStore(const StoreOptions& options);

/// XMark-like auction site (Schmidt et al.): site > regions (6 continents
/// with item*), people (person* with profile), open_auctions (auction*
/// with bidder*). Descriptions contain recursive parlist/listitem
/// structure, exercising deep and recursive paths.
struct XmarkOptions {
  uint64_t seed = 42;
  int num_items = 200;
  int num_people = 100;
  int num_auctions = 100;
  double recursion_probability = 0.35;
  double zipf_skew = 0.8;
};
xml::Document GenerateXmark(const XmarkOptions& options);

/// Treebank-like corpus: deeply recursive parse trees over a small
/// nonterminal vocabulary (S, NP, VP, PP, ...), the classic stress corpus
/// of the twig-join literature — the same tag appears at many depths, and
/// paths run 10-30 levels deep. Leaves carry word text.
struct TreebankOptions {
  uint64_t seed = 42;
  int num_sentences = 200;
  int max_depth = 24;
  /// Probability that a constituent expands into further constituents
  /// rather than a terminal word.
  double expand_probability = 0.7;
  double zipf_skew = 0.9;
};
xml::Document GenerateTreebank(const TreebankOptions& options);

/// Scales any generator to approximately `target_nodes` document nodes by
/// adjusting its count knob; used by size-sweep experiments (E1/E3/E7).
xml::Document GenerateDblpWithApproxNodes(uint64_t seed, int64_t target_nodes);
xml::Document GenerateStoreWithApproxNodes(uint64_t seed,
                                           int64_t target_nodes);
xml::Document GenerateXmarkWithApproxNodes(uint64_t seed,
                                           int64_t target_nodes);
xml::Document GenerateTreebankWithApproxNodes(uint64_t seed,
                                              int64_t target_nodes);

}  // namespace lotusx::datagen

#endif  // LOTUSX_DATAGEN_DATAGEN_H_
