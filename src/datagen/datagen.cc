#include "datagen/datagen.h"

#include <array>
#include <functional>

#include "common/logging.h"
#include "common/random.h"

namespace lotusx::datagen {

namespace {

using xml::Document;
using xml::NodeId;

/// Deterministic word pool: `size` distinct pseudo-words drawn once, then
/// sampled with Zipf skew so a few words dominate (text-like statistics).
class WordPool {
 public:
  WordPool(Random* random, int size, double skew)
      : random_(random), skew_(skew) {
    words_.reserve(static_cast<size_t>(size));
    for (int i = 0; i < size; ++i) {
      words_.push_back(random_->NextWord(3, 9));
    }
  }

  const std::string& Sample() {
    return words_[random_->NextZipf(words_.size(), skew_)];
  }

  std::string Sentence(int min_words, int max_words) {
    int n = static_cast<int>(random_->NextInRange(min_words, max_words));
    std::string out;
    for (int i = 0; i < n; ++i) {
      if (i > 0) out += ' ';
      out += Sample();
    }
    return out;
  }

  const std::string& word(size_t i) const { return words_[i]; }
  size_t size() const { return words_.size(); }

 private:
  Random* random_;
  double skew_;
  std::vector<std::string> words_;
};

void AppendTextChild(Document* doc, NodeId parent, std::string_view tag,
                     std::string_view text) {
  NodeId element = doc->AppendElement(parent, tag);
  doc->AppendText(element, text);
}

}  // namespace

Document GenerateDblp(const DblpOptions& options) {
  CHECK_GT(options.num_publications, 0);
  Random random(options.seed);
  Document doc;
  WordPool names(&random, options.author_pool_size, options.zipf_skew);
  WordPool title_words(&random, options.title_vocabulary, options.zipf_skew);
  static constexpr std::array<std::string_view, 3> kKinds = {
      "article", "inproceedings", "book"};
  static constexpr std::array<std::string_view, 5> kJournals = {
      "tods", "vldbj", "tkde", "sigmod record", "jacm"};
  static constexpr std::array<std::string_view, 5> kVenues = {
      "icde", "vldb", "sigmod", "edbt", "cikm"};

  NodeId root = doc.AppendElement(xml::kInvalidNodeId, "dblp");
  for (int i = 0; i < options.num_publications; ++i) {
    size_t kind = random.NextZipf(kKinds.size(), 1.0);
    NodeId pub = doc.AppendElement(root, kKinds[kind]);
    doc.AppendAttribute(pub, "key",
                        std::string(kKinds[kind]) + "/" +
                            std::to_string(options.seed % 97) + "/" +
                            std::to_string(i));
    int num_authors = static_cast<int>(random.NextInRange(1, 4));
    for (int a = 0; a < num_authors; ++a) {
      AppendTextChild(&doc, pub, "author",
                      names.Sample() + " " + names.Sample());
    }
    AppendTextChild(&doc, pub, "title", title_words.Sentence(3, 9));
    AppendTextChild(&doc, pub, "year",
                    std::to_string(random.NextInRange(1990, 2012)));
    if (kind == 0) {
      AppendTextChild(&doc, pub, "journal",
                      kJournals[random.NextBounded(kJournals.size())]);
      AppendTextChild(&doc, pub, "volume",
                      std::to_string(random.NextInRange(1, 40)));
    } else if (kind == 1) {
      AppendTextChild(&doc, pub, "booktitle",
                      kVenues[random.NextBounded(kVenues.size())]);
      AppendTextChild(&doc, pub, "pages",
                      std::to_string(random.NextInRange(1, 600)) + "-" +
                          std::to_string(random.NextInRange(601, 1200)));
    } else {
      AppendTextChild(&doc, pub, "publisher", names.Sample());
      AppendTextChild(&doc, pub, "isbn",
                      std::to_string(random.NextInRange(1000000, 9999999)));
    }
    if (random.NextBool(0.4)) {
      AppendTextChild(&doc, pub, "ee",
                      "db/" + std::string(kKinds[kind]) + "/" +
                          std::to_string(i) + ".html");
    }
  }
  doc.Finalize();
  return doc;
}

Document GenerateStore(const StoreOptions& options) {
  CHECK_GT(options.num_products, 0);
  Random random(options.seed);
  Document doc;
  WordPool words(&random, 300, options.zipf_skew);
  WordPool brands(&random, 40, options.zipf_skew);

  NodeId root = doc.AppendElement(xml::kInvalidNodeId, "store");
  AppendTextChild(&doc, root, "name", "lotus " + words.Sample() + " store");

  int products_left = options.num_products;
  auto make_product = [&](NodeId parent) {
    NodeId product = doc.AppendElement(parent, "product");
    doc.AppendAttribute(
        product, "sku",
        "p" + std::to_string(options.num_products - products_left));
    // Fixed child order: name, brand, price, description, stock,
    // reviews — the document-order regularity E4 queries rely on.
    AppendTextChild(&doc, product, "name", words.Sentence(1, 3));
    AppendTextChild(&doc, product, "brand", brands.Sample());
    AppendTextChild(&doc, product, "price",
                    std::to_string(random.NextInRange(1, 999)) + "." +
                        std::to_string(random.NextInRange(10, 99)));
    AppendTextChild(&doc, product, "description", words.Sentence(4, 14));
    NodeId stock = doc.AppendElement(product, "stock");
    doc.AppendAttribute(stock, "units",
                        std::to_string(random.NextInRange(0, 500)));
    int reviews = static_cast<int>(random.NextInRange(0, 4));
    for (int r = 0; r < reviews; ++r) {
      NodeId review = doc.AppendElement(product, "review");
      AppendTextChild(&doc, review, "rating",
                      std::to_string(random.NextInRange(1, 5)));
      AppendTextChild(&doc, review, "comment", words.Sentence(3, 10));
      AppendTextChild(&doc, review, "reviewer", words.Sample());
    }
  };

  // Recursive category tree, filled depth-first so the preorder append
  // discipline holds; products are concentrated at the leaves. The leaf
  // batch size scales with the requested product count so large catalogs
  // spread across the tree instead of piling into the overflow category.
  int leaf_batch = std::max(2, options.num_products / 40);
  std::function<void(NodeId, int)> fill = [&](NodeId parent, int depth) {
    int categories = depth >= options.max_category_depth
                         ? 0
                         : static_cast<int>(random.NextInRange(
                               0, options.categories_per_level));
    if (depth == 0) categories = options.categories_per_level;
    for (int c = 0; c < categories; ++c) {
      NodeId category = doc.AppendElement(parent, "category");
      doc.AppendAttribute(category, "id",
                          "c" + std::to_string(doc.num_nodes()));
      AppendTextChild(&doc, category, "name", words.Sample());
      fill(category, depth + 1);
    }
    // Products at this level.
    int here =
        categories == 0
            ? std::min(products_left,
                       static_cast<int>(random.NextInRange(2, leaf_batch)))
            : std::min(products_left,
                       static_cast<int>(random.NextInRange(0, 3)));
    for (int p = 0; p < here && products_left > 0; ++p, --products_left) {
      make_product(parent);
    }
  };
  fill(root, 0);
  // Any remainder goes into a final overflow category (same full product
  // structure as everywhere else).
  if (products_left > 0) {
    NodeId category = doc.AppendElement(root, "category");
    AppendTextChild(&doc, category, "name", "misc");
    while (products_left > 0) {
      --products_left;
      make_product(category);
    }
  }
  doc.Finalize();
  return doc;
}

Document GenerateXmark(const XmarkOptions& options) {
  Random random(options.seed);
  Document doc;
  WordPool words(&random, 400, options.zipf_skew);
  static constexpr std::array<std::string_view, 6> kRegions = {
      "africa", "asia", "australia", "europe", "namerica", "samerica"};

  NodeId root = doc.AppendElement(xml::kInvalidNodeId, "site");

  // Recursive parlist/listitem description bodies.
  std::function<void(NodeId, int)> parlist = [&](NodeId parent, int depth) {
    NodeId list = doc.AppendElement(parent, "parlist");
    int items = static_cast<int>(random.NextInRange(1, 3));
    for (int i = 0; i < items; ++i) {
      NodeId item = doc.AppendElement(list, "listitem");
      if (depth < 4 && random.NextBool(options.recursion_probability)) {
        parlist(item, depth + 1);
      } else {
        AppendTextChild(&doc, item, "text", words.Sentence(3, 10));
      }
    }
  };

  NodeId regions = doc.AppendElement(root, "regions");
  for (size_t r = 0; r < kRegions.size(); ++r) {
    NodeId region = doc.AppendElement(regions, kRegions[r]);
    int items = options.num_items / static_cast<int>(kRegions.size()) +
                (static_cast<size_t>(options.num_items %
                                     static_cast<int>(kRegions.size())) > r
                     ? 1
                     : 0);
    for (int i = 0; i < items; ++i) {
      NodeId item = doc.AppendElement(region, "item");
      doc.AppendAttribute(item, "id",
                          "item" + std::to_string(doc.num_nodes()));
      AppendTextChild(&doc, item, "location", words.Sample());
      AppendTextChild(&doc, item, "name", words.Sentence(1, 3));
      NodeId payment = doc.AppendElement(item, "payment");
      doc.AppendText(payment, random.NextBool(0.5) ? "creditcard" : "cash");
      NodeId description = doc.AppendElement(item, "description");
      parlist(description, 0);
      if (random.NextBool(0.5)) {
        NodeId mailbox = doc.AppendElement(item, "mailbox");
        int mails = static_cast<int>(random.NextInRange(1, 3));
        for (int m = 0; m < mails; ++m) {
          NodeId mail = doc.AppendElement(mailbox, "mail");
          AppendTextChild(&doc, mail, "from", words.Sample());
          AppendTextChild(&doc, mail, "to", words.Sample());
          AppendTextChild(&doc, mail, "date",
                          std::to_string(random.NextInRange(1, 28)) + "/" +
                              std::to_string(random.NextInRange(1, 12)) +
                              "/2011");
          AppendTextChild(&doc, mail, "text", words.Sentence(4, 12));
        }
      }
    }
  }

  NodeId people = doc.AppendElement(root, "people");
  for (int p = 0; p < options.num_people; ++p) {
    NodeId person = doc.AppendElement(people, "person");
    doc.AppendAttribute(person, "id", "person" + std::to_string(p));
    AppendTextChild(&doc, person, "name",
                    words.Sample() + " " + words.Sample());
    AppendTextChild(&doc, person, "emailaddress",
                    words.Sample() + "@" + words.Sample() + ".org");
    if (random.NextBool(0.6)) {
      NodeId profile = doc.AppendElement(person, "profile");
      AppendTextChild(&doc, profile, "education", words.Sample());
      AppendTextChild(&doc, profile, "income",
                      std::to_string(random.NextInRange(20000, 200000)));
      int interests = static_cast<int>(random.NextInRange(0, 3));
      for (int i = 0; i < interests; ++i) {
        NodeId interest = doc.AppendElement(profile, "interest");
        doc.AppendAttribute(interest, "category",
                            "cat" + std::to_string(random.NextBounded(20)));
      }
    }
  }

  NodeId auctions = doc.AppendElement(root, "open_auctions");
  for (int a = 0; a < options.num_auctions; ++a) {
    NodeId auction = doc.AppendElement(auctions, "open_auction");
    doc.AppendAttribute(auction, "id", "auction" + std::to_string(a));
    AppendTextChild(&doc, auction, "initial",
                    std::to_string(random.NextInRange(1, 500)) + ".00");
    int bidders = static_cast<int>(random.NextInRange(0, 5));
    for (int b = 0; b < bidders; ++b) {
      NodeId bidder = doc.AppendElement(auction, "bidder");
      AppendTextChild(&doc, bidder, "date",
                      std::to_string(random.NextInRange(1, 28)) + "/" +
                          std::to_string(random.NextInRange(1, 12)) +
                          "/2011");
      AppendTextChild(&doc, bidder, "increase",
                      std::to_string(random.NextInRange(1, 50)) + ".00");
    }
    NodeId seller = doc.AppendElement(auction, "seller");
    doc.AppendAttribute(
        seller, "person",
        "person" + std::to_string(random.NextBounded(
                       std::max(1, options.num_people))));
    NodeId quantity = doc.AppendElement(auction, "quantity");
    doc.AppendText(quantity, std::to_string(random.NextInRange(1, 10)));
  }

  doc.Finalize();
  return doc;
}

Document GenerateTreebank(const TreebankOptions& options) {
  CHECK_GT(options.num_sentences, 0);
  Random random(options.seed);
  Document doc;
  WordPool words(&random, 500, options.zipf_skew);
  // Nonterminals with grammar-flavoured expansion preferences: index into
  // kNonterminals; each row lists the tags a constituent tends to expand
  // into (cyclic references make the structure recursive).
  static constexpr std::array<std::string_view, 8> kNonterminals = {
      "s", "np", "vp", "pp", "sbar", "adjp", "advp", "whnp"};
  static constexpr std::array<std::array<int, 3>, 8> kExpansions = {{
      {1, 2, 4},  // s    -> np vp sbar
      {1, 3, 5},  // np   -> np pp adjp
      {2, 1, 3},  // vp   -> vp np pp
      {1, 3, 6},  // pp   -> np pp advp
      {0, 2, 7},  // sbar -> s vp whnp
      {5, 6, 1},  // adjp -> adjp advp np
      {6, 3, 2},  // advp -> advp pp vp
      {1, 4, 0},  // whnp -> np sbar s
  }};

  NodeId root = doc.AppendElement(xml::kInvalidNodeId, "treebank");
  std::function<void(NodeId, int, int)> expand = [&](NodeId parent,
                                                     int nonterminal,
                                                     int depth) {
    NodeId node = doc.AppendElement(parent, kNonterminals[
        static_cast<size_t>(nonterminal)]);
    bool expand_further =
        depth < options.max_depth &&
        random.NextBool(options.expand_probability /
                        (1.0 + depth / 12.0));  // taper with depth
    if (!expand_further) {
      doc.AppendText(node, words.Sentence(1, 3));
      return;
    }
    int children = static_cast<int>(random.NextInRange(1, 3));
    for (int c = 0; c < children; ++c) {
      int next = kExpansions[static_cast<size_t>(nonterminal)]
                            [random.NextBounded(3)];
      expand(node, next, depth + 1);
    }
  };
  for (int s = 0; s < options.num_sentences; ++s) {
    expand(root, /*nonterminal=*/0, /*depth=*/1);
  }
  doc.Finalize();
  return doc;
}

namespace {

/// Measures nodes-per-unit for a generator at a small pilot size, then
/// scales the count knob linearly.
template <typename MakeDoc>
Document ScaleToNodes(int64_t target_nodes, int pilot_count,
                      MakeDoc make_doc) {
  Document pilot = make_doc(pilot_count);
  double per_unit =
      static_cast<double>(pilot.num_nodes()) / pilot_count;
  int count = static_cast<int>(
      std::max<int64_t>(1, static_cast<int64_t>(
                               static_cast<double>(target_nodes) / per_unit)));
  return make_doc(count);
}

}  // namespace

Document GenerateDblpWithApproxNodes(uint64_t seed, int64_t target_nodes) {
  return ScaleToNodes(target_nodes, 200, [seed](int count) {
    DblpOptions options;
    options.seed = seed;
    options.num_publications = count;
    return GenerateDblp(options);
  });
}

Document GenerateStoreWithApproxNodes(uint64_t seed, int64_t target_nodes) {
  return ScaleToNodes(target_nodes, 200, [seed](int count) {
    StoreOptions options;
    options.seed = seed;
    options.num_products = count;
    return GenerateStore(options);
  });
}

Document GenerateXmarkWithApproxNodes(uint64_t seed, int64_t target_nodes) {
  return ScaleToNodes(target_nodes, 100, [seed](int count) {
    XmarkOptions options;
    options.seed = seed;
    options.num_items = count;
    options.num_people = count / 2;
    options.num_auctions = count / 2;
    return GenerateXmark(options);
  });
}

Document GenerateTreebankWithApproxNodes(uint64_t seed,
                                         int64_t target_nodes) {
  return ScaleToNodes(target_nodes, 200, [seed](int count) {
    TreebankOptions options;
    options.seed = seed;
    options.num_sentences = count;
    return GenerateTreebank(options);
  });
}

}  // namespace lotusx::datagen
