#ifndef LOTUSX_AUTOCOMPLETE_COMPLETION_H_
#define LOTUSX_AUTOCOMPLETE_COMPLETION_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/twig_query.h"

namespace lotusx::autocomplete {

enum class CandidateKind { kTag, kValue };

/// One ranked suggestion shown to the user while building a query.
struct Candidate {
  std::string text;
  /// Occurrences at the suggested position (position-aware mode) or in the
  /// whole document (global mode). Candidates are returned heaviest first.
  uint64_t frequency = 0;
  CandidateKind kind = CandidateKind::kTag;

  friend bool operator==(const Candidate&, const Candidate&) = default;
};

/// A tag-completion request: the user is extending `anchor` of `query`
/// with a new node connected by `axis` and has typed `prefix` so far.
/// With anchor == kInvalidQueryNode (or an empty query) the request is for
/// the query root itself.
struct TagRequest {
  twig::QueryNodeId anchor = twig::kInvalidQueryNode;
  twig::Axis axis = twig::Axis::kChild;
  std::string prefix;
  size_t limit = 10;
  /// false selects the global (position-agnostic) baseline of E2.
  bool position_aware = true;
};

/// LotusX's position-aware auto-completion engine.
///
/// Position-awareness works at the schema level: the partial query is
/// evaluated over the DataGuide (a tree orders of magnitude smaller than
/// the document), yielding for every query node the exact set of label
/// paths it can bind to. Candidates for the position being extended are
/// then the union of child/descendant tags over those paths, weighted by
/// occurrence counts — so every suggestion is satisfiable in the data by
/// construction, and frequent continuations rank first.
///
/// Case sensitivity: tag completion matches the typed prefix
/// case-SENSITIVELY — XML element names are case-sensitive, so "Art"
/// must not suggest "article". Value completion matches
/// case-INSENSITIVELY: the term index stores keyword tokens lowercased
/// (see TokenizeKeywords), and CompleteValue lowercases the typed prefix
/// to meet it, so "LU" suggests the term "lu". Both behaviors are pinned
/// by tests/autocomplete_test.cc.
class CompletionEngine {
 public:
  explicit CompletionEngine(const index::IndexedDocument& indexed)
      : indexed_(indexed) {}

  /// Per-query-node sets of DataGuide paths (ascending PathId) reachable
  /// by some schema-level embedding of `query`. Value predicates require
  /// the path to carry text (or be an attribute path). An unsatisfiable
  /// query yields all-empty sets.
  std::vector<std::vector<index::PathId>> SchemaBindings(
      const twig::TwigQuery& query) const;

  /// Ranked tag candidates for extending `query` per `request`.
  StatusOr<std::vector<Candidate>> CompleteTag(
      const twig::TwigQuery& query, const TagRequest& request) const;

  /// Ranked value-keyword candidates for the value box of `node` (terms
  /// occurring under that node's possible positions). Global term
  /// completion when position_aware is false.
  StatusOr<std::vector<Candidate>> CompleteValue(
      const twig::TwigQuery& query, twig::QueryNodeId node,
      std::string_view prefix, size_t limit, bool position_aware) const;

  /// True when extending `anchor` with a new `axis`-connected `tag` node
  /// leaves the query satisfiable at the schema level — the E2 validity
  /// metric for judging candidate quality.
  bool ExtensionIsSatisfiable(const twig::TwigQuery& query,
                              twig::QueryNodeId anchor, twig::Axis axis,
                              std::string_view tag) const;

 private:
  std::vector<Candidate> GlobalTagCandidates(std::string_view prefix,
                                             size_t limit) const;

  const index::IndexedDocument& indexed_;
};

}  // namespace lotusx::autocomplete

#endif  // LOTUSX_AUTOCOMPLETE_COMPLETION_H_
