#include "autocomplete/completion.h"

#include <algorithm>
#include <map>

#include "common/metrics.h"
#include "common/string_util.h"
#include "common/timer.h"
#include "twig/schema_match.h"

namespace lotusx::autocomplete {

namespace {

using index::DataGuide;
using index::PathId;
using twig::Axis;
using twig::QueryNodeId;
using twig::TwigQuery;

/// RAII request metrics for one completion call: bumps
/// lotusx_complete_total{kind} and records the wall time into
/// lotusx_complete_latency_usec{kind}. Covers every entry point (Engine,
/// Session, batches) because they all funnel through CompletionEngine.
class CompletionScope {
 public:
  explicit CompletionScope(const char* kind) {
    if (!metrics::Enabled()) return;
    metrics::Registry& registry = metrics::Registry::Default();
    const metrics::Labels labels = {{"kind", kind}};
    calls_ = registry.GetCounter("lotusx_complete_total", labels);
    latency_ = registry.GetHistogram("lotusx_complete_latency_usec", labels);
  }
  ~CompletionScope() {
    if (calls_ == nullptr) return;
    calls_->Increment();
    latency_->Observe(timer_.ElapsedMicros());
  }

  CompletionScope(const CompletionScope&) = delete;
  CompletionScope& operator=(const CompletionScope&) = delete;

 private:
  metrics::Counter* calls_ = nullptr;
  metrics::Histogram* latency_ = nullptr;
  Timer timer_;
};

}  // namespace

std::vector<std::vector<PathId>> CompletionEngine::SchemaBindings(
    const TwigQuery& query) const {
  return twig::SchemaBindings(indexed_, query);
}

std::vector<Candidate> CompletionEngine::GlobalTagCandidates(
    std::string_view prefix, size_t limit) const {
  std::vector<Candidate> candidates;
  for (const index::Completion& completion :
       indexed_.tag_trie().Complete(prefix, limit)) {
    candidates.push_back(
        Candidate{completion.key, completion.weight, CandidateKind::kTag});
  }
  return candidates;
}

StatusOr<std::vector<Candidate>> CompletionEngine::CompleteTag(
    const TwigQuery& query, const TagRequest& request) const {
  CompletionScope scope("tag");
  if (request.limit == 0) return std::vector<Candidate>{};
  const DataGuide& guide = indexed_.dataguide();
  const xml::Document& document = indexed_.document();

  // Root suggestion: no anchor yet.
  if (query.empty() || request.anchor == twig::kInvalidQueryNode) {
    if (!query.empty()) {
      return Status::InvalidArgument(
          "anchor required for non-empty queries");
    }
    if (request.position_aware && request.axis == Axis::kChild) {
      // '/tag' can only be the document root. Tag prefixes match
      // case-sensitively (XML names are case-sensitive; see the class
      // comment in completion.h).
      if (document.empty()) return std::vector<Candidate>{};
      std::string root_tag(document.TagName(document.root()));
      if (!StartsWith(root_tag, request.prefix)) {
        return std::vector<Candidate>{};
      }
      return std::vector<Candidate>{
          Candidate{root_tag, 1, CandidateKind::kTag}};
    }
    // '//tag' may bind anywhere: every tag qualifies; rank by frequency.
    return GlobalTagCandidates(request.prefix, request.limit);
  }

  if (request.anchor < 0 || request.anchor >= query.size()) {
    return Status::InvalidArgument("anchor out of range");
  }
  LOTUSX_RETURN_IF_ERROR(query.Validate());

  if (!request.position_aware) {
    return GlobalTagCandidates(request.prefix, request.limit);
  }

  std::vector<std::vector<PathId>> bindings = SchemaBindings(query);
  const std::vector<PathId>& anchor_paths =
      bindings[static_cast<size_t>(request.anchor)];
  // Aggregate candidate tags over all positions the anchor can take.
  // Counts from nested anchor positions (recursive tags) may overlap;
  // the sum is a ranking weight, not an exact cardinality.
  std::map<xml::TagId, uint64_t> weights;
  for (PathId p : anchor_paths) {
    if (request.axis == Axis::kChild) {
      for (xml::TagId tag : guide.ChildTags(p)) {
        weights[tag] += guide.ChildTagCount(p, tag);
      }
    } else {
      for (xml::TagId tag : guide.DescendantTags(p)) {
        weights[tag] += guide.DescendantTagCount(p, tag);
      }
    }
  }
  std::vector<Candidate> candidates;
  for (const auto& [tag, weight] : weights) {
    std::string name(document.tag_name(tag));
    // Case-sensitive on purpose — see the class comment in completion.h.
    if (!StartsWith(name, request.prefix)) continue;
    candidates.push_back(
        Candidate{std::move(name), weight, CandidateKind::kTag});
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              if (a.frequency != b.frequency) {
                return a.frequency > b.frequency;
              }
              return a.text < b.text;
            });
  if (candidates.size() > request.limit) {
    candidates.resize(request.limit);
  }
  return candidates;
}

StatusOr<std::vector<Candidate>> CompletionEngine::CompleteValue(
    const TwigQuery& query, QueryNodeId node, std::string_view prefix,
    size_t limit, bool position_aware) const {
  CompletionScope scope("value");
  if (node < 0 || node >= query.size()) {
    return Status::InvalidArgument("node out of range");
  }
  const index::Trie* trie = &indexed_.terms().term_trie();
  if (position_aware && query.node(node).tag != "*") {
    // Position must be satisfiable at all.
    std::vector<std::vector<PathId>> bindings = SchemaBindings(query);
    if (bindings[static_cast<size_t>(node)].empty()) {
      return std::vector<Candidate>{};
    }
    xml::TagId tag = indexed_.document().FindTag(query.node(node).tag);
    const index::Trie* tag_trie = indexed_.terms().term_trie_for_tag(tag);
    if (tag_trie == nullptr) return std::vector<Candidate>{};
    trie = tag_trie;
  }
  std::vector<Candidate> candidates;
  // Value terms are stored lowercased by the keyword tokenizer; lowering
  // the prefix makes value completion case-insensitive (unlike tags —
  // see the class comment in completion.h).
  for (const index::Completion& completion :
       trie->Complete(ToLowerAscii(prefix), limit)) {
    candidates.push_back(
        Candidate{completion.key, completion.weight, CandidateKind::kValue});
  }
  return candidates;
}

bool CompletionEngine::ExtensionIsSatisfiable(const TwigQuery& query,
                                              QueryNodeId anchor, Axis axis,
                                              std::string_view tag) const {
  if (query.empty() || anchor == twig::kInvalidQueryNode) {
    TwigQuery fresh;
    fresh.AddRoot(tag, axis);
    std::vector<std::vector<PathId>> bindings = SchemaBindings(fresh);
    return !bindings[0].empty();
  }
  TwigQuery extended = query;
  QueryNodeId added = extended.AddChild(anchor, axis, tag);
  std::vector<std::vector<PathId>> bindings = SchemaBindings(extended);
  return !bindings[static_cast<size_t>(added)].empty();
}

}  // namespace lotusx::autocomplete
