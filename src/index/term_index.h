#ifndef LOTUSX_INDEX_TERM_INDEX_H_
#define LOTUSX_INDEX_TERM_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/coding.h"
#include "common/status_or.h"
#include "index/posting_blocks.h"
#include "index/trie.h"
#include "xml/dom.h"

namespace lotusx::index {

/// Inverted keyword index over element values. An element's value is the
/// concatenation of its direct text children (xml::Document::ContentString)
/// — the standard leaf-value model of twig search; attribute nodes carry
/// their own value. Terms are lowercase alphanumeric tokens
/// (TokenizeKeywords). Postings map a term to the *value nodes* (elements
/// with direct text, or attributes) containing it, in document order,
/// stored block-compressed (PostingBlocks) with per-node term frequencies
/// riding in the payload channel.
///
/// Besides predicate evaluation, the index maintains completion tries:
/// one global term trie and one per owner tag, so value auto-completion can
/// be restricted to terms that actually occur under the tag the user is
/// typing into (the position-aware behaviour, refined further by the
/// evaluator against the full query context).
class TermIndex {
 public:
  static TermIndex Build(const xml::Document& document);

  /// Block-compressed postings of `term` (document order; payload =
  /// per-node term frequency). nullptr for unknown terms. `term` must
  /// already be lowercase (as TokenizeKeywords emits).
  const PostingBlocks* PostingsFor(std::string_view term) const;

  /// Full decompression of `term`'s posting nodes; cold paths (keyword
  /// search random access) and tests only.
  std::vector<xml::NodeId> DecodePostings(std::string_view term) const;

  /// Number of value nodes containing `term`.
  uint32_t DocFrequency(std::string_view term) const;
  /// Total occurrences of `term` across all value nodes.
  uint64_t CollectionFrequency(std::string_view term) const;

  /// Total number of value nodes (the "N" of IDF).
  uint32_t num_value_nodes() const { return num_value_nodes_; }
  /// Number of distinct terms.
  size_t num_terms() const { return postings_.size(); }

  /// Term frequency of `term` within a specific value node (0 if absent).
  uint32_t TermFrequencyIn(std::string_view term, xml::NodeId node) const;

  /// Global completion trie (weights = collection frequency).
  const Trie& term_trie() const { return term_trie_; }
  /// Per-tag completion trie for values owned by `tag`; nullptr when the
  /// tag owns no values.
  const Trie* term_trie_for_tag(xml::TagId tag) const;

  size_t MemoryUsage() const;

  /// Audits postings and completion tries against `document`: block
  /// metadata consistent with decoded contents, posting nodes strictly
  /// sorted, in range, frequencies positive; collection frequencies
  /// consistent; tries structurally sound (see Trie::ValidateInvariants)
  /// and keyed by live tags. With `deep` set the document's value nodes
  /// are additionally re-tokenized and the postings compared against the
  /// recount — the cost of a fresh Build, so LoadFrom runs the linear
  /// structural audit only and tests / `--validate` run the deep one.
  /// Returns Corruption naming the first violated invariant.
  Status ValidateInvariants(const xml::Document& document,
                            bool deep = true) const;

  void EncodeTo(Encoder* encoder) const;
  static StatusOr<TermIndex> DecodeFrom(Decoder* decoder);

 private:
  struct PostingList {
    PostingBlocks postings;  // keys: value nodes; payload: term freqs
    uint64_t collection_frequency = 0;
  };

  std::unordered_map<std::string, PostingList> postings_;
  uint32_t num_value_nodes_ = 0;
  Trie term_trie_;
  std::unordered_map<xml::TagId, Trie> tag_tries_;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_TERM_INDEX_H_
