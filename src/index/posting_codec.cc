#include "index/posting_codec.h"

namespace lotusx::index::codec {

const uint8_t* DecodeDeltaKeysChecked(const uint8_t* p, const uint8_t* end,
                                      uint32_t count, uint32_t* out) {
  if (count == 0) return nullptr;
  uint32_t current = 0;
  if ((p = ReadVarint32(p, end, &current)) == nullptr) return nullptr;
  out[0] = current;
  for (uint32_t i = 1; i < count; ++i) {
    uint32_t delta = 0;
    if ((p = ReadVarint32(p, end, &delta)) == nullptr) return nullptr;
    // Zero deltas would smuggle duplicates into a strictly-increasing
    // stream; a wrapping sum would break sortedness silently.
    if (delta == 0 || delta > UINT32_MAX - current) return nullptr;
    current += delta;
    out[i] = current;
  }
  return p;
}

const uint8_t* DecodeDeltaKeysScalar(const uint8_t* p, const uint8_t* end,
                                     uint32_t count, uint32_t* out) {
  uint32_t current = 0;
  if ((p = ReadVarint32(p, end, &current)) == nullptr) return nullptr;
  out[0] = current;
  for (uint32_t i = 1; i < count; ++i) {
    uint32_t delta = 0;
    if ((p = ReadVarint32(p, end, &delta)) == nullptr) return nullptr;
    current += delta;
    out[i] = current;
  }
  return p;
}

const uint8_t* DecodeDeltaKeysFast(const uint8_t* p, const uint8_t* end,
                                   uint32_t count, uint32_t* out) {
  static const DeltaDecodeFn kernel = [] {
    DeltaDecodeFn simd = SimdDeltaDecoder();
    return simd != nullptr ? simd : &DecodeDeltaKeysScalar;
  }();
  return kernel(p, end, count, out);
}

const uint8_t* DecodeZigZagPayloadChecked(const uint8_t* p,
                                          const uint8_t* end, uint32_t count,
                                          uint32_t* out) {
  int64_t current = 0;
  for (uint32_t i = 0; i < count; ++i) {
    uint32_t encoded = 0;
    if ((p = ReadVarint32(p, end, &encoded)) == nullptr) return nullptr;
    int64_t delta = static_cast<int64_t>(encoded >> 1) ^
                    -static_cast<int64_t>(encoded & 1);
    current += delta;
    if (current < 0 || current > static_cast<int64_t>(UINT32_MAX)) {
      return nullptr;
    }
    out[i] = static_cast<uint32_t>(current);
  }
  return p;
}

}  // namespace lotusx::index::codec
