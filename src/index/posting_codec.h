#ifndef LOTUSX_INDEX_POSTING_CODEC_H_
#define LOTUSX_INDEX_POSTING_CODEC_H_

#include <cstdint>

namespace lotusx::index::codec {

/// Raw-buffer LEB128 primitives for the posting-block hot path. The
/// streaming Decoder in common/coding carries Status plumbing per byte;
/// block decode instead works over a pre-validated `[p, end)` slice and
/// signals malformed input with a nullptr return, which keeps the inner
/// loop branch-light and lets the SIMD kernels share the same contract.

/// Reads one varint32 from [p, end). Returns the position after the
/// varint, or nullptr on truncation / overflow past uint32.
inline const uint8_t* ReadVarint32(const uint8_t* p, const uint8_t* end,
                                   uint32_t* out) {
  uint64_t value = 0;
  int shift = 0;
  while (true) {
    if (p >= end || shift > 28) return nullptr;
    uint8_t byte = *p++;
    value |= static_cast<uint64_t>(byte & 0x7F) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  if (value > UINT32_MAX) return nullptr;
  *out = static_cast<uint32_t>(value);
  return p;
}

/// Decodes one block's key section: an absolute first key followed by
/// `count - 1` strictly-positive deltas. Fully validated: returns the
/// position after the last varint, or nullptr on truncation, a zero
/// delta, or accumulation past uint32. `count` must be >= 1.
const uint8_t* DecodeDeltaKeysChecked(const uint8_t* p, const uint8_t* end,
                                      uint32_t count, uint32_t* out);

/// Same contract as DecodeDeltaKeysChecked but assumes the block already
/// passed validation (offsets in range, keys strictly increasing within
/// uint32). Still never reads past `end`; corruption detection is not
/// guaranteed beyond that. This is the hot-path entry: it dispatches to
/// the best kernel selected at startup (scalar, SSE2, or AVX2).
const uint8_t* DecodeDeltaKeysFast(const uint8_t* p, const uint8_t* end,
                                   uint32_t count, uint32_t* out);

/// The scalar twin of DecodeDeltaKeysFast (no validation beyond bounds),
/// exposed so benches can compare scalar vs SIMD on identical inputs.
const uint8_t* DecodeDeltaKeysScalar(const uint8_t* p, const uint8_t* end,
                                     uint32_t count, uint32_t* out);

using DeltaDecodeFn = const uint8_t* (*)(const uint8_t* p, const uint8_t* end,
                                         uint32_t count, uint32_t* out);

/// The SIMD group-decode kernel chosen by runtime CPU dispatch (AVX2 when
/// the CPU supports it, else SSE2 on x86-64), or nullptr when the build
/// disabled SIMD (LOTUSX_SIMD=OFF) or the target is not x86-64.
DeltaDecodeFn SimdDeltaDecoder();

/// Human-readable name of the active decode kernel ("scalar", "sse2",
/// "avx2") for bench output and EXPLAIN.
const char* ActiveDeltaDecoderName();

/// Decodes one block's payload section: `count` zigzag-encoded deltas
/// accumulating a uint32 sequence (term frequencies). Validated; returns
/// nullptr on truncation or range overflow. Payloads are off the join
/// hot path (only ranking touches them), so there is no SIMD twin.
const uint8_t* DecodeZigZagPayloadChecked(const uint8_t* p,
                                          const uint8_t* end, uint32_t count,
                                          uint32_t* out);

}  // namespace lotusx::index::codec

#endif  // LOTUSX_INDEX_POSTING_CODEC_H_
