#ifndef LOTUSX_INDEX_INDEXED_DOCUMENT_H_
#define LOTUSX_INDEX_INDEXED_DOCUMENT_H_

#include <memory>
#include <string>

#include "common/status_or.h"
#include "index/dataguide.h"
#include "index/tag_streams.h"
#include "index/term_index.h"
#include "index/trie.h"
#include "labeling/containment.h"
#include "labeling/dewey.h"
#include "labeling/extended_dewey.h"
#include "xml/dom.h"

namespace lotusx::index {

/// Wall-clock and memory accounting for every index component (feeds the
/// E7 index-construction experiment).
struct IndexBuildStats {
  double containment_ms = 0;
  double dewey_ms = 0;
  double transducer_ms = 0;
  double extended_dewey_ms = 0;
  double dataguide_ms = 0;
  double tag_streams_ms = 0;
  double term_index_ms = 0;
  double tag_trie_ms = 0;
  double total_ms = 0;

  size_t document_bytes = 0;
  size_t containment_bytes = 0;
  size_t dewey_bytes = 0;
  size_t extended_dewey_bytes = 0;
  size_t transducer_bytes = 0;
  size_t dataguide_bytes = 0;
  size_t tag_streams_bytes = 0;
  size_t term_index_bytes = 0;
  size_t tag_trie_bytes = 0;
  size_t total_bytes() const {
    return document_bytes + containment_bytes + dewey_bytes +
           extended_dewey_bytes + transducer_bytes + dataguide_bytes +
           tag_streams_bytes + term_index_bytes + tag_trie_bytes;
  }
};

/// A finalized document together with every index LotusX needs: both
/// labeling schemes, the tag transducer, the DataGuide, per-tag node
/// streams, the keyword index, and the tag-name completion trie. This is
/// the unit the engine loads, queries, and persists.
class IndexedDocument {
 public:
  /// Builds all indexes over `document` (which must be finalized).
  explicit IndexedDocument(xml::Document document);

  IndexedDocument(IndexedDocument&&) noexcept = default;
  IndexedDocument& operator=(IndexedDocument&&) noexcept = default;
  IndexedDocument(const IndexedDocument&) = delete;
  IndexedDocument& operator=(const IndexedDocument&) = delete;

  const xml::Document& document() const { return document_; }
  const labeling::ContainmentLabels& containment() const {
    return containment_;
  }
  const labeling::DeweyStore& dewey() const { return dewey_; }
  const labeling::ExtendedDeweyStore& extended_dewey() const {
    return extended_dewey_;
  }
  const labeling::TagTransducer& transducer() const { return transducer_; }
  const DataGuide& dataguide() const { return dataguide_; }
  const TagStreams& tag_streams() const { return tag_streams_; }
  const TermIndex& terms() const { return terms_; }
  /// Tag-name completion trie; weights are tag occurrence counts.
  const Trie& tag_trie() const { return tag_trie_; }

  const IndexBuildStats& build_stats() const { return stats_; }

  /// Audits every index component against the document and the components
  /// against each other: the DOM arena itself, both labeling schemes
  /// (prefix/order/decode properties of Dewey and extended Dewey), the
  /// DataGuide, tag streams, term index, and the completion tries. `deep`
  /// additionally re-tokenizes all values to recount the term index (the
  /// cost of a fresh build). Returns Corruption naming the first violated
  /// invariant. LoadFrom runs the untrusted decoded parts through their
  /// validators automatically; tests and the engine's --validate mode run
  /// this full audit.
  Status ValidateInvariants(bool deep = true) const;

  /// Serializes the document and the heavyweight indexes (DataGuide, tag
  /// streams, term index) to `path` in the versioned LotusX binary format.
  /// Label stores and tries are derived in linear time at load and are not
  /// persisted.
  Status SaveTo(const std::string& path) const;

  /// Loads an index image written by SaveTo. Rejects wrong-magic,
  /// wrong-version, and corrupt images with Status::Corruption.
  static StatusOr<IndexedDocument> LoadFrom(const std::string& path);

 private:
  struct LoadedParts;
  IndexedDocument(xml::Document document, LoadedParts parts);
  void BuildDerivedIndexes();

  xml::Document document_;
  labeling::ContainmentLabels containment_;
  labeling::DeweyStore dewey_;
  labeling::TagTransducer transducer_;
  labeling::ExtendedDeweyStore extended_dewey_;
  DataGuide dataguide_;
  TagStreams tag_streams_;
  TermIndex terms_;
  Trie tag_trie_;
  IndexBuildStats stats_;
};

/// Serializes a finalized document (tag table, node structure, values)
/// into `encoder`; DecodeDocument reverses it. Exposed for tests.
void EncodeDocument(const xml::Document& document, Encoder* encoder);
StatusOr<xml::Document> DecodeDocument(Decoder* decoder);

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_INDEXED_DOCUMENT_H_
