#ifndef LOTUSX_INDEX_POSTING_CURSOR_H_
#define LOTUSX_INDEX_POSTING_CURSOR_H_

#include <algorithm>
#include <cstdint>
#include <span>

#include "common/arena.h"
#include "index/posting_blocks.h"

namespace lotusx::index {

/// The cursor contract every posting source honors. This is the
/// interface the twig joins are written against conceptually; on the hot
/// path they use the concrete cursors directly (no virtual dispatch),
/// and the conformance suite in tests/posting_blocks_test.cc drives both
/// implementations through this interface against a reference model to
/// pin the shared semantics:
///
///  - A fresh cursor is positioned on the first posting (or AtEnd()).
///  - Key() is only valid while !AtEnd() and is strictly increasing
///    across Next() calls.
///  - SeekGE(t) lands on the first posting >= t, never moves backward,
///    is a no-op when Key() >= t already, and returns !AtEnd().
///  - BlockMax() is a key upper bound for the cursor's current block:
///    Key() <= BlockMax(), and every posting up to BlockMax() can be
///    reached without decoding another block.
class PostingCursor {
 public:
  virtual ~PostingCursor() = default;
  virtual bool AtEnd() const = 0;
  virtual uint32_t Key() const = 0;
  virtual void Next() = 0;
  virtual bool SeekGE(uint32_t target) = 0;
  virtual uint32_t BlockMax() const = 0;
};

/// Raw-vector implementation: a cursor over an uncompressed sorted
/// span. Its "block" is the whole list.
class VectorPostingCursor final : public PostingCursor {
 public:
  explicit VectorPostingCursor(std::span<const uint32_t> keys)
      : keys_(keys) {}

  bool AtEnd() const override { return pos_ >= keys_.size(); }
  uint32_t Key() const override { return keys_[pos_]; }
  void Next() override { ++pos_; }
  bool SeekGE(uint32_t target) override {
    if (AtEnd()) return false;
    if (keys_[pos_] >= target) return true;
    // Gallop: doubling probe from the current position, then binary
    // search over the narrowed range.
    size_t low = pos_ + 1;
    size_t step = 1;
    while (low + step < keys_.size() && keys_[low + step] < target) {
      low += step;
      step *= 2;
    }
    pos_ = static_cast<size_t>(
        std::lower_bound(keys_.begin() + static_cast<ptrdiff_t>(low),
                         keys_.end(), target) -
        keys_.begin());
    return !AtEnd();
  }
  uint32_t BlockMax() const override { return keys_.back(); }

 private:
  std::span<const uint32_t> keys_;
  size_t pos_ = 0;
};

/// Block-compressed implementation: adapts PostingBlocks::Cursor to the
/// virtual interface.
class BlockPostingCursor final : public PostingCursor {
 public:
  BlockPostingCursor(const PostingBlocks& blocks, Arena* arena,
                     PostingStats* stats = nullptr)
      : cursor_(blocks.NewCursor(arena, stats)) {}

  bool AtEnd() const override { return cursor_.AtEnd(); }
  uint32_t Key() const override { return cursor_.Key(); }
  void Next() override { cursor_.Next(); }
  bool SeekGE(uint32_t target) override { return cursor_.SeekGE(target); }
  uint32_t BlockMax() const override { return cursor_.BlockMax(); }

 private:
  PostingBlocks::Cursor cursor_;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_POSTING_CURSOR_H_
