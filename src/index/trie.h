#ifndef LOTUSX_INDEX_TRIE_H_
#define LOTUSX_INDEX_TRIE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/coding.h"
#include "common/status_or.h"

namespace lotusx::index {

/// One ranked completion produced by Trie::Complete.
struct Completion {
  std::string key;
  uint64_t weight = 0;

  friend bool operator==(const Completion&, const Completion&) = default;
};

/// Byte-wise frequency trie supporting weighted top-k prefix completion —
/// the core data structure behind LotusX's auto-completion. Each inserted
/// key accumulates a weight (its occurrence count in the document);
/// Complete() returns the `limit` heaviest keys extending a prefix in
/// O(prefix + k log k + visited) via best-first search over per-subtree
/// weight maxima, without enumerating the whole subtree.
class Trie {
 public:
  Trie();

  Trie(Trie&&) noexcept = default;
  Trie& operator=(Trie&&) noexcept = default;
  Trie(const Trie&) = delete;
  Trie& operator=(const Trie&) = delete;

  /// Adds `weight` to the key's accumulated weight.
  void Insert(std::string_view key, uint64_t weight = 1);

  /// True when `key` was inserted at least once.
  bool Contains(std::string_view key) const;

  /// Accumulated weight of `key`; 0 when absent.
  uint64_t WeightOf(std::string_view key) const;

  /// The `limit` heaviest keys that start with `prefix`, heaviest first;
  /// ties broken lexicographically. `prefix` itself is included when it is
  /// a key.
  std::vector<Completion> Complete(std::string_view prefix,
                                   size_t limit) const;

  /// All keys under `prefix` in lexicographic order (testing/debugging).
  std::vector<Completion> Enumerate(std::string_view prefix) const;

  size_t num_keys() const { return num_keys_; }
  size_t num_nodes() const { return nodes_.size(); }
  size_t MemoryUsage() const;

  /// Audits the trie shape: nodes form a tree rooted at 0 (no cycles, no
  /// sharing, no orphans — a decoded cyclic trie would hang Complete()),
  /// children sorted strictly by byte, subtree_best equal to the true
  /// subtree maximum, and num_keys matching the terminal count. Returns
  /// Corruption naming the first violated invariant.
  Status ValidateInvariants() const;

  /// Persistence (versionless inner section; the caller frames it).
  void EncodeTo(Encoder* encoder) const;
  static StatusOr<Trie> DecodeFrom(Decoder* decoder);

 private:
  struct Node {
    // Sorted by byte for deterministic traversal; linear scan is fine for
    // the small fan-outs of tag/term vocabularies.
    std::vector<std::pair<char, int32_t>> children;
    uint64_t terminal_weight = 0;  // 0 means "not a key"
    uint64_t subtree_best = 0;     // max terminal weight in this subtree
  };

  /// Node index for `key`'s end, or -1.
  int32_t Find(std::string_view key) const;
  int32_t ChildOf(int32_t node, char byte) const;

  std::vector<Node> nodes_;
  size_t num_keys_ = 0;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_TRIE_H_
