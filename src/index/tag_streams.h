#ifndef LOTUSX_INDEX_TAG_STREAMS_H_
#define LOTUSX_INDEX_TAG_STREAMS_H_

#include <cstdint>
#include <vector>

#include "common/coding.h"
#include "common/status_or.h"
#include "index/posting_blocks.h"
#include "xml/dom.h"

namespace lotusx::index {

/// Per-tag posting lists of element/attribute nodes in document order —
/// the input streams of every twig join algorithm (TwigStack reads
/// containment labels off them; TJFast reads extended Dewey labels).
/// Each stream is block-compressed (PostingBlocks): joins open cursors
/// on it and skip blocks instead of scanning raw vectors.
class TagStreams {
 public:
  static TagStreams Build(const xml::Document& document);

  /// Block-compressed stream of all elements/attributes with tag `tag`
  /// in document order. A shared empty stream for out-of-range tags.
  const PostingBlocks& blocks(xml::TagId tag) const {
    static const PostingBlocks kEmpty;
    if (tag < 0 || static_cast<size_t>(tag) >= streams_.size()) {
      return kEmpty;
    }
    return streams_[static_cast<size_t>(tag)];
  }

  /// Occurrence count of `tag`.
  uint64_t count(xml::TagId tag) const { return blocks(tag).size(); }

  /// Full decompression of one stream; cold paths and tests only.
  std::vector<xml::NodeId> Decode(xml::TagId tag) const;

  int32_t num_tags() const { return static_cast<int32_t>(streams_.size()); }
  size_t MemoryUsage() const;

  /// Audits the structure against `document`: one stream per document tag,
  /// block metadata consistent with decoded contents, every stream
  /// strictly sorted in document order, every entry a live
  /// element/attribute node carrying the stream's tag, and the totals
  /// covering the document exactly. Returns Corruption naming the first
  /// violated invariant. Run on every LoadFrom (streams come from an
  /// untrusted file) and by tests / `--validate`.
  Status ValidateInvariants(const xml::Document& document) const;

  void EncodeTo(Encoder* encoder) const;
  static StatusOr<TagStreams> DecodeFrom(Decoder* decoder);

 private:
  std::vector<PostingBlocks> streams_;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_TAG_STREAMS_H_
