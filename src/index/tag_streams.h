#ifndef LOTUSX_INDEX_TAG_STREAMS_H_
#define LOTUSX_INDEX_TAG_STREAMS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/coding.h"
#include "common/status_or.h"
#include "xml/dom.h"

namespace lotusx::index {

/// Per-tag posting lists of element/attribute nodes in document order —
/// the input streams of every twig join algorithm (TwigStack reads
/// containment labels off them; TJFast reads extended Dewey labels).
class TagStreams {
 public:
  static TagStreams Build(const xml::Document& document);

  /// Document-order NodeIds of all elements/attributes with tag `tag`.
  /// Empty span for out-of-range tags.
  std::span<const xml::NodeId> stream(xml::TagId tag) const {
    if (tag < 0 || static_cast<size_t>(tag) >= streams_.size()) return {};
    return streams_[static_cast<size_t>(tag)];
  }

  /// Occurrence count of `tag`.
  uint64_t count(xml::TagId tag) const { return stream(tag).size(); }

  int32_t num_tags() const { return static_cast<int32_t>(streams_.size()); }
  size_t MemoryUsage() const;

  /// Audits the structure against `document`: one stream per document tag,
  /// every stream strictly sorted in document order, every entry a live
  /// element/attribute node carrying the stream's tag, and the totals
  /// covering the document exactly. Returns Corruption naming the first
  /// violated invariant. Run on every LoadFrom (streams come from an
  /// untrusted file) and by tests / `--validate`.
  Status ValidateInvariants(const xml::Document& document) const;

  void EncodeTo(Encoder* encoder) const;
  static StatusOr<TagStreams> DecodeFrom(Decoder* decoder);

 private:
  std::vector<std::vector<xml::NodeId>> streams_;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_TAG_STREAMS_H_
