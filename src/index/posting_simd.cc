#include "index/posting_codec.h"

// SIMD group-decode kernels for posting-block key sections. Compiled into
// every build; the bodies are gated so that LOTUSX_SIMD=OFF (or a
// non-x86-64 target) yields a stub returning nullptr and the cursor falls
// back to the scalar decoder. The AVX2 kernel uses the GCC/Clang target
// attribute, so the file itself builds without -mavx2 and the choice is
// made once at runtime via __builtin_cpu_supports.

#if defined(LOTUSX_SIMD_ENABLED) && defined(__x86_64__)

#include <immintrin.h>

namespace lotusx::index::codec {
namespace {

// Decodes deltas [i, count) the slow way: one varint at a time, no
// validation beyond bounds (the block passed Checked decode at load).
inline const uint8_t* ScalarTail(const uint8_t* p, const uint8_t* end,
                                 uint32_t i, uint32_t count, uint32_t base,
                                 uint32_t* out) {
  uint32_t current = base;
  for (; i < count; ++i) {
    uint32_t delta = 0;
    if ((p = ReadVarint32(p, end, &delta)) == nullptr) return nullptr;
    current += delta;
    out[i] = current;
  }
  return p;
}

// Prefix-sums 4 lanes in place and returns the vector; the caller adds
// the running base. Classic log-step shift-and-add.
inline __m128i PrefixSum4(__m128i x) {
  x = _mm_add_epi32(x, _mm_slli_si128(x, 4));
  x = _mm_add_epi32(x, _mm_slli_si128(x, 8));
  return x;
}

// Widens 8 packed single-byte deltas into two prefix-summed groups of 4,
// adds `*base`, stores to out, and advances *base past them.
inline void Sum8SingleByte(__m128i bytes, uint32_t* base, uint32_t* out) {
  const __m128i zero = _mm_setzero_si128();
  __m128i lo16 = _mm_unpacklo_epi8(bytes, zero);
  __m128i lo = PrefixSum4(_mm_unpacklo_epi16(lo16, zero));
  __m128i hi = PrefixSum4(_mm_unpackhi_epi16(lo16, zero));
  __m128i b = _mm_set1_epi32(static_cast<int>(*base));
  lo = _mm_add_epi32(lo, b);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out), lo);
  uint32_t mid = static_cast<uint32_t>(
      _mm_cvtsi128_si32(_mm_shuffle_epi32(lo, 0xFF)));
  hi = _mm_add_epi32(hi, _mm_set1_epi32(static_cast<int>(mid)));
  _mm_storeu_si128(reinterpret_cast<__m128i*>(out + 4), hi);
  *base = static_cast<uint32_t>(
      _mm_cvtsi128_si32(_mm_shuffle_epi32(hi, 0xFF)));
}

const uint8_t* DecodeDeltaKeysSse2(const uint8_t* p, const uint8_t* end,
                                   uint32_t count, uint32_t* out) {
  uint32_t current = 0;
  if ((p = ReadVarint32(p, end, &current)) == nullptr) return nullptr;
  out[0] = current;
  uint32_t i = 1;
  // Fast path: 8 deltas at a time when the next 8 bytes are all
  // single-byte varints (no continuation bit), which delta encoding of
  // dense NodeId streams makes the common case.
  while (count - i >= 8 && end - p >= 8) {
    __m128i bytes = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
    if ((_mm_movemask_epi8(bytes) & 0xFF) != 0) {
      // A continuation byte in the window: decode one delta scalar and
      // re-probe at the new position.
      uint32_t delta = 0;
      if ((p = ReadVarint32(p, end, &delta)) == nullptr) return nullptr;
      current += delta;
      out[i++] = current;
      continue;
    }
    Sum8SingleByte(bytes, &current, out + i);
    p += 8;
    i += 8;
  }
  return ScalarTail(p, end, i, count, current, out);
}

__attribute__((target("avx2"))) const uint8_t* DecodeDeltaKeysAvx2(
    const uint8_t* p, const uint8_t* end, uint32_t count, uint32_t* out) {
  uint32_t current = 0;
  if ((p = ReadVarint32(p, end, &current)) == nullptr) return nullptr;
  out[0] = current;
  uint32_t i = 1;
  // 16 deltas per iteration when a 16-byte probe shows no continuation
  // bits: widen to 16 u32 lanes, log-step prefix sum within each 128-bit
  // lane, carry the low lane's total into the high lane, add the base.
  while (count - i >= 16 && end - p >= 16) {
    __m128i bytes = _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
    if (_mm_movemask_epi8(bytes) != 0) {
      uint32_t delta = 0;
      if ((p = ReadVarint32(p, end, &delta)) == nullptr) return nullptr;
      current += delta;
      out[i++] = current;
      continue;
    }
    for (int half = 0; half < 2; ++half) {
      __m128i lane = half == 0 ? bytes : _mm_srli_si128(bytes, 8);
      __m256i x = _mm256_cvtepu8_epi32(lane);
      x = _mm256_add_epi32(x, _mm256_slli_si256(x, 4));
      x = _mm256_add_epi32(x, _mm256_slli_si256(x, 8));
      // Carry: broadcast the low 128-bit lane's last element into every
      // high-lane slot (the permute zeroes the low lane, so low lanes
      // are unchanged).
      __m256i swapped = _mm256_permute2x128_si256(x, x, 0x08);
      __m256i carry = _mm256_shuffle_epi32(swapped, 0xFF);
      x = _mm256_add_epi32(x, carry);
      x = _mm256_add_epi32(x, _mm256_set1_epi32(static_cast<int>(current)));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(out + i), x);
      current = out[i + 7];
      i += 8;
    }
    p += 16;
  }
  return ScalarTail(p, end, i, count, current, out);
}

struct Dispatch {
  DeltaDecodeFn fn;
  const char* name;
};

Dispatch Pick() {
  __builtin_cpu_init();
  if (__builtin_cpu_supports("avx2")) return {&DecodeDeltaKeysAvx2, "avx2"};
  return {&DecodeDeltaKeysSse2, "sse2"};
}

const Dispatch& Active() {
  static const Dispatch dispatch = Pick();
  return dispatch;
}

}  // namespace

DeltaDecodeFn SimdDeltaDecoder() { return Active().fn; }

const char* ActiveDeltaDecoderName() { return Active().name; }

}  // namespace lotusx::index::codec

#else  // !LOTUSX_SIMD_ENABLED || !__x86_64__

namespace lotusx::index::codec {

DeltaDecodeFn SimdDeltaDecoder() { return nullptr; }

const char* ActiveDeltaDecoderName() { return "scalar"; }

}  // namespace lotusx::index::codec

#endif
