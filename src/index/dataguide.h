#ifndef LOTUSX_INDEX_DATAGUIDE_H_
#define LOTUSX_INDEX_DATAGUIDE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status_or.h"
#include "xml/dom.h"

namespace lotusx::index {

/// Identifier of a DataGuide path node (a distinct root-to-node tag path).
using PathId = int32_t;
inline constexpr PathId kInvalidPathId = -1;

/// Strong DataGuide: a summary tree with exactly one node per distinct
/// root-to-node *label path* in the document, annotated with occurrence
/// statistics. This is LotusX's position-awareness oracle: given the query
/// position a user is extending, the DataGuide says which tags can
/// actually appear there (as children or descendants) and how often —
/// so only satisfiable candidates are suggested, ranked by frequency.
class DataGuide {
 public:
  struct PathNode {
    xml::TagId tag = xml::kInvalidTagId;
    PathId parent = kInvalidPathId;
    int32_t depth = 0;           // root path has depth 0
    uint32_t count = 0;          // document nodes with this exact path
    uint32_t text_count = 0;     // of those, how many have direct text
    std::vector<PathId> children;
  };

  /// Builds the DataGuide over a finalized document (covers element and
  /// attribute nodes; text nodes contribute text_count on their parent).
  static DataGuide Build(const xml::Document& document);

  PathId root() const { return nodes_.empty() ? kInvalidPathId : 0; }
  int32_t num_paths() const { return static_cast<int32_t>(nodes_.size()); }
  const PathNode& node(PathId id) const {
    DCHECK(id >= 0 && id < num_paths());
    return nodes_[static_cast<size_t>(id)];
  }

  /// Child path with tag `tag`, or kInvalidPathId.
  PathId FindChild(PathId path, xml::TagId tag) const;

  /// All paths whose final tag is `tag` (a tag may occur at many paths).
  const std::vector<PathId>& PathsWithTag(xml::TagId tag) const;

  /// DataGuide path of a document node (kInvalidPathId for text nodes).
  PathId PathOf(xml::NodeId id) const {
    return path_of_[static_cast<size_t>(id)];
  }

  /// Distinct tags occurring as children of `path`, ascending TagId.
  std::vector<xml::TagId> ChildTags(PathId path) const;

  /// Distinct tags occurring strictly below `path` (any depth), ascending.
  const std::vector<xml::TagId>& DescendantTags(PathId path) const;

  /// Total count of descendant occurrences of `tag` below `path` — the
  /// frequency weight used to rank position-aware candidates.
  uint64_t DescendantTagCount(PathId path, xml::TagId tag) const;
  /// Same for direct children only.
  uint64_t ChildTagCount(PathId path, xml::TagId tag) const;

  /// Tag path from the root to `path` (inclusive), as tag ids.
  std::vector<xml::TagId> TagPath(PathId path) const;
  /// "/dblp/article/author" rendering.
  std::string PathString(const xml::Document& document, PathId path) const;

  size_t MemoryUsage() const;

  /// Audits the summary tree against `document`: parent/child/depth
  /// consistency, tags within the document's tag table, and the occurrence
  /// statistics (count, text_count, path_of_) in exact agreement with a
  /// recount over the document. Returns Corruption naming the first
  /// violated invariant. Run on every LoadFrom (the guide comes from an
  /// untrusted file) and by tests / `--validate`.
  Status ValidateInvariants(const xml::Document& document) const;

  void EncodeTo(Encoder* encoder) const;
  static StatusOr<DataGuide> DecodeFrom(Decoder* decoder);

 private:
  void BuildDerivedData();

  std::vector<PathNode> nodes_;
  std::vector<PathId> path_of_;                    // by NodeId
  std::vector<std::vector<PathId>> paths_by_tag_;  // by TagId
  // Per path: sorted (tag, total count) pairs of strict-descendant
  // occurrences, plus just the keys for DescendantTags().
  std::vector<std::vector<std::pair<xml::TagId, uint64_t>>> descendant_tags_;
  std::vector<std::vector<xml::TagId>> descendant_keys_;
  std::vector<PathId> empty_paths_;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_DATAGUIDE_H_
