#include "index/posting_blocks.h"

#include <algorithm>

#include "common/invariant.h"
#include "common/timer.h"
#include "index/posting_codec.h"

namespace lotusx::index {

PostingBlocks PostingBlocks::FromSorted(std::span<const uint32_t> keys,
                                        std::span<const uint32_t> payloads) {
  CHECK(payloads.empty() || payloads.size() == keys.size());
  CHECK(keys.size() <= UINT32_MAX);
  PostingBlocks blocks;
  blocks.total_count_ = static_cast<uint32_t>(keys.size());
  blocks.has_payload_ = !payloads.empty();
  Encoder encoder(&blocks.data_);
  for (size_t start = 0; start < keys.size(); start += kBlockEntries) {
    size_t count = std::min<size_t>(kBlockEntries, keys.size() - start);
    BlockMeta meta;
    meta.offset = static_cast<uint32_t>(blocks.data_.size());
    meta.count = static_cast<uint32_t>(count);
    meta.min = keys[start];
    meta.max = keys[start + count - 1];
    encoder.PutVarint32(keys[start]);
    for (size_t i = 1; i < count; ++i) {
      CHECK(keys[start + i] > keys[start + i - 1]);
      encoder.PutVarint32(keys[start + i] - keys[start + i - 1]);
    }
    meta.key_bytes =
        static_cast<uint32_t>(blocks.data_.size()) - meta.offset;
    if (blocks.has_payload_) {
      uint32_t previous = 0;
      for (size_t i = 0; i < count; ++i) {
        uint32_t value = payloads[start + i];
        int64_t delta =
            static_cast<int64_t>(value) - static_cast<int64_t>(previous);
        encoder.PutVarint64(ZigZagEncode64(delta));
        previous = value;
      }
    }
    CHECK(blocks.data_.size() <= UINT32_MAX);
    blocks.meta_.push_back(meta);
  }
  // Posting lists are immutable once built and live as long as the
  // index; drop the append-phase growth slack so MemoryUsage reflects
  // the compressed size, not the doubling capacity.
  blocks.data_.shrink_to_fit();
  blocks.meta_.shrink_to_fit();
  return blocks;
}

PostingBlocks::BlockStats PostingBlocks::Stats() const {
  BlockStats stats;
  stats.blocks = meta_.size();
  if (!meta_.empty()) {
    stats.avg_fill = static_cast<double>(total_count_) /
                     static_cast<double>(meta_.size());
    stats.key_span = static_cast<uint64_t>(max_key()) - min_key() + 1;
  }
  return stats;
}

PostingBlocks::Cursor::Cursor(const PostingBlocks* blocks, Arena* arena,
                              PostingStats* stats)
    : blocks_(blocks), stats_(stats), num_blocks_(blocks->meta_.size()) {
  if (num_blocks_ == 0) return;
  keys_ = arena->AllocateArray<uint32_t>(kBlockEntries).data();
  if (blocks->has_payload_) {
    payloads_ = arena->AllocateArray<uint32_t>(kBlockEntries).data();
  }
  LoadBlock();
}

void PostingBlocks::Cursor::LoadBlock() {
  const BlockMeta& meta = blocks_->meta_[block_];
  const uint8_t* p =
      reinterpret_cast<const uint8_t*>(blocks_->data_.data()) + meta.offset;
  const uint8_t* end = p + meta.key_bytes;
  if (stats_ != nullptr && stats_->time_decodes) {
    Timer timer;
    const uint8_t* after = codec::DecodeDeltaKeysFast(p, end, meta.count,
                                                      keys_);
    stats_->decode_ms += static_cast<double>(timer.ElapsedNanos()) / 1e6;
    LOTUSX_DCHECK(after == end);
    (void)after;
  } else {
    const uint8_t* after = codec::DecodeDeltaKeysFast(p, end, meta.count,
                                                      keys_);
    LOTUSX_DCHECK(after == end);
    (void)after;
  }
  if (stats_ != nullptr) {
    ++stats_->blocks_decoded;
    stats_->bytes_decoded += meta.key_bytes;
  }
  pos_ = 0;
  count_ = meta.count;
  payload_loaded_ = false;
}

bool PostingBlocks::Cursor::SeekGE(uint32_t target) {
  if (AtEnd()) return false;
  if (keys_[pos_] >= target) return true;
  const std::vector<BlockMeta>& meta = blocks_->meta_;
  if (meta[block_].max >= target) {
    // Stays inside the already-decoded block.
    pos_ = static_cast<uint32_t>(
        std::lower_bound(keys_ + pos_ + 1, keys_ + count_, target) - keys_);
    return true;
  }
  // Gallop over the skip index: doubling probe then binary search on the
  // narrowed range. Skipped blocks are counted but never decoded.
  size_t low = block_ + 1;
  size_t step = 1;
  while (low + step < meta.size() && meta[low + step].max < target) {
    low += step;
    step *= 2;
  }
  auto it = std::lower_bound(
      meta.begin() + static_cast<ptrdiff_t>(low), meta.end(), target,
      [](const BlockMeta& m, uint32_t t) { return m.max < t; });
  size_t found = static_cast<size_t>(it - meta.begin());
  if (stats_ != nullptr) stats_->blocks_skipped += found - block_ - 1;
  block_ = found;
  if (AtEnd()) return false;
  LoadBlock();
  pos_ = static_cast<uint32_t>(
      std::lower_bound(keys_, keys_ + count_, target) - keys_);
  return true;
}

uint32_t PostingBlocks::Cursor::Payload() {
  if (payloads_ == nullptr) return 0;
  if (!payload_loaded_) {
    const BlockMeta& meta = blocks_->meta_[block_];
    const uint8_t* base =
        reinterpret_cast<const uint8_t*>(blocks_->data_.data());
    const uint8_t* p = base + meta.offset + meta.key_bytes;
    const uint8_t* end = base + blocks_->BlockEndOffset(block_);
    const uint8_t* after =
        codec::DecodeZigZagPayloadChecked(p, end, meta.count, payloads_);
    CHECK(after == end);
    if (stats_ != nullptr) {
      stats_->bytes_decoded += static_cast<uint64_t>(end - p);
    }
    payload_loaded_ = true;
  }
  return payloads_[pos_];
}

namespace {

// Decodes the key section of one block into `out` (kBlockEntries
// capacity); used by the random-access probes that bypass cursors.
const uint32_t* DecodeBlockKeys(const std::string& data, uint32_t offset,
                                uint32_t key_bytes, uint32_t count,
                                uint32_t* out) {
  const uint8_t* p = reinterpret_cast<const uint8_t*>(data.data()) + offset;
  const uint8_t* after =
      codec::DecodeDeltaKeysFast(p, p + key_bytes, count, out);
  CHECK(after == p + key_bytes);
  return out;
}

}  // namespace

bool PostingBlocks::Contains(uint32_t key) const {
  auto it = std::lower_bound(
      meta_.begin(), meta_.end(), key,
      [](const BlockMeta& m, uint32_t k) { return m.max < k; });
  if (it == meta_.end() || it->min > key) return false;
  uint32_t keys[kBlockEntries];
  DecodeBlockKeys(data_, it->offset, it->key_bytes, it->count, keys);
  return std::binary_search(keys, keys + it->count, key);
}

uint32_t PostingBlocks::PayloadFor(uint32_t key) const {
  if (!has_payload_) return 0;
  auto it = std::lower_bound(
      meta_.begin(), meta_.end(), key,
      [](const BlockMeta& m, uint32_t k) { return m.max < k; });
  if (it == meta_.end() || it->min > key) return 0;
  uint32_t keys[kBlockEntries];
  DecodeBlockKeys(data_, it->offset, it->key_bytes, it->count, keys);
  const uint32_t* found = std::lower_bound(keys, keys + it->count, key);
  if (found == keys + it->count || *found != key) return 0;
  uint32_t payloads[kBlockEntries];
  size_t b = static_cast<size_t>(it - meta_.begin());
  const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
  const uint8_t* p = base + it->offset + it->key_bytes;
  const uint8_t* end = base + BlockEndOffset(b);
  const uint8_t* after =
      codec::DecodeZigZagPayloadChecked(p, end, it->count, payloads);
  CHECK(after == end);
  return payloads[found - keys];
}

std::vector<uint32_t> PostingBlocks::DecodeKeys() const {
  std::vector<uint32_t> keys(total_count_);
  size_t written = 0;
  for (size_t b = 0; b < meta_.size(); ++b) {
    const BlockMeta& meta = meta_[b];
    const uint8_t* p =
        reinterpret_cast<const uint8_t*>(data_.data()) + meta.offset;
    const uint8_t* after = codec::DecodeDeltaKeysChecked(
        p, p + meta.key_bytes, meta.count, keys.data() + written);
    CHECK(after == p + meta.key_bytes);
    written += meta.count;
  }
  CHECK(written == total_count_);
  return keys;
}

std::vector<uint32_t> PostingBlocks::DecodePayloads() const {
  if (!has_payload_) return {};
  std::vector<uint32_t> payloads(total_count_);
  size_t written = 0;
  for (size_t b = 0; b < meta_.size(); ++b) {
    const BlockMeta& meta = meta_[b];
    const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
    const uint8_t* p = base + meta.offset + meta.key_bytes;
    const uint8_t* end = base + BlockEndOffset(b);
    const uint8_t* after = codec::DecodeZigZagPayloadChecked(
        p, end, meta.count, payloads.data() + written);
    CHECK(after == end);
    written += meta.count;
  }
  CHECK(written == total_count_);
  return payloads;
}

Status PostingBlocks::ValidateInvariants() const {
  LOTUSX_ENSURE(data_.size() <= UINT32_MAX);
  if (meta_.empty()) {
    LOTUSX_ENSURE(total_count_ == 0 && data_.empty())
        << "count " << total_count_ << " data " << data_.size();
    return Status::OK();
  }
  LOTUSX_ENSURE(meta_.front().offset == 0);
  uint64_t total = 0;
  uint32_t previous_max = 0;
  std::vector<uint32_t> keys(kBlockEntries);
  std::vector<uint32_t> payloads(kBlockEntries);
  for (size_t b = 0; b < meta_.size(); ++b) {
    const BlockMeta& meta = meta_[b];
    LOTUSX_ENSURE(meta.count >= 1 && meta.count <= kBlockEntries)
        << "block " << b << " count " << meta.count;
    size_t end_offset = BlockEndOffset(b);
    LOTUSX_ENSURE(end_offset <= data_.size()) << "block " << b;
    LOTUSX_ENSURE(meta.offset <= end_offset &&
                  meta.key_bytes <= end_offset - meta.offset)
        << "block " << b << " sections exceed block bytes";
    if (!has_payload_) {
      // No payload channel: the key section must account for every byte.
      LOTUSX_ENSURE(meta.offset + meta.key_bytes == end_offset)
          << "block " << b << " has slack bytes";
    }
    const uint8_t* base = reinterpret_cast<const uint8_t*>(data_.data());
    const uint8_t* p = base + meta.offset;
    // The checked decoder enforces strict key increase and rejects
    // truncated or overlong varints; exact consumption pins key_bytes.
    const uint8_t* after = codec::DecodeDeltaKeysChecked(
        p, p + meta.key_bytes, meta.count, keys.data());
    LOTUSX_ENSURE(after == p + meta.key_bytes)
        << "block " << b << " key section malformed";
    LOTUSX_ENSURE(keys[0] == meta.min && keys[meta.count - 1] == meta.max)
        << "block " << b << " metadata disagrees with contents";
    LOTUSX_ENSURE(b == 0 || meta.min > previous_max)
        << "block " << b << " overlaps predecessor";
    if (has_payload_) {
      const uint8_t* payload_begin = p + meta.key_bytes;
      const uint8_t* payload_end = base + end_offset;
      const uint8_t* payload_after = codec::DecodeZigZagPayloadChecked(
          payload_begin, payload_end, meta.count, payloads.data());
      LOTUSX_ENSURE(payload_after == payload_end)
          << "block " << b << " payload section malformed";
    }
    previous_max = meta.max;
    total += meta.count;
  }
  LOTUSX_ENSURE(total == total_count_)
      << "blocks hold " << total << " entries, header says " << total_count_;
  return Status::OK();
}

void PostingBlocks::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint32(total_count_);
  encoder->PutVarint32(has_payload_ ? 1 : 0);
  encoder->PutVarint64(meta_.size());
  for (size_t b = 0; b < meta_.size(); ++b) {
    const BlockMeta& meta = meta_[b];
    encoder->PutVarint32(meta.count);
    encoder->PutVarint32(meta.min);
    encoder->PutVarint32(meta.max);
    encoder->PutVarint32(meta.key_bytes);
    encoder->PutVarint32(static_cast<uint32_t>(BlockEndOffset(b)) -
                         meta.offset);
  }
  encoder->PutString(data_);
}

StatusOr<PostingBlocks> PostingBlocks::DecodeFrom(Decoder* decoder) {
  PostingBlocks blocks;
  uint32_t total = 0;
  uint32_t flags = 0;
  uint64_t num_blocks = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&total));
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&flags));
  if (flags > 1) return Status::Corruption("unknown posting flags");
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&num_blocks));
  if (num_blocks > decoder->remaining()) {
    // Every block header takes at least five bytes; reject absurd
    // counts before reserving memory for them.
    return Status::Corruption("posting block count exceeds buffer");
  }
  blocks.total_count_ = total;
  blocks.has_payload_ = flags == 1;
  blocks.meta_.reserve(num_blocks);
  uint64_t offset = 0;
  for (uint64_t b = 0; b < num_blocks; ++b) {
    BlockMeta meta;
    uint32_t block_bytes = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&meta.count));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&meta.min));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&meta.max));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&meta.key_bytes));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&block_bytes));
    if (offset + block_bytes > UINT32_MAX) {
      return Status::Corruption("posting data overflows offsets");
    }
    meta.offset = static_cast<uint32_t>(offset);
    offset += block_bytes;
    blocks.meta_.push_back(meta);
  }
  LOTUSX_RETURN_IF_ERROR(decoder->GetString(&blocks.data_));
  if (offset != blocks.data_.size()) {
    return Status::Corruption("posting data length mismatch");
  }
  // Full audit up front: everything that loads is safe for the
  // unchecked fast decoders on the query path.
  LOTUSX_RETURN_IF_ERROR(blocks.ValidateInvariants());
  return blocks;
}

}  // namespace lotusx::index
