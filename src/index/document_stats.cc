#include "index/document_stats.h"

#include <algorithm>
#include <sstream>

namespace lotusx::index {

DocumentStats ComputeDocumentStats(const IndexedDocument& indexed,
                                   size_t top_k) {
  DocumentStats stats;
  const xml::Document& document = indexed.document();
  int64_t depth_sum = 0;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    switch (node.kind) {
      case xml::NodeKind::kElement:
        ++stats.elements;
        break;
      case xml::NodeKind::kAttribute:
        ++stats.attributes;
        break;
      case xml::NodeKind::kText:
        ++stats.text_nodes;
        break;
    }
    stats.max_depth = std::max(stats.max_depth, node.depth);
    depth_sum += node.depth;
    if (node.kind == xml::NodeKind::kElement) {
      if (static_cast<size_t>(node.depth) >=
          stats.depth_histogram.size()) {
        stats.depth_histogram.resize(static_cast<size_t>(node.depth) + 1,
                                     0);
      }
      ++stats.depth_histogram[static_cast<size_t>(node.depth)];
    }
  }
  if (document.num_nodes() > 0) {
    stats.avg_depth =
        static_cast<double>(depth_sum) / document.num_nodes();
  }
  stats.distinct_tags = document.num_tags();
  stats.distinct_paths = indexed.dataguide().num_paths();
  stats.distinct_terms = static_cast<int64_t>(indexed.terms().num_terms());

  for (const Completion& completion :
       indexed.tag_trie().Complete("", top_k)) {
    stats.top_tags.emplace_back(completion.key, completion.weight);
  }
  for (const Completion& completion :
       indexed.terms().term_trie().Complete("", top_k)) {
    stats.top_terms.emplace_back(completion.key, completion.weight);
  }
  return stats;
}

std::string RenderDocumentStats(const DocumentStats& stats) {
  std::ostringstream out;
  out << "elements: " << stats.elements
      << ", attributes: " << stats.attributes
      << ", text nodes: " << stats.text_nodes << "\n";
  out << "distinct tags: " << stats.distinct_tags
      << ", distinct paths: " << stats.distinct_paths
      << ", distinct terms: " << stats.distinct_terms << "\n";
  out << "depth: max " << stats.max_depth << ", avg " << stats.avg_depth
      << "\n";
  out << "top tags:";
  for (const auto& [tag, count] : stats.top_tags) {
    out << " " << tag << "(" << count << ")";
  }
  out << "\ntop terms:";
  for (const auto& [term, count] : stats.top_terms) {
    out << " " << term << "(" << count << ")";
  }
  out << "\n";
  return out.str();
}

}  // namespace lotusx::index
