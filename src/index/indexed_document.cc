#include "index/indexed_document.h"

#include <utility>

#include "common/invariant.h"
#include "common/timer.h"

namespace lotusx::index {

namespace {
constexpr uint32_t kMagic = 0x4C545358;  // "LTSX"
// Version 2: tag streams and term postings are block-compressed
// (PostingBlocks) with skip metadata; version-1 raw delta lists are no
// longer readable.
constexpr uint32_t kFormatVersion = 2;
}  // namespace

struct IndexedDocument::LoadedParts {
  DataGuide dataguide;
  TagStreams tag_streams;
  TermIndex terms;
};

IndexedDocument::IndexedDocument(xml::Document document)
    : document_(std::move(document)) {
  CHECK(document_.finalized());
  Timer total;
  Timer timer;

  dataguide_ = DataGuide::Build(document_);
  stats_.dataguide_ms = timer.ElapsedMillis();

  timer.Restart();
  tag_streams_ = TagStreams::Build(document_);
  stats_.tag_streams_ms = timer.ElapsedMillis();

  timer.Restart();
  terms_ = TermIndex::Build(document_);
  stats_.term_index_ms = timer.ElapsedMillis();

  BuildDerivedIndexes();
  stats_.total_ms = total.ElapsedMillis();
}

IndexedDocument::IndexedDocument(xml::Document document, LoadedParts parts)
    : document_(std::move(document)),
      dataguide_(std::move(parts.dataguide)),
      tag_streams_(std::move(parts.tag_streams)),
      terms_(std::move(parts.terms)) {
  Timer total;
  BuildDerivedIndexes();
  stats_.total_ms = total.ElapsedMillis();
}

void IndexedDocument::BuildDerivedIndexes() {
  Timer timer;
  containment_ = labeling::ContainmentLabels::Build(document_);
  stats_.containment_ms = timer.ElapsedMillis();

  timer.Restart();
  dewey_ = labeling::DeweyStore::Build(document_);
  stats_.dewey_ms = timer.ElapsedMillis();

  timer.Restart();
  transducer_ = labeling::TagTransducer::Build(document_);
  stats_.transducer_ms = timer.ElapsedMillis();

  timer.Restart();
  extended_dewey_ =
      labeling::ExtendedDeweyStore::Build(document_, transducer_);
  stats_.extended_dewey_ms = timer.ElapsedMillis();

  timer.Restart();
  for (xml::TagId tag = 0; tag < document_.num_tags(); ++tag) {
    uint64_t count = tag_streams_.count(tag);
    if (count > 0) {
      tag_trie_.Insert(document_.tag_name(tag), count);
    }
  }
  stats_.tag_trie_ms = timer.ElapsedMillis();

  stats_.document_bytes = document_.MemoryUsage();
  stats_.containment_bytes = containment_.MemoryUsage();
  stats_.dewey_bytes = dewey_.MemoryUsage();
  stats_.extended_dewey_bytes = extended_dewey_.MemoryUsage();
  stats_.transducer_bytes = transducer_.MemoryUsage();
  stats_.dataguide_bytes = dataguide_.MemoryUsage();
  stats_.tag_streams_bytes = tag_streams_.MemoryUsage();
  stats_.term_index_bytes = terms_.MemoryUsage();
  stats_.tag_trie_bytes = tag_trie_.MemoryUsage();
}

Status IndexedDocument::ValidateInvariants(bool deep) const {
  LOTUSX_RETURN_IF_ERROR(document_.ValidateInvariants());

  // Containment labels restate preorder rank / subtree extent / depth.
  LOTUSX_ENSURE(containment_.size() ==
                static_cast<size_t>(document_.num_nodes()))
      << "containment covers " << containment_.size() << " nodes";
  for (xml::NodeId id = 0; id < document_.num_nodes(); ++id) {
    const labeling::ContainmentLabel& label = containment_.label(id);
    const xml::Document::Node& node = document_.node(id);
    LOTUSX_ENSURE(label.start == id && label.end == node.subtree_end &&
                  label.level == node.depth)
        << "containment label of node " << id << " disagrees with document";
  }

  // Dewey and extended Dewey: one label per node, length == depth, the
  // parent's label a strict prefix, document order preserved, and (for
  // extended Dewey) every component decoding to the node's tag through
  // the transducer — the property TJFast and the position-aware features
  // rely on.
  LOTUSX_ENSURE(dewey_.size() == static_cast<size_t>(document_.num_nodes()))
      << "dewey covers " << dewey_.size() << " nodes";
  LOTUSX_ENSURE(extended_dewey_.size() ==
                static_cast<size_t>(document_.num_nodes()))
      << "extended dewey covers " << extended_dewey_.size() << " nodes";
  for (xml::NodeId id = 0; id < document_.num_nodes(); ++id) {
    const xml::Document::Node& node = document_.node(id);
    labeling::DeweyView dewey = dewey_.label(id);
    labeling::DeweyView extended = extended_dewey_.label(id);
    LOTUSX_ENSURE(dewey.size() == static_cast<size_t>(node.depth))
        << "dewey label of node " << id << " has length " << dewey.size();
    LOTUSX_ENSURE(extended.size() == static_cast<size_t>(node.depth))
        << "extended dewey label of node " << id << " has length "
        << extended.size();
    if (id == 0) continue;
    LOTUSX_ENSURE(labeling::IsParentLabel(dewey_.label(node.parent), dewey))
        << "dewey parent of node " << id << " is not a label prefix";
    LOTUSX_ENSURE(labeling::IsParentLabel(
        extended_dewey_.label(node.parent), extended))
        << "extended dewey parent of node " << id
        << " is not a label prefix";
    LOTUSX_ENSURE(labeling::CompareLabels(dewey_.label(id - 1), dewey) < 0)
        << "dewey labels out of document order at node " << id;
    LOTUSX_ENSURE(labeling::CompareLabels(extended_dewey_.label(id - 1),
                                          extended) < 0)
        << "extended dewey labels out of document order at node " << id;
    // Mod-k decode of the final component recovers the node's tag; with
    // the parent prefix property this inductively proves DecodeTagPath
    // recovers the whole root-to-node tag path.
    labeling::XTagId parent_tag =
        document_.node(node.parent).kind == xml::NodeKind::kText
            ? transducer_.text_tag()
            : document_.node(node.parent).tag;
    labeling::XTagId node_tag = node.kind == xml::NodeKind::kText
                                    ? transducer_.text_tag()
                                    : node.tag;
    const std::vector<labeling::XTagId>& siblings =
        transducer_.ChildTags(parent_tag);
    LOTUSX_ENSURE(!siblings.empty())
        << "transducer has no children for tag " << parent_tag;
    LOTUSX_ENSURE(siblings[static_cast<size_t>(extended.back()) %
                           siblings.size()] == node_tag)
        << "extended dewey component of node " << id
        << " does not decode to its tag";
  }

  LOTUSX_RETURN_IF_ERROR(dataguide_.ValidateInvariants(document_));
  LOTUSX_RETURN_IF_ERROR(tag_streams_.ValidateInvariants(document_));
  LOTUSX_RETURN_IF_ERROR(terms_.ValidateInvariants(document_, deep));

  // Tag completion trie mirrors the tag streams' occurrence counts.
  LOTUSX_RETURN_IF_ERROR(tag_trie_.ValidateInvariants());
  size_t live_tags = 0;
  for (xml::TagId tag = 0; tag < document_.num_tags(); ++tag) {
    uint64_t count = tag_streams_.count(tag);
    if (count > 0) ++live_tags;
    LOTUSX_ENSURE(tag_trie_.WeightOf(document_.tag_name(tag)) == count)
        << "tag trie weight of '" << document_.tag_name(tag)
        << "' disagrees with its stream";
  }
  LOTUSX_ENSURE(tag_trie_.num_keys() == live_tags)
      << "tag trie holds " << tag_trie_.num_keys() << " keys, document has "
      << live_tags << " live tags";
  return Status::OK();
}

void EncodeDocument(const xml::Document& document, Encoder* encoder) {
  encoder->PutVarint64(static_cast<uint64_t>(document.num_tags()));
  for (xml::TagId tag = 0; tag < document.num_tags(); ++tag) {
    encoder->PutString(document.tag_name(tag));
  }
  encoder->PutVarint64(static_cast<uint64_t>(document.num_nodes()));
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    encoder->PutVarint32(static_cast<uint32_t>(node.kind));
    encoder->PutVarint32(static_cast<uint32_t>(node.parent + 1));
    if (node.kind == xml::NodeKind::kText) {
      encoder->PutString(document.Value(id));
    } else if (node.kind == xml::NodeKind::kAttribute) {
      encoder->PutVarint32(static_cast<uint32_t>(node.tag));
      encoder->PutString(document.Value(id));
    } else {
      encoder->PutVarint32(static_cast<uint32_t>(node.tag));
    }
  }
}

StatusOr<xml::Document> DecodeDocument(Decoder* decoder) {
  uint64_t tag_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&tag_count));
  std::vector<std::string> tags(tag_count);
  for (std::string& tag : tags) {
    LOTUSX_RETURN_IF_ERROR(decoder->GetString(&tag));
  }
  uint64_t node_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&node_count));
  xml::Document document;
  // Kinds seen so far: a corrupted image may claim a text/attribute node
  // as a parent, or break the preorder append discipline — both must be
  // rejected here, before Document's internal CHECKs would abort.
  std::vector<xml::NodeKind> kinds;
  kinds.reserve(node_count);
  xml::NodeId previous = xml::kInvalidNodeId;
  for (uint64_t i = 0; i < node_count; ++i) {
    uint32_t kind_raw = 0;
    uint32_t parent_plus1 = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&kind_raw));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&parent_plus1));
    if (kind_raw > 2) return Status::Corruption("bad node kind");
    auto kind = static_cast<xml::NodeKind>(kind_raw);
    xml::NodeId parent = static_cast<xml::NodeId>(parent_plus1) - 1;
    if (parent >= static_cast<xml::NodeId>(i)) {
      return Status::Corruption("node parent not before child");
    }
    if ((parent == xml::kInvalidNodeId) != (i == 0)) {
      return Status::Corruption("exactly the first node must be the root");
    }
    if (i == 0 && kind != xml::NodeKind::kElement) {
      return Status::Corruption("root must be an element");
    }
    if (parent != xml::kInvalidNodeId &&
        kinds[static_cast<size_t>(parent)] != xml::NodeKind::kElement) {
      return Status::Corruption("non-element parent");
    }
    if (i > 0) {
      // Preorder discipline: the parent must be on the ancestor spine of
      // the previously appended node.
      xml::NodeId walk = previous;
      while (walk != xml::kInvalidNodeId && walk != parent) {
        walk = document.node(walk).parent;
      }
      if (walk != parent) {
        return Status::Corruption("nodes not in document order");
      }
    }
    kinds.push_back(kind);
    previous = static_cast<xml::NodeId>(i);
    if (kind == xml::NodeKind::kText) {
      std::string value;
      LOTUSX_RETURN_IF_ERROR(decoder->GetString(&value));
      document.AppendText(parent, value);
      continue;
    }
    uint32_t tag_id = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&tag_id));
    if (tag_id >= tags.size()) return Status::Corruption("bad tag id");
    if (kind == xml::NodeKind::kAttribute) {
      std::string value;
      LOTUSX_RETURN_IF_ERROR(decoder->GetString(&value));
      const std::string& name = tags[tag_id];
      if (name.empty() || name[0] != '@') {
        return Status::Corruption("attribute tag without '@' prefix");
      }
      document.AppendAttribute(parent, std::string_view(name).substr(1),
                               value);
    } else {
      document.AppendElement(parent, tags[tag_id]);
    }
  }
  document.Finalize();
  return document;
}

Status IndexedDocument::SaveTo(const std::string& path) const {
  std::string buffer;
  Encoder encoder(&buffer);
  encoder.PutFixed32(kMagic);
  encoder.PutFixed32(kFormatVersion);
  EncodeDocument(document_, &encoder);
  dataguide_.EncodeTo(&encoder);
  tag_streams_.EncodeTo(&encoder);
  terms_.EncodeTo(&encoder);
  return WriteStringToFile(path, buffer);
}

StatusOr<IndexedDocument> IndexedDocument::LoadFrom(
    const std::string& path) {
  std::string buffer;
  LOTUSX_RETURN_IF_ERROR(ReadFileToString(path, &buffer));
  Decoder decoder(buffer);
  uint32_t magic = 0;
  uint32_t version = 0;
  LOTUSX_RETURN_IF_ERROR(decoder.GetFixed32(&magic));
  if (magic != kMagic) {
    return Status::Corruption("not a LotusX index file: " + path);
  }
  LOTUSX_RETURN_IF_ERROR(decoder.GetFixed32(&version));
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported index format version " +
                              std::to_string(version));
  }
  LOTUSX_ASSIGN_OR_RETURN(xml::Document document, DecodeDocument(&decoder));
  LoadedParts parts;
  LOTUSX_ASSIGN_OR_RETURN(parts.dataguide, DataGuide::DecodeFrom(&decoder));
  LOTUSX_ASSIGN_OR_RETURN(parts.tag_streams,
                          TagStreams::DecodeFrom(&decoder));
  LOTUSX_ASSIGN_OR_RETURN(parts.terms, TermIndex::DecodeFrom(&decoder));
  if (!decoder.Done()) {
    return Status::Corruption("trailing bytes in index file");
  }
  // The decoders above only check local wire-format sanity; a structurally
  // valid image can still carry cross-component lies (a tag stream node id
  // past the document, a DataGuide summarizing a different tree, a cyclic
  // completion trie that would hang Complete()). Audit the decoded parts
  // against the document before anything queries them.
  LOTUSX_RETURN_IF_ERROR(parts.dataguide.ValidateInvariants(document));
  LOTUSX_RETURN_IF_ERROR(parts.tag_streams.ValidateInvariants(document));
  LOTUSX_RETURN_IF_ERROR(
      parts.terms.ValidateInvariants(document, /*deep=*/false));
  return IndexedDocument(std::move(document), std::move(parts));
}

}  // namespace lotusx::index
