#ifndef LOTUSX_INDEX_POSTING_BLOCKS_H_
#define LOTUSX_INDEX_POSTING_BLOCKS_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/arena.h"
#include "common/coding.h"
#include "common/status_or.h"

namespace lotusx::index {

/// Per-query posting access counters, threaded from the cursors up into
/// EvalStats, EXPLAIN ANALYZE, and the lotusx_postings_* metrics.
struct PostingStats {
  uint64_t blocks_decoded = 0;
  uint64_t blocks_skipped = 0;
  uint64_t bytes_decoded = 0;
  /// Wall time inside block decode; only accumulated when time_decodes
  /// is set (EXPLAIN ANALYZE), so the hot path never reads the clock.
  double decode_ms = 0;
  bool time_decodes = false;
};

/// Block-compressed sorted posting storage: the backing format for tag
/// streams and term posting lists.
///
/// Keys (NodeIds) are split into blocks of at most kBlockEntries,
/// delta-varint encoded (absolute first key, then strictly-positive
/// deltas). An optional payload channel (term frequencies) rides in each
/// block after the keys, zigzag-delta-varint encoded. Per-block metadata
/// (min/max key, count, byte offsets) forms a skip index: a cursor can
/// seek across blocks by metadata alone and only pays decode for blocks
/// it actually enters.
class PostingBlocks {
 public:
  static constexpr uint32_t kBlockEntries = 128;

  PostingBlocks() = default;

  /// Compresses `keys` (strictly increasing). `payloads`, when
  /// non-empty, must be parallel to `keys`.
  static PostingBlocks FromSorted(std::span<const uint32_t> keys,
                                  std::span<const uint32_t> payloads = {});

  uint32_t size() const { return total_count_; }
  bool empty() const { return total_count_ == 0; }
  size_t num_blocks() const { return meta_.size(); }
  bool has_payload() const { return has_payload_; }
  uint32_t min_key() const { return meta_.empty() ? 0 : meta_.front().min; }
  uint32_t max_key() const { return meta_.empty() ? 0 : meta_.back().max; }
  size_t MemoryUsage() const {
    return data_.capacity() + meta_.capacity() * sizeof(BlockMeta);
  }

  /// Skip-index shape for the planner's block-skip cost term.
  struct BlockStats {
    size_t blocks = 0;
    double avg_fill = 0;    // entries per block
    uint64_t key_span = 0;  // max - min + 1 over all keys
  };
  BlockStats Stats() const;

  /// Forward cursor with skip-index seeks. Decode scratch (one block of
  /// keys, plus payloads when present) comes from the per-query arena.
  /// Move-only: cursors share nothing but must not alias scratch.
  class Cursor {
   public:
    Cursor() = default;
    Cursor(Cursor&&) = default;
    Cursor& operator=(Cursor&&) = default;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;

    bool AtEnd() const { return block_ >= num_blocks_; }
    uint32_t Key() const { return keys_[pos_]; }
    /// Max key of the current block without decoding past it.
    uint32_t BlockMax() const { return blocks_->meta_[block_].max; }
    void Next() {
      if (++pos_ == count_) {
        if (++block_ < num_blocks_) LoadBlock();
      }
    }
    /// Advances to the first entry with key >= `target` (no-op when
    /// already there). Returns false iff the cursor ran off the end.
    /// Skipped-over blocks are never decoded.
    bool SeekGE(uint32_t target);
    /// Payload parallel to Key(); 0 when the list has no payload
    /// channel. Lazily decodes the current block's payload section.
    uint32_t Payload();

   private:
    friend class PostingBlocks;
    Cursor(const PostingBlocks* blocks, Arena* arena, PostingStats* stats);
    void LoadBlock();

    const PostingBlocks* blocks_ = nullptr;
    PostingStats* stats_ = nullptr;
    uint32_t* keys_ = nullptr;      // arena scratch, kBlockEntries
    uint32_t* payloads_ = nullptr;  // arena scratch when has_payload()
    size_t block_ = 0;
    size_t num_blocks_ = 0;
    uint32_t pos_ = 0;
    uint32_t count_ = 0;
    bool payload_loaded_ = false;
  };

  /// `stats` may be nullptr (no counting). The cursor borrows this
  /// PostingBlocks and `arena`; both must outlive it.
  Cursor NewCursor(Arena* arena, PostingStats* stats = nullptr) const {
    return Cursor(this, arena, stats);
  }

  /// Whether `key` is present (skip-index probe + one block decode).
  bool Contains(uint32_t key) const;
  /// Payload stored for `key`, or 0 when absent / no payload channel.
  uint32_t PayloadFor(uint32_t key) const;

  /// Full decompression, checked; for tests, validation, and the cold
  /// paths that need random access (keyword search).
  std::vector<uint32_t> DecodeKeys() const;
  std::vector<uint32_t> DecodePayloads() const;

  /// Audits the skip index against the compressed bytes: block counts
  /// and offsets consistent, every block's keys strictly increasing and
  /// matching its min/max metadata, blocks disjoint and ordered, every
  /// byte of the data section accounted for. Runs the checked decoder
  /// only, so it is safe on hostile images straight off DecodeFrom.
  Status ValidateInvariants() const;

  void EncodeTo(Encoder* encoder) const;
  /// Decodes and fully validates (structure + ValidateInvariants), so
  /// anything that loads is safe for the unchecked fast decode path.
  static StatusOr<PostingBlocks> DecodeFrom(Decoder* decoder);

 private:
  struct BlockMeta {
    uint32_t min = 0;
    uint32_t max = 0;
    uint32_t count = 0;
    uint32_t offset = 0;     // start of the block in data_
    uint32_t key_bytes = 0;  // key section length; payloads follow
  };

  size_t BlockEndOffset(size_t b) const {
    return b + 1 < meta_.size() ? meta_[b + 1].offset : data_.size();
  }

  std::vector<BlockMeta> meta_;
  std::string data_;
  uint32_t total_count_ = 0;
  bool has_payload_ = false;
};

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_POSTING_BLOCKS_H_
