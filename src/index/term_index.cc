#include "index/term_index.h"

#include <algorithm>
#include <map>

#include "common/invariant.h"
#include "common/string_util.h"

namespace lotusx::index {

TermIndex TermIndex::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TermIndex index;
  // Accumulate raw per-term postings first; compress once complete.
  struct RawList {
    std::vector<uint32_t> nodes;
    std::vector<uint32_t> frequencies;
  };
  std::unordered_map<std::string, RawList> raw;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    std::string content;
    if (node.kind == xml::NodeKind::kElement) {
      content = document.ContentString(id);
      if (content.empty()) continue;
    } else if (node.kind == xml::NodeKind::kAttribute) {
      content = std::string(document.Value(id));
    } else {
      continue;
    }
    std::vector<std::string> tokens = TokenizeKeywords(content);
    if (tokens.empty()) continue;
    ++index.num_value_nodes_;
    // Aggregate term frequencies within this value node.
    std::map<std::string, uint32_t> frequencies;
    for (std::string& token : tokens) ++frequencies[std::move(token)];
    for (const auto& [term, tf] : frequencies) {
      RawList& list = raw[term];
      list.nodes.push_back(static_cast<uint32_t>(id));
      list.frequencies.push_back(tf);
      index.term_trie_.Insert(term, tf);
      index.tag_tries_[node.tag].Insert(term, tf);
    }
  }
  index.postings_.reserve(raw.size());
  for (auto& [term, list] : raw) {
    PostingList compressed;
    compressed.postings =
        PostingBlocks::FromSorted(list.nodes, list.frequencies);
    for (uint32_t tf : list.frequencies) {
      compressed.collection_frequency += tf;
    }
    index.postings_.emplace(term, std::move(compressed));
  }
  return index;
}

const PostingBlocks* TermIndex::PostingsFor(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? nullptr : &it->second.postings;
}

std::vector<xml::NodeId> TermIndex::DecodePostings(
    std::string_view term) const {
  const PostingBlocks* blocks = PostingsFor(term);
  if (blocks == nullptr) return {};
  std::vector<uint32_t> keys = blocks->DecodeKeys();
  return {keys.begin(), keys.end()};
}

uint32_t TermIndex::DocFrequency(std::string_view term) const {
  const PostingBlocks* blocks = PostingsFor(term);
  return blocks == nullptr ? 0 : blocks->size();
}

uint64_t TermIndex::CollectionFrequency(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? 0 : it->second.collection_frequency;
}

uint32_t TermIndex::TermFrequencyIn(std::string_view term,
                                    xml::NodeId node) const {
  const PostingBlocks* blocks = PostingsFor(term);
  if (blocks == nullptr || node < 0) return 0;
  return blocks->PayloadFor(static_cast<uint32_t>(node));
}

const Trie* TermIndex::term_trie_for_tag(xml::TagId tag) const {
  auto it = tag_tries_.find(tag);
  return it == tag_tries_.end() ? nullptr : &it->second;
}

Status TermIndex::ValidateInvariants(const xml::Document& document,
                                     bool deep) const {
  for (const auto& [term, list] : postings_) {
    LOTUSX_ENSURE(!term.empty()) << "empty term";
    LOTUSX_RETURN_IF_ERROR(list.postings.ValidateInvariants());
    LOTUSX_ENSURE(!list.postings.empty())
        << "term '" << term << "' has no postings";
    LOTUSX_ENSURE(list.postings.has_payload())
        << "term '" << term << "' postings missing frequency payload";
    std::vector<uint32_t> nodes = list.postings.DecodeKeys();
    std::vector<uint32_t> frequencies = list.postings.DecodePayloads();
    uint64_t total = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
      xml::NodeId id = static_cast<xml::NodeId>(nodes[i]);
      LOTUSX_ENSURE(id >= 0 && id < document.num_nodes())
          << "term '" << term << "' node " << id;
      LOTUSX_ENSURE(document.node(id).kind != xml::NodeKind::kText)
          << "term '" << term << "' posted on text node " << id;
      LOTUSX_ENSURE(frequencies[i] > 0)
          << "term '" << term << "' zero frequency at node " << id;
      total += frequencies[i];
    }
    LOTUSX_ENSURE(list.collection_frequency == total)
        << "term '" << term << "' collection frequency "
        << list.collection_frequency << " actual " << total;
    LOTUSX_ENSURE(term_trie_.WeightOf(term) == list.collection_frequency)
        << "term '" << term << "' trie weight "
        << term_trie_.WeightOf(term);
  }
  LOTUSX_RETURN_IF_ERROR(term_trie_.ValidateInvariants());
  LOTUSX_ENSURE(term_trie_.num_keys() == postings_.size())
      << "term trie holds " << term_trie_.num_keys() << " keys, postings "
      << postings_.size();
  for (const auto& [tag, trie] : tag_tries_) {
    LOTUSX_ENSURE(tag >= 0 && tag < document.num_tags())
        << "tag trie for dead tag " << tag;
    LOTUSX_RETURN_IF_ERROR(trie.ValidateInvariants());
  }

  if (!deep) return Status::OK();
  // Recount from the document, exactly as Build does.
  uint32_t value_nodes = 0;
  std::map<std::string, std::map<xml::NodeId, uint32_t>> expected;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    std::string content;
    if (node.kind == xml::NodeKind::kElement) {
      content = document.ContentString(id);
      if (content.empty()) continue;
    } else if (node.kind == xml::NodeKind::kAttribute) {
      content = std::string(document.Value(id));
    } else {
      continue;
    }
    std::vector<std::string> tokens = TokenizeKeywords(content);
    if (tokens.empty()) continue;
    ++value_nodes;
    for (std::string& token : tokens) ++expected[std::move(token)][id];
  }
  LOTUSX_ENSURE(num_value_nodes_ == value_nodes)
      << "num_value_nodes " << num_value_nodes_ << " actual " << value_nodes;
  LOTUSX_ENSURE(postings_.size() == expected.size())
      << "index holds " << postings_.size() << " terms, document has "
      << expected.size();
  for (const auto& [term, occurrences] : expected) {
    auto it = postings_.find(term);
    LOTUSX_ENSURE(it != postings_.end()) << "missing term '" << term << "'";
    const PostingList& list = it->second;
    std::vector<uint32_t> nodes = list.postings.DecodeKeys();
    std::vector<uint32_t> frequencies = list.postings.DecodePayloads();
    LOTUSX_ENSURE(nodes.size() == occurrences.size())
        << "term '" << term << "' doc frequency " << nodes.size()
        << " actual " << occurrences.size();
    size_t i = 0;
    for (const auto& [id, tf] : occurrences) {
      LOTUSX_ENSURE(nodes[i] == static_cast<uint32_t>(id) &&
                    frequencies[i] == tf)
          << "term '" << term << "' posting " << i << " disagrees with "
          << "recount at node " << id;
      ++i;
    }
  }
  return Status::OK();
}

size_t TermIndex::MemoryUsage() const {
  size_t bytes = term_trie_.MemoryUsage();
  for (const auto& [tag, trie] : tag_tries_) bytes += trie.MemoryUsage();
  for (const auto& [term, list] : postings_) {
    bytes += term.capacity() + list.postings.MemoryUsage() + 64;
  }
  return bytes;
}

void TermIndex::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint32(num_value_nodes_);
  // Terms in sorted order for a deterministic byte image.
  std::vector<const std::string*> terms;
  terms.reserve(postings_.size());
  for (const auto& [term, list] : postings_) terms.push_back(&term);
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  encoder->PutVarint64(terms.size());
  for (const std::string* term : terms) {
    const PostingList& list = postings_.at(*term);
    encoder->PutString(*term);
    list.postings.EncodeTo(encoder);
  }
  term_trie_.EncodeTo(encoder);
  encoder->PutVarint64(tag_tries_.size());
  std::vector<xml::TagId> tags;
  for (const auto& [tag, trie] : tag_tries_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  for (xml::TagId tag : tags) {
    encoder->PutVarint32(static_cast<uint32_t>(tag));
    tag_tries_.at(tag).EncodeTo(encoder);
  }
}

StatusOr<TermIndex> TermIndex::DecodeFrom(Decoder* decoder) {
  TermIndex index;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&index.num_value_nodes_));
  uint64_t term_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&term_count));
  for (uint64_t i = 0; i < term_count; ++i) {
    std::string term;
    LOTUSX_RETURN_IF_ERROR(decoder->GetString(&term));
    PostingList list;
    LOTUSX_ASSIGN_OR_RETURN(list.postings,
                            PostingBlocks::DecodeFrom(decoder));
    if (list.postings.empty() || !list.postings.has_payload()) {
      return Status::Corruption("term posting list empty or without "
                                "frequencies: " +
                                term);
    }
    for (uint32_t tf : list.postings.DecodePayloads()) {
      list.collection_frequency += tf;
    }
    index.postings_.emplace(std::move(term), std::move(list));
  }
  LOTUSX_ASSIGN_OR_RETURN(index.term_trie_, Trie::DecodeFrom(decoder));
  uint64_t trie_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&trie_count));
  for (uint64_t i = 0; i < trie_count; ++i) {
    uint32_t tag = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&tag));
    LOTUSX_ASSIGN_OR_RETURN(Trie trie, Trie::DecodeFrom(decoder));
    index.tag_tries_.emplace(static_cast<xml::TagId>(tag), std::move(trie));
  }
  return index;
}

}  // namespace lotusx::index
