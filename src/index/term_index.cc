#include "index/term_index.h"

#include <algorithm>
#include <map>

#include "common/invariant.h"
#include "common/string_util.h"

namespace lotusx::index {

TermIndex TermIndex::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TermIndex index;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    std::string content;
    if (node.kind == xml::NodeKind::kElement) {
      content = document.ContentString(id);
      if (content.empty()) continue;
    } else if (node.kind == xml::NodeKind::kAttribute) {
      content = std::string(document.Value(id));
    } else {
      continue;
    }
    std::vector<std::string> tokens = TokenizeKeywords(content);
    if (tokens.empty()) continue;
    ++index.num_value_nodes_;
    // Aggregate term frequencies within this value node.
    std::map<std::string, uint32_t> frequencies;
    for (std::string& token : tokens) ++frequencies[std::move(token)];
    for (const auto& [term, tf] : frequencies) {
      PostingList& list = index.postings_[term];
      list.nodes.push_back(id);
      list.frequencies.push_back(tf);
      list.collection_frequency += tf;
      index.term_trie_.Insert(term, tf);
      index.tag_tries_[node.tag].Insert(term, tf);
    }
  }
  return index;
}

std::span<const xml::NodeId> TermIndex::Postings(
    std::string_view term) const {
  auto it = postings_.find(std::string(term));
  if (it == postings_.end()) return {};
  return it->second.nodes;
}

uint32_t TermIndex::DocFrequency(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end()
             ? 0
             : static_cast<uint32_t>(it->second.nodes.size());
}

uint64_t TermIndex::CollectionFrequency(std::string_view term) const {
  auto it = postings_.find(std::string(term));
  return it == postings_.end() ? 0 : it->second.collection_frequency;
}

uint32_t TermIndex::TermFrequencyIn(std::string_view term,
                                    xml::NodeId node) const {
  auto it = postings_.find(std::string(term));
  if (it == postings_.end()) return 0;
  const PostingList& list = it->second;
  auto pos = std::lower_bound(list.nodes.begin(), list.nodes.end(), node);
  if (pos == list.nodes.end() || *pos != node) return 0;
  return list.frequencies[static_cast<size_t>(pos - list.nodes.begin())];
}

const Trie* TermIndex::term_trie_for_tag(xml::TagId tag) const {
  auto it = tag_tries_.find(tag);
  return it == tag_tries_.end() ? nullptr : &it->second;
}

Status TermIndex::ValidateInvariants(const xml::Document& document,
                                     bool deep) const {
  for (const auto& [term, list] : postings_) {
    LOTUSX_ENSURE(!term.empty()) << "empty term";
    LOTUSX_ENSURE(list.nodes.size() == list.frequencies.size())
        << "term '" << term << "' postings not parallel";
    LOTUSX_ENSURE(!list.nodes.empty()) << "term '" << term
                                       << "' has no postings";
    uint64_t total = 0;
    xml::NodeId previous = xml::kInvalidNodeId;
    for (size_t i = 0; i < list.nodes.size(); ++i) {
      xml::NodeId id = list.nodes[i];
      LOTUSX_ENSURE(id >= 0 && id < document.num_nodes())
          << "term '" << term << "' node " << id;
      LOTUSX_ENSURE(id > previous)
          << "term '" << term << "' postings not strictly sorted";
      LOTUSX_ENSURE(document.node(id).kind != xml::NodeKind::kText)
          << "term '" << term << "' posted on text node " << id;
      LOTUSX_ENSURE(list.frequencies[i] > 0)
          << "term '" << term << "' zero frequency at node " << id;
      total += list.frequencies[i];
      previous = id;
    }
    LOTUSX_ENSURE(list.collection_frequency == total)
        << "term '" << term << "' collection frequency "
        << list.collection_frequency << " actual " << total;
    LOTUSX_ENSURE(term_trie_.WeightOf(term) == list.collection_frequency)
        << "term '" << term << "' trie weight "
        << term_trie_.WeightOf(term);
  }
  LOTUSX_RETURN_IF_ERROR(term_trie_.ValidateInvariants());
  LOTUSX_ENSURE(term_trie_.num_keys() == postings_.size())
      << "term trie holds " << term_trie_.num_keys() << " keys, postings "
      << postings_.size();
  for (const auto& [tag, trie] : tag_tries_) {
    LOTUSX_ENSURE(tag >= 0 && tag < document.num_tags())
        << "tag trie for dead tag " << tag;
    LOTUSX_RETURN_IF_ERROR(trie.ValidateInvariants());
  }

  if (!deep) return Status::OK();
  // Recount from the document, exactly as Build does.
  uint32_t value_nodes = 0;
  std::map<std::string, std::map<xml::NodeId, uint32_t>> expected;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    std::string content;
    if (node.kind == xml::NodeKind::kElement) {
      content = document.ContentString(id);
      if (content.empty()) continue;
    } else if (node.kind == xml::NodeKind::kAttribute) {
      content = std::string(document.Value(id));
    } else {
      continue;
    }
    std::vector<std::string> tokens = TokenizeKeywords(content);
    if (tokens.empty()) continue;
    ++value_nodes;
    for (std::string& token : tokens) ++expected[std::move(token)][id];
  }
  LOTUSX_ENSURE(num_value_nodes_ == value_nodes)
      << "num_value_nodes " << num_value_nodes_ << " actual " << value_nodes;
  LOTUSX_ENSURE(postings_.size() == expected.size())
      << "index holds " << postings_.size() << " terms, document has "
      << expected.size();
  for (const auto& [term, occurrences] : expected) {
    auto it = postings_.find(term);
    LOTUSX_ENSURE(it != postings_.end()) << "missing term '" << term << "'";
    const PostingList& list = it->second;
    LOTUSX_ENSURE(list.nodes.size() == occurrences.size())
        << "term '" << term << "' doc frequency " << list.nodes.size()
        << " actual " << occurrences.size();
    size_t i = 0;
    for (const auto& [id, tf] : occurrences) {
      LOTUSX_ENSURE(list.nodes[i] == id && list.frequencies[i] == tf)
          << "term '" << term << "' posting " << i << " disagrees with "
          << "recount at node " << id;
      ++i;
    }
  }
  return Status::OK();
}

size_t TermIndex::MemoryUsage() const {
  size_t bytes = term_trie_.MemoryUsage();
  for (const auto& [tag, trie] : tag_tries_) bytes += trie.MemoryUsage();
  for (const auto& [term, list] : postings_) {
    bytes += term.capacity() + list.nodes.capacity() * sizeof(xml::NodeId) +
             list.frequencies.capacity() * sizeof(uint32_t) + 64;
  }
  return bytes;
}

void TermIndex::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint32(num_value_nodes_);
  // Terms in sorted order for a deterministic byte image.
  std::vector<const std::string*> terms;
  terms.reserve(postings_.size());
  for (const auto& [term, list] : postings_) terms.push_back(&term);
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  encoder->PutVarint64(terms.size());
  for (const std::string* term : terms) {
    const PostingList& list = postings_.at(*term);
    encoder->PutString(*term);
    std::vector<uint32_t> ids(list.nodes.begin(), list.nodes.end());
    encoder->PutSortedU32List(ids);
    encoder->PutU32List(list.frequencies);
  }
  term_trie_.EncodeTo(encoder);
  encoder->PutVarint64(tag_tries_.size());
  std::vector<xml::TagId> tags;
  for (const auto& [tag, trie] : tag_tries_) tags.push_back(tag);
  std::sort(tags.begin(), tags.end());
  for (xml::TagId tag : tags) {
    encoder->PutVarint32(static_cast<uint32_t>(tag));
    tag_tries_.at(tag).EncodeTo(encoder);
  }
}

StatusOr<TermIndex> TermIndex::DecodeFrom(Decoder* decoder) {
  TermIndex index;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&index.num_value_nodes_));
  uint64_t term_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&term_count));
  for (uint64_t i = 0; i < term_count; ++i) {
    std::string term;
    LOTUSX_RETURN_IF_ERROR(decoder->GetString(&term));
    PostingList list;
    std::vector<uint32_t> ids;
    LOTUSX_RETURN_IF_ERROR(decoder->GetSortedU32List(&ids));
    list.nodes.assign(ids.begin(), ids.end());
    LOTUSX_RETURN_IF_ERROR(decoder->GetU32List(&list.frequencies));
    if (list.frequencies.size() != list.nodes.size()) {
      return Status::Corruption("posting list length mismatch: " + term);
    }
    for (uint32_t tf : list.frequencies) list.collection_frequency += tf;
    index.postings_.emplace(std::move(term), std::move(list));
  }
  LOTUSX_ASSIGN_OR_RETURN(index.term_trie_, Trie::DecodeFrom(decoder));
  uint64_t trie_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&trie_count));
  for (uint64_t i = 0; i < trie_count; ++i) {
    uint32_t tag = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&tag));
    LOTUSX_ASSIGN_OR_RETURN(Trie trie, Trie::DecodeFrom(decoder));
    index.tag_tries_.emplace(static_cast<xml::TagId>(tag), std::move(trie));
  }
  return index;
}

}  // namespace lotusx::index
