#ifndef LOTUSX_INDEX_DOCUMENT_STATS_H_
#define LOTUSX_INDEX_DOCUMENT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/indexed_document.h"

namespace lotusx::index {

/// Corpus overview shown to a user before they draw anything — the
/// "what is in this document?" panel of the demo UI.
struct DocumentStats {
  int64_t elements = 0;
  int64_t attributes = 0;
  int64_t text_nodes = 0;
  int32_t distinct_tags = 0;
  int32_t distinct_paths = 0;
  int64_t distinct_terms = 0;
  int32_t max_depth = 0;
  double avg_depth = 0;
  /// Number of elements at each depth (index = depth).
  std::vector<int64_t> depth_histogram;
  /// Most frequent tags, descending (name, count).
  std::vector<std::pair<std::string, uint64_t>> top_tags;
  /// Most frequent value terms, descending (term, collection frequency).
  std::vector<std::pair<std::string, uint64_t>> top_terms;
};

/// Computes the overview; `top_k` bounds the top_tags/top_terms lists.
DocumentStats ComputeDocumentStats(const IndexedDocument& indexed,
                                   size_t top_k = 10);

/// Multi-line human-readable rendering (the STATS protocol command).
std::string RenderDocumentStats(const DocumentStats& stats);

}  // namespace lotusx::index

#endif  // LOTUSX_INDEX_DOCUMENT_STATS_H_
