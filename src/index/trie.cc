#include "index/trie.h"

#include <algorithm>
#include <queue>

#include "common/invariant.h"
#include "common/logging.h"

namespace lotusx::index {

Trie::Trie() : nodes_(1) {}

int32_t Trie::ChildOf(int32_t node, char byte) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  for (const auto& [c, child] : n.children) {
    if (c == byte) return child;
    if (c > byte) break;
  }
  return -1;
}

void Trie::Insert(std::string_view key, uint64_t weight) {
  int32_t node = 0;
  // First pass: create the path.
  for (char byte : key) {
    int32_t child = ChildOf(node, byte);
    if (child < 0) {
      child = static_cast<int32_t>(nodes_.size());
      nodes_.emplace_back();
      Node& parent = nodes_[static_cast<size_t>(node)];
      auto it = std::lower_bound(
          parent.children.begin(), parent.children.end(), byte,
          [](const auto& entry, char b) { return entry.first < b; });
      parent.children.insert(it, {byte, child});
    }
    node = child;
  }
  Node& terminal = nodes_[static_cast<size_t>(node)];
  // A node is a key iff its accumulated weight is positive (Contains,
  // ValidateInvariants). Count the 0 -> positive transition, not every
  // insert that finds weight 0 — re-inserting with weight 0 used to bump
  // num_keys_ without creating a key.
  const bool was_key = terminal.terminal_weight > 0;
  terminal.terminal_weight += weight;
  if (!was_key && terminal.terminal_weight > 0) ++num_keys_;
  // Second pass: refresh subtree maxima along the path. A zero-weight
  // insert leaves every subtree_best untouched (its terminal is not a
  // key), which the `best > subtree_best` guard below already ensures
  // even for the freshly created path nodes (subtree_best == 0).
  uint64_t best = terminal.terminal_weight;
  node = 0;
  if (best > nodes_[0].subtree_best) nodes_[0].subtree_best = best;
  for (char byte : key) {
    node = ChildOf(node, byte);
    Node& n = nodes_[static_cast<size_t>(node)];
    if (best > n.subtree_best) n.subtree_best = best;
  }
}

int32_t Trie::Find(std::string_view key) const {
  int32_t node = 0;
  for (char byte : key) {
    node = ChildOf(node, byte);
    if (node < 0) return -1;
  }
  return node;
}

bool Trie::Contains(std::string_view key) const {
  int32_t node = Find(key);
  return node >= 0 && nodes_[static_cast<size_t>(node)].terminal_weight > 0;
}

uint64_t Trie::WeightOf(std::string_view key) const {
  int32_t node = Find(key);
  return node < 0 ? 0 : nodes_[static_cast<size_t>(node)].terminal_weight;
}

std::vector<Completion> Trie::Complete(std::string_view prefix,
                                       size_t limit) const {
  std::vector<Completion> results;
  if (limit == 0) return results;
  int32_t start = Find(prefix);
  if (start < 0) return results;

  // Best-first search. Entries are either an unexpanded subtree (priority
  // = subtree_best) or a concrete key emission (priority = its weight).
  // Because an emission's weight never exceeds the subtree_best of the
  // node it came from, popping in priority order yields keys heaviest
  // first.
  struct Entry {
    uint64_t priority;
    bool is_emission;
    int32_t node;     // subtree entries
    std::string key;  // path from root for both kinds
  };
  auto cmp = [](const Entry& a, const Entry& b) {
    if (a.priority != b.priority) return a.priority < b.priority;
    return a.key > b.key;  // lexicographic tie-break (smaller key first)
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> queue(cmp);
  queue.push(Entry{nodes_[static_cast<size_t>(start)].subtree_best, false,
                   start, std::string(prefix)});
  while (!queue.empty() && results.size() < limit) {
    Entry entry = queue.top();
    queue.pop();
    if (entry.is_emission) {
      results.push_back(Completion{entry.key, entry.priority});
      continue;
    }
    const Node& node = nodes_[static_cast<size_t>(entry.node)];
    if (node.terminal_weight > 0) {
      queue.push(Entry{node.terminal_weight, true, -1, entry.key});
    }
    for (const auto& [byte, child] : node.children) {
      const Node& c = nodes_[static_cast<size_t>(child)];
      queue.push(Entry{c.subtree_best, false, child, entry.key + byte});
    }
  }
  return results;
}

std::vector<Completion> Trie::Enumerate(std::string_view prefix) const {
  std::vector<Completion> results;
  int32_t start = Find(prefix);
  if (start < 0) return results;
  // Iterative DFS; children are sorted, so push in reverse for
  // lexicographic emission order.
  std::vector<std::pair<int32_t, std::string>> stack = {
      {start, std::string(prefix)}};
  while (!stack.empty()) {
    auto [node_id, key] = std::move(stack.back());
    stack.pop_back();
    const Node& node = nodes_[static_cast<size_t>(node_id)];
    if (node.terminal_weight > 0) {
      results.push_back(Completion{key, node.terminal_weight});
    }
    for (auto it = node.children.rbegin(); it != node.children.rend();
         ++it) {
      stack.emplace_back(it->second, key + it->first);
    }
  }
  return results;
}

Status Trie::ValidateInvariants() const {
  LOTUSX_ENSURE(!nodes_.empty()) << "trie has no root";
  const auto node_count = static_cast<int32_t>(nodes_.size());
  // In-degree pass: tree shape means every non-root node has exactly one
  // parent and the root has none; cycles and shared subtrees both surface
  // as in-degree != 1 somewhere (total edges == nodes - 1).
  std::vector<int32_t> indegree(nodes_.size(), 0);
  size_t keys = 0;
  for (int32_t id = 0; id < node_count; ++id) {
    const Node& node = nodes_[static_cast<size_t>(id)];
    if (node.terminal_weight > 0) ++keys;
    uint64_t best = node.terminal_weight;
    int previous_byte = -1;
    for (const auto& [byte, child] : node.children) {
      LOTUSX_ENSURE(child >= 0 && child < node_count)
          << "node " << id << " child " << child;
      LOTUSX_ENSURE(child != 0) << "root is a child of node " << id;
      int b = static_cast<unsigned char>(byte);
      LOTUSX_ENSURE(b > previous_byte)
          << "node " << id << " children not strictly sorted";
      previous_byte = b;
      ++indegree[static_cast<size_t>(child)];
      best = std::max(best, nodes_[static_cast<size_t>(child)].subtree_best);
    }
    LOTUSX_ENSURE(node.subtree_best == best)
        << "node " << id << " subtree_best " << node.subtree_best
        << " actual " << best;
  }
  LOTUSX_ENSURE(indegree[0] == 0) << "root has a parent";
  for (int32_t id = 1; id < node_count; ++id) {
    LOTUSX_ENSURE(indegree[static_cast<size_t>(id)] == 1)
        << "node " << id << " has in-degree "
        << indegree[static_cast<size_t>(id)] << " (cycle or orphan)";
  }
  LOTUSX_ENSURE(keys == num_keys_)
      << "num_keys " << num_keys_ << " actual " << keys;
  // In-degrees alone cannot see a cycle detached from the root (each of
  // its nodes still has in-degree 1); require full reachability too.
  std::vector<int32_t> pending = {0};
  size_t reached = 0;
  while (!pending.empty()) {
    int32_t id = pending.back();
    pending.pop_back();
    ++reached;
    for (const auto& [byte, child] : nodes_[static_cast<size_t>(id)].children) {
      (void)byte;
      pending.push_back(child);
    }
  }
  LOTUSX_ENSURE(reached == nodes_.size())
      << "only " << reached << " of " << nodes_.size()
      << " nodes reachable from the root";
  return Status::OK();
}

size_t Trie::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node);
  for (const Node& node : nodes_) {
    bytes += node.children.capacity() * sizeof(std::pair<char, int32_t>);
  }
  return bytes;
}

void Trie::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(nodes_.size());
  encoder->PutVarint64(num_keys_);
  for (const Node& node : nodes_) {
    encoder->PutVarint64(node.terminal_weight);
    encoder->PutVarint64(node.subtree_best);
    encoder->PutVarint64(node.children.size());
    for (const auto& [byte, child] : node.children) {
      encoder->PutVarint32(static_cast<unsigned char>(byte));
      encoder->PutVarint32(static_cast<uint32_t>(child));
    }
  }
}

StatusOr<Trie> Trie::DecodeFrom(Decoder* decoder) {
  uint64_t node_count = 0;
  uint64_t key_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&node_count));
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&key_count));
  if (node_count == 0) return Status::Corruption("trie has no root");
  Trie trie;
  trie.nodes_.resize(node_count);
  trie.num_keys_ = key_count;
  for (Node& node : trie.nodes_) {
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&node.terminal_weight));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&node.subtree_best));
    uint64_t child_count = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&child_count));
    if (child_count > node_count) {
      return Status::Corruption("trie child count exceeds node count");
    }
    node.children.resize(child_count);
    for (auto& [byte, child] : node.children) {
      uint32_t b = 0;
      uint32_t c = 0;
      LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&b));
      LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&c));
      if (b > 255 || c >= node_count) {
        return Status::Corruption("trie child out of range");
      }
      byte = static_cast<char>(b);
      child = static_cast<int32_t>(c);
    }
  }
  return trie;
}

}  // namespace lotusx::index
