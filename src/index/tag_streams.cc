#include "index/tag_streams.h"

#include "common/invariant.h"

namespace lotusx::index {

TagStreams TagStreams::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TagStreams streams;
  std::vector<std::vector<uint32_t>> raw(
      static_cast<size_t>(document.num_tags()));
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    if (node.kind == xml::NodeKind::kText) continue;
    raw[static_cast<size_t>(node.tag)].push_back(
        static_cast<uint32_t>(id));
  }
  streams.streams_.reserve(raw.size());
  for (const std::vector<uint32_t>& ids : raw) {
    streams.streams_.push_back(PostingBlocks::FromSorted(ids));
  }
  return streams;
}

std::vector<xml::NodeId> TagStreams::Decode(xml::TagId tag) const {
  std::vector<uint32_t> keys = blocks(tag).DecodeKeys();
  return {keys.begin(), keys.end()};
}

Status TagStreams::ValidateInvariants(const xml::Document& document) const {
  LOTUSX_ENSURE(num_tags() == document.num_tags())
      << "streams " << num_tags() << " document " << document.num_tags();
  size_t total = 0;
  for (xml::TagId tag = 0; tag < num_tags(); ++tag) {
    // Block metadata vs. decoded contents first; the checked decode
    // below then works off a structurally-sound stream.
    LOTUSX_RETURN_IF_ERROR(blocks(tag).ValidateInvariants());
    LOTUSX_ENSURE(!blocks(tag).has_payload())
        << "tag " << tag << " stream carries a payload channel";
    std::vector<xml::NodeId> ids = Decode(tag);
    total += ids.size();
    xml::NodeId previous = xml::kInvalidNodeId;
    for (xml::NodeId id : ids) {
      LOTUSX_ENSURE(id >= 0 && id < document.num_nodes())
          << "tag " << tag << " node " << id;
      LOTUSX_ENSURE(id > previous)
          << "tag " << tag << " not in document order at node " << id;
      const xml::Document::Node& node = document.node(id);
      LOTUSX_ENSURE(node.kind != xml::NodeKind::kText)
          << "tag " << tag << " node " << id;
      LOTUSX_ENSURE(node.tag == tag)
          << "node " << id << " has tag " << node.tag << " in stream "
          << tag;
      previous = id;
    }
  }
  // Every element/attribute node appears in exactly one stream (tags
  // partition them), so matching totals means full coverage.
  size_t expected = 0;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    if (document.node(id).kind != xml::NodeKind::kText) ++expected;
  }
  LOTUSX_ENSURE(total == expected)
      << "streams cover " << total << " nodes, document has " << expected;
  return Status::OK();
}

size_t TagStreams::MemoryUsage() const {
  size_t bytes = streams_.capacity() * sizeof(PostingBlocks);
  for (const PostingBlocks& stream : streams_) {
    bytes += stream.MemoryUsage();
  }
  return bytes;
}

void TagStreams::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(streams_.size());
  for (const PostingBlocks& stream : streams_) {
    stream.EncodeTo(encoder);
  }
}

StatusOr<TagStreams> TagStreams::DecodeFrom(Decoder* decoder) {
  TagStreams streams;
  uint64_t tag_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&tag_count));
  if (tag_count > decoder->remaining()) {
    return Status::Corruption("tag stream count exceeds buffer");
  }
  streams.streams_.reserve(tag_count);
  for (uint64_t tag = 0; tag < tag_count; ++tag) {
    LOTUSX_ASSIGN_OR_RETURN(PostingBlocks stream,
                            PostingBlocks::DecodeFrom(decoder));
    streams.streams_.push_back(std::move(stream));
  }
  return streams;
}

}  // namespace lotusx::index
