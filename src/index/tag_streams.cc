#include "index/tag_streams.h"

#include "common/invariant.h"

namespace lotusx::index {

TagStreams TagStreams::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TagStreams streams;
  streams.streams_.resize(static_cast<size_t>(document.num_tags()));
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    if (node.kind == xml::NodeKind::kText) continue;
    streams.streams_[static_cast<size_t>(node.tag)].push_back(id);
  }
  return streams;
}

Status TagStreams::ValidateInvariants(const xml::Document& document) const {
  LOTUSX_ENSURE(num_tags() == document.num_tags())
      << "streams " << num_tags() << " document " << document.num_tags();
  size_t total = 0;
  for (xml::TagId tag = 0; tag < num_tags(); ++tag) {
    std::span<const xml::NodeId> ids = stream(tag);
    total += ids.size();
    xml::NodeId previous = xml::kInvalidNodeId;
    for (xml::NodeId id : ids) {
      LOTUSX_ENSURE(id >= 0 && id < document.num_nodes())
          << "tag " << tag << " node " << id;
      LOTUSX_ENSURE(id > previous)
          << "tag " << tag << " not in document order at node " << id;
      const xml::Document::Node& node = document.node(id);
      LOTUSX_ENSURE(node.kind != xml::NodeKind::kText)
          << "tag " << tag << " node " << id;
      LOTUSX_ENSURE(node.tag == tag)
          << "node " << id << " has tag " << node.tag << " in stream "
          << tag;
      previous = id;
    }
  }
  // Every element/attribute node appears in exactly one stream (tags
  // partition them), so matching totals means full coverage.
  size_t expected = 0;
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    if (document.node(id).kind != xml::NodeKind::kText) ++expected;
  }
  LOTUSX_ENSURE(total == expected)
      << "streams cover " << total << " nodes, document has " << expected;
  return Status::OK();
}

size_t TagStreams::MemoryUsage() const {
  size_t bytes = streams_.capacity() * sizeof(std::vector<xml::NodeId>);
  for (const auto& stream : streams_) {
    bytes += stream.capacity() * sizeof(xml::NodeId);
  }
  return bytes;
}

void TagStreams::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(streams_.size());
  for (const auto& stream : streams_) {
    // NodeIds are non-negative and strictly increasing: delta-encode.
    std::vector<uint32_t> ids(stream.begin(), stream.end());
    encoder->PutSortedU32List(ids);
  }
}

StatusOr<TagStreams> TagStreams::DecodeFrom(Decoder* decoder) {
  TagStreams streams;
  uint64_t tag_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&tag_count));
  streams.streams_.resize(tag_count);
  for (auto& stream : streams.streams_) {
    std::vector<uint32_t> ids;
    LOTUSX_RETURN_IF_ERROR(decoder->GetSortedU32List(&ids));
    stream.assign(ids.begin(), ids.end());
  }
  return streams;
}

}  // namespace lotusx::index
