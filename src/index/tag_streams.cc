#include "index/tag_streams.h"

namespace lotusx::index {

TagStreams TagStreams::Build(const xml::Document& document) {
  CHECK(document.finalized());
  TagStreams streams;
  streams.streams_.resize(static_cast<size_t>(document.num_tags()));
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    if (node.kind == xml::NodeKind::kText) continue;
    streams.streams_[static_cast<size_t>(node.tag)].push_back(id);
  }
  return streams;
}

size_t TagStreams::MemoryUsage() const {
  size_t bytes = streams_.capacity() * sizeof(std::vector<xml::NodeId>);
  for (const auto& stream : streams_) {
    bytes += stream.capacity() * sizeof(xml::NodeId);
  }
  return bytes;
}

void TagStreams::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(streams_.size());
  for (const auto& stream : streams_) {
    // NodeIds are non-negative and strictly increasing: delta-encode.
    std::vector<uint32_t> ids(stream.begin(), stream.end());
    encoder->PutSortedU32List(ids);
  }
}

StatusOr<TagStreams> TagStreams::DecodeFrom(Decoder* decoder) {
  TagStreams streams;
  uint64_t tag_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&tag_count));
  streams.streams_.resize(tag_count);
  for (auto& stream : streams.streams_) {
    std::vector<uint32_t> ids;
    LOTUSX_RETURN_IF_ERROR(decoder->GetSortedU32List(&ids));
    stream.assign(ids.begin(), ids.end());
  }
  return streams;
}

}  // namespace lotusx::index
