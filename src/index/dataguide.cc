#include "index/dataguide.h"

#include <algorithm>
#include <map>

#include "common/invariant.h"
#include "common/string_util.h"

namespace lotusx::index {

DataGuide DataGuide::Build(const xml::Document& document) {
  CHECK(document.finalized());
  DataGuide guide;
  guide.path_of_.assign(static_cast<size_t>(document.num_nodes()),
                        kInvalidPathId);
  if (document.empty()) {
    guide.BuildDerivedData();
    return guide;
  }

  // Root path node.
  PathNode root;
  root.tag = document.node(0).tag;
  root.count = 1;
  guide.nodes_.push_back(root);
  guide.path_of_[0] = 0;

  for (xml::NodeId id = 1; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    PathId parent_path = guide.path_of_[static_cast<size_t>(node.parent)];
    DCHECK(parent_path != kInvalidPathId);
    if (node.kind == xml::NodeKind::kText) {
      ++guide.nodes_[static_cast<size_t>(parent_path)].text_count;
      continue;
    }
    PathId path = guide.FindChild(parent_path, node.tag);
    if (path == kInvalidPathId) {
      path = static_cast<PathId>(guide.nodes_.size());
      PathNode fresh;
      fresh.tag = node.tag;
      fresh.parent = parent_path;
      fresh.depth = guide.nodes_[static_cast<size_t>(parent_path)].depth + 1;
      guide.nodes_.push_back(fresh);
      guide.nodes_[static_cast<size_t>(parent_path)].children.push_back(
          path);
    }
    ++guide.nodes_[static_cast<size_t>(path)].count;
    guide.path_of_[static_cast<size_t>(id)] = path;
  }
  guide.BuildDerivedData();
  return guide;
}

void DataGuide::BuildDerivedData() {
  // paths_by_tag_.
  xml::TagId max_tag = -1;
  for (const PathNode& node : nodes_) max_tag = std::max(max_tag, node.tag);
  paths_by_tag_.assign(max_tag < 0 ? 0 : static_cast<size_t>(max_tag) + 1,
                       {});
  for (PathId id = 0; id < num_paths(); ++id) {
    paths_by_tag_[static_cast<size_t>(nodes_[static_cast<size_t>(id)].tag)]
        .push_back(id);
  }

  // descendant_tags_: bottom-up merge. PathIds are created parents-first,
  // so iterating in reverse resolves children before parents.
  descendant_tags_.assign(nodes_.size(), {});
  descendant_keys_.assign(nodes_.size(), {});
  for (PathId id = num_paths() - 1; id >= 0; --id) {
    std::map<xml::TagId, uint64_t> merged;
    for (PathId child : nodes_[static_cast<size_t>(id)].children) {
      const PathNode& child_node = nodes_[static_cast<size_t>(child)];
      merged[child_node.tag] += child_node.count;
      for (const auto& [tag, count] :
           descendant_tags_[static_cast<size_t>(child)]) {
        merged[tag] += count;
      }
    }
    auto& flat = descendant_tags_[static_cast<size_t>(id)];
    auto& keys = descendant_keys_[static_cast<size_t>(id)];
    flat.assign(merged.begin(), merged.end());
    keys.reserve(flat.size());
    for (const auto& [tag, count] : flat) keys.push_back(tag);
  }
}

PathId DataGuide::FindChild(PathId path, xml::TagId tag) const {
  if (path == kInvalidPathId) return kInvalidPathId;
  for (PathId child : nodes_[static_cast<size_t>(path)].children) {
    if (nodes_[static_cast<size_t>(child)].tag == tag) return child;
  }
  return kInvalidPathId;
}

const std::vector<PathId>& DataGuide::PathsWithTag(xml::TagId tag) const {
  if (tag < 0 || static_cast<size_t>(tag) >= paths_by_tag_.size()) {
    return empty_paths_;
  }
  return paths_by_tag_[static_cast<size_t>(tag)];
}

std::vector<xml::TagId> DataGuide::ChildTags(PathId path) const {
  std::vector<xml::TagId> tags;
  for (PathId child : node(path).children) {
    tags.push_back(node(child).tag);
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  return tags;
}

const std::vector<xml::TagId>& DataGuide::DescendantTags(PathId path) const {
  DCHECK(path >= 0 && path < num_paths());
  return descendant_keys_[static_cast<size_t>(path)];
}

uint64_t DataGuide::DescendantTagCount(PathId path, xml::TagId tag) const {
  const auto& flat = descendant_tags_[static_cast<size_t>(path)];
  auto it = std::lower_bound(
      flat.begin(), flat.end(), tag,
      [](const auto& entry, xml::TagId t) { return entry.first < t; });
  if (it == flat.end() || it->first != tag) return 0;
  return it->second;
}

uint64_t DataGuide::ChildTagCount(PathId path, xml::TagId tag) const {
  uint64_t total = 0;
  for (PathId child : node(path).children) {
    if (node(child).tag == tag) total += node(child).count;
  }
  return total;
}

std::vector<xml::TagId> DataGuide::TagPath(PathId path) const {
  std::vector<xml::TagId> tags;
  for (PathId p = path; p != kInvalidPathId; p = node(p).parent) {
    tags.push_back(node(p).tag);
  }
  std::reverse(tags.begin(), tags.end());
  return tags;
}

std::string DataGuide::PathString(const xml::Document& document,
                                  PathId path) const {
  std::string out;
  for (xml::TagId tag : TagPath(path)) {
    out += '/';
    out += document.tag_name(tag);
  }
  return out;
}

Status DataGuide::ValidateInvariants(const xml::Document& document) const {
  // Structural pass over the summary tree.
  for (PathId id = 0; id < num_paths(); ++id) {
    const PathNode& path = nodes_[static_cast<size_t>(id)];
    LOTUSX_ENSURE(path.tag >= 0 && path.tag < document.num_tags())
        << "path " << id << " tag " << path.tag;
    if (id == 0) {
      LOTUSX_ENSURE(path.parent == kInvalidPathId) << "root path has parent";
      LOTUSX_ENSURE(path.depth == 0) << "root path depth " << path.depth;
    } else {
      LOTUSX_ENSURE(path.parent >= 0 && path.parent < id)
          << "path " << id << " parent " << path.parent;
      LOTUSX_ENSURE(path.depth ==
                    nodes_[static_cast<size_t>(path.parent)].depth + 1)
          << "path " << id << " depth " << path.depth;
    }
    std::vector<xml::TagId> child_tags;
    for (PathId child : path.children) {
      LOTUSX_ENSURE(child > id && child < num_paths())
          << "path " << id << " child " << child;
      const PathNode& child_node = nodes_[static_cast<size_t>(child)];
      LOTUSX_ENSURE(child_node.parent == id)
          << "path " << child << " parent " << child_node.parent
          << " but child of " << id;
      child_tags.push_back(child_node.tag);
    }
    // One path node per (parent, tag): children carry distinct tags.
    std::sort(child_tags.begin(), child_tags.end());
    LOTUSX_ENSURE(std::adjacent_find(child_tags.begin(), child_tags.end()) ==
                  child_tags.end())
        << "path " << id << " has duplicate child tags";
  }

  // Recount occurrences from the document and compare exactly.
  LOTUSX_ENSURE(path_of_.size() ==
                static_cast<size_t>(document.num_nodes()))
      << "path_of covers " << path_of_.size() << " of "
      << document.num_nodes() << " nodes";
  std::vector<uint32_t> counts(nodes_.size(), 0);
  std::vector<uint32_t> text_counts(nodes_.size(), 0);
  for (xml::NodeId id = 0; id < document.num_nodes(); ++id) {
    const xml::Document::Node& node = document.node(id);
    PathId path = path_of_[static_cast<size_t>(id)];
    if (node.kind == xml::NodeKind::kText) {
      LOTUSX_ENSURE(path == kInvalidPathId)
          << "text node " << id << " has path " << path;
      PathId parent_path = path_of_[static_cast<size_t>(node.parent)];
      LOTUSX_ENSURE(parent_path != kInvalidPathId)
          << "text node " << id << " under unmapped parent";
      ++text_counts[static_cast<size_t>(parent_path)];
      continue;
    }
    LOTUSX_ENSURE(path >= 0 && path < num_paths())
        << "node " << id << " path " << path;
    const PathNode& path_node = nodes_[static_cast<size_t>(path)];
    LOTUSX_ENSURE(path_node.tag == node.tag)
        << "node " << id << " tag " << node.tag << " path tag "
        << path_node.tag;
    LOTUSX_ENSURE(path_node.depth == node.depth)
        << "node " << id << " depth " << node.depth << " path depth "
        << path_node.depth;
    if (node.parent == xml::kInvalidNodeId) {
      LOTUSX_ENSURE(path == 0) << "root node mapped to path " << path;
    } else {
      LOTUSX_ENSURE(path_node.parent ==
                    path_of_[static_cast<size_t>(node.parent)])
          << "node " << id << " path parent disagrees with document parent";
    }
    ++counts[static_cast<size_t>(path)];
  }
  for (PathId id = 0; id < num_paths(); ++id) {
    const PathNode& path = nodes_[static_cast<size_t>(id)];
    LOTUSX_ENSURE(path.count == counts[static_cast<size_t>(id)])
        << "path " << id << " count " << path.count << " actual "
        << counts[static_cast<size_t>(id)];
    LOTUSX_ENSURE(path.text_count == text_counts[static_cast<size_t>(id)])
        << "path " << id << " text_count " << path.text_count << " actual "
        << text_counts[static_cast<size_t>(id)];
    // Paths summarize the document: every path must occur.
    LOTUSX_ENSURE(path.count > 0) << "path " << id << " occurs nowhere";
  }
  return Status::OK();
}

size_t DataGuide::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(PathNode) +
                 path_of_.capacity() * sizeof(PathId);
  for (const PathNode& node : nodes_) {
    bytes += node.children.capacity() * sizeof(PathId);
  }
  for (const auto& v : paths_by_tag_) bytes += v.capacity() * sizeof(PathId);
  for (const auto& v : descendant_tags_) {
    bytes += v.capacity() * sizeof(std::pair<xml::TagId, uint64_t>);
  }
  for (const auto& v : descendant_keys_) {
    bytes += v.capacity() * sizeof(xml::TagId);
  }
  return bytes;
}

void DataGuide::EncodeTo(Encoder* encoder) const {
  encoder->PutVarint64(nodes_.size());
  for (const PathNode& node : nodes_) {
    encoder->PutVarint32(static_cast<uint32_t>(node.tag));
    encoder->PutVarint32(static_cast<uint32_t>(node.parent + 1));
    encoder->PutVarint32(static_cast<uint32_t>(node.count));
    encoder->PutVarint32(static_cast<uint32_t>(node.text_count));
  }
  encoder->PutVarint64(path_of_.size());
  for (PathId p : path_of_) {
    encoder->PutVarint32(static_cast<uint32_t>(p + 1));
  }
}

StatusOr<DataGuide> DataGuide::DecodeFrom(Decoder* decoder) {
  DataGuide guide;
  uint64_t node_count = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&node_count));
  guide.nodes_.resize(node_count);
  for (size_t i = 0; i < node_count; ++i) {
    PathNode& node = guide.nodes_[i];
    uint32_t tag = 0;
    uint32_t parent_plus1 = 0;
    uint32_t count = 0;
    uint32_t text_count = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&tag));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&parent_plus1));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&count));
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&text_count));
    // A hostile tag id would turn negative in the TagId cast (indexing
    // paths_by_tag_ out of bounds in BuildDerivedData below) or force an
    // absurd paths_by_tag_ allocation; reject both before either happens.
    // LoadFrom additionally cross-checks tags against the document's table.
    constexpr uint32_t kMaxDecodedTag = 1u << 20;
    if (tag >= kMaxDecodedTag) {
      return Status::Corruption("dataguide tag id out of range: " +
                                std::to_string(tag));
    }
    node.tag = static_cast<xml::TagId>(tag);
    node.parent = static_cast<PathId>(parent_plus1) - 1;
    node.count = count;
    node.text_count = text_count;
    if (node.parent >= static_cast<PathId>(i)) {
      return Status::Corruption("dataguide parent not before child");
    }
    if (node.parent != kInvalidPathId) {
      node.depth = guide.nodes_[static_cast<size_t>(node.parent)].depth + 1;
      guide.nodes_[static_cast<size_t>(node.parent)].children.push_back(
          static_cast<PathId>(i));
    } else if (i != 0) {
      return Status::Corruption("dataguide has multiple roots");
    }
  }
  uint64_t doc_nodes = 0;
  LOTUSX_RETURN_IF_ERROR(decoder->GetVarint64(&doc_nodes));
  guide.path_of_.resize(doc_nodes);
  for (size_t i = 0; i < doc_nodes; ++i) {
    uint32_t p = 0;
    LOTUSX_RETURN_IF_ERROR(decoder->GetVarint32(&p));
    PathId path = static_cast<PathId>(p) - 1;
    if (path >= static_cast<PathId>(node_count)) {
      return Status::Corruption("dataguide path_of out of range");
    }
    guide.path_of_[i] = path;
  }
  guide.BuildDerivedData();
  return guide;
}

}  // namespace lotusx::index
