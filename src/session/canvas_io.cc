#include "session/canvas_io.h"

#include <charconv>
#include <functional>

#include "common/coding.h"
#include "xml/dom.h"
#include "xml/dom_builder.h"
#include "xml/writer.h"

namespace lotusx::session {

namespace {

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

StatusOr<double> ParseNum(std::string_view text) {
  std::string copy(text);
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (copy.empty() || end != copy.c_str() + copy.size()) {
    return Status::Corruption("bad number in canvas file: '" + copy + "'");
  }
  return value;
}

StatusOr<int> ParseId(std::string_view text) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(text.data(), text.data() + text.size(), value);
  if (ec != std::errc() || ptr != text.data() + text.size()) {
    return Status::Corruption("bad id in canvas file: '" +
                              std::string(text) + "'");
  }
  return value;
}

/// Attribute lookup on an element of the parsed canvas document.
StatusOr<std::string> RequiredAttr(const xml::Document& document,
                                   xml::NodeId element,
                                   std::string_view name) {
  std::string wanted = "@" + std::string(name);
  for (xml::NodeId child : document.Children(element)) {
    if (document.node(child).kind == xml::NodeKind::kAttribute &&
        document.TagName(child) == wanted) {
      return std::string(document.Value(child));
    }
  }
  return Status::Corruption("canvas file: missing attribute '" +
                            std::string(name) + "'");
}

std::string OptionalAttr(const xml::Document& document, xml::NodeId element,
                         std::string_view name, std::string fallback) {
  std::string wanted = "@" + std::string(name);
  for (xml::NodeId child : document.Children(element)) {
    if (document.node(child).kind == xml::NodeKind::kAttribute &&
        document.TagName(child) == wanted) {
      return std::string(document.Value(child));
    }
  }
  return fallback;
}

}  // namespace

std::string SerializeCanvas(const Canvas& canvas) {
  xml::Document doc;
  xml::NodeId root = doc.AppendElement(xml::kInvalidNodeId, "canvas");
  for (const CanvasNode& node : canvas.nodes()) {
    xml::NodeId box = doc.AppendElement(root, "box");
    doc.AppendAttribute(box, "id", std::to_string(node.id));
    doc.AppendAttribute(box, "x", Num(node.x));
    doc.AppendAttribute(box, "y", Num(node.y));
    doc.AppendAttribute(box, "tag", node.tag);
    if (node.ordered) doc.AppendAttribute(box, "ordered", "true");
    if (node.output) doc.AppendAttribute(box, "output", "true");
    if (node.predicate.active()) {
      doc.AppendAttribute(
          box, "op",
          node.predicate.op == twig::ValuePredicate::Op::kEquals ? "="
                                                                 : "~");
      doc.AppendAttribute(box, "text", node.predicate.text);
    }
  }
  for (const CanvasEdge& edge : canvas.edges()) {
    xml::NodeId e = doc.AppendElement(root, "edge");
    doc.AppendAttribute(e, "from", std::to_string(edge.from));
    doc.AppendAttribute(e, "to", std::to_string(edge.to));
    doc.AppendAttribute(e, "axis",
                        edge.axis == twig::Axis::kChild ? "/" : "//");
  }
  doc.Finalize();
  return xml::WriteXml(doc, xml::WriterOptions{.indent = 2});
}

StatusOr<Canvas> DeserializeCanvas(std::string_view xml) {
  LOTUSX_ASSIGN_OR_RETURN(xml::Document doc, xml::ParseDocument(xml));
  if (doc.TagName(doc.root()) != "canvas") {
    return Status::Corruption("not a canvas file (root is <" +
                              std::string(doc.TagName(doc.root())) + ">)");
  }
  Canvas canvas;
  for (xml::NodeId child : doc.Children(doc.root())) {
    if (doc.node(child).kind != xml::NodeKind::kElement) continue;
    std::string_view kind = doc.TagName(child);
    if (kind == "box") {
      LOTUSX_ASSIGN_OR_RETURN(std::string id_text,
                              RequiredAttr(doc, child, "id"));
      LOTUSX_ASSIGN_OR_RETURN(int id, ParseId(id_text));
      LOTUSX_ASSIGN_OR_RETURN(std::string x_text,
                              RequiredAttr(doc, child, "x"));
      LOTUSX_ASSIGN_OR_RETURN(double x, ParseNum(x_text));
      LOTUSX_ASSIGN_OR_RETURN(std::string y_text,
                              RequiredAttr(doc, child, "y"));
      LOTUSX_ASSIGN_OR_RETURN(double y, ParseNum(y_text));
      std::string tag = OptionalAttr(doc, child, "tag", "");
      LOTUSX_RETURN_IF_ERROR(canvas.AddNodeWithId(id, x, y, tag));
      if (OptionalAttr(doc, child, "ordered", "") == "true") {
        LOTUSX_RETURN_IF_ERROR(canvas.SetOrdered(id, true));
      }
      if (OptionalAttr(doc, child, "output", "") == "true") {
        LOTUSX_RETURN_IF_ERROR(canvas.SetOutput(id));
      }
      std::string op = OptionalAttr(doc, child, "op", "");
      if (!op.empty()) {
        twig::ValuePredicate predicate;
        if (op == "=") {
          predicate.op = twig::ValuePredicate::Op::kEquals;
        } else if (op == "~") {
          predicate.op = twig::ValuePredicate::Op::kContains;
        } else {
          return Status::Corruption("canvas file: bad predicate op '" +
                                    op + "'");
        }
        predicate.text = OptionalAttr(doc, child, "text", "");
        LOTUSX_RETURN_IF_ERROR(canvas.SetPredicate(id, predicate));
      }
    } else if (kind == "edge") {
      LOTUSX_ASSIGN_OR_RETURN(std::string from_text,
                              RequiredAttr(doc, child, "from"));
      LOTUSX_ASSIGN_OR_RETURN(int from, ParseId(from_text));
      LOTUSX_ASSIGN_OR_RETURN(std::string to_text,
                              RequiredAttr(doc, child, "to"));
      LOTUSX_ASSIGN_OR_RETURN(int to, ParseId(to_text));
      // Not LOTUSX_ASSIGN_OR_RETURN: GCC 12's -Wmaybe-uninitialized loses
      // track of the optional's engaged state through the move and flags a
      // spurious uninitialized read under -O2; a reference binding keeps
      // -Werror builds clean.
      StatusOr<std::string> axis_or = RequiredAttr(doc, child, "axis");
      if (!axis_or.ok()) return axis_or.status();
      const std::string& axis_text = *axis_or;
      twig::Axis axis;
      if (axis_text == "/") {
        axis = twig::Axis::kChild;
      } else if (axis_text == "//") {
        axis = twig::Axis::kDescendant;
      } else {
        return Status::Corruption("canvas file: bad axis '" + axis_text +
                                  "'");
      }
      LOTUSX_RETURN_IF_ERROR(canvas.Connect(from, to, axis));
    } else {
      return Status::Corruption("canvas file: unknown element <" +
                                std::string(kind) + ">");
    }
  }
  return canvas;
}

Canvas CanvasFromQuery(const twig::TwigQuery& query) {
  Canvas canvas;
  if (query.empty()) return canvas;
  constexpr double kRowHeight = 130;
  constexpr double kLeafSpacing = 150;
  // Post-order x assignment: leaves take successive slots, parents sit at
  // the midpoint of their children.
  std::vector<double> x(static_cast<size_t>(query.size()), 0);
  double next_leaf_x = 0;
  std::function<void(twig::QueryNodeId)> place =
      [&](twig::QueryNodeId q) {
        const twig::QueryNode& node = query.node(q);
        if (node.children.empty()) {
          x[static_cast<size_t>(q)] = next_leaf_x;
          next_leaf_x += kLeafSpacing;
          return;
        }
        for (twig::QueryNodeId child : node.children) place(child);
        x[static_cast<size_t>(q)] =
            (x[static_cast<size_t>(node.children.front())] +
             x[static_cast<size_t>(node.children.back())]) /
            2;
      };
  place(query.root());

  // Depth of each query node (root = 0).
  std::vector<int> depth(static_cast<size_t>(query.size()), 0);
  for (twig::QueryNodeId q = 1; q < query.size(); ++q) {
    depth[static_cast<size_t>(q)] =
        depth[static_cast<size_t>(query.node(q).parent)] + 1;
  }

  std::vector<CanvasNodeId> ids(static_cast<size_t>(query.size()));
  for (twig::QueryNodeId q = 0; q < query.size(); ++q) {
    const twig::QueryNode& node = query.node(q);
    ids[static_cast<size_t>(q)] = canvas.AddNode(
        x[static_cast<size_t>(q)],
        depth[static_cast<size_t>(q)] * kRowHeight, node.tag);
    if (node.predicate.active()) {
      CHECK(canvas.SetPredicate(ids[static_cast<size_t>(q)],
                                node.predicate)
                .ok());
    }
    if (node.ordered) {
      CHECK(canvas.SetOrdered(ids[static_cast<size_t>(q)], true).ok());
    }
    if (q != query.root()) {
      CHECK(canvas
                .Connect(ids[static_cast<size_t>(node.parent)],
                         ids[static_cast<size_t>(q)], node.incoming_axis)
                .ok());
    }
  }
  CHECK(canvas.SetOutput(ids[static_cast<size_t>(query.output())]).ok());
  return canvas;
}

Status SaveCanvasToFile(const Canvas& canvas, const std::string& path) {
  return WriteStringToFile(path, SerializeCanvas(canvas));
}

StatusOr<Canvas> LoadCanvasFromFile(const std::string& path) {
  std::string contents;
  LOTUSX_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  return DeserializeCanvas(contents);
}

}  // namespace lotusx::session
