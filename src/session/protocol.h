#ifndef LOTUSX_SESSION_PROTOCOL_H_
#define LOTUSX_SESSION_PROTOCOL_H_

#include <string>
#include <string_view>

#include "common/status_or.h"
#include "session/session.h"

namespace lotusx::session {

/// Line-oriented command protocol over a Session — the scriptable stand-in
/// for the demo's browser front end (the REPL example wires it to stdin).
///
/// Commands (case-insensitive verb; <axis> is '/' or '//'):
///   ADD <x> <y> [tag]           create a box, returns its id
///   TAG <id> <tag>              set a box's tag
///   EDGE <from> <to> <axis>     connect boxes
///   TYPE <anchor> <axis> [pfx]  tag suggestions (anchor 0 = query root)
///   ACCEPT <n> [x y]            accept candidate n of the last TYPE: adds
///                               the box (at x,y or auto-placed) and
///                               connects it to the typed anchor
///   TYPEVAL <id> [pfx]          value-keyword suggestions for a box
///   VALUE <id> = <text>         set equality predicate
///   VALUE <id> ~ <text>         set contains predicate
///   VALUE <id> NONE             clear predicate
///   ORDERED <id> ON|OFF         toggle order sensitivity
///   OUTPUT <id>                 choose the output box
///   MOVE <id> <x> <y>           reposition (affects child order)
///   REMOVE <id>                 delete a box
///   QUERY                       show the compiled twig query
///   RUN                         execute + rank (+ rewrite when empty)
///   CHECKPOINT / UNDO           canvas history
///   SHOW                        dump the canvas
///   RESET                       clear the canvas
///   HELP                        this text
///
/// Execute() returns the textual response for one command line, or an
/// error Status for malformed/failed commands (the REPL prints either).
///
/// Framing contract: response payloads are never newline-terminated
/// (multi-line payloads keep their interior newlines); the transport owns
/// termination. The REPL appends a single "\n" when printing, and the TCP
/// server (net/server.h) wraps each payload in a byte-counted OK/ERR
/// frame — see docs/PROTOCOL.md "Wire transport".
class ProtocolInterpreter {
 public:
  explicit ProtocolInterpreter(Session* session) : session_(session) {}

  StatusOr<std::string> Execute(std::string_view line);

 private:
  /// Verb dispatch; Execute() normalizes the framing of what it returns.
  StatusOr<std::string> ExecuteCommand(std::string_view line);

  Session* session_;
  // Context of the most recent TYPE command, consumed by ACCEPT.
  struct TypeContext {
    CanvasNodeId anchor = 0;
    twig::Axis axis = twig::Axis::kChild;
    std::vector<autocomplete::Candidate> candidates;
  };
  std::optional<TypeContext> last_type_;
};

}  // namespace lotusx::session

#endif  // LOTUSX_SESSION_PROTOCOL_H_
