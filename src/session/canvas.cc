#include "session/canvas.h"

#include <algorithm>
#include <functional>
#include <set>

namespace lotusx::session {

CanvasNodeId Canvas::AddNode(double x, double y, std::string_view tag) {
  CanvasNode node;
  node.id = next_id_++;
  node.x = x;
  node.y = y;
  node.tag = std::string(tag);
  nodes_.push_back(std::move(node));
  return nodes_.back().id;
}

Status Canvas::AddNodeWithId(CanvasNodeId id, double x, double y,
                             std::string_view tag) {
  if (id <= 0) {
    return Status::InvalidArgument("canvas ids must be positive");
  }
  if (FindNode(id) != nullptr) {
    return Status::AlreadyExists("canvas id " + std::to_string(id) +
                                 " already in use");
  }
  CanvasNode node;
  node.id = id;
  node.x = x;
  node.y = y;
  node.tag = std::string(tag);
  nodes_.push_back(std::move(node));
  next_id_ = std::max(next_id_, id + 1);
  return Status::OK();
}

const CanvasNode* Canvas::FindNode(CanvasNodeId id) const {
  for (const CanvasNode& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

CanvasNode* Canvas::MutableNode(CanvasNodeId id) {
  for (CanvasNode& node : nodes_) {
    if (node.id == id) return &node;
  }
  return nullptr;
}

Status Canvas::RemoveNode(CanvasNodeId id) {
  if (FindNode(id) == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  std::erase_if(nodes_, [&](const CanvasNode& n) { return n.id == id; });
  std::erase_if(edges_, [&](const CanvasEdge& e) {
    return e.from == id || e.to == id;
  });
  return Status::OK();
}

Status Canvas::MoveNode(CanvasNodeId id, double x, double y) {
  CanvasNode* node = MutableNode(id);
  if (node == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  node->x = x;
  node->y = y;
  return Status::OK();
}

Status Canvas::SetTag(CanvasNodeId id, std::string_view tag) {
  CanvasNode* node = MutableNode(id);
  if (node == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  node->tag = std::string(tag);
  return Status::OK();
}

Status Canvas::SetPredicate(CanvasNodeId id,
                            twig::ValuePredicate predicate) {
  CanvasNode* node = MutableNode(id);
  if (node == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  node->predicate = std::move(predicate);
  return Status::OK();
}

Status Canvas::SetOrdered(CanvasNodeId id, bool ordered) {
  CanvasNode* node = MutableNode(id);
  if (node == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  node->ordered = ordered;
  return Status::OK();
}

Status Canvas::SetOutput(CanvasNodeId id) {
  if (FindNode(id) == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  for (CanvasNode& node : nodes_) node.output = node.id == id;
  return Status::OK();
}

Status Canvas::Connect(CanvasNodeId from, CanvasNodeId to,
                       twig::Axis axis) {
  if (FindNode(from) == nullptr || FindNode(to) == nullptr) {
    return Status::NotFound("edge endpoint does not exist");
  }
  if (from == to) return Status::InvalidArgument("self edge");
  for (const CanvasEdge& edge : edges_) {
    if (edge.to == to) {
      return Status::AlreadyExists("node " + std::to_string(to) +
                                   " already has a parent");
    }
  }
  // Cycle check: walk up from `from`; if we reach `to`, adding the edge
  // would close a loop.
  CanvasNodeId walk = from;
  while (true) {
    CanvasNodeId parent = 0;
    bool found = false;
    for (const CanvasEdge& edge : edges_) {
      if (edge.to == walk) {
        parent = edge.from;
        found = true;
        break;
      }
    }
    if (!found) break;
    if (parent == to) return Status::InvalidArgument("edge would form a cycle");
    walk = parent;
  }
  edges_.push_back(CanvasEdge{from, to, axis});
  return Status::OK();
}

Status Canvas::Disconnect(CanvasNodeId from, CanvasNodeId to) {
  size_t before = edges_.size();
  std::erase_if(edges_, [&](const CanvasEdge& e) {
    return e.from == from && e.to == to;
  });
  if (edges_.size() == before) return Status::NotFound("no such edge");
  return Status::OK();
}

std::vector<CanvasNodeId> Canvas::ChildrenLeftToRight(
    CanvasNodeId id) const {
  std::vector<const CanvasNode*> children;
  for (const CanvasEdge& edge : edges_) {
    if (edge.from == id) children.push_back(FindNode(edge.to));
  }
  std::sort(children.begin(), children.end(),
            [](const CanvasNode* a, const CanvasNode* b) {
              if (a->x != b->x) return a->x < b->x;
              return a->id < b->id;
            });
  std::vector<CanvasNodeId> ids;
  ids.reserve(children.size());
  for (const CanvasNode* child : children) ids.push_back(child->id);
  return ids;
}

StatusOr<twig::TwigQuery> Canvas::Compile(
    std::map<CanvasNodeId, twig::QueryNodeId>* mapping) const {
  if (nodes_.empty()) return Status::FailedPrecondition("empty canvas");
  // Find the root: exactly one node without incoming edge.
  std::set<CanvasNodeId> has_parent;
  for (const CanvasEdge& edge : edges_) has_parent.insert(edge.to);
  std::vector<CanvasNodeId> roots;
  for (const CanvasNode& node : nodes_) {
    if (!has_parent.contains(node.id)) roots.push_back(node.id);
  }
  if (roots.size() != 1) {
    return Status::FailedPrecondition(
        "canvas must have exactly one root box; found " +
        std::to_string(roots.size()));
  }
  for (const CanvasNode& node : nodes_) {
    if (node.tag.empty()) {
      return Status::FailedPrecondition(
          "box " + std::to_string(node.id) + " has no tag yet");
    }
  }

  twig::TwigQuery query;
  std::map<CanvasNodeId, twig::QueryNodeId> local_mapping;
  // DFS from the root, children in left-to-right spatial order.
  std::function<void(CanvasNodeId, twig::QueryNodeId)> build =
      [&](CanvasNodeId id, twig::QueryNodeId parent_q) {
        const CanvasNode* node = FindNode(id);
        twig::Axis axis = twig::Axis::kDescendant;
        for (const CanvasEdge& edge : edges_) {
          if (edge.to == id) axis = edge.axis;
        }
        twig::QueryNodeId q =
            parent_q == twig::kInvalidQueryNode
                ? query.AddRoot(node->tag)
                : query.AddChild(parent_q, axis, node->tag);
        local_mapping[id] = q;
        if (node->predicate.active()) query.SetPredicate(q, node->predicate);
        if (node->ordered) query.SetOrdered(q, true);
        if (node->output) query.SetOutput(q);
        for (CanvasNodeId child : ChildrenLeftToRight(id)) {
          build(child, q);
        }
      };
  build(roots[0], twig::kInvalidQueryNode);

  if (static_cast<int>(local_mapping.size()) != static_cast<int>(nodes_.size())) {
    return Status::FailedPrecondition(
        "canvas has disconnected boxes: " +
        std::to_string(nodes_.size() - local_mapping.size()) +
        " unreachable from the root");
  }
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  if (mapping != nullptr) *mapping = std::move(local_mapping);
  return query;
}

void Canvas::Reset() {
  nodes_.clear();
  edges_.clear();
  next_id_ = 1;
}

}  // namespace lotusx::session
