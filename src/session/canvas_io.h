#ifndef LOTUSX_SESSION_CANVAS_IO_H_
#define LOTUSX_SESSION_CANVAS_IO_H_

#include <string>

#include "common/status_or.h"
#include "session/canvas.h"
#include "twig/twig_query.h"

namespace lotusx::session {

/// Serializes a canvas drawing as an XML document (using this library's
/// own writer), so user sessions can be saved and restored — box ids,
/// positions, tags, predicates, order flags, output mark, and edges all
/// survive the round trip:
///
///   <canvas>
///     <box id="1" x="50" y="0" tag="article" ordered="true"/>
///     <box id="2" x="10" y="120" tag="year" op="=" text="2012"/>
///     <edge from="1" to="2" axis="/"/>
///   </canvas>
std::string SerializeCanvas(const Canvas& canvas);

/// Parses a SerializeCanvas image back into a canvas. Rejects malformed
/// XML, unknown elements, missing/duplicate ids, and edges that the
/// canvas itself would reject (cycles, double parents) with a clean
/// Status.
StatusOr<Canvas> DeserializeCanvas(std::string_view xml);

/// Builds a canvas drawing from a twig query with a simple tidy tree
/// layout (depth -> rows, leaves spaced evenly, parents centered over
/// their children) — used by the EXAMPLE protocol command to put a
/// query-by-example onto the drawing surface, and generally to visualize
/// any parsed query. CanvasFromQuery(q).Compile() reproduces q's
/// canonical form (tested).
Canvas CanvasFromQuery(const twig::TwigQuery& query);

/// File convenience wrappers.
Status SaveCanvasToFile(const Canvas& canvas, const std::string& path);
StatusOr<Canvas> LoadCanvasFromFile(const std::string& path);

}  // namespace lotusx::session

#endif  // LOTUSX_SESSION_CANVAS_IO_H_
