#include "session/svg_export.h"

#include <algorithm>
#include <sstream>

#include "xml/escape.h"

namespace lotusx::session {

namespace {

std::string Num(double value) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

}  // namespace

std::string RenderCanvasSvg(const Canvas& canvas, const SvgOptions& options) {
  // Bounding box over scaled coordinates.
  double min_x = 0;
  double min_y = 0;
  double max_x = options.box_width;
  double max_y = options.box_height;
  for (const CanvasNode& node : canvas.nodes()) {
    min_x = std::min(min_x, node.x * options.scale);
    min_y = std::min(min_y, node.y * options.scale);
    max_x = std::max(max_x, node.x * options.scale + options.box_width);
    max_y = std::max(max_y, node.y * options.scale + options.box_height);
  }
  double width = max_x - min_x + 2 * options.margin;
  double height = max_y - min_y + 2 * options.margin;
  double dx = options.margin - min_x;
  double dy = options.margin - min_y;

  auto box_center_x = [&](const CanvasNode& node) {
    return node.x * options.scale + dx + options.box_width / 2;
  };
  auto box_top_y = [&](const CanvasNode& node) {
    return node.y * options.scale + dy;
  };

  std::ostringstream out;
  out << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" << Num(width)
      << "\" height=\"" << Num(height) << "\" viewBox=\"0 0 " << Num(width)
      << " " << Num(height) << "\">\n";
  out << "  <style>text{font-family:sans-serif;font-size:13px}"
         ".tag{font-weight:bold}.pred{font-size:10px;fill:#555}</style>\n";

  // Edges first (under the boxes). Child = single line, descendant =
  // double line, following the twig-pattern drawing convention.
  for (const CanvasEdge& edge : canvas.edges()) {
    const CanvasNode* from = canvas.FindNode(edge.from);
    const CanvasNode* to = canvas.FindNode(edge.to);
    double x1 = box_center_x(*from);
    double y1 = box_top_y(*from) + options.box_height;
    double x2 = box_center_x(*to);
    double y2 = box_top_y(*to);
    if (edge.axis == twig::Axis::kChild) {
      out << "  <line x1=\"" << Num(x1) << "\" y1=\"" << Num(y1)
          << "\" x2=\"" << Num(x2) << "\" y2=\"" << Num(y2)
          << "\" stroke=\"#333\" stroke-width=\"1.5\"/>\n";
    } else {
      for (double offset : {-2.0, 2.0}) {
        out << "  <line x1=\"" << Num(x1 + offset) << "\" y1=\"" << Num(y1)
            << "\" x2=\"" << Num(x2 + offset) << "\" y2=\"" << Num(y2)
            << "\" stroke=\"#333\" stroke-width=\"1.2\"/>\n";
      }
    }
  }

  for (const CanvasNode& node : canvas.nodes()) {
    double x = node.x * options.scale + dx;
    double y = node.y * options.scale + dy;
    out << "  <g>\n";
    out << "    <rect x=\"" << Num(x) << "\" y=\"" << Num(y) << "\" width=\""
        << Num(options.box_width) << "\" height=\""
        << Num(options.box_height)
        << "\" rx=\"6\" fill=\"#eef4ff\" stroke=\""
        << (node.output ? "#c02020" : "#4060a0") << "\" stroke-width=\""
        << (node.output ? "3" : "1.5") << "\"/>\n";
    std::string label = node.tag.empty() ? "(typing...)" : node.tag;
    out << "    <text class=\"tag\" x=\"" << Num(x + 8) << "\" y=\""
        << Num(y + 18) << "\">" << xml::EscapeText(label) << "</text>\n";
    if (node.predicate.active()) {
      std::string pred =
          (node.predicate.op == twig::ValuePredicate::Op::kEquals ? "= "
                                                                  : "~ ") +
          node.predicate.text;
      if (pred.size() > 22) pred = pred.substr(0, 19) + "...";
      out << "    <text class=\"pred\" x=\"" << Num(x + 8) << "\" y=\""
          << Num(y + 34) << "\">" << xml::EscapeText(pred) << "</text>\n";
    }
    if (node.ordered) {
      out << "    <text class=\"pred\" x=\""
          << Num(x + options.box_width - 52) << "\" y=\"" << Num(y + 34)
          << "\">ordered</text>\n";
    }
    out << "  </g>\n";
  }
  out << "</svg>\n";
  return out.str();
}

}  // namespace lotusx::session
