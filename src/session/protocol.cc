#include "session/protocol.h"

#include <charconv>
#include <cmath>
#include <cstdlib>
#include <optional>
#include <sstream>

#include "common/client_registry.h"
#include "common/coding.h"
#include "common/metrics.h"
#include "common/process_metrics.h"
#include "common/profiler.h"
#include "common/statement_store.h"
#include "common/string_util.h"
#include "common/trace_store.h"
#include "index/document_stats.h"
#include "session/canvas_io.h"
#include "twig/fingerprint.h"
#include "twig/query_from_example.h"
#include "twig/query_parser.h"
#include "session/svg_export.h"
#include "xml/writer.h"

namespace lotusx::session {

namespace {

constexpr std::string_view kHelp =
    "ADD <x> <y> [tag] | TAG <id> <tag> | EDGE <from> <to> </|//> |\n"
    "TYPE <anchor> </|//> [prefix] | ACCEPT <n> [x y] | TYPEVAL <id> [prefix] |\n"
    "VALUE <id> =|~ <text> | VALUE <id> NONE | ORDERED <id> ON|OFF |\n"
    "OUTPUT <id> | MOVE <id> <x> <y> | REMOVE <id> | QUERY | RUN |\n"
    "FIND <keywords> | STATS [DOC] | EXPLAIN | XPATH | XQUERY | SVG [file] |\n"
    "SAVECANVAS <file> | LOADCANVAS <file> | HISTORY [prefix] |\n"
    "EXAMPLE <node#> | PARSE <query> |\n"
    "SLOWLOG GET [n]|LEN|RESET | TRACE LAST [n]|EXPORT [id] | CLIENTS |\n"
    "STATEMENTS TOP [n]|BY-FINGERPRINT <fp>|RESET | PROFILE CPU|WALL [ms] |\n"
    "CHECKPOINT | UNDO | SHOW | RESET | HELP";

StatusOr<int> ParseInt(std::string_view token) {
  int value = 0;
  auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) {
    return Status::InvalidArgument("expected integer, got '" +
                                   std::string(token) + "'");
  }
  return value;
}

StatusOr<double> ParseDouble(std::string_view token) {
  // std::from_chars for double is not universally available; strtod via
  // a bounded copy keeps this dependency-free. The protocol grammar is
  // deliberately stricter than strtod's: hex floats are rejected, and so
  // are the non-finite spellings (nan/inf) — a NaN coordinate makes every
  // x/y comparison false, which silently scrambles ChildrenLeftToRight
  // and with it the child order of every order-sensitive query.
  std::string copy(token);
  if (copy.find('x') != std::string::npos ||
      copy.find('X') != std::string::npos) {
    return Status::InvalidArgument("expected decimal number, got '" + copy +
                                   "'");
  }
  char* end = nullptr;
  double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    return Status::InvalidArgument("expected number, got '" + copy + "'");
  }
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("number must be finite, got '" + copy +
                                   "'");
  }
  return value;
}

// The raw remainder of `line` after its first `n` space-separated tokens,
// with exactly one separator space consumed. Whitespace inside the
// remainder is preserved byte-for-byte — tokenizing with SplitSkipEmpty
// and re-joining would collapse runs of spaces, making predicates like
// `a  b` inexpressible (and unmatchable) over the protocol.
std::string_view RawTail(std::string_view line, size_t n) {
  size_t pos = 0;
  // Leading whitespace is insignificant, mirroring TrimAscii + split.
  while (pos < line.size() && IsXmlWhitespace(line[pos])) ++pos;
  for (size_t token = 0; token < n; ++token) {
    while (pos < line.size() && line[pos] != ' ') ++pos;
    if (token + 1 < n) {
      while (pos < line.size() && line[pos] == ' ') ++pos;
    }
  }
  if (pos < line.size() && line[pos] == ' ') ++pos;  // the one separator
  return line.substr(pos);
}

StatusOr<twig::Axis> ParseAxis(std::string_view token) {
  if (token == "/") return twig::Axis::kChild;
  if (token == "//") return twig::Axis::kDescendant;
  return Status::InvalidArgument("axis must be '/' or '//'");
}

std::string RenderCandidates(
    const std::vector<autocomplete::Candidate>& candidates) {
  if (candidates.empty()) return "(no candidates)";
  std::ostringstream out;
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (i > 0) out << "\n";
    out << (i + 1) << ". " << candidates[i].text << " ("
        << candidates[i].frequency << ")";
  }
  return out.str();
}

}  // namespace

StatusOr<std::string> ProtocolInterpreter::Execute(std::string_view line) {
  LOTUSX_ASSIGN_OR_RETURN(std::string response, ExecuteCommand(line));
  // Framing normalization at the single exit point: a response payload
  // never carries a trailing newline (interior newlines separate the
  // lines of multi-line payloads). The transport owns termination — the
  // REPL appends one "\n", the TCP server wraps payloads in OK/ERR
  // frames — so pipelined responses frame deterministically regardless
  // of which verb produced them.
  while (!response.empty() && response.back() == '\n') response.pop_back();
  return response;
}

StatusOr<std::string> ProtocolInterpreter::ExecuteCommand(
    std::string_view line) {
  std::vector<std::string> tokens;
  for (std::string& piece : SplitSkipEmpty(std::string(TrimAscii(line)), ' ')) {
    tokens.push_back(std::move(piece));
  }
  if (tokens.empty()) return std::string();
  std::string verb = ToLowerAscii(tokens[0]);
  Canvas& canvas = session_->canvas();

  auto rest_text = [&](size_t from) {
    std::string text;
    for (size_t i = from; i < tokens.size(); ++i) {
      if (i > from) text += ' ';
      text += tokens[i];
    }
    return text;
  };

  if (verb == "help") return std::string(kHelp);

  if (verb == "add") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return Status::InvalidArgument("usage: ADD <x> <y> [tag]");
    }
    LOTUSX_ASSIGN_OR_RETURN(double x, ParseDouble(tokens[1]));
    LOTUSX_ASSIGN_OR_RETURN(double y, ParseDouble(tokens[2]));
    CanvasNodeId id =
        canvas.AddNode(x, y, tokens.size() == 4 ? tokens[3] : "");
    return "node " + std::to_string(id);
  }

  if (verb == "tag") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: TAG <id> <tag>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    LOTUSX_RETURN_IF_ERROR(canvas.SetTag(id, tokens[2]));
    return std::string("ok");
  }

  if (verb == "edge") {
    if (tokens.size() != 4) {
      return Status::InvalidArgument("usage: EDGE <from> <to> </|//>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int from, ParseInt(tokens[1]));
    LOTUSX_ASSIGN_OR_RETURN(int to, ParseInt(tokens[2]));
    LOTUSX_ASSIGN_OR_RETURN(twig::Axis axis, ParseAxis(tokens[3]));
    LOTUSX_RETURN_IF_ERROR(canvas.Connect(from, to, axis));
    return std::string("ok");
  }

  if (verb == "type") {
    if (tokens.size() < 3 || tokens.size() > 4) {
      return Status::InvalidArgument("usage: TYPE <anchor> </|//> [prefix]");
    }
    LOTUSX_ASSIGN_OR_RETURN(int anchor, ParseInt(tokens[1]));
    LOTUSX_ASSIGN_OR_RETURN(twig::Axis axis, ParseAxis(tokens[2]));
    std::string prefix = tokens.size() == 4 ? tokens[3] : "";
    LOTUSX_ASSIGN_OR_RETURN(std::vector<autocomplete::Candidate> candidates,
                            session_->SuggestTags(anchor, axis, prefix));
    last_type_ = TypeContext{anchor, axis, candidates};
    return RenderCandidates(candidates);
  }

  if (verb == "accept") {
    if (tokens.size() != 2 && tokens.size() != 4) {
      return Status::InvalidArgument("usage: ACCEPT <n> [x y]");
    }
    if (!last_type_.has_value()) {
      return Status::FailedPrecondition("no TYPE suggestions to accept");
    }
    LOTUSX_ASSIGN_OR_RETURN(int n, ParseInt(tokens[1]));
    if (n < 1 || static_cast<size_t>(n) > last_type_->candidates.size()) {
      return Status::OutOfRange(
          "candidate " + std::to_string(n) + " of " +
          std::to_string(last_type_->candidates.size()));
    }
    double x = 0;
    double y = 0;
    if (tokens.size() == 4) {
      LOTUSX_ASSIGN_OR_RETURN(x, ParseDouble(tokens[2]));
      LOTUSX_ASSIGN_OR_RETURN(y, ParseDouble(tokens[3]));
    } else if (last_type_->anchor != 0) {
      // Auto-placement: below the anchor, offset by its child count.
      const CanvasNode* anchor = canvas.FindNode(last_type_->anchor);
      if (anchor != nullptr) {
        x = anchor->x +
            130.0 * static_cast<double>(
                        canvas.ChildrenLeftToRight(anchor->id).size());
        y = anchor->y + 130.0;
      }
    }
    // Copy out of the context before reset() destroys it.
    std::string tag = last_type_->candidates[static_cast<size_t>(n - 1)].text;
    CanvasNodeId anchor = last_type_->anchor;
    twig::Axis axis = last_type_->axis;
    last_type_.reset();  // one acceptance per TYPE
    CanvasNodeId id = canvas.AddNode(x, y, tag);
    if (anchor != 0) {
      LOTUSX_RETURN_IF_ERROR(canvas.Connect(anchor, id, axis));
    }
    return "node " + std::to_string(id) + " (" + tag + ")";
  }

  if (verb == "typeval") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      return Status::InvalidArgument("usage: TYPEVAL <id> [prefix]");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    std::string prefix = tokens.size() == 3 ? tokens[2] : "";
    LOTUSX_ASSIGN_OR_RETURN(std::vector<autocomplete::Candidate> candidates,
                            session_->SuggestValues(id, prefix));
    return RenderCandidates(candidates);
  }

  if (verb == "value") {
    if (tokens.size() < 3) {
      return Status::InvalidArgument(
          "usage: VALUE <id> =|~ <text> | VALUE <id> NONE");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    if (ToLowerAscii(tokens[2]) == "none") {
      LOTUSX_RETURN_IF_ERROR(canvas.SetPredicate(id, twig::ValuePredicate{}));
      return std::string("ok");
    }
    twig::ValuePredicate predicate;
    if (tokens[2] == "=") {
      predicate.op = twig::ValuePredicate::Op::kEquals;
    } else if (tokens[2] == "~") {
      predicate.op = twig::ValuePredicate::Op::kContains;
    } else {
      return Status::InvalidArgument("value operator must be '=' or '~'");
    }
    // Parse the predicate from the raw line, not the token list: predicate
    // text is matched verbatim against document values, so consecutive /
    // leading / trailing spaces must survive the round trip.
    predicate.text = std::string(RawTail(line, 3));
    if (predicate.text.empty()) {
      return Status::InvalidArgument("missing predicate text");
    }
    LOTUSX_RETURN_IF_ERROR(canvas.SetPredicate(id, std::move(predicate)));
    return std::string("ok");
  }

  if (verb == "ordered") {
    if (tokens.size() != 3) {
      return Status::InvalidArgument("usage: ORDERED <id> ON|OFF");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    std::string mode = ToLowerAscii(tokens[2]);
    if (mode != "on" && mode != "off") {
      return Status::InvalidArgument("expected ON or OFF");
    }
    LOTUSX_RETURN_IF_ERROR(canvas.SetOrdered(id, mode == "on"));
    return std::string("ok");
  }

  if (verb == "output") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: OUTPUT <id>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    LOTUSX_RETURN_IF_ERROR(canvas.SetOutput(id));
    return std::string("ok");
  }

  if (verb == "move") {
    if (tokens.size() != 4) {
      return Status::InvalidArgument("usage: MOVE <id> <x> <y>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    LOTUSX_ASSIGN_OR_RETURN(double x, ParseDouble(tokens[2]));
    LOTUSX_ASSIGN_OR_RETURN(double y, ParseDouble(tokens[3]));
    LOTUSX_RETURN_IF_ERROR(canvas.MoveNode(id, x, y));
    return std::string("ok");
  }

  if (verb == "remove") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: REMOVE <id>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int id, ParseInt(tokens[1]));
    LOTUSX_RETURN_IF_ERROR(canvas.RemoveNode(id));
    return std::string("ok");
  }

  if (verb == "example") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: EXAMPLE <node#>");
    }
    LOTUSX_ASSIGN_OR_RETURN(int node, ParseInt(tokens[1]));
    LOTUSX_ASSIGN_OR_RETURN(
        twig::TwigQuery query,
        twig::QueryFromExample(session_->indexed(),
                               static_cast<xml::NodeId>(node)));
    // Destructive replacement: checkpoint only once the new canvas is
    // certain, so UNDO restores the drawing a stray EXAMPLE wiped out
    // (and a failed command leaves the history stack untouched).
    session_->Checkpoint();
    canvas = CanvasFromQuery(query);
    return "canvas loaded from node#" + std::to_string(node) + ": " +
           query.ToString();
  }

  if (verb == "parse") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("usage: PARSE <query>");
    }
    LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query,
                            twig::ParseQuery(rest_text(1)));
    // Checkpoint before replacing (see EXAMPLE): PARSE must be undoable.
    session_->Checkpoint();
    canvas = CanvasFromQuery(query);
    return "canvas loaded: " + query.ToString();
  }

  if (verb == "savecanvas") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: SAVECANVAS <file>");
    }
    LOTUSX_RETURN_IF_ERROR(SaveCanvasToFile(canvas, tokens[1]));
    return "saved " + tokens[1];
  }

  if (verb == "loadcanvas") {
    if (tokens.size() != 2) {
      return Status::InvalidArgument("usage: LOADCANVAS <file>");
    }
    LOTUSX_ASSIGN_OR_RETURN(Canvas loaded, LoadCanvasFromFile(tokens[1]));
    // Checkpoint before replacing (see EXAMPLE): LOADCANVAS must be
    // undoable.
    session_->Checkpoint();
    canvas = std::move(loaded);
    return std::string("ok");
  }

  if (verb == "history") {
    std::string prefix = tokens.size() >= 2 ? tokens[1] : "";
    std::vector<std::string> queries = session_->QueryHistory(prefix);
    if (queries.empty()) return std::string("(no history)");
    std::ostringstream out;
    for (size_t i = 0; i < queries.size(); ++i) {
      if (i > 0) out << "\n";
      out << (i + 1) << ". " << queries[i];
    }
    return out.str();
  }

  if (verb == "stats") {
    // STATS DOC renders document statistics; bare STATS dumps the
    // process-wide metrics registry (Prometheus text exposition).
    if (tokens.size() >= 2 && ToLowerAscii(tokens[1]) == "doc") {
      return index::RenderDocumentStats(
          index::ComputeDocumentStats(session_->indexed()));
    }
    if (tokens.size() >= 2) {
      return Status::InvalidArgument("usage: STATS [DOC]");
    }
    metrics::UpdateProcessMetrics();
    return metrics::Registry::Default().RenderText();
  }

  if (verb == "slowlog") {
    // Redis-style slow-query history over the bounded ring fed by
    // request root traces (see common/trace_store.h).
    const std::string sub =
        tokens.size() >= 2 ? ToLowerAscii(tokens[1]) : "get";
    if (sub == "get" && tokens.size() <= 3) {
      size_t count = 10;
      if (tokens.size() == 3) {
        LOTUSX_ASSIGN_OR_RETURN(int parsed, ParseInt(tokens[2]));
        if (parsed < 0) {
          return Status::InvalidArgument("count must be >= 0");
        }
        count = static_cast<size_t>(parsed);
      }
      return trace::RenderSlowLogText(trace::SlowLog::Default().Last(count));
    }
    if (sub == "len" && tokens.size() == 2) {
      return std::to_string(trace::SlowLog::Default().Len());
    }
    if (sub == "reset" && tokens.size() == 2) {
      trace::SlowLog::Default().Reset();
      return std::string("ok");
    }
    return Status::InvalidArgument("usage: SLOWLOG GET [n] | LEN | RESET");
  }

  if (verb == "trace") {
    if (tokens.size() >= 2) {
      const std::string sub = ToLowerAscii(tokens[1]);
      if (sub == "last" && tokens.size() <= 3) {
        size_t count = 5;
        if (tokens.size() == 3) {
          LOTUSX_ASSIGN_OR_RETURN(int parsed, ParseInt(tokens[2]));
          if (parsed <= 0) {
            return Status::InvalidArgument("count must be > 0");
          }
          count = static_cast<size_t>(parsed);
        }
        return trace::RenderTraceText(trace::TraceStore::Default().Last(count));
      }
      if (sub == "export" && tokens.size() <= 3) {
        // Chrome trace-event JSON (open in Perfetto / chrome://tracing):
        // one retained trace by ID, or the whole ring without one.
        if (tokens.size() == 3) {
          const uint64_t trace_id = trace::ParseTraceId(tokens[2]);
          if (trace_id == 0) {
            return Status::InvalidArgument("bad trace id '" + tokens[2] + "'");
          }
          std::optional<trace::CompletedTrace> found =
              trace::TraceStore::Default().Find(trace_id);
          if (!found.has_value()) {
            return Status::NotFound("trace " + tokens[2] +
                                    " not retained (sampled out or evicted)");
          }
          return trace::ChromeTraceJson({*std::move(found)});
        }
        trace::TraceStore& store = trace::TraceStore::Default();
        return trace::ChromeTraceJson(store.Last(store.Len()));
      }
    }
    return Status::InvalidArgument(
        "usage: TRACE LAST [n] | TRACE EXPORT [id]");
  }

  if (verb == "clients") {
    if (tokens.size() != 1) return Status::InvalidArgument("usage: CLIENTS");
    return RenderClientsText(ClientRegistry::Default().Snapshot());
  }

  if (verb == "statements") {
    // pg_stat_statements over the wire: per-query-shape aggregates from
    // the statement store (common/statement_store.h), keyed by the
    // fingerprints SLOWLOG and CLIENTS also carry.
    const std::string sub =
        tokens.size() >= 2 ? ToLowerAscii(tokens[1]) : "top";
    if (sub == "top" && tokens.size() <= 3) {
      size_t count = 10;
      if (tokens.size() == 3) {
        LOTUSX_ASSIGN_OR_RETURN(int parsed, ParseInt(tokens[2]));
        if (parsed <= 0) return Status::InvalidArgument("count must be > 0");
        count = static_cast<size_t>(parsed);
      }
      return stmt::RenderStatementsText(
          stmt::StatementStore::Default().Top(count));
    }
    if (sub == "by-fingerprint" && tokens.size() == 3) {
      const uint64_t fingerprint = twig::ParseFingerprint(tokens[2]);
      if (fingerprint == 0) {
        return Status::InvalidArgument("bad fingerprint '" + tokens[2] + "'");
      }
      std::optional<stmt::StatementSnapshot> found =
          stmt::StatementStore::Default().Find(fingerprint);
      if (!found.has_value()) {
        return Status::NotFound("statement " + tokens[2] +
                                " not tracked (never seen or evicted)");
      }
      return stmt::RenderStatementsText({*std::move(found)});
    }
    if (sub == "reset" && tokens.size() == 2) {
      stmt::StatementStore::Default().Reset();
      return std::string("ok");
    }
    return Status::InvalidArgument(
        "usage: STATEMENTS TOP [n] | BY-FINGERPRINT <fp> | RESET");
  }

  if (verb == "profile") {
    // On-demand sampling profile, rendered as collapsed stacks
    // (flamegraph.pl input). Blocks this command's worker for the
    // window; the server keeps serving on its other workers.
    if (tokens.size() < 2 || tokens.size() > 3) {
      return Status::InvalidArgument("usage: PROFILE CPU|WALL [ms]");
    }
    const std::string sub = ToLowerAscii(tokens[1]);
    prof::Mode mode;
    if (sub == "cpu") {
      mode = prof::Mode::kCpu;
    } else if (sub == "wall") {
      mode = prof::Mode::kWall;
    } else {
      return Status::InvalidArgument("usage: PROFILE CPU|WALL [ms]");
    }
    double duration_ms = 200;
    if (tokens.size() == 3) {
      LOTUSX_ASSIGN_OR_RETURN(int parsed, ParseInt(tokens[2]));
      if (parsed <= 0) return Status::InvalidArgument("ms must be > 0");
      duration_ms = parsed;
    }
    LOTUSX_ASSIGN_OR_RETURN(prof::ProfileResult result,
                            prof::Collect(mode, duration_ms));
    if (result.collapsed.empty()) {
      return std::string("(no samples: process idle during window)");
    }
    return prof::RenderCollapsed(result);
  }

  if (verb == "find") {
    if (tokens.size() < 2) {
      return Status::InvalidArgument("usage: FIND <keywords>");
    }
    LOTUSX_ASSIGN_OR_RETURN(std::vector<keyword::KeywordHit> hits,
                            session_->FindKeywords(rest_text(1)));
    if (hits.empty()) return std::string("(no results)");
    std::ostringstream out;
    for (size_t i = 0; i < hits.size() && i < 10; ++i) {
      out << (i + 1) << ". node#" << hits[i].node << " score="
          << hits[i].score << "\n";
    }
    return out.str();
  }

  if (verb == "explain") {
    return session_->ExplainCanvas();
  }

  if (verb == "xpath") {
    return session_->CanvasToXPath();
  }

  if (verb == "xquery") {
    return session_->CanvasToXQuery();
  }

  if (verb == "svg") {
    std::string svg = RenderCanvasSvg(canvas);
    if (tokens.size() >= 2) {
      LOTUSX_RETURN_IF_ERROR(WriteStringToFile(tokens[1], svg));
      return "wrote " + tokens[1] + " (" + std::to_string(svg.size()) +
             " bytes)";
    }
    return svg;
  }

  if (verb == "query") {
    LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query, canvas.Compile());
    return query.ToString();
  }

  if (verb == "run") {
    LOTUSX_ASSIGN_OR_RETURN(SearchResponse response, session_->Run());
    std::ostringstream out;
    out << "query: " << response.executed_query.ToString() << "\n";
    if (!response.rewrites_applied.empty()) {
      out << "rewritten (penalty " << response.rewrite_penalty << "):";
      for (const std::string& step : response.rewrites_applied) {
        out << " [" << step << "]";
      }
      out << "\n";
    }
    out << "algorithm: " << response.stats.algorithm << ", matches: "
        << response.stats.matches << "\n";
    size_t shown = 0;
    for (const ranking::RankedResult& result : response.results) {
      if (shown++ >= 10) break;
      out << shown << ". score=" << result.score << " ";
      // One-line snippet of the output element.
      // (Session holds the index privately; render via the query result's
      //  node id only — the REPL example prints full XML itself.)
      out << "node#" << result.output << "\n";
    }
    if (response.results.empty()) out << "(no results)\n";
    return out.str();
  }

  if (verb == "checkpoint") {
    session_->Checkpoint();
    return "ok (depth " + std::to_string(session_->undo_depth()) + ")";
  }

  if (verb == "undo") {
    LOTUSX_RETURN_IF_ERROR(session_->Undo());
    return std::string("ok");
  }

  if (verb == "show") {
    std::ostringstream out;
    for (const CanvasNode& node : canvas.nodes()) {
      out << "box " << node.id << " (" << node.x << "," << node.y << ") tag='"
          << node.tag << "'";
      if (node.predicate.op == twig::ValuePredicate::Op::kEquals) {
        out << " =\"" << node.predicate.text << "\"";
      } else if (node.predicate.op == twig::ValuePredicate::Op::kContains) {
        out << " ~\"" << node.predicate.text << "\"";
      }
      if (node.ordered) out << " [ordered]";
      if (node.output) out << " [output]";
      out << "\n";
    }
    for (const CanvasEdge& edge : canvas.edges()) {
      out << "edge " << edge.from
          << (edge.axis == twig::Axis::kChild ? " / " : " // ") << edge.to
          << "\n";
    }
    if (canvas.empty()) out << "(empty canvas)\n";
    return out.str();
  }

  if (verb == "reset") {
    canvas.Reset();
    return std::string("ok");
  }

  return Status::InvalidArgument("unknown command '" + tokens[0] +
                                 "'; try HELP");
}

}  // namespace lotusx::session
