#ifndef LOTUSX_SESSION_CANVAS_H_
#define LOTUSX_SESSION_CANVAS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status_or.h"
#include "twig/twig_query.h"

namespace lotusx::session {

/// Identifier of a node on the canvas (user-visible, stable across edits;
/// unrelated to twig::QueryNodeId).
using CanvasNodeId = int;

/// One box the user placed on the drawing area.
struct CanvasNode {
  CanvasNodeId id = 0;
  double x = 0;
  double y = 0;
  /// Tag text typed so far; may be empty while the user is still typing.
  std::string tag;
  twig::ValuePredicate predicate;
  bool ordered = false;
  bool output = false;
};

/// Directed edge drawn between two boxes ('single line' = child axis,
/// 'double line' = descendant axis, per the LotusX UI convention).
struct CanvasEdge {
  CanvasNodeId from = 0;
  CanvasNodeId to = 0;
  twig::Axis axis = twig::Axis::kChild;
};

/// In-memory model of LotusX's graphical query canvas — the data half of
/// the paper's GUI (see DESIGN.md "Substitutions"). The user creates
/// boxes, types tags (with auto-completion), connects boxes with
/// single/double edges, toggles order-sensitivity and picks the output
/// box; Compile() turns the drawing into a TwigQuery.
class Canvas {
 public:
  Canvas() = default;

  /// Adds a box at (x, y); `tag` may be empty while still typing.
  CanvasNodeId AddNode(double x, double y, std::string_view tag = "");

  /// Adds a box with a caller-chosen id (canvas restore); rejects ids
  /// that are non-positive or already taken.
  Status AddNodeWithId(CanvasNodeId id, double x, double y,
                       std::string_view tag = "");

  /// Removes a box and every edge touching it.
  Status RemoveNode(CanvasNodeId id);

  Status MoveNode(CanvasNodeId id, double x, double y);
  Status SetTag(CanvasNodeId id, std::string_view tag);
  Status SetPredicate(CanvasNodeId id, twig::ValuePredicate predicate);
  Status SetOrdered(CanvasNodeId id, bool ordered);
  /// Marks `id` as the output box (clears any previous mark).
  Status SetOutput(CanvasNodeId id);

  /// Connects `from` (parent) to `to` (child). Rejects self-loops,
  /// duplicate edges into the same child, and cycles.
  Status Connect(CanvasNodeId from, CanvasNodeId to, twig::Axis axis);
  Status Disconnect(CanvasNodeId from, CanvasNodeId to);

  const std::vector<CanvasNode>& nodes() const { return nodes_; }
  const std::vector<CanvasEdge>& edges() const { return edges_; }
  bool empty() const { return nodes_.empty(); }
  const CanvasNode* FindNode(CanvasNodeId id) const;

  /// Children of `id` ordered left-to-right by x coordinate — the spatial
  /// layout determines query child order, which is what makes
  /// order-sensitive queries drawable.
  std::vector<CanvasNodeId> ChildrenLeftToRight(CanvasNodeId id) const;

  /// Compiles the drawing into a twig query. Requirements: non-empty,
  /// exactly one root (box with no incoming edge), all boxes connected,
  /// every box tagged. Returns the query plus the mapping canvas id ->
  /// query node id via `mapping` (optional).
  StatusOr<twig::TwigQuery> Compile(
      std::map<CanvasNodeId, twig::QueryNodeId>* mapping = nullptr) const;

  /// Clears everything.
  void Reset();

 private:
  CanvasNode* MutableNode(CanvasNodeId id);

  std::vector<CanvasNode> nodes_;
  std::vector<CanvasEdge> edges_;
  CanvasNodeId next_id_ = 1;
};

}  // namespace lotusx::session

#endif  // LOTUSX_SESSION_CANVAS_H_
