#include "session/session.h"

#include "common/metrics.h"
#include "common/statement_store.h"
#include "common/timer.h"
#include "common/trace.h"
#include "twig/evaluator.h"
#include "twig/fingerprint.h"
#include "twig/plan/physical_plan.h"
#include "twig/query_export.h"
#include "twig/selectivity.h"

namespace lotusx::session {

Session::Session(const index::IndexedDocument& indexed,
                 SessionOptions options)
    : indexed_(indexed),
      options_(std::move(options)),
      completion_(indexed),
      ranker_(indexed),
      rewriter_(indexed) {}

StatusOr<std::vector<autocomplete::Candidate>> Session::SuggestTags(
    CanvasNodeId anchor, twig::Axis axis, std::string_view prefix) const {
  autocomplete::TagRequest request;
  request.axis = axis;
  request.prefix = std::string(prefix);
  request.limit = options_.completion_limit;

  if (canvas_.empty() || anchor == 0) {
    return completion_.CompleteTag(twig::TwigQuery(), request);
  }
  if (canvas_.FindNode(anchor) == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(anchor));
  }
  std::map<CanvasNodeId, twig::QueryNodeId> mapping;
  StatusOr<twig::TwigQuery> compiled = canvas_.Compile(&mapping);
  if (!compiled.ok()) {
    // Canvas not yet compilable (e.g., another box is still untagged):
    // degrade to global completion rather than blocking the user.
    request.position_aware = false;
    return completion_.CompleteTag(twig::TwigQuery(), request);
  }
  request.anchor = mapping.at(anchor);
  return completion_.CompleteTag(*compiled, request);
}

StatusOr<std::vector<autocomplete::Candidate>> Session::SuggestValues(
    CanvasNodeId id, std::string_view prefix) const {
  if (canvas_.FindNode(id) == nullptr) {
    return Status::NotFound("no canvas node " + std::to_string(id));
  }
  std::map<CanvasNodeId, twig::QueryNodeId> mapping;
  StatusOr<twig::TwigQuery> compiled = canvas_.Compile(&mapping);
  if (!compiled.ok()) {
    // Global term completion as the fallback.
    twig::TwigQuery any;
    any.AddRoot("*");
    return completion_.CompleteValue(any, 0, prefix,
                                     options_.completion_limit,
                                     /*position_aware=*/false);
  }
  return completion_.CompleteValue(*compiled, mapping.at(id), prefix,
                                   options_.completion_limit,
                                   /*position_aware=*/true);
}

StatusOr<SearchResponse> Session::Run() const {
  // One trace per canvas run: planner/executor stage spans inside
  // Evaluate attach to it automatically (see common/trace.h).
  trace::QueryTrace query_trace("session");
  StatusOr<twig::TwigQuery> compiled = [&] {
    trace::StageSpan span(trace::Stage::kParse);
    return canvas_.Compile();
  }();
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query, std::move(compiled));
  query_trace.set_query(query.ToString());

  // Feed the statement store: canvas runs are the serving path (the TCP
  // server's RUN lands here, not in Engine::Search), so the workload
  // view must aggregate them too. Fingerprint the *requested* query —
  // a rewrite is an execution detail of the same statement.
  const bool record_statement = metrics::Enabled() && stmt::Enabled();
  uint64_t fingerprint = 0;
  std::string normalized_query;
  Timer statement_timer;
  if (record_statement) {
    fingerprint = twig::FingerprintQuery(query, {}).value;
    normalized_query = twig::NormalizedQueryText(query);
    query_trace.set_fingerprint(fingerprint);
  }
  const auto record_execution = [&](bool error, const twig::EvalStats* stats,
                                    uint64_t rows) {
    if (!record_statement) return;
    stmt::ExecutionRecord record;
    record.fingerprint = fingerprint;
    record.query_text = normalized_query;
    record.error = error;
    record.latency_usec = statement_timer.ElapsedMicros();
    record.rows = rows;
    if (stats != nullptr) {
      record.algorithm = stats->algorithm;
      record.blocks_decoded = stats->posting_blocks_decoded;
      record.blocks_skipped = stats->posting_blocks_skipped;
      record.bytes_decoded = stats->posting_bytes_decoded;
      record.estimated_rows = stats->estimated_matches;
      record.actual_rows = stats->matches;
    }
    stmt::StatementStore::Default().Record(record);
  };

  SearchResponse response;
  StatusOr<twig::QueryResult> evaluated = twig::Evaluate(indexed_, query);
  if (!evaluated.ok()) {
    record_execution(true, nullptr, 0);
    return evaluated.status();
  }
  twig::QueryResult result = *std::move(evaluated);
  response.executed_query = query;
  if (result.matches.empty() && options_.rewrite_on_empty) {
    trace::StageSpan span(trace::Stage::kRewrite);
    StatusOr<rewrite::RewriteOutcome> rewritten =
        rewriter_.Rewrite(query, options_.rewrite);
    if (rewritten.ok()) {
      response.executed_query = rewritten->query;
      response.rewrites_applied = rewritten->applied;
      response.rewrite_penalty = rewritten->penalty;
      result = std::move(rewritten->result);
    }
    // A failed rewrite search simply leaves the empty original result.
  }
  executed_queries_.Insert(response.executed_query.ToString());
  response.stats = result.stats;
  query_trace.set_detail(std::string(result.stats.algorithm));
  ranking::RankingOptions ranking_options = options_.ranking;
  if (ranking_options.top_k == 0) ranking_options.top_k = options_.top_k;
  {
    trace::StageSpan span(trace::Stage::kRank);
    response.results = ranker_.Rank(response.executed_query, result.matches,
                                    ranking_options);
  }
  record_execution(false, &response.stats, response.results.size());
  return response;
}

StatusOr<std::vector<keyword::KeywordHit>> Session::FindKeywords(
    std::string_view keywords) const {
  keyword::KeywordSearchOptions options;
  options.limit = options_.top_k;
  return keyword::SlcaSearch(indexed_, keywords, options);
}

StatusOr<std::string> Session::ExplainCanvas() const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query, canvas_.Compile());
  // Plan-based EXPLAIN: runs the query and renders the operator tree with
  // estimated vs actual per-operator cardinalities.
  return twig::plan::ExplainQuery(indexed_, query);
}

StatusOr<std::string> Session::CanvasToXPath() const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query, canvas_.Compile());
  return twig::ToXPath(query);
}

StatusOr<std::string> Session::CanvasToXQuery() const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query, canvas_.Compile());
  return twig::ToXQuery(query);
}

std::vector<std::string> Session::QueryHistory(std::string_view prefix,
                                               size_t limit) const {
  std::vector<std::string> queries;
  for (const index::Completion& completion :
       executed_queries_.Complete(prefix, limit)) {
    queries.push_back(completion.key);
  }
  return queries;
}

void Session::Checkpoint() { history_.push_back(canvas_); }

Status Session::Undo() {
  if (history_.empty()) {
    return Status::FailedPrecondition("nothing to undo");
  }
  canvas_ = std::move(history_.back());
  history_.pop_back();
  return Status::OK();
}

}  // namespace lotusx::session
