#ifndef LOTUSX_SESSION_SVG_EXPORT_H_
#define LOTUSX_SESSION_SVG_EXPORT_H_

#include <string>

#include "session/canvas.h"

namespace lotusx::session {

struct SvgOptions {
  double box_width = 120;
  double box_height = 44;
  /// Canvas coordinates are scaled by this factor.
  double scale = 1.0;
  double margin = 24;
};

/// Renders the canvas as a standalone SVG image — boxes with tag text and
/// predicate summaries, single lines for child edges, double lines for
/// descendant edges, a ring for the output box and an "ordered" badge —
/// the same visual vocabulary as the LotusX demo UI. The output is
/// well-formed XML (round-trips through this library's own parser,
/// tested).
std::string RenderCanvasSvg(const Canvas& canvas,
                            const SvgOptions& options = {});

}  // namespace lotusx::session

#endif  // LOTUSX_SESSION_SVG_EXPORT_H_
