#ifndef LOTUSX_SESSION_SESSION_H_
#define LOTUSX_SESSION_SESSION_H_

#include <string>
#include <vector>

#include "autocomplete/completion.h"
#include "common/status_or.h"
#include "index/indexed_document.h"
#include "keyword/keyword_search.h"
#include "ranking/ranker.h"
#include "rewrite/rewriter.h"
#include "index/trie.h"
#include "session/canvas.h"

namespace lotusx::session {

/// What Run() hands back to the UI: ranked answers plus provenance (which
/// query actually ran — the drawn one or a rewrite — and the engine
/// statistics).
struct SearchResponse {
  twig::TwigQuery executed_query;
  std::vector<ranking::RankedResult> results;
  twig::EvalStats stats;
  /// Non-empty when the rewriter had to step in.
  std::vector<std::string> rewrites_applied;
  double rewrite_penalty = 0;
};

struct SessionOptions {
  size_t completion_limit = 10;
  size_t top_k = 20;
  /// Fall back to query rewriting when the drawn query has no answers.
  bool rewrite_on_empty = true;
  rewrite::RewriteOptions rewrite;
  ranking::RankingOptions ranking;
};

/// One interactive LotusX session: a canvas being edited against an
/// indexed document, with position-aware completion at every step, and
/// execute/rank/rewrite behind Run(). This is the programmatic equivalent
/// of the demo's browser session; the REPL example drives it over a text
/// protocol.
class Session {
 public:
  Session(const index::IndexedDocument& indexed,
          SessionOptions options = {});

  Canvas& canvas() { return canvas_; }
  const Canvas& canvas() const { return canvas_; }
  const SessionOptions& options() const { return options_; }
  const index::IndexedDocument& indexed() const { return indexed_; }

  /// Tag suggestions for a new box connected under `anchor` with `axis`
  /// given the typed `prefix`. anchor == 0 (no box selected) suggests
  /// query-root tags. The current canvas must compile *ignoring* empty
  /// boxes for position context; boxes other than the anchor that are
  /// still untagged make the context unavailable and fall back to global
  /// suggestions.
  StatusOr<std::vector<autocomplete::Candidate>> SuggestTags(
      CanvasNodeId anchor, twig::Axis axis, std::string_view prefix) const;

  /// Value-keyword suggestions for the value editor of box `id`.
  StatusOr<std::vector<autocomplete::Candidate>> SuggestValues(
      CanvasNodeId id, std::string_view prefix) const;

  /// Compiles the canvas, executes, ranks, and (when enabled and the
  /// result set is empty) rewrites.
  StatusOr<SearchResponse> Run() const;

  /// Schema-free SLCA keyword search over the session's document; the
  /// FIND protocol command. Results let the user discover structure
  /// before drawing any box.
  StatusOr<std::vector<keyword::KeywordHit>> FindKeywords(
      std::string_view keywords) const;

  /// EXPLAIN for the compiled canvas query: plans it with the cost-based
  /// planner, executes the plan, and renders the operator tree with
  /// per-operator estimated vs actual cardinalities
  /// (twig/plan/physical_plan.h).
  StatusOr<std::string> ExplainCanvas() const;
  /// W3C XPath / XQuery exports of the compiled canvas query.
  StatusOr<std::string> CanvasToXPath() const;
  StatusOr<std::string> CanvasToXQuery() const;

  /// Previously executed queries matching `prefix`, most frequent first —
  /// the search-box history dropdown.
  std::vector<std::string> QueryHistory(std::string_view prefix,
                                        size_t limit = 5) const;

  /// Snapshot / undo support: the canvas state stack.
  void Checkpoint();
  Status Undo();
  size_t undo_depth() const { return history_.size(); }

 private:
  const index::IndexedDocument& indexed_;
  SessionOptions options_;
  Canvas canvas_;
  autocomplete::CompletionEngine completion_;
  ranking::Ranker ranker_;
  rewrite::Rewriter rewriter_;
  std::vector<Canvas> history_;
  // Run() is logically const; recording executed queries is bookkeeping.
  mutable index::Trie executed_queries_;
};

}  // namespace lotusx::session

#endif  // LOTUSX_SESSION_SESSION_H_
