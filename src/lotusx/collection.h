#ifndef LOTUSX_LOTUSX_COLLECTION_H_
#define LOTUSX_LOTUSX_COLLECTION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "lotusx/engine.h"

namespace lotusx {

/// One hit from a collection-wide search: which document it came from
/// plus the ranked result within it.
struct CollectionHit {
  std::string document_name;
  ranking::RankedResult result;
};

/// Outcome of Collection::Search.
struct CollectionSearchResult {
  std::vector<CollectionHit> hits;  // best first, across all documents
  /// Documents whose evaluation used a rewrite, with the applied steps.
  std::map<std::string, std::vector<std::string>> rewrites;
};

/// A set of named, independently indexed XML documents searched as one
/// corpus — the multi-document deployment the demo site implies (DBLP,
/// XMark, ... selectable in one UI). Scores are comparable across
/// documents because the ranking signals are normalized per document.
class Collection {
 public:
  Collection() = default;

  Collection(Collection&&) noexcept = default;
  Collection& operator=(Collection&&) noexcept = default;
  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  /// Adds a document under `name`. AlreadyExists if the name is taken.
  Status AddXmlText(const std::string& name, std::string_view xml);
  Status AddXmlFile(const std::string& name, const std::string& path);
  Status AddIndexFile(const std::string& name, const std::string& path);
  Status AddEngine(const std::string& name, Engine engine);

  /// Removes a document; NotFound when absent.
  Status Remove(const std::string& name);

  std::vector<std::string> DocumentNames() const;
  size_t size() const { return engines_.size(); }

  /// Engine of one document; NotFound when absent.
  StatusOr<const Engine*> Find(const std::string& name) const;

  /// Evaluates `query_text` over every document, merging ranked results.
  /// `top_k` bounds the merged hit list (0 = unlimited). Documents where
  /// the query's tags do not exist simply contribute nothing.
  StatusOr<CollectionSearchResult> Search(std::string_view query_text,
                                          size_t top_k = 20,
                                          const SearchOptions& options = {}) const;

  /// Tag completion across all documents: candidates merged by summed
  /// frequency. `query` provides position context per document (documents
  /// where the context is unsatisfiable contribute nothing).
  StatusOr<std::vector<autocomplete::Candidate>> CompleteTag(
      const twig::TwigQuery& query,
      const autocomplete::TagRequest& request) const;

 private:
  std::map<std::string, std::unique_ptr<Engine>> engines_;
};

}  // namespace lotusx

#endif  // LOTUSX_LOTUSX_COLLECTION_H_
