#include "lotusx/engine.h"

#include <algorithm>
#include <bit>
#include <latch>
#include <optional>
#include <utility>

#include "common/statement_store.h"
#include "common/timer.h"
#include "common/trace.h"
#include "twig/fingerprint.h"
#include "twig/plan/physical_plan.h"
#include "twig/query_parser.h"
#include "xml/dom_builder.h"
#include "xml/escape.h"
#include "xml/writer.h"

namespace lotusx {

Engine::Engine(index::IndexedDocument indexed)
    : indexed_(std::make_unique<index::IndexedDocument>(std::move(indexed))) {
  completion_ = std::make_unique<autocomplete::CompletionEngine>(*indexed_);
  ranker_ = std::make_unique<ranking::Ranker>(*indexed_);
  rewriter_ = std::make_unique<rewrite::Rewriter>(*indexed_);
}

StatusOr<Engine> Engine::FromXmlText(std::string_view xml) {
  LOTUSX_ASSIGN_OR_RETURN(xml::Document document, xml::ParseDocument(xml));
  return Engine(index::IndexedDocument(std::move(document)));
}

StatusOr<Engine> Engine::FromXmlFile(const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(xml::Document document,
                          xml::ParseDocumentFile(path));
  return Engine(index::IndexedDocument(std::move(document)));
}

StatusOr<Engine> Engine::FromIndexFile(const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(index::IndexedDocument indexed,
                          index::IndexedDocument::LoadFrom(path));
  return Engine(std::move(indexed));
}

Status Engine::SaveIndex(const std::string& path) const {
  return indexed_->SaveTo(path);
}

namespace {

/// Process-wide serving counters bumped by every Search, regardless of
/// which Engine instance served it.
struct SearchCounters {
  metrics::Counter* searches;
  metrics::Counter* errors;
  metrics::Counter* results;
  metrics::Counter* rewrites;
};

const SearchCounters& GetSearchCounters() {
  static const SearchCounters counters = [] {
    metrics::Registry& registry = metrics::Registry::Default();
    return SearchCounters{
        registry.GetCounter("lotusx_search_total"),
        registry.GetCounter("lotusx_search_errors_total"),
        registry.GetCounter("lotusx_search_results_total"),
        registry.GetCounter("lotusx_search_rewrites_total")};
  }();
  return counters;
}

}  // namespace

StatusOr<SearchResult> Engine::Search(std::string_view query_text,
                                      const SearchOptions& options) const {
  // Own the trace here so the parse stage lands in the same per-query
  // breakdown as the evaluation stages recorded by the overload below.
  trace::QueryTrace query_trace("engine");
  if (metrics::Enabled()) query_trace.set_query(std::string(query_text));
  StatusOr<twig::TwigQuery> query = [&] {
    trace::StageSpan span(trace::Stage::kParse);
    return twig::ParseQuery(query_text);
  }();
  if (!query.ok()) {
    GetSearchCounters().searches->Increment();
    GetSearchCounters().errors->Increment();
    return query.status();
  }
  return Search(*query, options);
}

void Engine::EnableResultCache(size_t capacity) {
  cache_ = capacity == 0
               ? nullptr
               : std::make_unique<ShardedLruCache<SearchResult>>(
                     capacity, ShardedLruCache<SearchResult>::kDefaultShards,
                     &metrics::Registry::Default(), "lotusx_cache");
}

namespace {

/// Lossless double rendering for cache keys: the raw IEEE-754 bits in
/// hex. std::to_string keeps only six decimals, which collapses distinct
/// weights (1.0 vs 1.0000001) onto one key and serves the wrong cached
/// ranking.
std::string DoubleKeyBits(double value) {
  char buffer[19];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(std::bit_cast<uint64_t>(value)));
  return buffer;
}

}  // namespace

// If one of these fires, a field was added to an options struct: decide
// whether it can change a SearchResult (answers, ranking, rewrite chain,
// or the recorded EvalStats), include it in SearchCacheKey below if so,
// extend the pinning test in query_cache_test.cc, and update the pinned
// size. Sizes assume the LP64 Itanium ABI every supported target uses.
static_assert(sizeof(twig::EvalOptions) == 8,
              "EvalOptions grew: audit SearchCacheKey");
static_assert(sizeof(ranking::RankingOptions) == 32,
              "RankingOptions grew: audit SearchCacheKey");
static_assert(sizeof(rewrite::RewriteOptions) == 32,
              "RewriteOptions grew: audit SearchCacheKey");
static_assert(sizeof(SearchOptions) ==
                  sizeof(twig::EvalOptions) + sizeof(ranking::RankingOptions) +
                      sizeof(rewrite::RewriteOptions) + 8,
              "SearchOptions grew: audit SearchCacheKey");

std::string SearchCacheKey(const twig::TwigQuery& query,
                           const SearchOptions& options) {
  std::string key = query.ToString();
  key += '|';
  key += std::to_string(static_cast<int>(options.eval.algorithm));
  // Every eval flag participates: apply_order changes answers; the other
  // three change the EvalStats recorded in the cached SearchResult.
  key += options.eval.apply_order ? 'o' : '-';
  key += options.eval.integrate_order ? 'i' : '-';
  key += options.eval.reorder_binary_joins ? 'j' : '-';
  key += options.eval.schema_prune_streams ? 's' : '-';
  key += options.rewrite_on_empty ? 'r' : '-';
  key += '|';
  key += DoubleKeyBits(options.ranking.content_weight) + ',' +
         DoubleKeyBits(options.ranking.structure_weight) + ',' +
         DoubleKeyBits(options.ranking.specificity_weight) + ',' +
         std::to_string(options.ranking.top_k);
  key += '|';
  key += std::to_string(options.rewrite.min_results) + ',' +
         std::to_string(options.rewrite.max_evaluations) + ',' +
         DoubleKeyBits(options.rewrite.max_penalty) + ',';
  key += options.rewrite.relax_axes ? 'a' : '-';
  key += options.rewrite.substitute_tags ? 't' : '-';
  key += options.rewrite.relax_predicates ? 'p' : '-';
  key += options.rewrite.drop_leaves ? 'l' : '-';
  return key;
}

StatusOr<SearchResult> Engine::Search(const twig::TwigQuery& query,
                                      const SearchOptions& options) const {
  // Reuse the trace the text overload (or an embedder) already opened on
  // this thread; open our own otherwise.
  std::optional<trace::QueryTrace> owned_trace;
  if (trace::QueryTrace::Current() == nullptr) owned_trace.emplace("engine");
  trace::QueryTrace* query_trace = trace::QueryTrace::Current();
  const bool instrument = metrics::Enabled();
  if (instrument && owned_trace.has_value()) {
    query_trace->set_query(query.ToString());
  }
  GetSearchCounters().searches->Increment();

  // Statement-store feed: fingerprint the shape up front (also stamped
  // on the trace root, so SLOWLOG/CLIENTS can join back to the row),
  // record exactly once at whichever exit this Search takes. Both the
  // metrics kill switch and the statements kill switch gate the cost.
  const bool record_statement = instrument && stmt::Enabled();
  uint64_t fingerprint = 0;
  std::string normalized_query;
  Timer statement_timer;
  if (record_statement) {
    fingerprint = twig::FingerprintQuery(query, options.eval).value;
    normalized_query = twig::NormalizedQueryText(query);
    query_trace->set_fingerprint(fingerprint);
  }
  const auto record_execution = [&](bool error, bool cache_hit,
                                    const twig::EvalStats* stats,
                                    uint64_t rows) {
    if (!record_statement) return;
    stmt::ExecutionRecord record;
    record.fingerprint = fingerprint;
    record.query_text = normalized_query;
    record.error = error;
    record.cache_hit = cache_hit;
    record.latency_usec = statement_timer.ElapsedMicros();
    record.rows = rows;
    if (stats != nullptr && !cache_hit) {
      // A cached result replays the original execution's stats; the
      // blocks were decoded once, so only the live execution's I/O and
      // plan choice aggregate.
      record.algorithm = stats->algorithm;
      record.blocks_decoded = stats->posting_blocks_decoded;
      record.blocks_skipped = stats->posting_blocks_skipped;
      record.bytes_decoded = stats->posting_bytes_decoded;
      record.estimated_rows = stats->estimated_matches;
      record.actual_rows = stats->matches;
    }
    stmt::StatementStore::Default().Record(record);
  };

  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = SearchCacheKey(query, options);
    if (std::optional<SearchResult> cached = cache_->Lookup(cache_key)) {
      if (instrument) {
        query_trace->set_detail("cache-hit");
        GetSearchCounters().results->Increment(cached->results.size());
      }
      record_execution(false, true, nullptr, cached->results.size());
      return *std::move(cached);
    }
  }
  StatusOr<twig::QueryResult> evaluated =
      twig::Evaluate(*indexed_, query, options.eval);
  if (!evaluated.ok()) {
    GetSearchCounters().errors->Increment();
    record_execution(true, false, nullptr, 0);
    return evaluated.status();
  }
  twig::QueryResult result = *std::move(evaluated);
  SearchResult search;
  search.executed_query = query;
  if (result.matches.empty() && options.rewrite_on_empty) {
    trace::StageSpan span(trace::Stage::kRewrite);
    StatusOr<rewrite::RewriteOutcome> rewritten =
        rewriter_->Rewrite(query, options.rewrite);
    if (rewritten.ok()) {
      search.executed_query = rewritten->query;
      search.rewrites_applied = rewritten->applied;
      search.rewrite_penalty = rewritten->penalty;
      result = std::move(rewritten->result);
      GetSearchCounters().rewrites->Increment();
    }
  }
  search.stats = result.stats;
  {
    trace::StageSpan span(trace::Stage::kRank);
    search.results =
        ranker_->Rank(search.executed_query, result.matches, options.ranking);
  }
  if (instrument) {
    query_trace->set_detail(search.stats.algorithm);
    GetSearchCounters().results->Increment(search.results.size());
  }
  record_execution(false, false, &search.stats, search.results.size());
  if (cache_ != nullptr) cache_->Insert(cache_key, search);
  return search;
}

StatusOr<std::string> Engine::Explain(std::string_view query_text,
                                      const SearchOptions& options) const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query,
                          twig::ParseQuery(query_text));
  return Explain(query, options);
}

StatusOr<std::string> Engine::Explain(const twig::TwigQuery& query,
                                      const SearchOptions& options) const {
  return twig::plan::ExplainQuery(*indexed_, query, options.eval);
}

namespace {

/// Fans `chunk_fn(0..num_chunks)` across `pool` and waits for all chunks;
/// runs them inline on the caller's thread when pool is null (or refuses
/// submissions because it is shutting down).
void RunChunks(ThreadPool* pool, size_t num_chunks,
               const std::function<void(size_t)>& chunk_fn) {
  // Pool workers do not inherit the submitter's thread-local
  // QueryTrace, so capture it at fan-out and adopt it inside every
  // chunk: stage times and spans from worker threads then land in the
  // parent request's breakdown (the batch query's SLOWLOG entry shows
  // join/rank work done on workers). RunChunks joins before returning,
  // so the parent trace outlives every adoption.
  trace::QueryTrace* parent = trace::QueryTrace::Current();
  const auto run_chunk = [&chunk_fn, parent](size_t chunk) {
    trace::QueryTrace::Adoption adopt(parent);
    trace::NamedSpan span("chunk");
    chunk_fn(chunk);
  };
  if (pool == nullptr || num_chunks <= 1) {
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) run_chunk(chunk);
    return;
  }
  std::latch done(static_cast<ptrdiff_t>(num_chunks));
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    const bool submitted = pool->Submit([&run_chunk, &done, chunk] {
      run_chunk(chunk);
      done.count_down();
    });
    if (!submitted) {
      run_chunk(chunk);
      done.count_down();
    }
  }
  done.wait();
}

/// Contiguous [begin, end) of chunk `chunk` when `total` items split into
/// `num_chunks` near-equal pieces.
std::pair<size_t, size_t> ChunkRange(size_t total, size_t num_chunks,
                                     size_t chunk) {
  const size_t begin = total * chunk / num_chunks;
  const size_t end = total * (chunk + 1) / num_chunks;
  return {begin, end};
}

}  // namespace

std::vector<StatusOr<SearchResult>> Engine::SearchBatch(
    const std::vector<std::string>& queries, const SearchOptions& options,
    ThreadPool* pool, std::vector<twig::EvalStats>* per_chunk_stats) const {
  std::vector<StatusOr<SearchResult>> results(queries.size());
  const size_t num_chunks =
      pool == nullptr ? 1 : std::min(pool->num_threads(), queries.size());
  if (metrics::Enabled()) {
    static metrics::Counter* chunks = metrics::Registry::Default().GetCounter(
        "lotusx_batch_chunks_total", {{"kind", "search"}});
    chunks->Increment(std::max<size_t>(num_chunks, 1));
  }
  std::vector<twig::EvalStats> chunk_stats(std::max<size_t>(num_chunks, 1));
  RunChunks(pool, num_chunks, [&](size_t chunk) {
    const auto [begin, end] = ChunkRange(queries.size(), num_chunks, chunk);
    twig::EvalStats& stats = chunk_stats[chunk];
    stats.algorithm = "batch";
    Timer timer;
    for (size_t i = begin; i < end; ++i) {
      results[i] = Search(queries[i], options);
      if (results[i].ok()) {
        const twig::EvalStats& s = results[i]->stats;
        stats.candidates_scanned += s.candidates_scanned;
        stats.intermediate_tuples += s.intermediate_tuples;
        stats.matches += s.matches;
      }
    }
    stats.elapsed_ms = timer.ElapsedMillis();
  });
  if (per_chunk_stats != nullptr) *per_chunk_stats = std::move(chunk_stats);
  return results;
}

std::vector<StatusOr<std::vector<autocomplete::Candidate>>>
Engine::CompleteTagBatch(const std::vector<TagBatchRequest>& requests,
                         ThreadPool* pool) const {
  std::vector<StatusOr<std::vector<autocomplete::Candidate>>> results(
      requests.size());
  const size_t num_chunks =
      pool == nullptr ? 1 : std::min(pool->num_threads(), requests.size());
  if (metrics::Enabled()) {
    static metrics::Counter* chunks = metrics::Registry::Default().GetCounter(
        "lotusx_batch_chunks_total", {{"kind", "complete_tag"}});
    chunks->Increment(std::max<size_t>(num_chunks, 1));
  }
  RunChunks(pool, num_chunks, [&](size_t chunk) {
    const auto [begin, end] = ChunkRange(requests.size(), num_chunks, chunk);
    for (size_t i = begin; i < end; ++i) {
      results[i] = CompleteTag(requests[i].query, requests[i].request);
    }
  });
  return results;
}

std::string Engine::MaterializeResults(const SearchResult& result,
                                        size_t max_results) const {
  trace::StageSpan span(trace::Stage::kSerialize);
  const xml::Document& document = indexed_->document();
  std::string out = "<results query=\"" +
                    xml::EscapeAttribute(result.executed_query.ToString()) +
                    "\">\n";
  size_t count = 0;
  for (const ranking::RankedResult& hit : result.results) {
    if (max_results > 0 && count >= max_results) break;
    ++count;
    char score[32];
    std::snprintf(score, sizeof(score), "%.4f", hit.score);
    out += "  <result rank=\"" + std::to_string(count) + "\" score=\"" +
           score + "\">";
    const xml::Document::Node& node = document.node(hit.output);
    if (node.kind == xml::NodeKind::kElement) {
      out += xml::WriteXml(document, hit.output,
                           xml::WriterOptions{.declaration = false});
    } else {
      // Attribute output: render as an element carrying the value.
      out += "<attribute name=\"" +
             xml::EscapeAttribute(document.TagName(hit.output).substr(1)) +
             "\">" + xml::EscapeText(document.Value(hit.output)) +
             "</attribute>";
    }
    out += "</result>\n";
  }
  out += "</results>\n";
  return out;
}

std::string Engine::Snippet(xml::NodeId node, size_t max_chars) const {
  const xml::Document& document = indexed_->document();
  std::string rendered;
  if (document.node(node).kind == xml::NodeKind::kText) {
    rendered = std::string(document.Value(node));
  } else if (document.node(node).kind == xml::NodeKind::kAttribute) {
    rendered = std::string(document.TagName(node)) + "=\"" +
               std::string(document.Value(node)) + "\"";
  } else {
    rendered =
        xml::WriteXml(document, node, xml::WriterOptions{.declaration = false});
  }
  if (rendered.size() > max_chars) {
    rendered.resize(max_chars - 3);
    rendered += "...";
  }
  return rendered;
}

}  // namespace lotusx
