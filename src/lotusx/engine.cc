#include "lotusx/engine.h"

#include "twig/query_parser.h"
#include "xml/dom_builder.h"
#include "xml/escape.h"
#include "xml/writer.h"

namespace lotusx {

Engine::Engine(index::IndexedDocument indexed)
    : indexed_(std::make_unique<index::IndexedDocument>(std::move(indexed))) {
  completion_ = std::make_unique<autocomplete::CompletionEngine>(*indexed_);
  ranker_ = std::make_unique<ranking::Ranker>(*indexed_);
  rewriter_ = std::make_unique<rewrite::Rewriter>(*indexed_);
}

StatusOr<Engine> Engine::FromXmlText(std::string_view xml) {
  LOTUSX_ASSIGN_OR_RETURN(xml::Document document, xml::ParseDocument(xml));
  return Engine(index::IndexedDocument(std::move(document)));
}

StatusOr<Engine> Engine::FromXmlFile(const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(xml::Document document,
                          xml::ParseDocumentFile(path));
  return Engine(index::IndexedDocument(std::move(document)));
}

StatusOr<Engine> Engine::FromIndexFile(const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(index::IndexedDocument indexed,
                          index::IndexedDocument::LoadFrom(path));
  return Engine(std::move(indexed));
}

Status Engine::SaveIndex(const std::string& path) const {
  return indexed_->SaveTo(path);
}

StatusOr<SearchResult> Engine::Search(std::string_view query_text,
                                      const SearchOptions& options) const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query,
                          twig::ParseQuery(query_text));
  return Search(query, options);
}

void Engine::EnableResultCache(size_t capacity) {
  cache_ = capacity == 0
               ? nullptr
               : std::make_unique<LruCache<SearchResult>>(capacity);
}

namespace {
/// Cache key: canonical query plus every option that changes the answer.
std::string CacheKey(const twig::TwigQuery& query,
                     const SearchOptions& options) {
  std::string key = query.ToString();
  key += '|';
  key += std::to_string(static_cast<int>(options.eval.algorithm));
  key += options.eval.apply_order ? 'o' : '-';
  key += options.rewrite_on_empty ? 'r' : '-';
  key += '|';
  key += std::to_string(options.ranking.content_weight) + ',' +
         std::to_string(options.ranking.structure_weight) + ',' +
         std::to_string(options.ranking.specificity_weight) + ',' +
         std::to_string(options.ranking.top_k);
  return key;
}
}  // namespace

StatusOr<SearchResult> Engine::Search(const twig::TwigQuery& query,
                                      const SearchOptions& options) const {
  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = CacheKey(query, options);
    if (const SearchResult* cached = cache_->Lookup(cache_key)) {
      return *cached;
    }
  }
  LOTUSX_ASSIGN_OR_RETURN(twig::QueryResult result,
                          twig::Evaluate(*indexed_, query, options.eval));
  SearchResult search;
  search.executed_query = query;
  if (result.matches.empty() && options.rewrite_on_empty) {
    StatusOr<rewrite::RewriteOutcome> rewritten =
        rewriter_->Rewrite(query, options.rewrite);
    if (rewritten.ok()) {
      search.executed_query = rewritten->query;
      search.rewrites_applied = rewritten->applied;
      search.rewrite_penalty = rewritten->penalty;
      result = std::move(rewritten->result);
    }
  }
  search.stats = result.stats;
  search.results =
      ranker_->Rank(search.executed_query, result.matches, options.ranking);
  if (cache_ != nullptr) cache_->Insert(cache_key, search);
  return search;
}

std::string Engine::MaterializeResults(const SearchResult& result,
                                        size_t max_results) const {
  const xml::Document& document = indexed_->document();
  std::string out = "<results query=\"" +
                    xml::EscapeAttribute(result.executed_query.ToString()) +
                    "\">\n";
  size_t count = 0;
  for (const ranking::RankedResult& hit : result.results) {
    if (max_results > 0 && count >= max_results) break;
    ++count;
    char score[32];
    std::snprintf(score, sizeof(score), "%.4f", hit.score);
    out += "  <result rank=\"" + std::to_string(count) + "\" score=\"" +
           score + "\">";
    const xml::Document::Node& node = document.node(hit.output);
    if (node.kind == xml::NodeKind::kElement) {
      out += xml::WriteXml(document, hit.output,
                           xml::WriterOptions{.declaration = false});
    } else {
      // Attribute output: render as an element carrying the value.
      out += "<attribute name=\"" +
             xml::EscapeAttribute(document.TagName(hit.output).substr(1)) +
             "\">" + xml::EscapeText(document.Value(hit.output)) +
             "</attribute>";
    }
    out += "</result>\n";
  }
  out += "</results>\n";
  return out;
}

std::string Engine::Snippet(xml::NodeId node, size_t max_chars) const {
  const xml::Document& document = indexed_->document();
  std::string rendered;
  if (document.node(node).kind == xml::NodeKind::kText) {
    rendered = std::string(document.Value(node));
  } else if (document.node(node).kind == xml::NodeKind::kAttribute) {
    rendered = std::string(document.TagName(node)) + "=\"" +
               std::string(document.Value(node)) + "\"";
  } else {
    rendered =
        xml::WriteXml(document, node, xml::WriterOptions{.declaration = false});
  }
  if (rendered.size() > max_chars) {
    rendered.resize(max_chars - 3);
    rendered += "...";
  }
  return rendered;
}

}  // namespace lotusx
