#ifndef LOTUSX_LOTUSX_QUERY_CACHE_H_
#define LOTUSX_LOTUSX_QUERY_CACHE_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/logging.h"

namespace lotusx {

/// Bounded LRU cache of search results, keyed by a canonical string
/// (query rendering + options signature). Because an IndexedDocument is
/// immutable, cached entries never go stale; capacity alone bounds
/// memory. Not thread-safe (matches the rest of the engine).
template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    CHECK_GT(capacity, 0u);
  }

  /// Returns the cached value and refreshes its recency, or nullptr.
  const Value* Lookup(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void Insert(const std::string& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    map_[key] = entries_.begin();
    if (entries_.size() > capacity_) {
      map_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  void Clear() {
    entries_.clear();
    map_.clear();
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, Value>> entries_;  // MRU at the front
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace lotusx

#endif  // LOTUSX_LOTUSX_QUERY_CACHE_H_
