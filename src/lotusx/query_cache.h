#ifndef LOTUSX_LOTUSX_QUERY_CACHE_H_
#define LOTUSX_LOTUSX_QUERY_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"

namespace lotusx {

/// Bounded LRU cache of search results, keyed by a canonical string
/// (query rendering + options signature). Because an IndexedDocument is
/// immutable, cached entries never go stale; capacity alone bounds
/// memory. Not thread-safe on its own — it is the per-shard building
/// block of ShardedLruCache below, which is what Engine uses.
template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    CHECK_GT(capacity, 0u);
  }

  /// Returns the cached value and refreshes its recency, or nullptr.
  const Value* Lookup(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void Insert(const std::string& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    map_[key] = entries_.begin();
    if (entries_.size() > capacity_) {
      map_.erase(entries_.back().first);
      entries_.pop_back();
    }
  }

  void Clear() {
    entries_.clear();
    map_.clear();
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, Value>> entries_;  // MRU at the front
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Thread-safe bounded LRU cache: keys hash to one of `num_shards`
/// independently locked LruCache shards, so concurrent readers on
/// different shards never contend. Lookup returns the value *by copy* —
/// no pointer into a shard ever escapes its lock, so entries may be
/// evicted or refreshed by other threads at any time without
/// invalidating a caller's result. Hit/miss counters are atomics
/// aggregated across shards.
///
/// The requested capacity is split evenly across shards (rounded up to
/// at least one entry per shard), so the effective bound is
/// num_shards * ceil(capacity / num_shards) — capacity() reports that
/// effective bound.
template <typename Value>
class ShardedLruCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedLruCache(size_t capacity, size_t num_shards = kDefaultShards) {
    CHECK_GT(capacity, 0u);
    CHECK_GT(num_shards, 0u);
    // More shards than entries would inflate the effective capacity to
    // one entry per shard; clamp instead.
    num_shards = std::min(num_shards, capacity);
    const size_t per_shard = (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (size_t i = 0; i < num_shards; ++i) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// Returns a copy of the cached value (refreshing its recency), or
  /// nullopt.
  std::optional<Value> Lookup(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::optional<Value> found;
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (const Value* value = shard.cache.Lookup(key)) found = *value;
    }
    if (found.has_value()) {
      hits_.fetch_add(1, std::memory_order_relaxed);
    } else {
      misses_.fetch_add(1, std::memory_order_relaxed);
    }
    return found;
  }

  /// Inserts (or refreshes) `key`, evicting within the key's shard.
  void Insert(const std::string& key, Value value) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.cache.Insert(key, std::move(value));
  }

  /// Empties every shard. Counters are not reset.
  void Clear() {
    for (auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      shard->cache.Clear();
    }
  }

  /// Total entries across shards. Each shard is sampled under its own
  /// lock, so under concurrent writers the sum is approximate.
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      total += shard->cache.size();
    }
    return total;
  }

  /// Effective bound: num_shards * per-shard capacity.
  size_t capacity() const {
    return shards_.size() * shards_[0]->cache.capacity();
  }

  size_t num_shards() const { return shards_.size(); }
  uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  uint64_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  struct Shard {
    explicit Shard(size_t capacity) : cache(capacity) {}
    mutable std::mutex mu;
    LruCache<Value> cache;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  // unique_ptr: Shard holds a mutex and must not move when the vector
  // relocates (it never does after construction, but keep it immovable).
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> misses_{0};
};

}  // namespace lotusx

#endif  // LOTUSX_LOTUSX_QUERY_CACHE_H_
