#ifndef LOTUSX_LOTUSX_QUERY_CACHE_H_
#define LOTUSX_LOTUSX_QUERY_CACHE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/metrics.h"
#include "common/sync.h"

namespace lotusx {

/// Bounded LRU cache of search results, keyed by a canonical string
/// (query rendering + options signature). Because an IndexedDocument is
/// immutable, cached entries never go stale; capacity alone bounds
/// memory. Not thread-safe on its own — it is the per-shard building
/// block of ShardedLruCache below, which is what Engine uses.
template <typename Value>
class LruCache {
 public:
  explicit LruCache(size_t capacity) : capacity_(capacity) {
    CHECK_GT(capacity, 0u);
  }

  /// Returns the cached value and refreshes its recency, or nullptr.
  const Value* Lookup(const std::string& key) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the least recently used entry
  /// beyond capacity.
  void Insert(const std::string& key, Value value) {
    auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->second = std::move(value);
      entries_.splice(entries_.begin(), entries_, it->second);
      return;
    }
    entries_.emplace_front(key, std::move(value));
    map_[key] = entries_.begin();
    if (entries_.size() > capacity_) {
      map_.erase(entries_.back().first);
      entries_.pop_back();
      ++evictions_;
    }
  }

  void Clear() {
    entries_.clear();
    map_.clear();
  }

  size_t size() const { return entries_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  uint64_t evictions() const { return evictions_; }

 private:
  size_t capacity_;
  std::list<std::pair<std::string, Value>> entries_;  // MRU at the front
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t evictions_ = 0;
};

/// Thread-safe bounded LRU cache: keys hash to one of `num_shards`
/// independently locked LruCache shards, so concurrent readers on
/// different shards never contend. Lookup returns the value *by copy* —
/// no pointer into a shard ever escapes its lock, so entries may be
/// evicted or refreshed by other threads at any time without
/// invalidating a caller's result. hits()/misses()/evictions() aggregate
/// the per-shard counts (maintained under each shard's lock).
///
/// When a metrics registry is attached, every shard additionally bumps
/// process-wide per-shard counters —
/// `<prefix>_{hits,misses,evictions}_total{shard="i"}` — which is how
/// Engine's result cache shows up in the STATS exposition. Registry
/// counters outlive (and are shared by) every cache instance using the
/// same prefix: they are cumulative serving-process totals, unlike the
/// per-instance accessors.
///
/// The requested capacity is split evenly across shards (rounded up to
/// at least one entry per shard), so the effective bound is
/// num_shards * ceil(capacity / num_shards) — capacity() reports that
/// effective bound.
template <typename Value>
class ShardedLruCache {
 public:
  static constexpr size_t kDefaultShards = 8;

  explicit ShardedLruCache(size_t capacity, size_t num_shards = kDefaultShards,
                           metrics::Registry* registry = nullptr,
                           std::string_view metric_prefix = "lotusx_cache") {
    CHECK_GT(capacity, 0u);
    CHECK_GT(num_shards, 0u);
    // More shards than entries would inflate the effective capacity to
    // one entry per shard; clamp instead.
    num_shards = std::min(num_shards, capacity);
    const size_t per_shard = (capacity + num_shards - 1) / num_shards;
    per_shard_capacity_ = per_shard;
    shards_.reserve(num_shards);
    const std::string prefix(metric_prefix);
    for (size_t i = 0; i < num_shards; ++i) {
      auto shard = std::make_unique<Shard>(per_shard);
      if (registry != nullptr) {
        const metrics::Labels labels = {{"shard", std::to_string(i)}};
        shard->registry_hits =
            registry->GetCounter(prefix + "_hits_total", labels);
        shard->registry_misses =
            registry->GetCounter(prefix + "_misses_total", labels);
        shard->registry_evictions =
            registry->GetCounter(prefix + "_evictions_total", labels);
      }
      shards_.push_back(std::move(shard));
    }
  }

  /// Returns a copy of the cached value (refreshing its recency), or
  /// nullopt. Takes (only) the key's shard lock — callers must not
  /// already hold any shard lock of this cache.
  std::optional<Value> Lookup(const std::string& key) {
    Shard& shard = ShardFor(key);
    std::optional<Value> found;
    {
      MutexLock lock(shard.mu);
      if (const Value* value = shard.cache.Lookup(key)) found = *value;
    }
    if (found.has_value()) {
      shard.hits.fetch_add(1, std::memory_order_relaxed);
      if (shard.registry_hits != nullptr) shard.registry_hits->Increment();
    } else {
      shard.misses.fetch_add(1, std::memory_order_relaxed);
      if (shard.registry_misses != nullptr) shard.registry_misses->Increment();
    }
    return found;
  }

  /// Inserts (or refreshes) `key`, evicting within the key's shard.
  void Insert(const std::string& key, Value value) {
    Shard& shard = ShardFor(key);
    uint64_t evicted = 0;
    {
      MutexLock lock(shard.mu);
      const uint64_t before = shard.cache.evictions();
      shard.cache.Insert(key, std::move(value));
      evicted = shard.cache.evictions() - before;
    }
    if (evicted > 0 && shard.registry_evictions != nullptr) {
      shard.registry_evictions->Increment(evicted);
    }
  }

  /// Empties every shard. Counters are not reset.
  void Clear() {
    for (auto& shard : shards_) {
      MutexLock lock(shard->mu);
      shard->cache.Clear();
    }
  }

  /// Total entries across shards. Each shard is sampled under its own
  /// lock (never two at once), so under concurrent writers the sum is
  /// approximate.
  size_t size() const {
    size_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->cache.size();
    }
    return total;
  }

  /// Effective bound: num_shards * per-shard capacity.
  size_t capacity() const { return shards_.size() * per_shard_capacity_; }

  size_t num_shards() const { return shards_.size(); }
  uint64_t hits() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->hits.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t misses() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      total += shard->misses.load(std::memory_order_relaxed);
    }
    return total;
  }
  uint64_t evictions() const {
    uint64_t total = 0;
    for (const auto& shard : shards_) {
      MutexLock lock(shard->mu);
      total += shard->cache.evictions();
    }
    return total;
  }

 private:
  struct Shard {
    explicit Shard(size_t capacity) : cache(capacity) {}
    mutable Mutex mu;
    // The LruCache is the single-threaded building block; the shard
    // lock is what makes it safe, so every touch goes through mu.
    LruCache<Value> cache LOTUSX_GUARDED_BY(mu);
    // Per-shard tallies for the instance accessors; atomics because they
    // are bumped outside the shard lock.
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    // Optional process-wide registry counters (see class comment).
    metrics::Counter* registry_hits = nullptr;
    metrics::Counter* registry_misses = nullptr;
    metrics::Counter* registry_evictions = nullptr;
  };

  Shard& ShardFor(const std::string& key) {
    return *shards_[std::hash<std::string>{}(key) % shards_.size()];
  }

  // unique_ptr: Shard holds a mutex and must not move when the vector
  // relocates (it never does after construction, but keep it immovable).
  std::vector<std::unique_ptr<Shard>> shards_;
  // Immutable after construction; lets capacity() answer without
  // touching any shard's guarded state.
  size_t per_shard_capacity_ = 0;
};

}  // namespace lotusx

#endif  // LOTUSX_LOTUSX_QUERY_CACHE_H_
