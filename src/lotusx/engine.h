#ifndef LOTUSX_LOTUSX_ENGINE_H_
#define LOTUSX_LOTUSX_ENGINE_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "autocomplete/completion.h"
#include "common/metrics.h"
#include "common/status_or.h"
#include "common/thread_pool.h"
#include "index/indexed_document.h"
#include "keyword/keyword_search.h"
#include "ranking/ranker.h"
#include "rewrite/rewriter.h"
#include "lotusx/query_cache.h"
#include "session/session.h"
#include "twig/evaluator.h"

namespace lotusx {

/// Options of Engine::Search.
struct SearchOptions {
  twig::EvalOptions eval;
  ranking::RankingOptions ranking;
  /// Invoke the rewriter when the query returns no matches.
  bool rewrite_on_empty = true;
  rewrite::RewriteOptions rewrite;
};

/// Outcome of Engine::Search: the query that ultimately ran, its ranked
/// answers, engine statistics, and the rewrite chain if one was needed.
struct SearchResult {
  twig::TwigQuery executed_query;
  std::vector<ranking::RankedResult> results;
  twig::EvalStats stats;
  std::vector<std::string> rewrites_applied;
  double rewrite_penalty = 0;
};

/// One tag-completion request of Engine::CompleteTagBatch.
struct TagBatchRequest {
  twig::TwigQuery query;
  autocomplete::TagRequest request;
};

/// Canonical cache key of one (query, options) Search: the query rendering
/// plus every EvalOptions / RewriteOptions / RankingOptions field that can
/// change the result or its recorded statistics. Exposed for the cache-key
/// pinning tests; static_asserts in engine.cc force this function (and the
/// tests) to be revisited whenever an option struct grows.
std::string SearchCacheKey(const twig::TwigQuery& query,
                           const SearchOptions& options);

/// The LotusX engine: the public facade of this library, owning one
/// indexed XML document and exposing the paper's four capabilities —
/// position-aware auto-completion, twig query evaluation (including
/// order-sensitive queries), result ranking, and query rewriting.
///
/// Quickstart:
///   auto engine = lotusx::Engine::FromXmlFile("dblp.xml");
///   auto hits = engine->Search("//article[author[~\"lu\"]]/title");
///   for (const auto& hit : hits->results)
///     std::cout << engine->Snippet(hit.output) << "\n";
///
/// Threading: the index is immutable after construction, so every const
/// member (Search, CompleteTag, CompleteValue, KeywordSearch, Snippet,
/// MaterializeResults, ...) is safe to call concurrently from any number
/// of threads sharing one Engine — including with the result cache
/// enabled, which is a sharded, internally locked structure (its lock
/// discipline is compiler-checked via the annotations in
/// common/sync.h — see docs/DEVELOPMENT.md "Lock discipline"). The two
/// setup calls (EnableResultCache) and move construction/assignment are
/// NOT synchronized: configure the engine first, then share it. See
/// docs/DEVELOPMENT.md ("Threading model").
class Engine {
 public:
  /// Builds an engine from XML text / a file / a saved index image.
  static StatusOr<Engine> FromXmlText(std::string_view xml);
  static StatusOr<Engine> FromXmlFile(const std::string& path);
  static StatusOr<Engine> FromIndexFile(const std::string& path);

  Engine(Engine&&) noexcept = default;
  Engine& operator=(Engine&&) noexcept = default;

  /// Persists the index for FromIndexFile.
  Status SaveIndex(const std::string& path) const;

  /// Full index audit: runs every component's ValidateInvariants (see
  /// index::IndexedDocument::ValidateInvariants), including the deep
  /// term-index recount. Returns Corruption naming the first violated
  /// invariant. Exposed for tests, the stress suite, and the examples'
  /// --validate mode; cost is comparable to rebuilding the index.
  Status ValidateIndex() const { return indexed_->ValidateInvariants(); }

  const index::IndexedDocument& indexed() const { return *indexed_; }
  const xml::Document& document() const { return indexed_->document(); }

  /// Parses the textual twig syntax (see twig/query_parser.h), evaluates,
  /// ranks, and rewrites on empty results when enabled.
  StatusOr<SearchResult> Search(std::string_view query_text,
                                const SearchOptions& options = {}) const;
  /// Same for an already-built query.
  StatusOr<SearchResult> Search(const twig::TwigQuery& query,
                                const SearchOptions& options = {}) const;

  /// Evaluates `queries` (textual twig syntax) and returns one result per
  /// query, in order. With a pool, the batch is split into
  /// pool->num_threads() contiguous chunks fanned across the workers;
  /// with pool == nullptr it runs sequentially on the caller's thread
  /// (the single-threaded oracle the tests compare against). When
  /// `per_chunk_stats` is non-null it is replaced with one aggregated
  /// EvalStats per chunk (counters summed over the chunk's queries,
  /// elapsed_ms the chunk's wall time) — the per-thread view of where
  /// evaluation work went.
  std::vector<StatusOr<SearchResult>> SearchBatch(
      const std::vector<std::string>& queries,
      const SearchOptions& options = {}, ThreadPool* pool = nullptr,
      std::vector<twig::EvalStats>* per_chunk_stats = nullptr) const;

  /// EXPLAIN: plans the query with the cost-based planner
  /// (twig/plan/physical_plan.h), executes the plan, and renders the
  /// operator tree with per-operator estimated vs actual cardinalities
  /// and timings. Bypasses the result cache — the point is to watch the
  /// plan run. options.eval maps to planner hints exactly as in Search.
  StatusOr<std::string> Explain(std::string_view query_text,
                                const SearchOptions& options = {}) const;
  StatusOr<std::string> Explain(const twig::TwigQuery& query,
                                const SearchOptions& options = {}) const;

  /// Batch counterpart of CompleteTag with the same fan-out contract as
  /// SearchBatch.
  std::vector<StatusOr<std::vector<autocomplete::Candidate>>>
  CompleteTagBatch(const std::vector<TagBatchRequest>& requests,
                   ThreadPool* pool = nullptr) const;

  /// Position-aware tag completion (see autocomplete/completion.h).
  StatusOr<std::vector<autocomplete::Candidate>> CompleteTag(
      const twig::TwigQuery& query,
      const autocomplete::TagRequest& request) const {
    return completion_->CompleteTag(query, request);
  }
  StatusOr<std::vector<autocomplete::Candidate>> CompleteValue(
      const twig::TwigQuery& query, twig::QueryNodeId node,
      std::string_view prefix, size_t limit = 10,
      bool position_aware = true) const {
    return completion_->CompleteValue(query, node, prefix, limit,
                                      position_aware);
  }

  /// Schema-free keyword search with SLCA semantics (see
  /// keyword/keyword_search.h) — the zero-knowledge entry point.
  StatusOr<std::vector<keyword::KeywordHit>> KeywordSearch(
      std::string_view keywords, size_t limit = 20) const {
    keyword::KeywordSearchOptions options;
    options.limit = limit;
    return keyword::SlcaSearch(*indexed_, keywords, options);
  }

  /// Enables a sharded LRU cache of Search results with the given total
  /// capacity (entries never go stale: the index is immutable). Pass 0 to
  /// disable. The cache's per-shard hit/miss/eviction counters are wired
  /// into the process-wide metrics registry
  /// (lotusx_cache_*_total{shard="i"}). Setup call: not synchronized
  /// against concurrent Search — call it before sharing the engine
  /// across threads.
  void EnableResultCache(size_t capacity);
  /// Cache statistics; zeros when disabled.
  uint64_t cache_hits() const { return cache_ ? cache_->hits() : 0; }
  uint64_t cache_misses() const { return cache_ ? cache_->misses() : 0; }

  /// Point-in-time copy of the process-wide metrics registry — search
  /// QPS/latency, per-stage timings, cache and thread-pool counters,
  /// per-operator execution totals. This is what the STATS protocol verb
  /// renders; embedders can export it to their own monitoring. Safe to
  /// call concurrently with serving traffic.
  metrics::MetricsSnapshot MetricsSnapshot() const {
    return metrics::Registry::Default().Snapshot();
  }

  /// A fresh interactive canvas session over this engine's document.
  session::Session NewSession(session::SessionOptions options = {}) const {
    return session::Session(*indexed_, std::move(options));
  }

  /// One-line XML rendering of a result node (for display), truncated to
  /// `max_chars`.
  std::string Snippet(xml::NodeId node, size_t max_chars = 120) const;

  /// Materializes ranked answers as an XML document:
  ///   <results query="..."><result rank="1" score="...">subtree</result>
  ///   ...</results>
  /// `max_results` bounds the output (0 = all). The output re-parses with
  /// this library's own parser (tested) — the machine-readable export of
  /// a search.
  std::string MaterializeResults(const SearchResult& result,
                                 size_t max_results = 0) const;

 private:
  explicit Engine(index::IndexedDocument indexed);

  // unique_ptr keeps Engine movable while engines hold references into
  // the index.
  std::unique_ptr<index::IndexedDocument> indexed_;
  std::unique_ptr<autocomplete::CompletionEngine> completion_;
  std::unique_ptr<ranking::Ranker> ranker_;
  std::unique_ptr<rewrite::Rewriter> rewriter_;
  // mutable: Search() is logically const; the cache is an optimization
  // and is internally synchronized (sharded locks + atomic counters).
  mutable std::unique_ptr<ShardedLruCache<SearchResult>> cache_;
};

}  // namespace lotusx

#endif  // LOTUSX_LOTUSX_ENGINE_H_
