#include "lotusx/collection.h"

#include <algorithm>

#include "twig/query_parser.h"

namespace lotusx {

Status Collection::AddEngine(const std::string& name, Engine engine) {
  if (name.empty()) return Status::InvalidArgument("empty document name");
  if (engines_.contains(name)) {
    return Status::AlreadyExists("document '" + name + "' already loaded");
  }
  engines_.emplace(name, std::make_unique<Engine>(std::move(engine)));
  return Status::OK();
}

Status Collection::AddXmlText(const std::string& name,
                              std::string_view xml) {
  LOTUSX_ASSIGN_OR_RETURN(Engine engine, Engine::FromXmlText(xml));
  return AddEngine(name, std::move(engine));
}

Status Collection::AddXmlFile(const std::string& name,
                              const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(Engine engine, Engine::FromXmlFile(path));
  return AddEngine(name, std::move(engine));
}

Status Collection::AddIndexFile(const std::string& name,
                                const std::string& path) {
  LOTUSX_ASSIGN_OR_RETURN(Engine engine, Engine::FromIndexFile(path));
  return AddEngine(name, std::move(engine));
}

Status Collection::Remove(const std::string& name) {
  if (engines_.erase(name) == 0) {
    return Status::NotFound("document '" + name + "' not loaded");
  }
  return Status::OK();
}

std::vector<std::string> Collection::DocumentNames() const {
  std::vector<std::string> names;
  names.reserve(engines_.size());
  for (const auto& [name, engine] : engines_) names.push_back(name);
  return names;
}

StatusOr<const Engine*> Collection::Find(const std::string& name) const {
  auto it = engines_.find(name);
  if (it == engines_.end()) {
    return Status::NotFound("document '" + name + "' not loaded");
  }
  return static_cast<const Engine*>(it->second.get());
}

StatusOr<CollectionSearchResult> Collection::Search(
    std::string_view query_text, size_t top_k,
    const SearchOptions& options) const {
  LOTUSX_ASSIGN_OR_RETURN(twig::TwigQuery query,
                          twig::ParseQuery(query_text));
  // First pass without rewriting: a query aimed at one document must not
  // be "repaired" into noise on the others. Rewriting kicks in (second
  // pass) only when NO document answers the query as drawn.
  SearchOptions strict = options;
  strict.rewrite_on_empty = false;
  CollectionSearchResult merged;
  bool any_hits = false;
  for (int pass = 0; pass < 2; ++pass) {
    for (const auto& [name, engine] : engines_) {
      LOTUSX_ASSIGN_OR_RETURN(SearchResult result,
                              engine->Search(query, pass == 0 ? strict
                                                              : options));
      if (!result.rewrites_applied.empty()) {
        merged.rewrites.emplace(name, result.rewrites_applied);
      }
      for (ranking::RankedResult& hit : result.results) {
        merged.hits.push_back(CollectionHit{name, std::move(hit)});
        any_hits = true;
      }
    }
    if (any_hits || !options.rewrite_on_empty) break;
  }
  std::sort(merged.hits.begin(), merged.hits.end(),
            [](const CollectionHit& a, const CollectionHit& b) {
              if (a.result.score != b.result.score) {
                return a.result.score > b.result.score;
              }
              if (a.document_name != b.document_name) {
                return a.document_name < b.document_name;
              }
              return a.result.output < b.result.output;
            });
  if (top_k > 0 && merged.hits.size() > top_k) merged.hits.resize(top_k);
  return merged;
}

StatusOr<std::vector<autocomplete::Candidate>> Collection::CompleteTag(
    const twig::TwigQuery& query,
    const autocomplete::TagRequest& request) const {
  std::map<std::string, uint64_t> weights;
  for (const auto& [name, engine] : engines_) {
    LOTUSX_ASSIGN_OR_RETURN(std::vector<autocomplete::Candidate> candidates,
                            engine->CompleteTag(query, request));
    for (const autocomplete::Candidate& candidate : candidates) {
      weights[candidate.text] += candidate.frequency;
    }
  }
  std::vector<autocomplete::Candidate> merged;
  for (const auto& [text, weight] : weights) {
    merged.push_back(autocomplete::Candidate{
        text, weight, autocomplete::CandidateKind::kTag});
  }
  std::sort(merged.begin(), merged.end(),
            [](const autocomplete::Candidate& a,
               const autocomplete::Candidate& b) {
              if (a.frequency != b.frequency) {
                return a.frequency > b.frequency;
              }
              return a.text < b.text;
            });
  if (merged.size() > request.limit) merged.resize(request.limit);
  return merged;
}

}  // namespace lotusx
