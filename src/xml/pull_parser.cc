#include "xml/pull_parser.h"

#include <cctype>

#include "common/string_util.h"
#include "xml/escape.h"

namespace lotusx::xml {

namespace {

bool IsNameStartChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return std::isalpha(u) != 0 || c == '_' || c == ':' || u >= 0x80;
}

bool IsNameChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return IsNameStartChar(c) || std::isdigit(u) != 0 || c == '-' || c == '.';
}

bool IsWhitespace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\n';
}

constexpr size_t kMaxDepth = 4096;

}  // namespace

PullParser::PullParser(std::string_view input) : input_(input) {
  // Skip a UTF-8 byte-order mark if present.
  if (input_.size() >= 3 && static_cast<unsigned char>(input_[0]) == 0xEF &&
      static_cast<unsigned char>(input_[1]) == 0xBB &&
      static_cast<unsigned char>(input_[2]) == 0xBF) {
    pos_ = 3;
  }
}

char PullParser::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool PullParser::ConsumeIf(std::string_view literal) {
  if (input_.substr(pos_, literal.size()) != literal) return false;
  for (size_t i = 0; i < literal.size(); ++i) Advance();
  return true;
}

void PullParser::SkipWhitespace() {
  while (!AtEnd() && IsWhitespace(Peek())) Advance();
}

Status PullParser::Error(std::string_view message) const {
  return Status::Corruption("XML parse error at " + std::to_string(line_) +
                            ":" + std::to_string(column_) + ": " +
                            std::string(message));
}

Status PullParser::Next(Event* event) {
  if (!sticky_error_.ok()) return sticky_error_;
  event->attributes.clear();
  event->name.clear();
  event->text.clear();

  Status status = [&]() -> Status {
    if (pending_self_close_) {
      pending_self_close_ = false;
      event->kind = EventKind::kEndElement;
      event->name = pending_end_name_;
      return Status::OK();
    }
    if (done_) {
      event->kind = EventKind::kEndDocument;
      return Status::OK();
    }
    if (in_prolog_) {
      LOTUSX_RETURN_IF_ERROR(ParseProlog());
      in_prolog_ = false;
    }
    while (true) {
      if (AtEnd()) {
        if (!open_elements_.empty()) {
          return Error("unexpected end of input; unclosed <" +
                       open_elements_.back() + ">");
        }
        if (!seen_root_) return Error("document has no root element");
        done_ = true;
        event->kind = EventKind::kEndDocument;
        return Status::OK();
      }
      if (Peek() != '<') {
        if (open_elements_.empty()) {
          // Only whitespace is allowed outside the root element.
          char c = Peek();
          if (!IsWhitespace(c)) {
            return Error("character data outside root element");
          }
          SkipWhitespace();
          continue;
        }
        return ParseText(event);
      }
      // Dispatch on what follows '<'.
      if (ConsumeIf("<!--")) return ParseComment(event);
      if (ConsumeIf("<![CDATA[")) {
        if (open_elements_.empty()) {
          return Error("CDATA section outside root element");
        }
        event->kind = EventKind::kText;
        return ParseCData(&event->text);
      }
      if (ConsumeIf("<?")) return ParseProcessingInstruction(event);
      if (input_.substr(pos_, 2) == "</") {
        Advance();
        Advance();
        return ParseEndTag(event);
      }
      if (input_.substr(pos_, 2) == "<!") {
        return Error("unexpected markup declaration in content");
      }
      Advance();  // consume '<'
      return ParseStartTag(event);
    }
  }();

  if (!status.ok()) {
    sticky_error_ = status;
  }
  return status;
}

Status PullParser::ParseProlog() {
  // Optional XML declaration.
  if (input_.substr(pos_, 5) == "<?xml" &&
      (pos_ + 5 >= input_.size() || IsWhitespace(input_[pos_ + 5]))) {
    size_t end = input_.find("?>", pos_);
    if (end == std::string_view::npos) {
      return Error("unterminated XML declaration");
    }
    while (pos_ < end + 2) Advance();
  }
  // Misc and optional DOCTYPE.
  while (true) {
    SkipWhitespace();
    if (ConsumeIf("<!--")) {
      Event ignored;
      LOTUSX_RETURN_IF_ERROR(ParseComment(&ignored));
      continue;
    }
    if (input_.substr(pos_, 2) == "<?") {
      Advance();
      Advance();
      Event ignored;
      LOTUSX_RETURN_IF_ERROR(ParseProcessingInstruction(&ignored));
      continue;
    }
    if (input_.substr(pos_, 9) == "<!DOCTYPE") {
      LOTUSX_RETURN_IF_ERROR(ParseDoctype());
      continue;
    }
    return Status::OK();
  }
}

Status PullParser::ParseDoctype() {
  // Skip "<!DOCTYPE ... >" including an optional [internal subset],
  // respecting quoted strings.
  int bracket_depth = 0;
  char quote = '\0';
  while (!AtEnd()) {
    char c = Advance();
    if (quote != '\0') {
      if (c == quote) quote = '\0';
      continue;
    }
    if (c == '"' || c == '\'') {
      quote = c;
    } else if (c == '[') {
      ++bracket_depth;
    } else if (c == ']') {
      --bracket_depth;
      if (bracket_depth < 0) return Error("unbalanced ']' in DOCTYPE");
    } else if (c == '>' && bracket_depth == 0) {
      return Status::OK();
    }
  }
  return Error("unterminated DOCTYPE");
}

Status PullParser::ParseName(std::string* name) {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return Error("expected name");
  }
  name->clear();
  while (!AtEnd() && IsNameChar(Peek())) {
    name->push_back(Advance());
  }
  return Status::OK();
}

Status PullParser::ParseAttributeValue(std::string* value) {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return Error("attribute value must be quoted");
  }
  char quote = Advance();
  std::string raw;
  while (true) {
    if (AtEnd()) return Error("unterminated attribute value");
    char c = Peek();
    if (c == quote) {
      Advance();
      break;
    }
    if (c == '<') return Error("'<' in attribute value");
    raw.push_back(Advance());
  }
  Status unescape = UnescapeEntities(raw, value);
  if (!unescape.ok()) return Error(unescape.message());
  return Status::OK();
}

Status PullParser::ParseStartTag(Event* event) {
  if (open_elements_.empty() && seen_root_) {
    return Error("multiple root elements");
  }
  if (open_elements_.size() >= kMaxDepth) {
    return Error("maximum element nesting depth exceeded");
  }
  event->kind = EventKind::kStartElement;
  LOTUSX_RETURN_IF_ERROR(ParseName(&event->name));
  while (true) {
    bool had_space = !AtEnd() && IsWhitespace(Peek());
    SkipWhitespace();
    if (AtEnd()) return Error("unterminated start tag");
    char c = Peek();
    if (c == '>') {
      Advance();
      open_elements_.push_back(event->name);
      seen_root_ = true;
      return Status::OK();
    }
    if (c == '/') {
      Advance();
      if (AtEnd() || Peek() != '>') return Error("expected '>' after '/'");
      Advance();
      seen_root_ = true;
      pending_self_close_ = true;
      pending_end_name_ = event->name;
      return Status::OK();
    }
    if (!had_space) return Error("expected whitespace before attribute");
    Attribute attribute;
    LOTUSX_RETURN_IF_ERROR(ParseName(&attribute.name));
    SkipWhitespace();
    if (AtEnd() || Peek() != '=') return Error("expected '=' in attribute");
    Advance();
    SkipWhitespace();
    LOTUSX_RETURN_IF_ERROR(ParseAttributeValue(&attribute.value));
    for (const Attribute& existing : event->attributes) {
      if (existing.name == attribute.name) {
        return Error("duplicate attribute: " + attribute.name);
      }
    }
    event->attributes.push_back(std::move(attribute));
  }
}

Status PullParser::ParseEndTag(Event* event) {
  event->kind = EventKind::kEndElement;
  LOTUSX_RETURN_IF_ERROR(ParseName(&event->name));
  SkipWhitespace();
  if (AtEnd() || Peek() != '>') return Error("expected '>' in end tag");
  Advance();
  if (open_elements_.empty()) {
    return Error("unmatched end tag </" + event->name + ">");
  }
  if (open_elements_.back() != event->name) {
    return Error("mismatched end tag: expected </" + open_elements_.back() +
                 ">, found </" + event->name + ">");
  }
  open_elements_.pop_back();
  return Status::OK();
}

Status PullParser::ParseComment(Event* event) {
  event->kind = EventKind::kComment;
  size_t end = input_.find("-->", pos_);
  if (end == std::string_view::npos) return Error("unterminated comment");
  // Per the XML spec "--" must not appear inside a comment.
  std::string_view body = input_.substr(pos_, end - pos_);
  if (body.find("--") != std::string_view::npos) {
    return Error("'--' inside comment");
  }
  event->text.assign(body);
  while (pos_ < end + 3) Advance();
  return Status::OK();
}

Status PullParser::ParseProcessingInstruction(Event* event) {
  event->kind = EventKind::kProcessingInstruction;
  LOTUSX_RETURN_IF_ERROR(ParseName(&event->name));
  if (event->name == "xml" || event->name == "XML") {
    return Error("reserved PI target 'xml'");
  }
  size_t end = input_.find("?>", pos_);
  if (end == std::string_view::npos) {
    return Error("unterminated processing instruction");
  }
  std::string_view body = input_.substr(pos_, end - pos_);
  event->text.assign(TrimAscii(body));
  while (pos_ < end + 2) Advance();
  return Status::OK();
}

Status PullParser::ParseCData(std::string* text) {
  size_t end = input_.find("]]>", pos_);
  if (end == std::string_view::npos) return Error("unterminated CDATA");
  text->assign(input_.substr(pos_, end - pos_));
  while (pos_ < end + 3) Advance();
  return Status::OK();
}

Status PullParser::ParseText(Event* event) {
  event->kind = EventKind::kText;
  size_t start = pos_;
  while (!AtEnd() && Peek() != '<') Advance();
  std::string_view raw = input_.substr(start, pos_ - start);
  Status unescape = UnescapeEntities(raw, &event->text);
  if (!unescape.ok()) return Error(unescape.message());
  return Status::OK();
}

}  // namespace lotusx::xml
