#include "xml/escape.h"

#include <cctype>

namespace lotusx::xml {

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

bool AppendUtf8(uint32_t code_point, std::string* out) {
  if (code_point > 0x10FFFF ||
      (code_point >= 0xD800 && code_point <= 0xDFFF)) {
    return false;
  }
  if (code_point < 0x80) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else if (code_point < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3F)));
  }
  return true;
}

Status UnescapeEntities(std::string_view input, std::string* output) {
  output->clear();
  output->reserve(input.size());
  size_t i = 0;
  while (i < input.size()) {
    char c = input[i];
    if (c != '&') {
      output->push_back(c);
      ++i;
      continue;
    }
    size_t end = input.find(';', i + 1);
    if (end == std::string_view::npos || end == i + 1) {
      return Status::Corruption("unterminated entity reference");
    }
    std::string_view name = input.substr(i + 1, end - i - 1);
    if (name == "amp") {
      output->push_back('&');
    } else if (name == "lt") {
      output->push_back('<');
    } else if (name == "gt") {
      output->push_back('>');
    } else if (name == "apos") {
      output->push_back('\'');
    } else if (name == "quot") {
      output->push_back('"');
    } else if (name.size() >= 2 && name[0] == '#') {
      uint32_t code = 0;
      bool valid = true;
      if (name[1] == 'x' || name[1] == 'X') {
        if (name.size() == 2) valid = false;
        for (size_t j = 2; valid && j < name.size(); ++j) {
          char h = name[j];
          uint32_t digit;
          if (h >= '0' && h <= '9') {
            digit = static_cast<uint32_t>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            digit = static_cast<uint32_t>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            digit = static_cast<uint32_t>(h - 'A' + 10);
          } else {
            valid = false;
            break;
          }
          code = code * 16 + digit;
          if (code > 0x10FFFF) valid = false;
        }
      } else {
        for (size_t j = 1; valid && j < name.size(); ++j) {
          char d = name[j];
          if (d < '0' || d > '9') {
            valid = false;
            break;
          }
          code = code * 10 + static_cast<uint32_t>(d - '0');
          if (code > 0x10FFFF) valid = false;
        }
      }
      if (!valid || !AppendUtf8(code, output)) {
        return Status::Corruption("invalid character reference: &" +
                                  std::string(name) + ";");
      }
    } else {
      return Status::Corruption("unknown entity: &" + std::string(name) +
                                ";");
    }
    i = end + 1;
  }
  return Status::OK();
}

}  // namespace lotusx::xml
