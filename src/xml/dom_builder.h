#ifndef LOTUSX_XML_DOM_BUILDER_H_
#define LOTUSX_XML_DOM_BUILDER_H_

#include <string_view>

#include "common/status_or.h"
#include "xml/dom.h"

namespace lotusx::xml {

/// How XML namespace prefixes in element/attribute names are treated.
enum class NamespaceHandling {
  /// Names kept exactly as written ("dblp:article"); xmlns attributes are
  /// ordinary attributes. Lossless round-trip.
  kKeepPrefixes,
  /// Prefixes stripped ("dblp:article" -> "article") and xmlns /
  /// xmlns:* declarations dropped — the right mode for twig search,
  /// where users query by local name. Lossy.
  kStripPrefixes,
};

/// Options controlling Document construction from parsed XML.
struct DomBuilderOptions {
  /// Drop text nodes that contain only whitespace (indentation). On by
  /// default: twig search treats such nodes as noise.
  bool skip_whitespace_text = true;
  /// Keep attribute nodes (as "@name" children). On by default.
  bool keep_attributes = true;
  NamespaceHandling namespaces = NamespaceHandling::kKeepPrefixes;
};

/// Parses `input` with PullParser and materializes a finalized Document.
/// Comments and processing instructions are discarded. Returns the parse
/// error (with position) for malformed input.
StatusOr<Document> ParseDocument(std::string_view input,
                                 const DomBuilderOptions& options = {});

/// Convenience wrapper: reads `path` and parses it.
StatusOr<Document> ParseDocumentFile(const std::string& path,
                                     const DomBuilderOptions& options = {});

}  // namespace lotusx::xml

#endif  // LOTUSX_XML_DOM_BUILDER_H_
