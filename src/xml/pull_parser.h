#ifndef LOTUSX_XML_PULL_PARSER_H_
#define LOTUSX_XML_PULL_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace lotusx::xml {

enum class EventKind {
  kStartElement,
  kEndElement,
  kText,
  kComment,
  kProcessingInstruction,
  kEndDocument,
};

struct Attribute {
  std::string name;
  std::string value;
};

/// One parse event. `name` holds the tag for Start/EndElement and the
/// target for processing instructions; `text` holds character data, comment
/// bodies, or PI data.
struct Event {
  EventKind kind = EventKind::kEndDocument;
  std::string name;
  std::string text;
  std::vector<Attribute> attributes;
};

/// From-scratch streaming XML parser over an in-memory buffer.
///
/// Supported: UTF-8 documents, XML declaration, comments, processing
/// instructions, CDATA sections, DOCTYPE declarations (skipped, including
/// internal subsets), the five predefined entities, and numeric character
/// references. Checks well-formedness: tag balance, single root element,
/// attribute-name uniqueness, name syntax, and content after the root.
///
/// Usage:
///   PullParser parser(xml_text);
///   Event event;
///   while (true) {
///     Status s = parser.Next(&event);
///     if (!s.ok() || event.kind == EventKind::kEndDocument) break;
///     ...
///   }
///
/// The input buffer must outlive the parser.
class PullParser {
 public:
  explicit PullParser(std::string_view input);

  PullParser(const PullParser&) = delete;
  PullParser& operator=(const PullParser&) = delete;

  /// Produces the next event. Returns Corruption with a line:column
  /// diagnostic on malformed input; after an error or kEndDocument, further
  /// calls keep returning the same outcome.
  Status Next(Event* event);

  /// 1-based position of the next unread byte, for error reporting.
  int line() const { return line_; }
  int column() const { return column_; }

 private:
  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance();
  bool ConsumeIf(std::string_view literal);
  void SkipWhitespace();

  Status Error(std::string_view message) const;
  Status ParseProlog();
  Status ParseDoctype();
  Status ParseName(std::string* name);
  Status ParseStartTag(Event* event);
  Status ParseEndTag(Event* event);
  Status ParseComment(Event* event);
  Status ParseProcessingInstruction(Event* event);
  Status ParseCData(std::string* text);
  Status ParseText(Event* event);
  Status ParseAttributeValue(std::string* value);

  std::string_view input_;
  size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;

  std::vector<std::string> open_elements_;
  bool seen_root_ = false;
  bool in_prolog_ = true;
  bool done_ = false;
  // Set when a self-closing tag was emitted as kStartElement; the next call
  // synthesizes the matching kEndElement.
  bool pending_self_close_ = false;
  std::string pending_end_name_;
  Status sticky_error_;
};

}  // namespace lotusx::xml

#endif  // LOTUSX_XML_PULL_PARSER_H_
