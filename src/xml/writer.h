#ifndef LOTUSX_XML_WRITER_H_
#define LOTUSX_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace lotusx::xml {

struct WriterOptions {
  /// Pretty-print with this many spaces per depth level; 0 writes the
  /// document on a single line with no inserted whitespace.
  int indent = 0;
  /// Emit an `<?xml version="1.0" encoding="UTF-8"?>` declaration.
  bool declaration = true;
};

/// Serializes the subtree rooted at `root` back to XML text, re-escaping
/// text and attribute values. With indent=0 the output of
/// ParseDocument(WriteXml(doc)) is structurally identical to `doc`
/// (round-trip property, tested).
std::string WriteXml(const Document& document, NodeId root,
                     const WriterOptions& options = {});

/// Serializes the whole document.
std::string WriteXml(const Document& document,
                     const WriterOptions& options = {});

}  // namespace lotusx::xml

#endif  // LOTUSX_XML_WRITER_H_
