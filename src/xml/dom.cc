#include "xml/dom.h"

#include <string>

#include "common/string_util.h"

namespace lotusx::xml {

TagId Document::InternTag(std::string_view tag) {
  auto it = tag_ids_.find(std::string(tag));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(tag);
  tag_ids_.emplace(std::string(tag), id);
  return id;
}

int32_t Document::InternText(std::string_view text) {
  texts_.emplace_back(text);
  return static_cast<int32_t>(texts_.size() - 1);
}

NodeId Document::AppendNode(NodeId parent, Node node) {
  CHECK(!finalized_) << "Append on finalized Document";
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (parent == kInvalidNodeId) {
    CHECK(nodes_.empty()) << "only the first node may be the root";
    node.depth = 0;
  } else {
    CHECK(parent >= 0 && parent < id) << "parent must precede child";
    // Preorder (document-order) append discipline: the parent must still
    // be "open", i.e. lie on the ancestor spine of the last appended node.
    DCHECK([&] {
      NodeId walk = id - 1;
      while (walk != kInvalidNodeId && walk != parent) {
        walk = nodes_[static_cast<size_t>(walk)].parent;
      }
      return walk == parent;
    }()) << "append violates document order: parent "
         << parent << " is closed";
    node.parent = parent;
    node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
    NodeId last = last_child_[static_cast<size_t>(parent)];
    if (last == kInvalidNodeId) {
      nodes_[static_cast<size_t>(parent)].first_child = id;
    } else {
      // Document-order discipline: the previous child's subtree must be
      // complete, i.e. no node after `last` has a parent outside
      // last's subtree... enforced implicitly by sibling chaining.
      nodes_[static_cast<size_t>(last)].next_sibling = id;
    }
    last_child_[static_cast<size_t>(parent)] = id;
  }
  nodes_.push_back(node);
  last_child_.push_back(kInvalidNodeId);
  return id;
}

NodeId Document::AppendElement(NodeId parent, std::string_view tag) {
  Node node;
  node.kind = NodeKind::kElement;
  node.tag = InternTag(tag);
  return AppendNode(parent, node);
}

NodeId Document::AppendAttribute(NodeId parent, std::string_view name,
                                 std::string_view value) {
  CHECK(parent != kInvalidNodeId);
  CHECK(nodes_[static_cast<size_t>(parent)].kind == NodeKind::kElement);
  Node node;
  node.kind = NodeKind::kAttribute;
  // Attributes are distinguished from elements by an "@" tag prefix, the
  // convention used by twig-pattern literature and by the query syntax.
  node.tag = InternTag("@" + std::string(name));
  node.value = InternText(value);
  return AppendNode(parent, node);
}

NodeId Document::AppendText(NodeId parent, std::string_view text) {
  CHECK(parent != kInvalidNodeId);
  CHECK(nodes_[static_cast<size_t>(parent)].kind == NodeKind::kElement);
  Node node;
  node.kind = NodeKind::kText;
  node.value = InternText(text);
  return AppendNode(parent, node);
}

void Document::Finalize() {
  CHECK(!finalized_) << "Finalize called twice";
  // With preorder ids, a node's subtree extent is its own id if it is a
  // leaf, else the extent of its last child; computed back to front so
  // children are resolved before parents.
  for (int32_t i = num_nodes() - 1; i >= 0; --i) {
    NodeId last = last_child_[static_cast<size_t>(i)];
    nodes_[static_cast<size_t>(i)].subtree_end =
        last == kInvalidNodeId ? i
                               : nodes_[static_cast<size_t>(last)].subtree_end;
  }
  finalized_ = true;
}

TagId Document::FindTag(std::string_view tag) const {
  auto it = tag_ids_.find(std::string(tag));
  return it == tag_ids_.end() ? kInvalidTagId : it->second;
}

std::string Document::ContentString(NodeId element) const {
  DCHECK(IsElement(element));
  std::string content;
  for (NodeId child = node(element).first_child; child != kInvalidNodeId;
       child = node(child).next_sibling) {
    if (node(child).kind == NodeKind::kText) {
      if (!content.empty()) content += ' ';
      content.append(TrimAscii(Value(child)));
    }
  }
  return content;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> children;
  for (NodeId child = node(id).first_child; child != kInvalidNodeId;
       child = node(child).next_sibling) {
    children.push_back(child);
  }
  return children;
}

size_t Document::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node) +
                 last_child_.capacity() * sizeof(NodeId);
  for (const std::string& s : tag_names_) bytes += s.capacity();
  for (const std::string& s : texts_) bytes += s.capacity() + sizeof(s);
  bytes += tag_ids_.size() * (sizeof(std::string) + sizeof(TagId) + 32);
  return bytes;
}

}  // namespace lotusx::xml
