#include "xml/dom.h"

#include <string>

#include "common/invariant.h"
#include "common/string_util.h"

namespace lotusx::xml {

TagId Document::InternTag(std::string_view tag) {
  auto it = tag_ids_.find(std::string(tag));
  if (it != tag_ids_.end()) return it->second;
  TagId id = static_cast<TagId>(tag_names_.size());
  tag_names_.emplace_back(tag);
  tag_ids_.emplace(std::string(tag), id);
  return id;
}

int32_t Document::InternText(std::string_view text) {
  texts_.emplace_back(text);
  return static_cast<int32_t>(texts_.size() - 1);
}

NodeId Document::AppendNode(NodeId parent, Node node) {
  CHECK(!finalized_) << "Append on finalized Document";
  NodeId id = static_cast<NodeId>(nodes_.size());
  if (parent == kInvalidNodeId) {
    CHECK(nodes_.empty()) << "only the first node may be the root";
    node.depth = 0;
  } else {
    CHECK(parent >= 0 && parent < id) << "parent must precede child";
    // Preorder (document-order) append discipline: the parent must still
    // be "open", i.e. lie on the ancestor spine of the last appended node.
    DCHECK([&] {
      NodeId walk = id - 1;
      while (walk != kInvalidNodeId && walk != parent) {
        walk = nodes_[static_cast<size_t>(walk)].parent;
      }
      return walk == parent;
    }()) << "append violates document order: parent "
         << parent << " is closed";
    node.parent = parent;
    node.depth = nodes_[static_cast<size_t>(parent)].depth + 1;
    NodeId last = last_child_[static_cast<size_t>(parent)];
    if (last == kInvalidNodeId) {
      nodes_[static_cast<size_t>(parent)].first_child = id;
    } else {
      // Document-order discipline: the previous child's subtree must be
      // complete, i.e. no node after `last` has a parent outside
      // last's subtree... enforced implicitly by sibling chaining.
      nodes_[static_cast<size_t>(last)].next_sibling = id;
    }
    last_child_[static_cast<size_t>(parent)] = id;
  }
  nodes_.push_back(node);
  last_child_.push_back(kInvalidNodeId);
  return id;
}

NodeId Document::AppendElement(NodeId parent, std::string_view tag) {
  Node node;
  node.kind = NodeKind::kElement;
  node.tag = InternTag(tag);
  return AppendNode(parent, node);
}

NodeId Document::AppendAttribute(NodeId parent, std::string_view name,
                                 std::string_view value) {
  CHECK(parent != kInvalidNodeId);
  CHECK(nodes_[static_cast<size_t>(parent)].kind == NodeKind::kElement);
  Node node;
  node.kind = NodeKind::kAttribute;
  // Attributes are distinguished from elements by an "@" tag prefix, the
  // convention used by twig-pattern literature and by the query syntax.
  node.tag = InternTag("@" + std::string(name));
  node.value = InternText(value);
  return AppendNode(parent, node);
}

NodeId Document::AppendText(NodeId parent, std::string_view text) {
  CHECK(parent != kInvalidNodeId);
  CHECK(nodes_[static_cast<size_t>(parent)].kind == NodeKind::kElement);
  Node node;
  node.kind = NodeKind::kText;
  node.value = InternText(text);
  return AppendNode(parent, node);
}

void Document::Finalize() {
  CHECK(!finalized_) << "Finalize called twice";
  // With preorder ids, a node's subtree extent is its own id if it is a
  // leaf, else the extent of its last child; computed back to front so
  // children are resolved before parents.
  for (int32_t i = num_nodes() - 1; i >= 0; --i) {
    NodeId last = last_child_[static_cast<size_t>(i)];
    nodes_[static_cast<size_t>(i)].subtree_end =
        last == kInvalidNodeId ? i
                               : nodes_[static_cast<size_t>(last)].subtree_end;
  }
  finalized_ = true;
}

Status Document::ValidateInvariants() const {
  LOTUSX_ENSURE(finalized_) << "document not finalized";
  if (nodes_.empty()) return Status::OK();
  LOTUSX_ENSURE(nodes_[0].parent == kInvalidNodeId) << "node 0 has a parent";
  LOTUSX_ENSURE(nodes_[0].kind == NodeKind::kElement)
      << "root is not an element";
  // first_child/next_sibling are re-derived below from parent pointers;
  // children of a node appear in id order, so the links must enumerate
  // them exactly.
  std::vector<NodeId> expected_next_child(nodes_.size(), kInvalidNodeId);
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Node& n = nodes_[static_cast<size_t>(id)];
    if (id > 0) {
      LOTUSX_ENSURE(n.parent >= 0 && n.parent < id)
          << "node " << id << " parent " << n.parent;
      const Node& parent = nodes_[static_cast<size_t>(n.parent)];
      LOTUSX_ENSURE(parent.kind == NodeKind::kElement)
          << "node " << id << " under non-element parent " << n.parent;
      LOTUSX_ENSURE(n.depth == parent.depth + 1)
          << "node " << id << " depth " << n.depth;
      LOTUSX_ENSURE(n.subtree_end <= parent.subtree_end)
          << "node " << id << " subtree leaks past parent";
      NodeId& cursor = expected_next_child[static_cast<size_t>(n.parent)];
      if (cursor == kInvalidNodeId) {
        LOTUSX_ENSURE(parent.first_child == id)
            << "node " << n.parent << " first_child " << parent.first_child
            << " but first child is " << id;
      } else {
        LOTUSX_ENSURE(nodes_[static_cast<size_t>(cursor)].next_sibling == id)
            << "node " << cursor << " next_sibling skips " << id;
      }
      cursor = id;
    } else {
      LOTUSX_ENSURE(n.depth == 0) << "root depth " << n.depth;
    }
    LOTUSX_ENSURE(n.subtree_end >= id)
        << "node " << id << " subtree_end " << n.subtree_end;
    if (n.kind == NodeKind::kText) {
      LOTUSX_ENSURE(n.tag == kInvalidTagId) << "text node " << id
                                            << " has a tag";
    } else {
      LOTUSX_ENSURE(n.tag >= 0 && n.tag < num_tags())
          << "node " << id << " tag " << n.tag;
    }
    if (n.kind == NodeKind::kElement) {
      LOTUSX_ENSURE(n.value == -1) << "element " << id << " has a value";
    } else {
      LOTUSX_ENSURE(n.first_child == kInvalidNodeId)
          << "non-element " << id << " has children";
      LOTUSX_ENSURE(n.subtree_end == id)
          << "non-element " << id << " has a subtree";
      LOTUSX_ENSURE(n.value >= 0 &&
                    static_cast<size_t>(n.value) < texts_.size())
          << "node " << id << " value index " << n.value;
    }
  }
  // Closing pass: each parent's last child must terminate the sibling
  // chain, and the subtree extent must equal the last child's extent.
  for (NodeId id = 0; id < num_nodes(); ++id) {
    const Node& n = nodes_[static_cast<size_t>(id)];
    NodeId last = expected_next_child[static_cast<size_t>(id)];
    if (last == kInvalidNodeId) {
      LOTUSX_ENSURE(n.first_child == kInvalidNodeId)
          << "node " << id << " first_child points at nothing";
      LOTUSX_ENSURE(n.subtree_end == id)
          << "childless node " << id << " subtree_end " << n.subtree_end;
    } else {
      LOTUSX_ENSURE(nodes_[static_cast<size_t>(last)].next_sibling ==
                    kInvalidNodeId)
          << "last child " << last << " of node " << id
          << " has a next sibling";
      LOTUSX_ENSURE(n.subtree_end ==
                    nodes_[static_cast<size_t>(last)].subtree_end)
          << "node " << id << " subtree_end " << n.subtree_end
          << " but last child ends at "
          << nodes_[static_cast<size_t>(last)].subtree_end;
    }
  }
  return Status::OK();
}

TagId Document::FindTag(std::string_view tag) const {
  auto it = tag_ids_.find(std::string(tag));
  return it == tag_ids_.end() ? kInvalidTagId : it->second;
}

std::string Document::ContentString(NodeId element) const {
  DCHECK(IsElement(element));
  std::string content;
  for (NodeId child = node(element).first_child; child != kInvalidNodeId;
       child = node(child).next_sibling) {
    if (node(child).kind == NodeKind::kText) {
      if (!content.empty()) content += ' ';
      content.append(TrimAscii(Value(child)));
    }
  }
  return content;
}

std::vector<NodeId> Document::Children(NodeId id) const {
  std::vector<NodeId> children;
  for (NodeId child = node(id).first_child; child != kInvalidNodeId;
       child = node(child).next_sibling) {
    children.push_back(child);
  }
  return children;
}

size_t Document::MemoryUsage() const {
  size_t bytes = nodes_.capacity() * sizeof(Node) +
                 last_child_.capacity() * sizeof(NodeId);
  for (const std::string& s : tag_names_) bytes += s.capacity();
  for (const std::string& s : texts_) bytes += s.capacity() + sizeof(s);
  bytes += tag_ids_.size() * (sizeof(std::string) + sizeof(TagId) + 32);
  return bytes;
}

}  // namespace lotusx::xml
