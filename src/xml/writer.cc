#include "xml/writer.h"

#include "xml/escape.h"

namespace lotusx::xml {

namespace {

void AppendIndent(int depth, const WriterOptions& options,
                  std::string* out) {
  if (options.indent <= 0) return;
  out->push_back('\n');
  out->append(static_cast<size_t>(depth * options.indent), ' ');
}

void WriteNode(const Document& document, NodeId id, int depth,
               const WriterOptions& options, std::string* out) {
  const Document::Node& node = document.node(id);
  if (node.kind == NodeKind::kText) {
    *out += EscapeText(document.Value(id));
    return;
  }
  DCHECK(node.kind == NodeKind::kElement);
  if (depth > 0 || options.indent > 0) AppendIndent(depth, options, out);
  out->push_back('<');
  out->append(document.TagName(id));

  // Attributes first (they are always the leading children).
  NodeId child = node.first_child;
  while (child != kInvalidNodeId &&
         document.node(child).kind == NodeKind::kAttribute) {
    out->push_back(' ');
    // Strip the "@" interning prefix.
    out->append(document.TagName(child).substr(1));
    out->append("=\"");
    out->append(EscapeAttribute(document.Value(child)));
    out->push_back('"');
    child = document.node(child).next_sibling;
  }

  if (child == kInvalidNodeId) {
    out->append("/>");
    return;
  }
  out->push_back('>');
  bool has_element_child = false;
  for (NodeId c = child; c != kInvalidNodeId;
       c = document.node(c).next_sibling) {
    if (document.node(c).kind == NodeKind::kElement) {
      has_element_child = true;
    }
    WriteNode(document, c, depth + 1, options, out);
  }
  if (has_element_child) AppendIndent(depth, options, out);
  out->append("</");
  out->append(document.TagName(id));
  out->push_back('>');
}

}  // namespace

std::string WriteXml(const Document& document, NodeId root,
                     const WriterOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
    if (options.indent <= 0) out += "\n";
  }
  if (root != kInvalidNodeId) {
    // Suppress the very first indent newline by writing at depth 0.
    std::string body;
    WriteNode(document, root, 0, options, &body);
    // Strip a leading newline added by pretty-printing at depth 0.
    if (!body.empty() && body[0] == '\n') {
      size_t start = body.find_first_not_of(" \n");
      body.erase(0, start == std::string::npos ? body.size() : start);
    }
    if (options.declaration && options.indent > 0) out += "\n";
    out += body;
  }
  if (options.indent > 0) out += "\n";
  return out;
}

std::string WriteXml(const Document& document, const WriterOptions& options) {
  return WriteXml(document, document.root(), options);
}

}  // namespace lotusx::xml
