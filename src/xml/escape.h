#ifndef LOTUSX_XML_ESCAPE_H_
#define LOTUSX_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "common/status.h"

namespace lotusx::xml {

/// Escapes `&`, `<`, `>` for element text content.
std::string EscapeText(std::string_view text);

/// Escapes `&`, `<`, `>`, `"` for double-quoted attribute values.
std::string EscapeAttribute(std::string_view text);

/// Expands the five predefined XML entities (&amp; &lt; &gt; &apos;
/// &quot;) and numeric character references (&#ddd; / &#xhh;, emitted as
/// UTF-8). Returns Corruption for malformed or unknown references.
Status UnescapeEntities(std::string_view input, std::string* output);

/// Appends the UTF-8 encoding of `code_point` to `out`. Returns false for
/// values outside the Unicode scalar range.
bool AppendUtf8(uint32_t code_point, std::string* out);

}  // namespace lotusx::xml

#endif  // LOTUSX_XML_ESCAPE_H_
