#include "xml/dom_builder.h"

#include <vector>

#include "common/coding.h"
#include "common/string_util.h"
#include "xml/pull_parser.h"

namespace lotusx::xml {

namespace {

/// Local part of a possibly-prefixed name ("dblp:article" -> "article").
std::string_view LocalName(std::string_view name) {
  size_t colon = name.find(':');
  return colon == std::string_view::npos ? name : name.substr(colon + 1);
}

/// True for xmlns="..." and xmlns:prefix="..." declarations.
bool IsNamespaceDeclaration(std::string_view attribute_name) {
  return attribute_name == "xmlns" ||
         attribute_name.substr(0, 6) == "xmlns:";
}

}  // namespace

StatusOr<Document> ParseDocument(std::string_view input,
                                 const DomBuilderOptions& options) {
  PullParser parser(input);
  Document document;
  std::vector<NodeId> stack;
  bool strip = options.namespaces == NamespaceHandling::kStripPrefixes;
  Event event;
  while (true) {
    LOTUSX_RETURN_IF_ERROR(parser.Next(&event));
    switch (event.kind) {
      case EventKind::kStartElement: {
        NodeId parent = stack.empty() ? kInvalidNodeId : stack.back();
        NodeId element = document.AppendElement(
            parent, strip ? LocalName(event.name) : event.name);
        if (options.keep_attributes) {
          for (const Attribute& attribute : event.attributes) {
            if (strip && IsNamespaceDeclaration(attribute.name)) continue;
            document.AppendAttribute(
                element, strip ? LocalName(attribute.name) : attribute.name,
                attribute.value);
          }
        }
        stack.push_back(element);
        break;
      }
      case EventKind::kEndElement:
        stack.pop_back();
        break;
      case EventKind::kText: {
        if (options.skip_whitespace_text &&
            TrimAscii(event.text).empty()) {
          break;
        }
        document.AppendText(stack.back(), event.text);
        break;
      }
      case EventKind::kComment:
      case EventKind::kProcessingInstruction:
        break;
      case EventKind::kEndDocument:
        document.Finalize();
        return document;
    }
  }
}

StatusOr<Document> ParseDocumentFile(const std::string& path,
                                     const DomBuilderOptions& options) {
  std::string contents;
  LOTUSX_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  return ParseDocument(contents, options);
}

}  // namespace lotusx::xml
