#ifndef LOTUSX_XML_DOM_H_
#define LOTUSX_XML_DOM_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/logging.h"
#include "common/status.h"

namespace lotusx::xml {

/// Node identifier: the node's preorder (document-order) rank within its
/// Document. Comparing two NodeIds compares document order directly.
using NodeId = int32_t;
inline constexpr NodeId kInvalidNodeId = -1;

/// Interned tag-name identifier, shared by elements and attributes.
using TagId = int32_t;
inline constexpr TagId kInvalidTagId = -1;

enum class NodeKind : uint8_t {
  kElement = 0,
  kAttribute = 1,  // modeled as a child node of its owner element
  kText = 2,
};

/// Arena DOM optimized for read-mostly twig search: nodes live in one flat
/// vector in document order, with parent / first-child / next-sibling links
/// and precomputed subtree extents.
///
/// The document is built strictly in document order via AppendElement /
/// AppendAttribute / AppendText (parents before children, siblings left to
/// right) and sealed with Finalize(), which computes subtree extents.
/// DomBuilder and the data generators both follow this discipline.
class Document {
 public:
  struct Node {
    NodeKind kind = NodeKind::kElement;
    TagId tag = kInvalidTagId;        // element/attribute name
    int32_t value = -1;               // text/attribute value (texts_ index)
    NodeId parent = kInvalidNodeId;
    NodeId first_child = kInvalidNodeId;
    NodeId next_sibling = kInvalidNodeId;
    int32_t depth = 0;                // root has depth 0
    NodeId subtree_end = kInvalidNodeId;  // max NodeId inside the subtree
  };

  Document() = default;
  Document(Document&&) noexcept = default;
  Document& operator=(Document&&) noexcept = default;
  Document(const Document&) = delete;
  Document& operator=(const Document&) = delete;

  /// Appends an element. `parent` is kInvalidNodeId only for the root.
  /// Must be called in document order; enforced with CHECKs.
  NodeId AppendElement(NodeId parent, std::string_view tag);

  /// Appends an attribute node under `parent` (an element). Attribute nodes
  /// are regular children that precede element/text children in document
  /// order; the builder appends them immediately after the owning element.
  NodeId AppendAttribute(NodeId parent, std::string_view name,
                         std::string_view value);

  /// Appends a text node under `parent`.
  NodeId AppendText(NodeId parent, std::string_view text);

  /// Seals the document: computes subtree extents. Must be called exactly
  /// once, after which no Append* calls are allowed.
  void Finalize();
  bool finalized() const { return finalized_; }

  int32_t num_nodes() const { return static_cast<int32_t>(nodes_.size()); }
  bool empty() const { return nodes_.empty(); }
  NodeId root() const { return nodes_.empty() ? kInvalidNodeId : 0; }

  const Node& node(NodeId id) const {
    DCHECK(id >= 0 && id < num_nodes());
    return nodes_[static_cast<size_t>(id)];
  }

  bool IsElement(NodeId id) const {
    return node(id).kind == NodeKind::kElement;
  }

  /// Tag name of an element or attribute node.
  std::string_view TagName(NodeId id) const {
    DCHECK(node(id).kind != NodeKind::kText);
    return tag_names_[static_cast<size_t>(node(id).tag)];
  }

  /// Value of a text or attribute node.
  std::string_view Value(NodeId id) const {
    DCHECK(node(id).value >= 0);
    return texts_[static_cast<size_t>(node(id).value)];
  }

  /// Number of distinct tag names.
  int32_t num_tags() const { return static_cast<int32_t>(tag_names_.size()); }
  std::string_view tag_name(TagId tag) const {
    DCHECK(tag >= 0 && tag < num_tags());
    return tag_names_[static_cast<size_t>(tag)];
  }
  /// kInvalidTagId when `tag` never occurs in the document.
  TagId FindTag(std::string_view tag) const;

  /// True when `ancestor` is a proper ancestor of `descendant`.
  /// O(1) via subtree extents; requires Finalize().
  bool IsAncestor(NodeId ancestor, NodeId descendant) const {
    DCHECK(finalized_);
    return ancestor < descendant &&
           descendant <= node(ancestor).subtree_end;
  }

  /// Concatenation of the values of `element`'s direct text children,
  /// whitespace-trimmed. This is the element's "value" for query
  /// predicates (the standard leaf-value model in twig search).
  std::string ContentString(NodeId element) const;

  /// Collects children of `id` in document order.
  std::vector<NodeId> Children(NodeId id) const;

  /// Approximate heap footprint in bytes (for E7 reporting).
  size_t MemoryUsage() const;

  /// Audits the arena invariants of a finalized document: preorder ids,
  /// parent/first_child/next_sibling agreement, depth arithmetic, subtree
  /// extents, node-kind discipline (only elements have children, text and
  /// attribute nodes carry values), and tag/text table references in
  /// range. Returns Corruption naming the first violated invariant; used
  /// by tests, the stress suite, and the engine's --validate mode.
  Status ValidateInvariants() const;

 private:
  TagId InternTag(std::string_view tag);
  int32_t InternText(std::string_view text);
  NodeId AppendNode(NodeId parent, Node node);

  std::vector<Node> nodes_;
  std::vector<NodeId> last_child_;  // per node, for O(1) append
  std::vector<std::string> tag_names_;
  std::unordered_map<std::string, TagId> tag_ids_;
  std::vector<std::string> texts_;
  bool finalized_ = false;
};

}  // namespace lotusx::xml

#endif  // LOTUSX_XML_DOM_H_
