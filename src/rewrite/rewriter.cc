#include "rewrite/rewriter.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "autocomplete/completion.h"
#include "common/string_util.h"

namespace lotusx::rewrite {

namespace {

using twig::Axis;
using twig::QueryNodeId;
using twig::TwigQuery;
using twig::ValuePredicate;

constexpr double kAxisPenalty = 1.0;
constexpr double kEqualsToContainsPenalty = 1.0;
constexpr double kDropPredicatePenalty = 3.0;
// Respelling beats branch-dropping at any edit distance <= 2: a
// 1-2 character typo is far likelier than an unwanted box.
constexpr double kTagEditBasePenalty = 1.2;   // + 0.3 per edit
constexpr double kSiblingTagPenalty = 2.5;
constexpr double kWildcardPenalty = 3.5;
constexpr double kDropLeafPenalty = 2.0;

/// Tags observed anywhere in the document, by name.
std::vector<std::string> DocumentTags(const xml::Document& document) {
  std::vector<std::string> tags;
  for (xml::TagId tag = 0; tag < document.num_tags(); ++tag) {
    tags.emplace_back(document.tag_name(tag));
  }
  return tags;
}

/// Rebuilds `query` without the subtree rooted at `removed`, returning
/// the remapping old id -> new id (kInvalidQueryNode for removed nodes).
/// Output marks inside the removed subtree are dropped (the result is
/// only used for schema-level context, where the output is irrelevant).
std::pair<TwigQuery, std::vector<QueryNodeId>> RemoveSubtree(
    const TwigQuery& query, QueryNodeId removed) {
  TwigQuery rebuilt;
  std::vector<QueryNodeId> remap(static_cast<size_t>(query.size()),
                                 twig::kInvalidQueryNode);
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    // Inside the removed subtree? (walk up; queries are tiny)
    QueryNodeId walk = q;
    while (walk != twig::kInvalidQueryNode && walk != removed) {
      walk = query.node(walk).parent;
    }
    if (walk == removed) continue;
    const twig::QueryNode& node = query.node(q);
    QueryNodeId id =
        q == query.root()
            ? rebuilt.AddRoot(node.tag, query.root_axis())
            : rebuilt.AddChild(remap[static_cast<size_t>(node.parent)],
                               node.incoming_axis, node.tag);
    remap[static_cast<size_t>(q)] = id;
    if (node.predicate.active()) rebuilt.SetPredicate(id, node.predicate);
    if (node.ordered) rebuilt.SetOrdered(id, true);
  }
  return {std::move(rebuilt), std::move(remap)};
}

}  // namespace

twig::TwigQuery Rewriter::RemoveLeaf(const TwigQuery& query,
                                     QueryNodeId leaf) {
  CHECK(query.node(leaf).children.empty()) << "not a leaf";
  CHECK_NE(leaf, query.root()) << "cannot remove the root";
  CHECK_NE(leaf, query.output()) << "cannot remove the output node";
  TwigQuery rebuilt;
  std::vector<QueryNodeId> remap(static_cast<size_t>(query.size()),
                                 twig::kInvalidQueryNode);
  for (QueryNodeId q = 0; q < query.size(); ++q) {
    if (q == leaf) continue;
    const twig::QueryNode& node = query.node(q);
    QueryNodeId id =
        q == query.root()
            ? rebuilt.AddRoot(node.tag, query.root_axis())
            : rebuilt.AddChild(remap[static_cast<size_t>(node.parent)],
                               node.incoming_axis, node.tag);
    remap[static_cast<size_t>(q)] = id;
    if (node.predicate.active()) rebuilt.SetPredicate(id, node.predicate);
    if (node.ordered) rebuilt.SetOrdered(id, true);
    if (node.is_output) rebuilt.SetOutput(id);
  }
  return rebuilt;
}

std::vector<RewriteCandidate> Rewriter::Propose(
    const TwigQuery& query, const RewriteOptions& options) const {
  std::vector<RewriteCandidate> candidates;
  const xml::Document& document = indexed_.document();

  // Rule 1: axis generalization '/' -> '//'.
  if (options.relax_axes) {
    for (QueryNodeId q = 1; q < query.size(); ++q) {
      if (query.node(q).incoming_axis != Axis::kChild) continue;
      TwigQuery relaxed = query;
      relaxed.SetIncomingAxis(q, Axis::kDescendant);
      candidates.push_back(RewriteCandidate{
          std::move(relaxed), kAxisPenalty,
          "relax /" + query.node(q).tag + " to //" + query.node(q).tag});
    }
    if (query.root_axis() == Axis::kChild) {
      TwigQuery relaxed = query;
      relaxed.SetIncomingAxis(query.root(), Axis::kDescendant);
      candidates.push_back(RewriteCandidate{
          std::move(relaxed), kAxisPenalty,
          "anchor root " + query.node(0).tag + " anywhere (//)"});
    }
  }

  // Rule 2: tag substitution. Two sources: (a) similar spelling among the
  // document's tags (typo repair), (b) sibling tags from the DataGuide —
  // tags occurring under the same parent paths (semantic neighbours).
  if (options.substitute_tags) {
    std::vector<std::string> vocabulary = DocumentTags(document);
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      const std::string& tag = query.node(q).tag;
      if (tag == "*") continue;
      bool unknown = document.FindTag(tag) == xml::kInvalidTagId;
      // (a) Spelling: only useful when the tag does not exist as written.
      if (unknown) {
        for (const std::string& other : vocabulary) {
          int distance = EditDistance(tag, other);
          if (distance == 0 || distance > 2) continue;
          TwigQuery repaired = query;
          repaired.SetTag(q, other);
          candidates.push_back(RewriteCandidate{
              std::move(repaired),
              kTagEditBasePenalty + 0.3 * distance,
              "respell '" + tag + "' as '" + other + "'"});
        }
      }
      // (b) Position-aware substitution: tags that can actually occur at
      // q's position given the *rest* of the query (the same DataGuide
      // machinery that powers auto-completion). For the query root the
      // context is empty, so fall back to the wrong tag's DataGuide
      // siblings.
      xml::TagId tag_id = document.FindTag(tag);
      std::map<xml::TagId, uint64_t> alternatives;
      const index::DataGuide& guide = indexed_.dataguide();
      if (q != query.root()) {
        auto [context, remap] = RemoveSubtree(query, q);
        autocomplete::CompletionEngine completion(indexed_);
        std::vector<std::vector<index::PathId>> bindings =
            completion.SchemaBindings(context);
        QueryNodeId parent =
            remap[static_cast<size_t>(query.node(q).parent)];
        Axis axis = query.node(q).incoming_axis;
        for (index::PathId p : bindings[static_cast<size_t>(parent)]) {
          if (axis == Axis::kChild) {
            for (xml::TagId s : guide.ChildTags(p)) {
              alternatives[s] += guide.ChildTagCount(p, s);
            }
          } else {
            for (xml::TagId s : guide.DescendantTags(p)) {
              alternatives[s] += guide.DescendantTagCount(p, s);
            }
          }
        }
      } else {
        for (index::PathId p : guide.PathsWithTag(tag_id)) {
          index::PathId parent = guide.node(p).parent;
          if (parent == index::kInvalidPathId) continue;
          for (xml::TagId s : guide.ChildTags(parent)) {
            alternatives[s] += guide.ChildTagCount(parent, s);
          }
        }
      }
      alternatives.erase(tag_id);
      // Frequent-at-position tags first; crossing the element/attribute
      // kind boundary is a less likely intent.
      std::vector<std::pair<xml::TagId, uint64_t>> ranked(
          alternatives.begin(), alternatives.end());
      std::sort(ranked.begin(), ranked.end(),
                [](const auto& a, const auto& b) {
                  if (a.second != b.second) return a.second > b.second;
                  return a.first < b.first;
                });
      constexpr size_t kMaxSubstitutions = 8;
      bool original_is_attribute = !tag.empty() && tag[0] == '@';
      for (size_t rank = 0;
           rank < ranked.size() && rank < kMaxSubstitutions; ++rank) {
        xml::TagId s = ranked[rank].first;
        std::string name(document.tag_name(s));
        bool kind_mismatch =
            (!name.empty() && name[0] == '@') != original_is_attribute;
        // Attributes are leaves; an internal query node cannot become one.
        if (!name.empty() && name[0] == '@' &&
            !query.node(q).children.empty()) {
          continue;
        }
        TwigQuery substituted = query;
        substituted.SetTag(q, name);
        candidates.push_back(RewriteCandidate{
            std::move(substituted),
            kSiblingTagPenalty + 0.1 * static_cast<double>(rank) +
                (kind_mismatch ? 0.5 : 0.0),
            "substitute '" + name + "' for '" + tag + "' at its position"});
      }
      // (c) Generalize the tag to the wildcard (keeps the structure but
      // matches any element). Incompatible with equality predicates.
      if (query.node(q).predicate.op != ValuePredicate::Op::kEquals) {
        TwigQuery generalized = query;
        generalized.SetTag(q, "*");
        candidates.push_back(RewriteCandidate{
            std::move(generalized), kWildcardPenalty,
            "generalize '" + tag + "' to any element"});
      }
    }
  }

  // Rule 3: predicate relaxation: '=' -> '~' -> (none).
  if (options.relax_predicates) {
    for (QueryNodeId q = 0; q < query.size(); ++q) {
      const ValuePredicate& predicate = query.node(q).predicate;
      if (predicate.op == ValuePredicate::Op::kEquals) {
        TwigQuery relaxed = query;
        relaxed.SetPredicate(
            q, ValuePredicate{ValuePredicate::Op::kContains,
                              predicate.text});
        candidates.push_back(RewriteCandidate{
            std::move(relaxed), kEqualsToContainsPenalty,
            "match '" + predicate.text + "' as keywords on " +
                query.node(q).tag});
      }
      if (predicate.active()) {
        TwigQuery dropped = query;
        dropped.SetPredicate(q, ValuePredicate{});
        candidates.push_back(RewriteCandidate{
            std::move(dropped), kDropPredicatePenalty,
            "drop value condition on " + query.node(q).tag});
      }
    }
  }

  // Rule 4: drop a non-output leaf branch.
  if (options.drop_leaves && query.size() > 1) {
    for (QueryNodeId leaf : query.Leaves()) {
      if (leaf == query.output() || leaf == query.root()) continue;
      candidates.push_back(RewriteCandidate{
          RemoveLeaf(query, leaf),
          kDropLeafPenalty +
              (query.node(leaf).predicate.active() ? 0.5 : 0.0),
          "drop branch " + query.node(leaf).tag});
    }
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const RewriteCandidate& a, const RewriteCandidate& b) {
              if (a.penalty != b.penalty) return a.penalty < b.penalty;
              return a.description < b.description;
            });
  return candidates;
}

StatusOr<RewriteOutcome> Rewriter::Rewrite(
    const TwigQuery& query, const RewriteOptions& options) const {
  LOTUSX_ASSIGN_OR_RETURN(std::vector<RewriteOutcome> outcomes,
                          RewriteAll(query, options, 1));
  if (outcomes.empty()) {
    return Status::NotFound(
        "no rewrite within budget produced enough results");
  }
  return std::move(outcomes.front());
}

StatusOr<std::vector<RewriteOutcome>> Rewriter::RewriteAll(
    const TwigQuery& query, const RewriteOptions& options,
    size_t max_outcomes) const {
  LOTUSX_RETURN_IF_ERROR(query.Validate());
  std::vector<RewriteOutcome> outcomes;
  if (max_outcomes == 0) return outcomes;

  // Evaluate the original first.
  LOTUSX_ASSIGN_OR_RETURN(twig::QueryResult original,
                          twig::Evaluate(indexed_, query));
  if (original.matches.size() >= options.min_results) {
    RewriteOutcome outcome;
    outcome.query = query;
    outcome.result = std::move(original);
    outcomes.push_back(std::move(outcome));
    return outcomes;
  }

  // Best-first search over rewrite chains.
  struct SearchNode {
    double penalty;
    TwigQuery query;
    std::vector<std::string> applied;
    bool operator>(const SearchNode& other) const {
      if (penalty != other.penalty) return penalty > other.penalty;
      return applied > other.applied;  // deterministic ordering
    }
  };
  std::priority_queue<SearchNode, std::vector<SearchNode>,
                      std::greater<SearchNode>>
      frontier;
  std::set<std::string> seen;
  seen.insert(query.ToString());
  for (RewriteCandidate& candidate : Propose(query, options)) {
    if (candidate.penalty > options.max_penalty) continue;
    std::string key = candidate.query.ToString();
    if (!seen.insert(key).second) continue;
    frontier.push(SearchNode{candidate.penalty, std::move(candidate.query),
                             {std::move(candidate.description)}});
  }

  size_t evaluations = 0;
  while (!frontier.empty() && evaluations < options.max_evaluations &&
         outcomes.size() < max_outcomes) {
    SearchNode node = frontier.top();
    frontier.pop();
    ++evaluations;
    LOTUSX_ASSIGN_OR_RETURN(twig::QueryResult result,
                            twig::Evaluate(indexed_, node.query));
    if (result.matches.size() >= options.min_results) {
      RewriteOutcome outcome;
      outcome.query = std::move(node.query);
      outcome.result = std::move(result);
      outcome.penalty = node.penalty;
      outcome.applied = std::move(node.applied);
      outcome.evaluations = evaluations;
      outcomes.push_back(std::move(outcome));
      continue;  // successes are reported, not expanded further
    }
    // Expand further rewrites of this (still failing) query.
    for (RewriteCandidate& candidate : Propose(node.query, options)) {
      double total = node.penalty + candidate.penalty;
      if (total > options.max_penalty) continue;
      std::string key = candidate.query.ToString();
      if (!seen.insert(key).second) continue;
      std::vector<std::string> applied = node.applied;
      applied.push_back(std::move(candidate.description));
      frontier.push(SearchNode{total, std::move(candidate.query),
                               std::move(applied)});
    }
  }
  return outcomes;
}

}  // namespace lotusx::rewrite
