#ifndef LOTUSX_REWRITE_REWRITER_H_
#define LOTUSX_REWRITE_REWRITER_H_

#include <string>
#include <vector>

#include "common/status_or.h"
#include "index/indexed_document.h"
#include "twig/evaluator.h"
#include "twig/twig_query.h"

namespace lotusx::rewrite {

/// A single-step rewrite of a query, with the penalty its application
/// adds and a human-readable explanation shown in the UI / REPL.
struct RewriteCandidate {
  twig::TwigQuery query;
  double penalty = 0;
  std::string description;
};

struct RewriteOptions {
  /// Stop as soon as a rewrite yields at least this many matches.
  size_t min_results = 1;
  /// Evaluation budget: how many rewritten queries may be executed.
  size_t max_evaluations = 32;
  /// Rewrites whose cumulative penalty exceeds this are not explored.
  double max_penalty = 8.0;
  /// Rule toggles (the E6 bench ablates them).
  bool relax_axes = true;         // '/'  ->  '//'
  bool substitute_tags = true;    // misspelled / sibling tags
  bool relax_predicates = true;   // '='  ->  '~'  -> none
  bool drop_leaves = true;        // remove non-output leaf branches
};

/// Result of the rewrite search: the query that produced answers, those
/// answers, the cumulative penalty, and the chain of applied rewrites
/// (empty when the original query already had enough results).
struct RewriteOutcome {
  twig::TwigQuery query;
  twig::QueryResult result;
  double penalty = 0;
  std::vector<std::string> applied;
  /// Rewritten queries evaluated before success (0 = original sufficed).
  size_t evaluations = 0;
};

/// LotusX's query rewriting solution: when a (typically over-constrained
/// or slightly wrong) twig query returns too few results, relax it along
/// penalty-ordered rewrite rules until it produces answers. Best-first
/// search over rewrite chains; deterministic.
class Rewriter {
 public:
  explicit Rewriter(const index::IndexedDocument& indexed)
      : indexed_(indexed) {}

  /// All single-step rewrites of `query`, cheapest first.
  std::vector<RewriteCandidate> Propose(const twig::TwigQuery& query,
                                        const RewriteOptions& options = {}) const;

  /// Runs the search. Returns NotFound when no rewrite within budget
  /// produces min_results matches; InvalidArgument for invalid queries.
  StatusOr<RewriteOutcome> Rewrite(const twig::TwigQuery& query,
                                   const RewriteOptions& options = {}) const;

  /// Like Rewrite but keeps searching and returns up to `max_outcomes`
  /// distinct successful rewrites in ascending penalty order — what a UI
  /// shows the user to pick from ("did you mean ...?"). Successful
  /// queries are not expanded further. Empty vector when nothing within
  /// budget succeeds (never an error for valid queries).
  StatusOr<std::vector<RewriteOutcome>> RewriteAll(
      const twig::TwigQuery& query, const RewriteOptions& options,
      size_t max_outcomes) const;

  /// Removes leaf `leaf` (must not be the root or the output node),
  /// renumbering nodes. Exposed for tests.
  static twig::TwigQuery RemoveLeaf(const twig::TwigQuery& query,
                                    twig::QueryNodeId leaf);

 private:
  const index::IndexedDocument& indexed_;
};

}  // namespace lotusx::rewrite

#endif  // LOTUSX_REWRITE_REWRITER_H_
