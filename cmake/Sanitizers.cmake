# Sanitizer and warning configuration for LotusX.
#
# Usage (normally via CMakePresets.json):
#   -DLOTUSX_SANITIZE=address,undefined   ASan + UBSan
#   -DLOTUSX_SANITIZE=thread              TSan
#   -DLOTUSX_WERROR=ON                    promote warnings to errors (CI)
#   -DLOTUSX_THREAD_SAFETY=ON             Clang Thread Safety Analysis
#                                         (-Wthread-safety*, clang only)
#
# ASan/UBSan and TSan are mutually exclusive; mixing them is a
# configure-time error. Sanitized builds force frame pointers so reports
# have usable stacks, and define LOTUSX_ENABLE_INVARIANT_CHECKS so the
# LOTUSX_DCHECK* invariant layer stays active even in optimized builds.
#
# LOTUSX_THREAD_SAFETY turns the lock annotations in src/common/sync.h
# into compile errors (with LOTUSX_WERROR): every LOTUSX_GUARDED_BY /
# LOTUSX_REQUIRES / LOTUSX_EXCLUDES contract is checked statically. It
# requires clang — the annotations are no-ops on other compilers, so
# asking for the analysis anywhere else is a configuration mistake and
# fails loudly instead of silently checking nothing.

set(LOTUSX_SANITIZE "" CACHE STRING
    "Comma/semicolon-separated sanitizers: address, undefined, thread, leak")
option(LOTUSX_WERROR "Treat compiler warnings as errors" OFF)
option(LOTUSX_THREAD_SAFETY
       "Enable Clang Thread Safety Analysis (-Wthread-safety*)" OFF)

function(lotusx_setup_sanitizers)
  if(LOTUSX_WERROR)
    add_compile_options(-Werror)
  endif()

  if(LOTUSX_THREAD_SAFETY)
    if(NOT CMAKE_CXX_COMPILER_ID MATCHES "Clang")
      message(FATAL_ERROR
              "LOTUSX_THREAD_SAFETY requires clang (compiler is "
              "${CMAKE_CXX_COMPILER_ID}); the annotations are no-ops "
              "elsewhere, so the analysis would silently check nothing")
    endif()
    add_compile_options(-Wthread-safety -Wthread-safety-beta)
    message(STATUS "LotusX: Clang Thread Safety Analysis enabled")
  endif()

  if(NOT LOTUSX_SANITIZE)
    return()
  endif()

  string(REPLACE "," ";" _sanitizers "${LOTUSX_SANITIZE}")
  list(REMOVE_DUPLICATES _sanitizers)

  set(_known address undefined thread leak)
  foreach(_s IN LISTS _sanitizers)
    if(NOT _s IN_LIST _known)
      message(FATAL_ERROR "Unknown sanitizer '${_s}' in LOTUSX_SANITIZE "
                          "(known: ${_known})")
    endif()
  endforeach()

  if("thread" IN_LIST _sanitizers AND
     ("address" IN_LIST _sanitizers OR "leak" IN_LIST _sanitizers))
    message(FATAL_ERROR
            "TSan cannot be combined with ASan/LSan (LOTUSX_SANITIZE="
            "${LOTUSX_SANITIZE})")
  endif()

  string(REPLACE ";" "," _fsanitize "${_sanitizers}")
  set(_flags -fsanitize=${_fsanitize} -fno-omit-frame-pointer)
  if("undefined" IN_LIST _sanitizers)
    # Abort on UB instead of printing and continuing, so ctest fails loudly.
    list(APPEND _flags -fno-sanitize-recover=undefined)
  endif()

  add_compile_options(${_flags})
  add_link_options(${_flags})
  add_compile_definitions(LOTUSX_ENABLE_INVARIANT_CHECKS=1)
  message(STATUS "LotusX: building with -fsanitize=${_fsanitize}")
endfunction()
