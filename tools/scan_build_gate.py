#!/usr/bin/env python3
"""Gate CI on the clang static analyzer (scan-build) results.

scan-build writes one plist per analyzed translation unit under the
output directory (``scan-build -o <dir> -plist-html ...``). This script
parses every plist, normalizes each diagnostic to a ``checker|file``
pair (paths relative to the repo root), and compares the set against a
checked-in baseline:

* a pair in the results but NOT in the baseline  -> NEW finding, fail;
* a pair in the baseline but NOT in the results  -> STALE entry, fail
  (the issue was fixed — shrink the baseline so it cannot mask a future
  regression in the same file).

``--update`` rewrites the baseline from the current results instead of
failing, for intentional changes. The pair granularity is deliberate:
line numbers churn with every edit, while a (checker, file) pair is
stable until the underlying issue class actually moves.

Usage:
  tools/scan_build_gate.py --results scan-results \\
      --baseline tools/scan_build_baseline.txt [--update]

Exit status: 0 clean, 1 new-or-stale findings, 2 usage/parse error.
"""

from __future__ import annotations

import argparse
import plistlib
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def collect_findings(results_dir: Path) -> set[str]:
    """Return the set of 'checker|relpath' pairs in a scan-build tree."""
    findings: set[str] = set()
    for plist_path in sorted(results_dir.rglob("*.plist")):
        try:
            with plist_path.open("rb") as fh:
                data = plistlib.load(fh)
        except Exception as exc:  # malformed plist: fail loudly
            raise SystemExit(f"error: cannot parse {plist_path}: {exc}")
        files = data.get("files", [])
        for diag in data.get("diagnostics", []):
            checker = diag.get("check_name") or diag.get("category", "unknown")
            index = diag.get("location", {}).get("file")
            raw = files[index] if isinstance(index, int) and index < len(files) else "<unknown>"
            path = Path(raw)
            try:
                rel = path.resolve().relative_to(REPO_ROOT)
            except ValueError:
                rel = path  # outside the repo (system header): keep as-is
            findings.add(f"{checker}|{rel.as_posix()}")
    return findings


def load_baseline(baseline_path: Path) -> set[str]:
    if not baseline_path.exists():
        return set()
    entries: set[str] = set()
    for line in baseline_path.read_text().splitlines():
        line = line.strip()
        if line and not line.startswith("#"):
            entries.add(line)
    return entries


def write_baseline(baseline_path: Path, findings: set[str]) -> None:
    lines = [
        "# scan-build suppression baseline — one 'checker|file' pair per line.",
        "# Managed by tools/scan_build_gate.py --update; CI fails on any",
        "# finding not listed here AND on stale entries that no longer fire.",
    ]
    lines.extend(sorted(findings))
    baseline_path.write_text("\n".join(lines) + "\n")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", required=True, type=Path,
                        help="scan-build output directory (plist tree)")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="checked-in baseline file")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from current results")
    args = parser.parse_args()

    if not args.results.is_dir():
        print(f"error: results dir not found: {args.results}", file=sys.stderr)
        return 2

    findings = collect_findings(args.results)
    if args.update:
        write_baseline(args.baseline, findings)
        print(f"baseline updated: {len(findings)} entr{'y' if len(findings) == 1 else 'ies'}")
        return 0

    baseline = load_baseline(args.baseline)
    new = sorted(findings - baseline)
    stale = sorted(baseline - findings)

    for entry in new:
        print(f"NEW finding (not in baseline): {entry}")
    for entry in stale:
        print(f"STALE baseline entry (no longer fires): {entry}")

    if new or stale:
        print(f"\nscan-build gate FAILED: {len(new)} new, {len(stale)} stale.")
        print("If intentional, regenerate with: "
              "tools/scan_build_gate.py --results <dir> "
              "--baseline tools/scan_build_baseline.txt --update")
        return 1

    print(f"scan-build gate passed: {len(findings)} finding(s), all baselined.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
