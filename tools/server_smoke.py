#!/usr/bin/env python3
"""End-to-end smoke test for lotusx_server.

Starts the server on an ephemeral port, drives a scripted TCP session —
including a pipelined batch written in one send() — checks every response
frame and the STATS counters, then sends SIGTERM and asserts a graceful
zero exit.

Usage: tools/server_smoke.py path/to/lotusx_server
"""

import re
import signal
import socket
import subprocess
import sys
import time


class FrameParser:
    """Incremental parser for the byte-counted OK/ERR wire frames."""

    def __init__(self):
        self.buffer = b""

    def feed(self, data):
        self.buffer += data
        frames = []
        while True:
            newline = self.buffer.find(b"\n")
            if newline < 0:
                return frames
            header = self.buffer[:newline].decode()
            match = re.fullmatch(r"(OK|ERR) (\d+)", header)
            if not match:
                raise AssertionError(f"bad frame header: {header!r}")
            count = int(match.group(2))
            if len(self.buffer) < newline + 1 + count + 1:
                return frames
            payload = self.buffer[newline + 1 : newline + 1 + count]
            if self.buffer[newline + 1 + count : newline + 2 + count] != b"\n":
                raise AssertionError("frame payload not newline-terminated")
            self.buffer = self.buffer[newline + 2 + count :]
            frames.append((match.group(1) == "OK", payload.decode()))


def read_frames(sock, parser, count, deadline_s=10.0):
    frames = []
    deadline = time.monotonic() + deadline_s
    while len(frames) < count:
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        data = sock.recv(65536)
        if not data:
            raise AssertionError(
                f"server closed early: got {len(frames)}/{count} frames"
            )
        frames.extend(parser.feed(data))
    assert len(frames) == count, f"expected {count} frames, got {len(frames)}"
    return frames


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    binary = sys.argv[1]

    proc = subprocess.Popen(
        [binary, "--port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"no listen announcement in {line!r}"
        host, port = match.group(1), int(match.group(2))
        print(f"server up on {host}:{port}")

        sock = socket.create_connection((host, port), timeout=10)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        parser = FrameParser()

        # --- one command at a time -------------------------------------
        sock.sendall(b"ADD 50 0 article\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok and payload == "node 1", (ok, payload)

        sock.sendall(b"BOGUS\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert not ok, "BOGUS must produce an ERR frame"

        # --- pipelined batch in a single write -------------------------
        batch = (
            b"ADD 10 130 author\n"
            b"EDGE 1 2 /\n"
            b"ADD 90 130 title\n"
            b"EDGE 1 3 /\n"
            b"OUTPUT 3\n"
            b"VALUE 2 ~ lu\n"
            b"QUERY\n"
            b"RUN\n"
            b"SHOW\n"
        )
        sock.sendall(batch)
        frames = read_frames(sock, parser, 9)
        for i, (ok, payload) in enumerate(frames):
            assert ok, f"pipelined command {i} failed: {payload}"
        assert frames[0][1] == "node 2", frames[0]
        assert frames[2][1] == "node 3", frames[2]
        query = frames[6][1]
        assert "article" in query and "title" in query, query
        assert "\n" in frames[8][1], "SHOW should be multi-line"

        # --- STATS reflects the traffic we just generated ---------------
        sock.sendall(b"STATS\n")
        ((ok, stats),) = read_frames(sock, parser, 1)
        assert ok, stats
        for metric in (
            "lotusx_net_commands_total",
            "lotusx_net_accepted_total",
            "lotusx_net_connections_active",
            "lotusx_net_command_latency_usec",
        ):
            assert metric in stats, f"STATS missing {metric}"
        commands = re.search(r"lotusx_net_commands_total (\d+)", stats)
        assert commands and int(commands.group(1)) >= 11, (
            "commands_total should count this session's commands"
        )
        active = re.search(r"lotusx_net_connections_active (\d+)", stats)
        assert active and int(active.group(1)) == 1, (
            "exactly this connection should be active"
        )
        print("scripted session OK")

        # --- graceful drain --------------------------------------------
        proc.send_signal(signal.SIGTERM)
        # The drain flushes and closes our connection...
        sock.settimeout(10)
        tail = sock.recv(65536)
        assert tail == b"", f"unexpected bytes after drain: {tail!r}"
        sock.close()
        # ...and the process exits 0.
        code = proc.wait(timeout=15)
        assert code == 0, f"server exited {code}"
        print("graceful drain OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
