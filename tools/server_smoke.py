#!/usr/bin/env python3
"""End-to-end smoke test for lotusx_server.

Starts the server on an ephemeral port with the HTTP admin plane
enabled and every query traced (LOTUSX_SLOW_QUERY_MS=0,
LOTUSX_TRACE_SAMPLE=1), drives a scripted TCP session — including a
pipelined batch written in one send() — checks every response frame,
the STATS counters, the admin endpoints (/healthz, /metrics,
/slowlog.json, /statements.json, /profilez), the SLOWLOG -> TRACE
EXPORT round trip, and the STATEMENTS workload aggregates (monotonic
call counters across pipelined load), then sends SIGTERM and asserts
/healthz turns 503 while draining and the process exits 0.

Usage: tools/server_smoke.py path/to/lotusx_server
"""

import http.client
import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time


class FrameParser:
    """Incremental parser for the byte-counted OK/ERR wire frames."""

    def __init__(self):
        self.buffer = b""

    def feed(self, data):
        self.buffer += data
        frames = []
        while True:
            newline = self.buffer.find(b"\n")
            if newline < 0:
                return frames
            header = self.buffer[:newline].decode()
            match = re.fullmatch(r"(OK|ERR) (\d+)", header)
            if not match:
                raise AssertionError(f"bad frame header: {header!r}")
            count = int(match.group(2))
            if len(self.buffer) < newline + 1 + count + 1:
                return frames
            payload = self.buffer[newline + 1 : newline + 1 + count]
            if self.buffer[newline + 1 + count : newline + 2 + count] != b"\n":
                raise AssertionError("frame payload not newline-terminated")
            self.buffer = self.buffer[newline + 2 + count :]
            frames.append((match.group(1) == "OK", payload.decode()))


def read_frames(sock, parser, count, deadline_s=10.0):
    frames = []
    deadline = time.monotonic() + deadline_s
    while len(frames) < count:
        sock.settimeout(max(0.1, deadline - time.monotonic()))
        data = sock.recv(65536)
        if not data:
            raise AssertionError(
                f"server closed early: got {len(frames)}/{count} frames"
            )
        frames.extend(parser.feed(data))
    assert len(frames) == count, f"expected {count} frames, got {len(frames)}"
    return frames


def admin_get(host, port, path, deadline_s=10.0):
    """One HTTP GET against the admin plane: (status, body)."""
    conn = http.client.HTTPConnection(host, port, timeout=deadline_s)
    try:
        conn.request("GET", path)
        response = conn.getresponse()
        return response.status, response.read().decode()
    finally:
        conn.close()


PROMETHEUS_LINE = re.compile(
    r"[A-Za-z_:][A-Za-z0-9_:]*(\{[^}]*\})? [^ ]+"
)


def parse_prometheus(text):
    """Validates the exposition format; returns {metric line: value}."""
    values = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        assert PROMETHEUS_LINE.fullmatch(line), f"bad metrics line: {line!r}"
        name, value = line.rsplit(" ", 1)
        values[name] = float(value)
    assert values, "empty /metrics exposition"
    return values


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    binary = sys.argv[1]

    env = dict(os.environ)
    env["LOTUSX_SLOW_QUERY_MS"] = "0"  # every query lands in SLOWLOG
    env["LOTUSX_TRACE_SAMPLE"] = "1"  # every trace is retained
    proc = subprocess.Popen(
        [binary, "--port", "0", "--admin-port", "0"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    try:
        line = proc.stdout.readline()
        match = re.search(r"listening on ([\d.]+):(\d+)", line)
        assert match, f"no listen announcement in {line!r}"
        host, port = match.group(1), int(match.group(2))
        line = proc.stdout.readline()
        match = re.search(r"admin listening on ([\d.]+):(\d+)", line)
        assert match, f"no admin announcement in {line!r}"
        admin_port = int(match.group(2))
        print(f"server up on {host}:{port}, admin on {host}:{admin_port}")

        # With LOTUSX_SLOW_QUERY_MS=0 every command emits a slow-query
        # log line into our pipe; keep consuming it or the server blocks
        # on a full pipe buffer mid-drain.
        drainer = threading.Thread(
            target=lambda: [None for _ in proc.stdout], daemon=True
        )
        drainer.start()

        # A clamped receive buffer (set before connect, so it caps the
        # advertised window) keeps the kernel from absorbing a large
        # response backlog — the drain test below depends on unread
        # responses actually holding the connection open.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_RCVBUF, 8192)
        sock.settimeout(10)
        sock.connect((host, port))
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        parser = FrameParser()

        # --- one command at a time -------------------------------------
        sock.sendall(b"ADD 50 0 article\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok and payload == "node 1", (ok, payload)

        sock.sendall(b"BOGUS\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert not ok, "BOGUS must produce an ERR frame"

        # --- pipelined batch in a single write -------------------------
        batch = (
            b"ADD 10 130 author\n"
            b"EDGE 1 2 /\n"
            b"ADD 90 130 title\n"
            b"EDGE 1 3 /\n"
            b"OUTPUT 3\n"
            b"VALUE 2 ~ lu\n"
            b"QUERY\n"
            b"RUN\n"
            b"SHOW\n"
        )
        sock.sendall(batch)
        frames = read_frames(sock, parser, 9)
        for i, (ok, payload) in enumerate(frames):
            assert ok, f"pipelined command {i} failed: {payload}"
        assert frames[0][1] == "node 2", frames[0]
        assert frames[2][1] == "node 3", frames[2]
        query = frames[6][1]
        assert "article" in query and "title" in query, query
        assert "\n" in frames[8][1], "SHOW should be multi-line"

        # --- STATS reflects the traffic we just generated ---------------
        sock.sendall(b"STATS\n")
        ((ok, stats),) = read_frames(sock, parser, 1)
        assert ok, stats
        for metric in (
            "lotusx_net_commands_total",
            "lotusx_net_accepted_total",
            "lotusx_net_connections_active",
            "lotusx_net_command_latency_usec",
        ):
            assert metric in stats, f"STATS missing {metric}"
        commands = re.search(r"lotusx_net_commands_total (\d+)", stats)
        assert commands and int(commands.group(1)) >= 11, (
            "commands_total should count this session's commands"
        )
        active = re.search(r"lotusx_net_connections_active (\d+)", stats)
        assert active and int(active.group(1)) == 1, (
            "exactly this connection should be active"
        )
        print("scripted session OK")

        # --- admin plane -----------------------------------------------
        status, body = admin_get(host, admin_port, "/healthz")
        assert status == 200, (status, body)
        health = json.loads(body)
        assert health["status"] == "ok", health
        assert health["draining"] is False, health
        assert health["uptime_sec"] >= 0, health
        assert health["version"], health
        assert health["git_sha"], health

        status, body = admin_get(host, admin_port, "/metrics")
        assert status == 200, status
        first_scrape = parse_prometheus(body)
        assert any(
            name.startswith("lotusx_net_commands_total")
            for name in first_scrape
        ), "/metrics missing net counters"
        assert any(
            name.startswith("lotusx_process_uptime_seconds")
            for name in first_scrape
        ), "/metrics missing process gauges"
        assert any(
            name.startswith("lotusx_build_info{") for name in first_scrape
        ), "/metrics missing build info"

        # Counters are monotonic across traffic.
        sock.sendall(b"SHOW\nSHOW\n")
        frames = read_frames(sock, parser, 2)
        assert all(ok for ok, _ in frames)
        status, body = admin_get(host, admin_port, "/metrics")
        assert status == 200, status
        second_scrape = parse_prometheus(body)
        for name, value in first_scrape.items():
            if "_total" not in name:
                continue
            assert second_scrape.get(name, 0) >= value, (
                f"counter {name} went backwards: {value} -> "
                f"{second_scrape.get(name)}"
            )
        commands_key = "lotusx_net_commands_total"
        assert second_scrape[commands_key] >= first_scrape[commands_key] + 2

        status, body = admin_get(host, admin_port, "/nope")
        assert status == 404, status
        print("admin plane OK")

        # --- SLOWLOG / TRACE round trip --------------------------------
        # Threshold 0 put every command in the slow-query ring; the RUN
        # from the batch must be there with a per-stage breakdown, and
        # its trace ID must resolve to a Chrome trace via TRACE EXPORT.
        status, body = admin_get(host, admin_port, "/slowlog.json")
        assert status == 200, status
        slowlog = json.loads(body)
        runs = [
            entry
            for entry in slowlog["entries"]
            if entry["query"] == "RUN" and entry["stages"]
        ]
        assert runs, f"no RUN entry with stage breakdown in {body!r}"
        trace_id = runs[0]["trace_id"]
        assert re.fullmatch(r"0x[0-9a-f]{16}", trace_id), trace_id

        sock.sendall(b"SLOWLOG GET 50\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok and trace_id in payload, (
            f"SLOWLOG GET does not show {trace_id}"
        )

        sock.sendall(f"TRACE EXPORT {trace_id}\n".encode())
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok, payload
        chrome = json.loads(payload)
        events = chrome["traceEvents"]
        assert events, "TRACE EXPORT returned no events"
        names = {event["name"] for event in events}
        assert "execute" in names, f"no execute span in {sorted(names)}"
        for event in events:
            assert event["ph"] == "X" and "ts" in event and "dur" in event
        print("slowlog/trace round trip OK")

        # --- workload introspection ------------------------------------
        # The RUN from the batch was fingerprinted and aggregated; the
        # STATEMENTS verb and /statements.json must both show it, and
        # its call counter must climb monotonically under more load.
        sock.sendall(b"STATEMENTS TOP 10\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok and "fingerprint=0x" in payload, payload
        match = re.search(r"calls=(\d+)", payload)
        assert match, payload
        first_calls = int(match.group(1))
        assert first_calls >= 1, payload

        sock.sendall(b"RUN\nRUN\nRUN\n")
        frames = read_frames(sock, parser, 3)
        assert all(ok for ok, _ in frames), frames
        sock.sendall(b"STATEMENTS TOP 10\n")
        ((ok, payload),) = read_frames(sock, parser, 1)
        assert ok, payload
        match = re.search(r"calls=(\d+)", payload)
        assert match, payload
        assert int(match.group(1)) >= first_calls + 3, (
            f"statement calls not monotonic: {first_calls} -> {payload!r}"
        )

        status, body = admin_get(host, admin_port, "/statements.json")
        assert status == 200, (status, body)
        statements = json.loads(body)["statements"]
        assert statements, "empty /statements.json after traffic"
        top = max(statements, key=lambda s: s["calls"])
        assert top["calls"] >= first_calls + 3, top
        assert re.fullmatch(r"0x[0-9a-f]{16}", top["fingerprint"]), top
        assert top["latency_usec"]["p50"] >= 0, top

        # A short wall profile over the admin plane: the collapsed
        # stacks must be non-empty, flamegraph-shaped ("frames count"
        # per line), and include the registered event-loop thread.
        status, body = admin_get(
            host, admin_port, "/profilez?seconds=0.2&mode=wall",
            deadline_s=15,
        )
        assert status == 200, (status, body)
        stacks = body.strip().splitlines()
        assert stacks, "/profilez returned no samples"
        for line in stacks:
            assert re.fullmatch(r".+ \d+", line), f"bad stack line {line!r}"
        assert any(line.startswith("event-loop;") for line in stacks), (
            f"no event-loop samples in {stacks[:5]}"
        )
        print("workload introspection OK")

        # --- graceful drain --------------------------------------------
        # Queue responses far beyond the (clamped) socket buffers and
        # leave them unread: the connection cannot flush, so the drain
        # stays pending and /healthz must answer 503 while it does. The
        # batch stays under the 256-command pipeline cap so one read
        # queues all of it, and waiting for the first response frame
        # proves the server took the batch before the drain stops reads.
        sock.sendall(b"STATS\n" * 200)
        read_frames(sock, parser, 1)
        proc.send_signal(signal.SIGTERM)
        deadline = time.monotonic() + 10
        while True:
            status, body = admin_get(host, admin_port, "/healthz")
            if status == 503:
                health = json.loads(body)
                assert health["status"] == "draining", health
                assert health["draining"] is True, health
                break
            assert time.monotonic() < deadline, (
                f"/healthz never turned 503 (last: {status} {body!r})"
            )
            time.sleep(0.05)
        print("drain reports 503 OK")

        # Consuming the backlog lets the drain finish: our connection
        # closes...
        sock.settimeout(10)
        while True:
            tail = sock.recv(65536)
            if not tail:
                break
        sock.close()
        # ...and the process exits 0.
        code = proc.wait(timeout=15)
        assert code == 0, f"server exited {code}"
        print("graceful drain OK")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()


if __name__ == "__main__":
    sys.exit(main())
