#!/usr/bin/env python3
"""LotusX repository lint.

Checks, in always-on mode (`tools/lint.py`):

  * header-guard hygiene — every header uses either `#pragma once` or the
    canonical `LOTUSX_<PATH>_H_` include guard derived from its repo path
    (so copy-pasted guards that silently merge two headers are caught);
  * include hygiene — project includes are quoted and rooted at a module
    directory (`"index/trie.h"`), never `"src/..."` and never relative
    (`"../index/trie.h"`), so module boundaries stay visible; system and
    third-party includes use angle brackets;
  * no raw `new` / `delete` outside `src/common` — ownership lives in
    containers and smart pointers;
  * no `std::endl` outside `src/common` — hot paths must not flush;
  * `#include` of `common/logging.h` transitively gives CHECK; files using
    LOTUSX_DCHECK must include `common/invariant.h` themselves.

Opt-in modes:

  * `--check-self-contained` — compiles every header standalone
    (`-fsyntax-only`) to prove it includes what it uses;
  * `--check-format`  — `clang-format --dry-run -Werror` over the tree
    (skipped with a notice when clang-format is not installed).

Exit status 0 means clean; 1 means findings (printed one per line as
`path:line: message`); 2 means the tool itself failed.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for C++ sources. `build*` trees are never visited.
SOURCE_DIRS = ("src", "tests", "bench", "examples")
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Module roots a quoted include may start with.
INCLUDE_ROOTS = (
    "autocomplete/", "common/", "datagen/", "index/", "keyword/",
    "labeling/", "lotusx/", "ranking/", "rewrite/", "session/", "twig/",
    "xml/", "tests/", "bench/",
)

# `new`/`delete` and `std::endl` are allowed here (allocator plumbing and
# the logger's deliberate flush live in common).
RAW_MEMORY_EXEMPT_PREFIXES = ("src/common/",)

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+([A-Za-z_][A-Za-z0-9_]*)")
RAW_NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(:]")
RAW_DELETE_RE = re.compile(r"\bdelete(\s*\[\s*\])?\s+[A-Za-z_(:*]")
ENDL_RE = re.compile(r"\bstd::endl\b")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def relpath(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


def iter_source_files():
    for top in SOURCE_DIRS:
        root_dir = os.path.join(REPO_ROOT, top)
        for dirpath, dirnames, filenames in os.walk(root_dir):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def canonical_guard(rel):
    """src/index/trie.h -> LOTUSX_INDEX_TRIE_H_ (matching repo style)."""
    stem = rel[len("src/"):] if rel.startswith("src/") else rel
    stem = os.path.splitext(stem)[0]
    return "LOTUSX_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def strip_comments_and_strings(line, in_block_comment):
    """Best-effort removal of comment/string content before token checks."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        if line[i] == '"':
            match = STRING_RE.match(line, i)
            if match:
                out.append('""')
                i = match.end()
                continue
            break  # unterminated string literal (e.g. in a macro); stop
        if line[i] == "'":
            match = re.match(r"'(?:[^'\\]|\\.)*'", line[i:])
            if match:
                out.append("''")
                i += match.end()
                continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


def check_header_guard(rel, lines, findings):
    expected = canonical_guard(rel)
    for line in lines:
        if PRAGMA_ONCE_RE.match(line):
            return
        match = GUARD_IFNDEF_RE.match(line)
        if match:
            guard = match.group(1)
            if guard != expected:
                findings.append(
                    (rel, 1,
                     f"include guard {guard} does not match canonical "
                     f"{expected} (or use #pragma once)"))
            return
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            break
    findings.append((rel, 1, f"missing include guard {expected} "
                             "(or #pragma once)"))


def check_includes(rel, lines, findings):
    for lineno, line in enumerate(lines, 1):
        match = INCLUDE_RE.match(line)
        if not match:
            continue
        style, target = match.groups()
        if style != '"':
            continue  # angle includes are system/third-party; fine
        if target.startswith("src/"):
            findings.append((rel, lineno,
                             f'include "{target}" must not be rooted at '
                             'src/ — include "%s" instead' %
                             target[len("src/"):]))
        elif target.startswith(("./", "../")):
            findings.append((rel, lineno,
                             f'relative include "{target}" bypasses module '
                             "boundaries; root it at a module directory"))
        elif not target.startswith(INCLUDE_ROOTS):
            findings.append((rel, lineno,
                             f'quoted include "{target}" is not rooted at a '
                             "known module directory; use <...> for system "
                             "headers"))


def check_tokens(rel, lines, findings):
    exempt_memory = rel.startswith(RAW_MEMORY_EXEMPT_PREFIXES)
    in_block_comment = False
    for lineno, line in enumerate(lines, 1):
        code, in_block_comment = strip_comments_and_strings(
            line, in_block_comment)
        if not code.strip():
            continue
        if "NOLINT" in line:
            continue
        if not exempt_memory:
            if RAW_NEW_RE.search(code) and "= delete" not in code:
                findings.append((rel, lineno,
                                 "raw `new` outside src/common — use "
                                 "std::make_unique / containers"))
            if RAW_DELETE_RE.search(code) and "= delete" not in code:
                findings.append((rel, lineno,
                                 "raw `delete` outside src/common — use "
                                 "RAII ownership"))
            if ENDL_RE.search(code):
                findings.append((rel, lineno,
                                 "std::endl flushes; use '\\n' outside "
                                 "src/common"))


def check_dcheck_include(rel, lines, findings):
    uses = any("LOTUSX_DCHECK" in line or "LOTUSX_ENSURE" in line
               for line in lines)
    if not uses or rel == "src/common/invariant.h":
        return
    included = any(INCLUDE_RE.match(line) and
                   INCLUDE_RE.match(line).group(2) == "common/invariant.h"
                   for line in lines)
    if not included:
        findings.append((rel, 1, "uses LOTUSX_DCHECK/LOTUSX_ENSURE but does "
                                 'not include "common/invariant.h"'))


def run_static_checks():
    findings = []
    for path in iter_source_files():
        rel = relpath(path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        if rel.endswith(HEADER_EXTENSIONS):
            check_header_guard(rel, lines, findings)
        check_includes(rel, lines, findings)
        check_tokens(rel, lines, findings)
        check_dcheck_include(rel, lines, findings)
    return findings


def find_compiler():
    for name in ("c++", "g++", "clang++"):
        compiler = shutil.which(name)
        if compiler:
            return compiler
    return None


def check_self_contained():
    """Compiles each header alone; a header that relies on its includer's
    includes fails here."""
    compiler = find_compiler()
    if compiler is None:
        print("lint: no C++ compiler found; skipping self-containment",
              file=sys.stderr)
        return []
    findings = []
    for path in iter_source_files():
        rel = relpath(path)
        if not rel.endswith(HEADER_EXTENSIONS):
            continue
        result = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
             "-I", os.path.join(REPO_ROOT, "src"), "-I", REPO_ROOT, path],
            capture_output=True, text=True)
        if result.returncode != 0:
            first = result.stderr.strip().splitlines()
            detail = first[0] if first else "compile failed"
            findings.append((rel, 1, f"header is not self-contained: "
                                     f"{detail}"))
    return findings


def check_format(fix=False):
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("lint: clang-format not installed; skipping format check",
              file=sys.stderr)
        return []
    findings = []
    files = [path for path in iter_source_files()]
    mode = ["-i"] if fix else ["--dry-run", "-Werror"]
    for path in files:
        result = subprocess.run([clang_format, "--style=file"] + mode +
                                [path], capture_output=True, text=True)
        if result.returncode != 0:
            findings.append((relpath(path), 1,
                             "file is not clang-format clean "
                             "(run tools/lint.py --fix-format)"))
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-self-contained", action="store_true",
                        help="compile each header standalone")
    parser.add_argument("--check-format", action="store_true",
                        help="verify clang-format cleanliness (check-only)")
    parser.add_argument("--fix-format", action="store_true",
                        help="rewrite files with clang-format")
    args = parser.parse_args()

    findings = run_static_checks()
    if args.check_self_contained:
        findings += check_self_contained()
    if args.check_format:
        findings += check_format(fix=False)
    if args.fix_format:
        findings += check_format(fix=True)

    for rel, lineno, message in sorted(findings):
        print(f"{rel}:{lineno}: {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
