#!/usr/bin/env python3
"""LotusX repository lint.

Checks, in always-on mode (`tools/lint.py`):

  * header-guard hygiene — every header uses either `#pragma once` or the
    canonical `LOTUSX_<PATH>_H_` include guard derived from its repo path
    (so copy-pasted guards that silently merge two headers are caught);
  * include hygiene — project includes are quoted and rooted at a module
    directory (`"index/trie.h"`), never `"src/..."` and never relative
    (`"../index/trie.h"`), so module boundaries stay visible; system and
    third-party includes use angle brackets;
  * no raw `new` / `delete` outside `src/common` — ownership lives in
    containers and smart pointers;
  * no `std::endl` outside `src/common` — hot paths must not flush;
  * `#include` of `common/logging.h` transitively gives CHECK; files using
    LOTUSX_DCHECK must include `common/invariant.h` themselves;
  * lock discipline (see src/common/sync.h and docs/DEVELOPMENT.md):
      - no naked `std::mutex` / `std::lock_guard` / `std::unique_lock` /
        `std::condition_variable` (and friends) outside
        `src/common/sync.{h,cc}` — use the annotated lotusx wrappers so
        Clang Thread Safety Analysis can see every acquisition
        (`std::once_flag` / `std::call_once` stay allowed);
      - every `LOTUSX_NO_THREAD_SAFETY_ANALYSIS` carries a `// SAFETY:`
        comment (same line or the contiguous comment block above)
        explaining why the analysis is wrong there;
      - in `src/`, every `Mutex` / `SharedMutex` data member has at least
        one sibling `LOTUSX_GUARDED_BY(<name>)` /
        `LOTUSX_PT_GUARDED_BY(<name>)` in the same file — a mutex that
        guards nothing is either dead or hiding unannotated state.

Opt-in modes:

  * `--check-self-contained` — compiles every header standalone
    (`-fsyntax-only`) to prove it includes what it uses;
  * `--check-format`  — `clang-format --dry-run -Werror` over the tree
    (skipped with a notice when clang-format is not installed);
  * `--self-test` — runs the static checks against the labelled fixtures
    in `tools/lint_fixtures/` and fails unless every `// EXPECT-LINT:`
    expectation fires exactly (guards the lint rules themselves).

Exit status 0 means clean; 1 means findings (printed one per line as
`path:line: message`); 2 means the tool itself failed.
"""

import argparse
import os
import re
import shutil
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Directories scanned for C++ sources. `build*` trees are never visited.
SOURCE_DIRS = ("src", "tests", "bench", "examples")
HEADER_EXTENSIONS = (".h", ".hpp")
SOURCE_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Module roots a quoted include may start with.
INCLUDE_ROOTS = (
    "autocomplete/", "common/", "datagen/", "index/", "keyword/",
    "labeling/", "lotusx/", "net/", "ranking/", "rewrite/", "session/",
    "twig/", "xml/", "tests/", "bench/",
)

# `new`/`delete` and `std::endl` are allowed here (allocator plumbing and
# the logger's deliberate flush live in common).
RAW_MEMORY_EXEMPT_PREFIXES = ("src/common/",)

# The annotated wrapper layer itself — the ONLY place naked std sync
# primitives may appear, and the definition site of the annotation
# macros (exempt from the SAFETY-comment rule).
SYNC_WRAPPER_FILES = ("src/common/sync.h", "src/common/sync.cc")

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
PRAGMA_ONCE_RE = re.compile(r"^\s*#\s*pragma\s+once\b")
GUARD_IFNDEF_RE = re.compile(r"^\s*#\s*ifndef\s+([A-Za-z_][A-Za-z0-9_]*)")
RAW_NEW_RE = re.compile(r"\bnew\s+[A-Za-z_(:]")
RAW_DELETE_RE = re.compile(r"\bdelete(\s*\[\s*\])?\s+[A-Za-z_(:*]")
ENDL_RE = re.compile(r"\bstd::endl\b")
NAKED_SYNC_RE = re.compile(
    r"\bstd::(?:recursive_)?(?:timed_)?mutex\b"
    r"|\bstd::shared_(?:timed_)?mutex\b"
    r"|\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"
    r"|\bstd::condition_variable(?:_any)?\b")
MUTEX_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:lotusx::)?(?:Mutex|SharedMutex)\s+(\w+)\s*;")
LINE_COMMENT_RE = re.compile(r"//.*$")
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def relpath(path):
    return os.path.relpath(path, REPO_ROOT).replace(os.sep, "/")


def iter_source_files():
    for top in SOURCE_DIRS:
        root_dir = os.path.join(REPO_ROOT, top)
        for dirpath, dirnames, filenames in os.walk(root_dir):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for name in sorted(filenames):
                if name.endswith(SOURCE_EXTENSIONS):
                    yield os.path.join(dirpath, name)


def canonical_guard(rel):
    """src/index/trie.h -> LOTUSX_INDEX_TRIE_H_ (matching repo style)."""
    stem = rel[len("src/"):] if rel.startswith("src/") else rel
    stem = os.path.splitext(stem)[0]
    return "LOTUSX_" + re.sub(r"[^A-Za-z0-9]", "_", stem).upper() + "_H_"


def strip_comments_and_strings(line, in_block_comment):
    """Best-effort removal of comment/string content before token checks."""
    out = []
    i = 0
    while i < len(line):
        if in_block_comment:
            end = line.find("*/", i)
            if end == -1:
                return "".join(out), True
            i = end + 2
            continue
        if line.startswith("//", i):
            break
        if line.startswith("/*", i):
            in_block_comment = True
            i += 2
            continue
        if line[i] == '"':
            match = STRING_RE.match(line, i)
            if match:
                out.append('""')
                i = match.end()
                continue
            break  # unterminated string literal (e.g. in a macro); stop
        if line[i] == "'":
            match = re.match(r"'(?:[^'\\]|\\.)*'", line[i:])
            if match:
                out.append("''")
                i += match.end()
                continue
        out.append(line[i])
        i += 1
    return "".join(out), in_block_comment


def check_header_guard(rel, lines, findings):
    expected = canonical_guard(rel)
    for line in lines:
        if PRAGMA_ONCE_RE.match(line):
            return
        match = GUARD_IFNDEF_RE.match(line)
        if match:
            guard = match.group(1)
            if guard != expected:
                findings.append(
                    (rel, 1,
                     f"include guard {guard} does not match canonical "
                     f"{expected} (or use #pragma once)"))
            return
        stripped = line.strip()
        if stripped and not stripped.startswith("//"):
            break
    findings.append((rel, 1, f"missing include guard {expected} "
                             "(or #pragma once)"))


def check_includes(rel, lines, findings):
    for lineno, line in enumerate(lines, 1):
        match = INCLUDE_RE.match(line)
        if not match:
            continue
        style, target = match.groups()
        if style != '"':
            continue  # angle includes are system/third-party; fine
        if target.startswith("src/"):
            findings.append((rel, lineno,
                             f'include "{target}" must not be rooted at '
                             'src/ — include "%s" instead' %
                             target[len("src/"):]))
        elif target.startswith(("./", "../")):
            findings.append((rel, lineno,
                             f'relative include "{target}" bypasses module '
                             "boundaries; root it at a module directory"))
        elif not target.startswith(INCLUDE_ROOTS):
            findings.append((rel, lineno,
                             f'quoted include "{target}" is not rooted at a '
                             "known module directory; use <...> for system "
                             "headers"))


def check_tokens(rel, lines, findings):
    exempt_memory = rel.startswith(RAW_MEMORY_EXEMPT_PREFIXES)
    in_block_comment = False
    for lineno, line in enumerate(lines, 1):
        code, in_block_comment = strip_comments_and_strings(
            line, in_block_comment)
        if not code.strip():
            continue
        if "NOLINT" in line:
            continue
        if not exempt_memory:
            if RAW_NEW_RE.search(code) and "= delete" not in code:
                findings.append((rel, lineno,
                                 "raw `new` outside src/common — use "
                                 "std::make_unique / containers"))
            if RAW_DELETE_RE.search(code) and "= delete" not in code:
                findings.append((rel, lineno,
                                 "raw `delete` outside src/common — use "
                                 "RAII ownership"))
            if ENDL_RE.search(code):
                findings.append((rel, lineno,
                                 "std::endl flushes; use '\\n' outside "
                                 "src/common"))


def has_safety_comment(lines, idx):
    """True if lines[idx] or the contiguous // block above says SAFETY:."""
    if "SAFETY:" in lines[idx]:
        return True
    j = idx - 1
    while j >= 0 and lines[j].strip().startswith("//"):
        if "SAFETY:" in lines[j]:
            return True
        j -= 1
    return False


def check_lock_discipline(rel, lines, findings):
    """The three lock rules (see module docstring and common/sync.h)."""
    in_wrapper = rel in SYNC_WRAPPER_FILES
    mutex_fields = []  # (lineno, field name) pending a GUARDED_BY sibling
    code_lines = []  # comment/string-stripped body, for sibling lookup
    in_block_comment = False
    for lineno, line in enumerate(lines, 1):
        code, in_block_comment = strip_comments_and_strings(
            line, in_block_comment)
        code_lines.append(code)
        if not code.strip() or "NOLINT" in line:
            continue
        if not in_wrapper and NAKED_SYNC_RE.search(code):
            findings.append(
                (rel, lineno,
                 "naked std sync primitive outside src/common/sync.* — use "
                 "lotusx::Mutex/MutexLock/CondVar from common/sync.h so the "
                 "thread-safety analysis sees the acquisition"))
        if (rel != "src/common/sync.h"  # macro definition site
                and "LOTUSX_NO_THREAD_SAFETY_ANALYSIS" in code
                and not has_safety_comment(lines, lineno - 1)):
            findings.append(
                (rel, lineno,
                 "LOTUSX_NO_THREAD_SAFETY_ANALYSIS without an adjacent "
                 "`// SAFETY:` comment justifying why the analysis is "
                 "wrong here"))
        if rel.startswith("src/") and not in_wrapper:
            match = MUTEX_FIELD_RE.match(code)
            if match:
                mutex_fields.append((lineno, match.group(1)))
    if mutex_fields:
        # Search the STRIPPED body: a GUARDED_BY mentioned only in a
        # comment must not satisfy the rule.
        body = "\n".join(code_lines)
        for lineno, name in mutex_fields:
            if f"GUARDED_BY({name})" not in body:
                findings.append(
                    (rel, lineno,
                     f"Mutex `{name}` has no LOTUSX_GUARDED_BY({name}) / "
                     f"LOTUSX_PT_GUARDED_BY({name}) sibling in this file — "
                     "annotate the state it guards (or delete it)"))


def check_dcheck_include(rel, lines, findings):
    uses = any("LOTUSX_DCHECK" in line or "LOTUSX_ENSURE" in line
               for line in lines)
    if not uses or rel == "src/common/invariant.h":
        return
    included = any(INCLUDE_RE.match(line) and
                   INCLUDE_RE.match(line).group(2) == "common/invariant.h"
                   for line in lines)
    if not included:
        findings.append((rel, 1, "uses LOTUSX_DCHECK/LOTUSX_ENSURE but does "
                                 'not include "common/invariant.h"'))


def run_file_checks(rel, lines, findings):
    if rel.endswith(HEADER_EXTENSIONS):
        check_header_guard(rel, lines, findings)
    check_includes(rel, lines, findings)
    check_tokens(rel, lines, findings)
    check_lock_discipline(rel, lines, findings)
    check_dcheck_include(rel, lines, findings)


def run_static_checks():
    findings = []
    for path in iter_source_files():
        rel = relpath(path)
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        run_file_checks(rel, lines, findings)
    return findings


def run_self_test():
    """Lints the fixtures in tools/lint_fixtures/ and checks that exactly
    the `// EXPECT-LINT:` expectations fire. A fixture's first line names
    the repo path it impersonates via `// LINT-PATH:` (so path-scoped
    rules like the src/-only GUARDED_BY check are exercised); directive
    lines themselves are blanked before linting."""
    fixtures_dir = os.path.join(REPO_ROOT, "tools", "lint_fixtures")
    failures = []
    fixture_count = 0
    for name in sorted(os.listdir(fixtures_dir)):
        if not name.endswith(SOURCE_EXTENSIONS):
            continue
        fixture_count += 1
        with open(os.path.join(fixtures_dir, name), encoding="utf-8") as f:
            raw_lines = f.read().splitlines()
        fake_rel = None
        expectations = []
        lines = []
        for line in raw_lines:
            stripped = line.strip()
            if stripped.startswith("// LINT-PATH:"):
                fake_rel = stripped.split(":", 1)[1].strip()
                lines.append("")
            elif stripped.startswith("// EXPECT-LINT:"):
                expectations.append(stripped.split(":", 1)[1].strip())
                lines.append("")
            else:
                lines.append(line)
        if fake_rel is None:
            failures.append(f"{name}: missing `// LINT-PATH:` directive")
            continue
        findings = []
        run_file_checks(fake_rel, lines, findings)
        messages = [msg for _, _, msg in findings]
        for expected in expectations:
            hits = [msg for msg in messages if expected in msg]
            if not hits:
                failures.append(
                    f"{name}: expected a finding containing {expected!r}, "
                    f"got {messages!r}")
            else:
                messages.remove(hits[0])
        for msg in messages:
            failures.append(f"{name}: unexpected finding {msg!r}")
    if fixture_count == 0:
        failures.append("no fixtures found in tools/lint_fixtures/")
    for failure in failures:
        print(f"lint self-test: {failure}")
    if failures:
        print(f"lint self-test: FAILED ({len(failures)} problem(s))",
              file=sys.stderr)
        return 1
    print(f"lint self-test: {fixture_count} fixture(s) OK")
    return 0


def find_compiler():
    for name in ("c++", "g++", "clang++"):
        compiler = shutil.which(name)
        if compiler:
            return compiler
    return None


def check_self_contained():
    """Compiles each header alone; a header that relies on its includer's
    includes fails here."""
    compiler = find_compiler()
    if compiler is None:
        print("lint: no C++ compiler found; skipping self-containment",
              file=sys.stderr)
        return []
    findings = []
    for path in iter_source_files():
        rel = relpath(path)
        if not rel.endswith(HEADER_EXTENSIONS):
            continue
        result = subprocess.run(
            [compiler, "-std=c++20", "-fsyntax-only", "-x", "c++",
             "-I", os.path.join(REPO_ROOT, "src"), "-I", REPO_ROOT, path],
            capture_output=True, text=True)
        if result.returncode != 0:
            first = result.stderr.strip().splitlines()
            detail = first[0] if first else "compile failed"
            findings.append((rel, 1, f"header is not self-contained: "
                                     f"{detail}"))
    return findings


def check_format(fix=False):
    clang_format = shutil.which("clang-format")
    if clang_format is None:
        print("lint: clang-format not installed; skipping format check",
              file=sys.stderr)
        return []
    findings = []
    files = [path for path in iter_source_files()]
    mode = ["-i"] if fix else ["--dry-run", "-Werror"]
    for path in files:
        result = subprocess.run([clang_format, "--style=file"] + mode +
                                [path], capture_output=True, text=True)
        if result.returncode != 0:
            findings.append((relpath(path), 1,
                             "file is not clang-format clean "
                             "(run tools/lint.py --fix-format)"))
    return findings


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check-self-contained", action="store_true",
                        help="compile each header standalone")
    parser.add_argument("--check-format", action="store_true",
                        help="verify clang-format cleanliness (check-only)")
    parser.add_argument("--fix-format", action="store_true",
                        help="rewrite files with clang-format")
    parser.add_argument("--self-test", action="store_true",
                        help="check the lint rules against the labelled "
                             "fixtures in tools/lint_fixtures/")
    args = parser.parse_args()

    if args.self_test:
        return run_self_test()

    findings = run_static_checks()
    if args.check_self_contained:
        findings += check_self_contained()
    if args.check_format:
        findings += check_format(fix=False)
    if args.fix_format:
        findings += check_format(fix=True)

    for rel, lineno, message in sorted(findings):
        print(f"{rel}:{lineno}: {message}")
    if findings:
        print(f"lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
