// LINT-PATH: src/lotusx/good_annotated.h
// Clean lock discipline: annotated wrapper types only, every Mutex has
// a GUARDED_BY sibling, and the one analysis escape hatch carries its
// SAFETY justification. Zero findings expected.
#pragma once

#include "common/sync.h"

namespace lotusx {

class Sessions {
 public:
  void Bump() LOTUSX_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    ++count_;
  }

  // SAFETY: called only from the single-threaded test harness before
  // any worker starts, so no lock can be contended yet.
  int UnsafeCountForTest() const LOTUSX_NO_THREAD_SAFETY_ANALYSIS {
    return count_;
  }

 private:
  mutable Mutex mu_;
  int count_ LOTUSX_GUARDED_BY(mu_) = 0;
};

}  // namespace lotusx
