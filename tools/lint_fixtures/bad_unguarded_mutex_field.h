// LINT-PATH: src/lotusx/bad_unguarded_mutex_field.h
// A Mutex member with no GUARDED_BY sibling anywhere in the file is
// either dead weight or — worse — guarding state the analysis cannot
// check. Only enforced under src/ (GUARDED_BY is invalid on locals, so
// test-local mutexes are exempt by construction).
// EXPECT-LINT: Mutex `mu_` has no LOTUSX_GUARDED_BY(mu_)
#pragma once

#include "common/sync.h"

namespace lotusx {

class Sessions {
 public:
  void Bump() {
    MutexLock lock(mu_);
    ++count_;  // count_ should be LOTUSX_GUARDED_BY(mu_)
  }

 private:
  mutable Mutex mu_;
  int count_ = 0;
};

}  // namespace lotusx
