// LINT-PATH: src/lotusx/bad_no_safety_comment.cc
// LOTUSX_NO_THREAD_SAFETY_ANALYSIS silences the analyzer for a whole
// function body; without a SAFETY: justification next to it nobody can
// audit whether the silencing is still warranted.
// EXPECT-LINT: without an adjacent `// SAFETY:` comment
#include "common/sync.h"

namespace lotusx {

Mutex g_mu;
int g_value LOTUSX_GUARDED_BY(g_mu) = 0;

int SneakyRead() LOTUSX_NO_THREAD_SAFETY_ANALYSIS { return g_value; }

}  // namespace lotusx
