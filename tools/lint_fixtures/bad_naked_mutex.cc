// LINT-PATH: src/lotusx/bad_naked_mutex.cc
// Naked std sync primitives outside src/common/sync.* must be flagged —
// the thread-safety analysis cannot see acquisitions it has no
// annotations for. std::once_flag/std::call_once stay allowed (there is
// no lock to annotate).
// EXPECT-LINT: naked std sync primitive
// EXPECT-LINT: naked std sync primitive
#include <mutex>

#include "common/sync.h"

namespace lotusx {

std::mutex g_bad_mu;
std::once_flag g_init_once;  // allowed: not a lock

void Touch() {
  std::lock_guard<std::mutex> lock(g_bad_mu);
}

}  // namespace lotusx
