#!/usr/bin/env python3
"""Diff bench --json output against committed baselines.

Every LotusX bench binary except bench_micro (google-benchmark, which
has its own reporter) writes its results as a JSON array via --json:

    {"name": "postings_encode", "params": "...", "reps": 12,
     "p50_ns": ..., "p95_ns": ..., "p99_ns": ..., "mean_ns": ...,
     "bytes_per_op": ..., "allocs_per_op": ...}

Baselines live in bench/baselines/<bench>.json with the same schema
plus an optional per-record "gated" field naming the metrics that are
enforced for that record:

    "gated": ["p50_ns"]                        # wall-time gate
    "gated": ["bytes_per_op", "allocs_per_op"] # allocation gate
    "gated": true                              # shorthand for ["p50_ns"]

A gated metric regresses when the current value exceeds the baseline
by more than --threshold-pct (default 20). Only gated records can fail
the run; everything else is reported for trend-reading. The committed
baselines gate wall time only on records whose p50 is deterministic
(memory-accounting series) and gate allocation counts elsewhere:
smoke-mode p50s swing far more than 20% run-to-run on shared CI
runners, while bytes/allocs per op are exact and catch the same
accidental-work regressions (an extra copy, a dropped reserve, a
disabled kill switch re-enabling aggregation).

Records are paired by (name, ordinal-within-name) per file: series
names repeat across parameter sweeps, and params strings carry
machine-dependent values (worker counts), so params are shown for
context but never matched on.

Usage:
  tools/bench_compare.py --current bench-json/
      [--baselines bench/baselines] [--threshold-pct 20] [--update]

--update rewrites each baseline file that has a current counterpart
from the current run, preserving the existing gated flags by
(name, ordinal). New baseline files start ungated; tag records by
hand (or with a one-off script) after checking their stability.
"""

import argparse
import json
import os
import sys

GATE_METRICS = ("p50_ns", "bytes_per_op", "allocs_per_op")


def load_records(path):
    with open(path) as f:
        records = json.load(f)
    if not isinstance(records, list):
        raise ValueError(f"{path}: expected a JSON array of records")
    return records


def gated_metrics(record):
    gated = record.get("gated", [])
    if gated is True:
        return ["p50_ns"]
    if gated in (False, None):
        return []
    for metric in gated:
        if metric not in GATE_METRICS:
            raise ValueError(f"unknown gated metric {metric!r} "
                             f"(expected one of {GATE_METRICS})")
    return list(gated)


def pair_key(records):
    """Yield (name, ordinal) keys, counting repeats of each name."""
    seen = {}
    for record in records:
        name = record["name"]
        ordinal = seen.get(name, 0)
        seen[name] = ordinal + 1
        yield (name, ordinal), record


def compare_file(bench, baseline_records, current_records, threshold_pct):
    """Return (lines, regressions) for one bench file."""
    current_by_key = dict(pair_key(current_records))
    lines = []
    regressions = []
    for key, base in pair_key(baseline_records):
        name, ordinal = key
        label = f"{bench}:{name}[{ordinal}]"
        gates = gated_metrics(base)
        current = current_by_key.get(key)
        if current is None:
            if gates:
                regressions.append(f"{label}: gated record missing from "
                                   "current run (bench renamed or dropped?)")
            else:
                lines.append(f"  {label}: missing from current run")
            continue
        for metric in GATE_METRICS:
            base_value = float(base.get(metric, 0.0))
            cur_value = float(current.get(metric, 0.0))
            if base_value <= 0.0:
                continue
            delta_pct = (cur_value - base_value) / base_value * 100.0
            gate = "GATED" if metric in gates else "     "
            lines.append(f"  {label} {metric:>13s} {gate} "
                         f"{base_value:>14.1f} -> {cur_value:>14.1f} "
                         f"({delta_pct:+7.1f}%)")
            if metric in gates and delta_pct > threshold_pct:
                regressions.append(
                    f"{label}: {metric} regressed {delta_pct:+.1f}% "
                    f"({base_value:.1f} -> {cur_value:.1f}, "
                    f"threshold {threshold_pct:.0f}%)")
    return lines, regressions


def update_baseline(baseline_path, baseline_records, current_records):
    """Rewrite a baseline from the current run, keeping gated flags."""
    flags = {key: record.get("gated")
             for key, record in pair_key(baseline_records)
             if record.get("gated")}
    updated = []
    for key, record in pair_key(current_records):
        record = dict(record)
        record.pop("gated", None)
        if key in flags:
            record["gated"] = flags[key]
        updated.append(record)
    with open(baseline_path, "w") as f:
        json.dump(updated, f, indent=1)
        f.write("\n")


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench --json output against baselines.")
    parser.add_argument("--current", required=True,
                        help="directory of <bench>.json files from this run")
    parser.add_argument("--baselines", default="bench/baselines",
                        help="directory of committed baseline files")
    parser.add_argument("--threshold-pct", type=float, default=20.0,
                        help="gated regression threshold (default 20)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite baselines from the current run, "
                             "preserving gated flags")
    args = parser.parse_args()

    baseline_files = sorted(f for f in os.listdir(args.baselines)
                            if f.endswith(".json"))
    if not baseline_files:
        print(f"no baseline files in {args.baselines}", file=sys.stderr)
        return 2

    all_regressions = []
    compared = 0
    for filename in baseline_files:
        bench = filename[:-len(".json")]
        baseline_path = os.path.join(args.baselines, filename)
        current_path = os.path.join(args.current, filename)
        baseline_records = load_records(baseline_path)
        if not os.path.exists(current_path):
            message = f"{bench}: no current run ({current_path} not found)"
            if any(gated_metrics(r) for r in baseline_records):
                all_regressions.append(message)
            else:
                print(message)
            continue
        current_records = load_records(current_path)
        if args.update:
            update_baseline(baseline_path, baseline_records, current_records)
            print(f"updated {baseline_path} "
                  f"({len(current_records)} records)")
            continue
        lines, regressions = compare_file(
            bench, baseline_records, current_records, args.threshold_pct)
        print(f"{bench}:")
        for line in lines:
            print(line)
        all_regressions.extend(regressions)
        compared += 1

    if args.update:
        return 0
    print()
    if all_regressions:
        print(f"{len(all_regressions)} gated regression(s):")
        for regression in all_regressions:
            print(f"  {regression}")
        return 1
    print(f"ok: no gated regressions across {compared} bench file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
