// The GUI substitute: drives a LotusX session through the line protocol
// (session/protocol.h) — exactly the operations the demo's browser canvas
// performs. Reads commands from stdin; with no piped input it replays a
// scripted session so the binary is self-demonstrating.
//
// Usage:
//   interactive_repl [file.xml]        # index a file, then read commands
//   echo "HELP" | interactive_repl     # scripted use
//   interactive_repl --validate [file.xml]   # audit index invariants
//   interactive_repl --verbose         # Info-level logging to stderr
//
// The log threshold also obeys LOTUSX_MIN_LOG_SEVERITY (info/warning/
// error/fatal); --verbose overrides it to info.

#include <cstring>
#include <iostream>
#include <string>
#include <unistd.h>

#include "common/logging.h"
#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "session/protocol.h"
#include "xml/writer.h"

namespace {

int RunLoop(lotusx::session::ProtocolInterpreter& interpreter,
            std::istream& in, bool echo) {
  std::string line;
  while (std::getline(in, line)) {
    if (echo) std::cout << "lotusx> " << line << "\n";
    auto response = interpreter.Execute(line);
    if (response.ok()) {
      if (!response->empty()) std::cout << *response << "\n";
    } else {
      std::cout << "error: " << response.status().ToString() << "\n";
    }
    if (echo) std::cout << "\n";
  }
  return 0;
}

constexpr std::string_view kScriptedSession =
    "HELP\n"
    "FIND icde 2005\n"
    "TYPE 0 // a\n"
    "ADD 50 0 article\n"
    "TYPE 1 / au\n"
    "ACCEPT 1 10 130\n"
    "TYPEVAL 2\n"
    "ADD 90 100 title\n"
    "EDGE 1 3 /\n"
    "OUTPUT 3\n"
    "ORDERED 1 ON\n"
    "QUERY\n"
    "RUN\n"
    "CHECKPOINT\n"
    "VALUE 2 ~ lu\n"
    "RUN\n"
    "UNDO\n"
    "QUERY\n"
    "EXPLAIN\n"
    "XPATH\n"
    "SHOW\n";

}  // namespace

int main(int argc, char** argv) {
  bool validate = false;
  const char* xml_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--validate") == 0) {
      validate = true;
    } else if (std::strcmp(argv[i], "--verbose") == 0) {
      lotusx::SetMinLogSeverity(lotusx::LogSeverity::kInfo);
    } else {
      xml_path = argv[i];
    }
  }
  lotusx::StatusOr<lotusx::Engine> engine =
      lotusx::Status::Internal("unset");
  if (xml_path != nullptr) {
    engine = lotusx::Engine::FromXmlFile(xml_path);
  } else {
    lotusx::datagen::DblpOptions options;
    options.num_publications = 500;
    engine = lotusx::Engine::FromXmlText(
        lotusx::xml::WriteXml(lotusx::datagen::GenerateDblp(options)));
  }
  if (!engine.ok()) {
    std::cerr << "cannot build engine: " << engine.status().ToString()
              << "\n";
    return 1;
  }
  if (validate) {
    lotusx::Status audit = engine->ValidateIndex();
    if (!audit.ok()) {
      std::cerr << "index audit FAILED: " << audit.ToString() << "\n";
      return 1;
    }
    std::cout << "index audit OK — " << engine->document().num_nodes()
              << " nodes, all invariants hold.\n";
    return 0;
  }
  std::cout << "LotusX interactive session — " << engine->document().num_nodes()
            << " nodes indexed. Type HELP for commands.\n\n";

  lotusx::session::Session session = engine->NewSession();
  lotusx::session::ProtocolInterpreter interpreter(&session);

  if (isatty(STDIN_FILENO) == 0) {
    // Piped input: consume it; if there is none at all, fall back to the
    // scripted demo below.
    if (std::cin.peek() != EOF) {
      return RunLoop(interpreter, std::cin, /*echo=*/true);
    }
    std::istringstream script{std::string(kScriptedSession)};
    return RunLoop(interpreter, script, /*echo=*/true);
  }
  return RunLoop(interpreter, std::cin, /*echo=*/false);
}
