// Federated search over several documents at once (lotusx::Collection),
// plus the introspection features: EXPLAIN plans, cardinality estimates,
// XPath/XQuery export of canvas queries, SVG rendering, and the query
// result cache.

#include <iostream>

#include "datagen/datagen.h"
#include "lotusx/collection.h"
#include "session/svg_export.h"
#include "twig/query_export.h"
#include "twig/query_parser.h"
#include "twig/selectivity.h"
#include "xml/writer.h"

int main() {
  // --- Build a three-document collection. ---------------------------------
  lotusx::Collection collection;
  {
    lotusx::datagen::DblpOptions options;
    options.num_publications = 2000;
    auto status = collection.AddXmlText(
        "dblp", lotusx::xml::WriteXml(lotusx::datagen::GenerateDblp(options)));
    if (!status.ok()) {
      std::cerr << status.ToString() << "\n";
      return 1;
    }
  }
  {
    lotusx::datagen::StoreOptions options;
    options.num_products = 800;
    (void)collection.AddXmlText(
        "store",
        lotusx::xml::WriteXml(lotusx::datagen::GenerateStore(options)));
  }
  {
    lotusx::datagen::XmarkOptions options;
    options.num_items = 300;
    (void)collection.AddXmlText(
        "auctions",
        lotusx::xml::WriteXml(lotusx::datagen::GenerateXmark(options)));
  }
  std::cout << "collection:";
  for (const std::string& name : collection.DocumentNames()) {
    auto engine = collection.Find(name);
    std::cout << " " << name << "("
              << (*engine)->document().num_nodes() << " nodes)";
  }
  std::cout << "\n\n";

  // --- Cross-document completion: what can a query root be? ---------------
  lotusx::autocomplete::TagRequest request;
  request.axis = lotusx::twig::Axis::kDescendant;
  request.prefix = "p";
  request.limit = 6;
  auto candidates = collection.CompleteTag(lotusx::twig::TwigQuery(), request);
  std::cout << "tags starting with 'p' anywhere in the collection:";
  for (const auto& candidate : *candidates) {
    std::cout << " " << candidate.text << "(" << candidate.frequency << ")";
  }
  std::cout << "\n\n";

  // --- A query that only one document can answer. --------------------------
  auto result = collection.Search("//person[profile]/name", /*top_k=*/5);
  std::cout << "//person[profile]/name -> " << result->hits.size()
            << " hits, all from:";
  for (const auto& hit : result->hits) {
    std::cout << " " << hit.document_name;
  }
  std::cout << "\n\n";

  // --- EXPLAIN on one engine. ----------------------------------------------
  auto dblp = collection.Find("dblp");
  auto query =
      lotusx::twig::ParseQuery(R"(//article[year[="2005"]]/title)").value();
  std::cout << *lotusx::twig::Explain((*dblp)->indexed(), query) << "\n";

  // --- Export the same query for external engines. -------------------------
  std::cout << "as XPath:  " << *lotusx::twig::ToXPath(query) << "\n";
  std::cout << "as XQuery:\n" << *lotusx::twig::ToXQuery(query) << "\n\n";

  // --- Canvas -> SVG. -------------------------------------------------------
  lotusx::session::Canvas canvas;
  auto article = canvas.AddNode(60, 0, "article");
  auto year = canvas.AddNode(0, 120, "year");
  auto title = canvas.AddNode(130, 120, "title");
  (void)canvas.Connect(article, year, lotusx::twig::Axis::kChild);
  (void)canvas.Connect(article, title, lotusx::twig::Axis::kChild);
  (void)canvas.SetPredicate(
      year, {lotusx::twig::ValuePredicate::Op::kEquals, "2005"});
  (void)canvas.SetOutput(title);
  std::string svg = lotusx::session::RenderCanvasSvg(canvas);
  std::cout << "canvas SVG: " << svg.size() << " bytes ("
            << svg.substr(0, 60) << "...)\n\n";

  // --- Result cache. --------------------------------------------------------
  lotusx::datagen::DblpOptions cache_corpus;
  cache_corpus.num_publications = 2000;
  auto cached_engine = lotusx::Engine::FromXmlText(
      lotusx::xml::WriteXml(lotusx::datagen::GenerateDblp(cache_corpus)));
  cached_engine->EnableResultCache(16);
  for (int i = 0; i < 3; ++i) {
    (void)cached_engine->Search(query);
  }
  std::cout << "result cache after 3 identical searches: "
            << cached_engine->cache_hits() << " hits, "
            << cached_engine->cache_misses() << " miss(es)\n";
  return 0;
}
