// Product-catalog scenario: order-sensitive twig queries and automatic
// query rewriting on a store catalog with heterogeneous paths — the two
// "complex query" features the LotusX abstract highlights.

#include <iostream>

#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "xml/writer.h"

namespace {

void Report(const lotusx::Engine& engine, std::string_view label,
            const lotusx::StatusOr<lotusx::SearchResult>& result,
            size_t show = 3) {
  std::cout << label << "\n";
  if (!result.ok()) {
    std::cout << "  error: " << result.status().ToString() << "\n";
    return;
  }
  if (!result->rewrites_applied.empty()) {
    std::cout << "  rewritten to " << result->executed_query.ToString()
              << " (penalty " << result->rewrite_penalty << "):\n";
    for (const std::string& step : result->rewrites_applied) {
      std::cout << "    - " << step << "\n";
    }
  }
  std::cout << "  " << result->results.size() << " answers via "
            << result->stats.algorithm << "\n";
  for (size_t i = 0; i < result->results.size() && i < show; ++i) {
    std::cout << "    " << engine.Snippet(result->results[i].output, 100)
              << "\n";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  lotusx::datagen::StoreOptions options;
  options.num_products = 1500;
  options.seed = 7;
  lotusx::xml::Document document = lotusx::datagen::GenerateStore(options);
  std::string xml = lotusx::xml::WriteXml(document);
  auto engine = lotusx::Engine::FromXmlText(xml);
  if (!engine.ok()) {
    std::cerr << engine.status().ToString() << "\n";
    return 1;
  }
  std::cout << "store catalog: " << engine->document().num_nodes()
            << " nodes, " << engine->indexed().dataguide().num_paths()
            << " distinct paths\n\n";

  // 1. A plain twig: products with a 5-star review, returning names.
  Report(*engine, "products with a 5-star review:",
         engine->Search(R"(//product[review/rating[="5"]]/name!)"));

  // 2. Order-sensitive: in the catalog, <name> always precedes <price>
  //    inside a product, so the ordered query matches...
  Report(*engine, "ordered: name before price (holds by schema):",
         engine->Search("//product[ordered][name][price]"));

  //    ...and the reversed constraint matches nothing without rewriting.
  lotusx::SearchOptions strict;
  strict.rewrite_on_empty = false;
  Report(*engine, "ordered: price before name (impossible, no rewrite):",
         engine->Search("//product[ordered][price][name]", strict));

  // 3. Rewriting in action: a child axis that should be descendant.
  Report(*engine, "wrong axis //category/rating (rating is deeper):",
         engine->Search("//category/rating"));

  // 4. Rewriting a misspelled tag.
  Report(*engine, "misspelled //product/prise:",
         engine->Search("//product/prise"));

  // 5. Over-constrained value: nothing equals this, keywords recover it.
  Report(*engine, "over-constrained review comment:",
         engine->Search(R"(//review/comment[="great"])"));
  return 0;
}
