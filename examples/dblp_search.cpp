// DBLP-style bibliographic search: the workload the LotusX demo was shown
// on. Generates a synthetic DBLP corpus, then replays the interaction the
// paper describes — a user who knows neither the schema nor the content
// builds a twig query letter by letter, guided by position-aware
// auto-completion, and finally executes it. Also demonstrates index
// persistence (build once, reload instantly).

#include <iostream>

#include "common/timer.h"
#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "xml/writer.h"

namespace {

using lotusx::autocomplete::TagRequest;
using lotusx::twig::Axis;
using lotusx::twig::TwigQuery;

void ShowCandidates(std::string_view while_typing,
                    const std::vector<lotusx::autocomplete::Candidate>& cs) {
  std::cout << "  typing \"" << while_typing << "\" ->";
  for (const auto& c : cs) {
    std::cout << " " << c.text << "(" << c.frequency << ")";
  }
  std::cout << "\n";
}

}  // namespace

int main() {
  // Build a ~100k-node bibliography.
  lotusx::datagen::DblpOptions corpus;
  corpus.num_publications = 8000;
  corpus.seed = 2012;
  lotusx::Timer build_timer;
  lotusx::xml::Document document = lotusx::datagen::GenerateDblp(corpus);
  std::cout << "generated DBLP-like corpus: " << document.num_nodes()
            << " nodes\n";
  lotusx::index::IndexedDocument indexed(std::move(document));
  std::cout << "indexed in " << indexed.build_stats().total_ms << " ms ("
            << indexed.build_stats().total_bytes() / (1024 * 1024)
            << " MiB of indexes)\n\n";

  lotusx::autocomplete::CompletionEngine completion(indexed);
  lotusx::ranking::Ranker ranker(indexed);

  // --- The user starts with an empty canvas and types "a"... ------------
  std::cout << "step 1: choosing the query root\n";
  TagRequest root_request;
  root_request.axis = Axis::kDescendant;
  root_request.prefix = "a";
  auto roots = completion.CompleteTag(TwigQuery(), root_request);
  ShowCandidates("//a", *roots);

  // The user accepts "article".
  TwigQuery query;
  query.AddRoot("article");

  // --- Extending //article with a child: the engine only offers tags ----
  // --- that really occur under article (position-awareness). ------------
  std::cout << "\nstep 2: extending //article/\n";
  TagRequest child_request;
  child_request.anchor = 0;
  child_request.axis = Axis::kChild;
  auto children = completion.CompleteTag(query, child_request);
  ShowCandidates("//article/", *children);
  child_request.prefix = "au";
  auto authors = completion.CompleteTag(query, child_request);
  ShowCandidates("//article/au", *authors);

  int author = query.AddChild(0, Axis::kChild, "author");

  // --- Typing into the author's value box: term completion scoped to ----
  // --- author values. ----------------------------------------------------
  std::cout << "\nstep 3: typing an author name\n";
  auto terms = completion.CompleteValue(query, author, "", 8,
                                        /*position_aware=*/true);
  ShowCandidates("author ~ \"\"", *terms);
  const std::string chosen_term =
      terms->empty() ? "lu" : (*terms)[0].text;
  query.SetPredicate(author,
                     {lotusx::twig::ValuePredicate::Op::kContains,
                      chosen_term});

  // --- Add the output node and run. --------------------------------------
  int title = query.AddChild(0, Axis::kChild, "title");
  query.SetOutput(title);
  std::cout << "\nstep 4: executing " << query.ToString() << "\n";

  lotusx::Timer query_timer;
  auto result = lotusx::twig::Evaluate(indexed, query);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  lotusx::ranking::RankingOptions top;
  top.top_k = 5;
  auto ranked = ranker.Rank(query, result->matches, top);
  std::cout << "  " << result->matches.size() << " matches via "
            << result->stats.algorithm << " in "
            << query_timer.ElapsedMillis() << " ms; top "
            << ranked.size() << ":\n";
  for (const auto& hit : ranked) {
    std::cout << "    [" << hit.score << "] "
              << indexed.document().ContentString(hit.output) << "\n";
  }

  // --- Persistence: save the index, reload, and query again. -------------
  std::cout << "\nstep 5: index persistence\n";
  const std::string path = "/tmp/lotusx_dblp_example.ltsx";
  if (auto status = indexed.SaveTo(path); !status.ok()) {
    std::cerr << "save failed: " << status.ToString() << "\n";
    return 1;
  }
  lotusx::Timer load_timer;
  auto reloaded = lotusx::index::IndexedDocument::LoadFrom(path);
  if (!reloaded.ok()) {
    std::cerr << "load failed: " << reloaded.status().ToString() << "\n";
    return 1;
  }
  auto again = lotusx::twig::Evaluate(*reloaded, query);
  std::cout << "  reloaded in " << load_timer.ElapsedMillis()
            << " ms; same query -> " << again->matches.size()
            << " matches (was " << result->matches.size() << ")\n";
  std::remove(path.c_str());
  return 0;
}
