// Quickstart: load an XML document, run twig queries, print ranked
// answers. Exercises the three calls every LotusX user starts with:
// Engine::FromXmlText, Engine::Search, Engine::Snippet.

#include <iostream>

#include "lotusx/engine.h"

namespace {

constexpr std::string_view kBibliography = R"(<dblp>
  <article key="lu05">
    <author>jiaheng lu</author>
    <author>ting chen</author>
    <title>from region encoding to extended dewey</title>
    <year>2005</year>
    <journal>vldb</journal>
  </article>
  <article key="lin12">
    <author>chunbin lin</author>
    <author>jiaheng lu</author>
    <title>lotusx a position aware xml graphical search system</title>
    <year>2012</year>
    <journal>icde</journal>
  </article>
  <book key="ling09">
    <author>tok wang ling</author>
    <title>advances in xml data management</title>
    <year>2009</year>
    <publisher>springer</publisher>
  </book>
</dblp>)";

}  // namespace

int main() {
  // 1. Build an engine (parses the XML and constructs every index).
  auto engine = lotusx::Engine::FromXmlText(kBibliography);
  if (!engine.ok()) {
    std::cerr << "failed to load: " << engine.status().ToString() << "\n";
    return 1;
  }
  std::cout << "indexed " << engine->document().num_nodes()
            << " nodes, " << engine->indexed().dataguide().num_paths()
            << " distinct paths\n\n";

  // 2. A twig query: articles by an author whose name contains "lu",
  //    returning their titles.
  const std::string query = R"(//article[author[~"lu"]]/title)";
  std::cout << "query: " << query << "\n";
  auto result = engine->Search(query);
  if (!result.ok()) {
    std::cerr << "query failed: " << result.status().ToString() << "\n";
    return 1;
  }
  for (const auto& hit : result->results) {
    std::cout << "  score " << hit.score << "  "
              << engine->Snippet(hit.output) << "\n";
  }

  // 3. A misspelled query: the rewriter repairs it automatically.
  const std::string typo = "//article/titel";
  std::cout << "\nquery: " << typo << "\n";
  auto repaired = engine->Search(typo);
  if (!repaired.ok()) {
    std::cerr << "query failed: " << repaired.status().ToString() << "\n";
    return 1;
  }
  if (!repaired->rewrites_applied.empty()) {
    std::cout << "  (rewritten as " << repaired->executed_query.ToString()
              << ", penalty " << repaired->rewrite_penalty << ")\n";
  }
  for (const auto& hit : repaired->results) {
    std::cout << "  score " << hit.score << "  "
              << engine->Snippet(hit.output) << "\n";
  }

  // 4. Position-aware completion: what can follow //article/ ?
  lotusx::twig::TwigQuery partial;
  partial.AddRoot("article");
  lotusx::autocomplete::TagRequest request;
  request.anchor = 0;
  request.axis = lotusx::twig::Axis::kChild;
  auto candidates = engine->CompleteTag(partial, request);
  std::cout << "\ncandidates under //article/:";
  for (const auto& candidate : *candidates) {
    std::cout << " " << candidate.text << "(" << candidate.frequency << ")";
  }
  std::cout << "\n";
  return 0;
}
