// TCP front end for the LotusX session protocol: indexes one XML
// document (or a generated DBLP corpus) and serves it over the wire
// protocol of docs/PROTOCOL.md "Wire transport" — newline-terminated
// command lines in, byte-counted OK/ERR frames out, pipelining welcome.
//
// Usage:
//   lotusx_server [file.xml] [--host H] [--port N] [--workers N]
//                 [--max-connections N] [--idle-timeout-ms N]
//                 [--admin-port N] [--verbose]
//
// --port 0 (the default) binds an ephemeral port; the chosen one is
// announced on stdout as "listening on HOST:PORT" (tools/server_smoke.py
// parses that line). --admin-port enables the HTTP admin plane
// (/metrics, /healthz, /slowlog.json, /tracez) on a second listener,
// announced as "admin listening on HOST:PORT"; it is off by default.
// SIGTERM/SIGINT trigger a graceful drain: stop accepting, answer
// everything in flight, flush, exit 0 — the admin plane keeps serving
// /healthz (as 503) until the drain completes.

#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "datagen/datagen.h"
#include "lotusx/engine.h"
#include "net/server.h"
#include "xml/writer.h"

namespace {

// The signal handler may only touch async-signal-safe state;
// Server::RequestDrain is exactly that (one atomic store + one eventfd
// write).
lotusx::net::Server* g_server = nullptr;

void HandleShutdownSignal(int /*signum*/) {
  if (g_server != nullptr) g_server->RequestDrain();
}

bool ParseIntFlag(const char* name, const char* arg, const char* value,
                  long* out) {
  if (std::strcmp(arg, name) != 0) return false;
  if (value == nullptr) {
    std::cerr << name << " needs a value\n";
    std::exit(2);
  }
  char* end = nullptr;
  *out = std::strtol(value, &end, 10);
  if (end == value || *end != '\0' || *out < 0) {
    std::cerr << name << " needs a non-negative integer, got '" << value
              << "'\n";
    std::exit(2);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  lotusx::net::ServerOptions options;
  const char* xml_path = nullptr;
  for (int i = 1; i < argc; ++i) {
    const char* next = i + 1 < argc ? argv[i + 1] : nullptr;
    long value = 0;
    if (std::strcmp(argv[i], "--verbose") == 0) {
      lotusx::SetMinLogSeverity(lotusx::LogSeverity::kInfo);
    } else if (std::strcmp(argv[i], "--host") == 0) {
      if (next == nullptr) {
        std::cerr << "--host needs a value\n";
        return 2;
      }
      options.host = next;
      ++i;
    } else if (ParseIntFlag("--port", argv[i], next, &value)) {
      options.port = static_cast<uint16_t>(value);
      ++i;
    } else if (ParseIntFlag("--workers", argv[i], next, &value)) {
      options.num_workers = static_cast<size_t>(value);
      ++i;
    } else if (ParseIntFlag("--max-connections", argv[i], next, &value)) {
      options.max_connections = static_cast<size_t>(value);
      ++i;
    } else if (ParseIntFlag("--idle-timeout-ms", argv[i], next, &value)) {
      options.idle_timeout_ms = static_cast<int>(value);
      ++i;
    } else if (ParseIntFlag("--admin-port", argv[i], next, &value)) {
      options.admin_port = static_cast<int>(value);
      ++i;
    } else if (argv[i][0] == '-') {
      std::cerr << "unknown flag '" << argv[i] << "'\n";
      return 2;
    } else {
      xml_path = argv[i];
    }
  }

  lotusx::StatusOr<lotusx::Engine> engine =
      lotusx::Status::Internal("unset");
  if (xml_path != nullptr) {
    engine = lotusx::Engine::FromXmlFile(xml_path);
  } else {
    lotusx::datagen::DblpOptions corpus;
    corpus.num_publications = 500;
    engine = lotusx::Engine::FromXmlText(
        lotusx::xml::WriteXml(lotusx::datagen::GenerateDblp(corpus)));
  }
  if (!engine.ok()) {
    std::cerr << "cannot build engine: " << engine.status().ToString()
              << "\n";
    return 1;
  }

  auto server = lotusx::net::Server::Start(engine->indexed(), options);
  if (!server.ok()) {
    std::cerr << "cannot start server: " << server.status().ToString()
              << "\n";
    return 1;
  }
  g_server = server->get();
  std::signal(SIGTERM, HandleShutdownSignal);
  std::signal(SIGINT, HandleShutdownSignal);
  std::signal(SIGPIPE, SIG_IGN);

  // Flushed immediately: tools/server_smoke.py waits for this line to
  // learn the ephemeral port.
  std::cout << "indexed " << engine->document().num_nodes()
            << " nodes; listening on " << options.host << ":"
            << (*server)->port() << "\n"
            << std::flush;
  if (options.admin_port >= 0) {
    std::cout << "admin listening on " << options.host << ":"
              << (*server)->admin_port() << "\n"
              << std::flush;
  }

  (*server)->AwaitTermination();
  std::cout << "drained, bye\n" << std::flush;
  g_server = nullptr;
  return 0;
}
