#include "common/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "common/trace.h"

namespace lotusx::metrics {
namespace {

// ---------------------------------------------------------------- basics

TEST(MetricsTest, CounterStartsAtZeroAndAccumulates) {
  Registry registry;
  Counter* counter = registry.GetCounter("lotusx_test_total");
  EXPECT_EQ(counter->value(), 0u);
  counter->Increment();
  counter->Increment(41);
  EXPECT_EQ(counter->value(), 42u);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Registry registry;
  Gauge* gauge = registry.GetGauge("lotusx_test_depth");
  gauge->Set(10);
  gauge->Add(-3);
  EXPECT_EQ(gauge->value(), 7);
  gauge->Add(-10);
  EXPECT_EQ(gauge->value(), -3);  // gauges are signed
}

TEST(MetricsTest, GetOrCreateReturnsStablePointers) {
  Registry registry;
  Counter* a = registry.GetCounter("lotusx_x_total", {{"k", "v"}});
  Counter* b = registry.GetCounter("lotusx_x_total", {{"k", "v"}});
  Counter* c = registry.GetCounter("lotusx_x_total", {{"k", "other"}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  a->Increment();
  EXPECT_EQ(b->value(), 1u);
  EXPECT_EQ(c->value(), 0u);
}

TEST(MetricsTest, SameNameDifferentKindsCoexist) {
  Registry registry;
  // Counters, gauges, and histograms live in separate namespaces.
  Counter* counter = registry.GetCounter("lotusx_thing");
  Gauge* gauge = registry.GetGauge("lotusx_thing");
  counter->Increment(5);
  gauge->Set(-5);
  EXPECT_EQ(counter->value(), 5u);
  EXPECT_EQ(gauge->value(), -5);
}

TEST(MetricsTest, EnabledTogglesAndReturnsPrevious) {
  ASSERT_TRUE(Enabled());  // default on
  EXPECT_TRUE(SetEnabled(false));
  EXPECT_FALSE(Enabled());
  EXPECT_FALSE(SetEnabled(true));
  EXPECT_TRUE(Enabled());
}

// ------------------------------------------------------------- histogram

TEST(MetricsTest, HistogramBucketsObservations) {
  Histogram histogram({10.0, 100.0});
  histogram.Observe(5);     // bucket 0 (<= 10)
  histogram.Observe(10);    // bucket 0 (le is inclusive)
  histogram.Observe(50);    // bucket 1 (<= 100)
  histogram.Observe(1000);  // overflow bucket
  HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.counts.size(), 3u);
  EXPECT_EQ(snapshot.counts[0], 2u);
  EXPECT_EQ(snapshot.counts[1], 1u);
  EXPECT_EQ(snapshot.counts[2], 1u);
  EXPECT_EQ(snapshot.count, 4u);
  EXPECT_DOUBLE_EQ(snapshot.sum, 1065.0);
  EXPECT_DOUBLE_EQ(snapshot.Mean(), 1065.0 / 4.0);
}

TEST(MetricsTest, HistogramQuantiles) {
  Histogram histogram({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 50; ++i) histogram.Observe(0.5);  // bucket <=1
  for (int i = 0; i < 50; ++i) histogram.Observe(3.0);  // bucket <=4
  HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_LE(snapshot.Quantile(0.25), 1.0);
  double p99 = snapshot.Quantile(0.99);
  EXPECT_GT(p99, 2.0);
  EXPECT_LE(p99, 4.0);
  // Empty histogram quantiles are zero.
  EXPECT_DOUBLE_EQ(Histogram({1.0}).Snapshot().Quantile(0.5), 0.0);
}

TEST(MetricsTest, HistogramOverflowQuantileReportsLargestBound) {
  Histogram histogram({1.0, 2.0});
  histogram.Observe(100.0);
  EXPECT_DOUBLE_EQ(histogram.Snapshot().Quantile(0.99), 2.0);
}

TEST(MetricsTest, DefaultLatencyLadderIsSortedAndSpansUsecToSeconds) {
  const std::vector<double>& bounds = Histogram::LatencyBucketsUsec();
  ASSERT_GE(bounds.size(), 10u);
  EXPECT_DOUBLE_EQ(bounds.front(), 1.0);
  EXPECT_GE(bounds.back(), 1e6);  // at least one second
  for (size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// ------------------------------------------------------------ exposition

TEST(MetricsTest, RenderTextExposesAllKinds) {
  Registry registry;
  registry.GetCounter("lotusx_req_total", {{"kind", "tag"}})->Increment(3);
  registry.GetGauge("lotusx_depth")->Set(2);
  Histogram* histogram =
      registry.GetHistogram("lotusx_lat_usec", {}, {10.0, 100.0});
  histogram->Observe(5);
  histogram->Observe(50);
  std::string text = registry.RenderText();
  EXPECT_NE(text.find("lotusx_req_total{kind=\"tag\"} 3"), std::string::npos)
      << text;
  EXPECT_NE(text.find("lotusx_depth 2"), std::string::npos) << text;
  // Cumulative buckets plus +Inf, _sum, _count.
  EXPECT_NE(text.find("lotusx_lat_usec_bucket{le=\"10\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lotusx_lat_usec_bucket{le=\"100\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lotusx_lat_usec_bucket{le=\"+Inf\"} 2"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("lotusx_lat_usec_sum 55"), std::string::npos) << text;
  EXPECT_NE(text.find("lotusx_lat_usec_count 2"), std::string::npos) << text;
}

TEST(MetricsTest, RenderTextEscapesLabelValues) {
  Registry registry;
  registry.GetCounter("lotusx_q_total", {{"query", "a\"b\\c\nd"}})
      ->Increment();
  std::string text = registry.RenderText();
  EXPECT_NE(text.find(R"(query="a\"b\\c\nd")"), std::string::npos) << text;
}

TEST(MetricsTest, SnapshotAggregationHelpers) {
  Registry registry;
  registry.GetCounter("lotusx_hits_total", {{"shard", "0"}})->Increment(2);
  registry.GetCounter("lotusx_hits_total", {{"shard", "1"}})->Increment(3);
  registry.GetGauge("lotusx_depth")->Set(7);
  registry.GetHistogram("lotusx_lat_usec", {{"s", "a"}})->Observe(1);
  registry.GetHistogram("lotusx_lat_usec", {{"s", "b"}})->Observe(2);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterTotal("lotusx_hits_total"), 5u);
  EXPECT_EQ(snapshot.CounterTotal("lotusx_absent"), 0u);
  EXPECT_EQ(snapshot.HistogramCountTotal("lotusx_lat_usec"), 2u);
  EXPECT_EQ(snapshot.GaugeValueOr("lotusx_depth"), 7);
  EXPECT_EQ(snapshot.GaugeValueOr("lotusx_absent", -1), -1);
}

TEST(MetricsTest, ResetForTestZeroesButKeepsRegistrations) {
  Registry registry;
  Counter* counter = registry.GetCounter("lotusx_n_total");
  Histogram* histogram = registry.GetHistogram("lotusx_h_usec");
  counter->Increment(9);
  histogram->Observe(1);
  registry.ResetForTest();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  // Same pointer after reset.
  EXPECT_EQ(registry.GetCounter("lotusx_n_total"), counter);
}

// ------------------------------------------------------------ contention

TEST(MetricsTest, ConcurrentCounterIncrementsEqualSerialSum) {
  Registry registry;
  Counter* counter = registry.GetCounter("lotusx_contended_total");
  constexpr int kThreads = 8;
  constexpr int kIncrements = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncrements; ++i) counter->Increment();
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(counter->value(),
            static_cast<uint64_t>(kThreads) * kIncrements);
}

TEST(MetricsTest, ConcurrentHistogramObservationsAllLand) {
  Histogram histogram({1.0, 10.0, 100.0});
  constexpr int kThreads = 8;
  constexpr int kObservations = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kObservations; ++i) {
        histogram.Observe(static_cast<double>(t % 3) * 40.0 + 0.5);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  HistogramSnapshot snapshot = histogram.Snapshot();
  constexpr uint64_t kTotal =
      static_cast<uint64_t>(kThreads) * kObservations;
  EXPECT_EQ(snapshot.count, kTotal);
  uint64_t bucket_sum = 0;
  for (uint64_t bucket : snapshot.counts) bucket_sum += bucket;
  EXPECT_EQ(bucket_sum, kTotal);
}

TEST(MetricsTest, SnapshotsWhileWritingAreNeverTorn) {
  // Writers observe the constant 1.0 while a reader snapshots: in every
  // snapshot the buckets and the sum must cover at least `count`
  // complete observations (the release/acquire pairing on count_).
  Histogram histogram({10.0});
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) histogram.Observe(1.0);
    });
  }
  for (int i = 0; i < 2'000; ++i) {
    HistogramSnapshot snapshot = histogram.Snapshot();
    uint64_t bucket_sum = 0;
    for (uint64_t bucket : snapshot.counts) bucket_sum += bucket;
    ASSERT_GE(bucket_sum, snapshot.count);
    ASSERT_GE(snapshot.sum, static_cast<double>(snapshot.count));
  }
  stop.store(true);
  for (std::thread& writer : writers) writer.join();
}

TEST(MetricsTest, ConcurrentRegistrationIsSafe) {
  Registry registry;
  std::vector<std::thread> threads;
  std::vector<Counter*> seen(8, nullptr);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 100; ++i) {
        Counter* counter = registry.GetCounter(
            "lotusx_race_total", {{"i", std::to_string(i % 4)}});
        counter->Increment();
        if (i == 0) seen[static_cast<size_t>(t)] = counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.CounterTotal("lotusx_race_total"), 800u);
  for (Counter* counter : seen) EXPECT_EQ(counter, seen[0]);
}

}  // namespace
}  // namespace lotusx::metrics

namespace lotusx::trace {
namespace {

/// Keeps a StageSpan open long enough that its elapsed time is strictly
/// positive on any timer granularity.
void BurnSomeTime() {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 20'000; ++i) sink = sink + i;
}

TEST(TraceTest, StageNamesCoverPipeline) {
  EXPECT_EQ(StageName(Stage::kParse), "parse");
  EXPECT_EQ(StageName(Stage::kPlan), "plan");
  EXPECT_EQ(StageName(Stage::kExecute), "execute");
  EXPECT_EQ(StageName(Stage::kRank), "rank");
  EXPECT_EQ(StageName(Stage::kRewrite), "rewrite");
  EXPECT_EQ(StageName(Stage::kSerialize), "serialize");
}

TEST(TraceTest, StageSpanFeedsStageHistogram) {
  metrics::MetricsSnapshot before =
      metrics::Registry::Default().Snapshot();
  {
    QueryTrace query_trace("test");
    StageSpan span(Stage::kRank);
  }
  metrics::MetricsSnapshot after = metrics::Registry::Default().Snapshot();
  EXPECT_EQ(after.HistogramCountTotal("lotusx_stage_latency_usec"),
            before.HistogramCountTotal("lotusx_stage_latency_usec") + 1);
  EXPECT_EQ(after.HistogramCountTotal("lotusx_search_latency_usec"),
            before.HistogramCountTotal("lotusx_search_latency_usec") + 1);
}

TEST(TraceTest, CurrentTracksNesting) {
  EXPECT_EQ(QueryTrace::Current(), nullptr);
  {
    QueryTrace outer("outer");
    EXPECT_EQ(QueryTrace::Current(), &outer);
    {
      QueryTrace inner("inner");
      EXPECT_EQ(QueryTrace::Current(), &inner);
    }
    EXPECT_EQ(QueryTrace::Current(), &outer);
  }
  EXPECT_EQ(QueryTrace::Current(), nullptr);
}

TEST(TraceTest, StageSpanAccumulatesIntoCurrentTrace) {
  QueryTrace query_trace("test");
  {
    StageSpan span(Stage::kExecute);
    BurnSomeTime();
  }
  {
    StageSpan span(Stage::kExecute);
    BurnSomeTime();
  }
  EXPECT_GT(query_trace.stage_millis(Stage::kExecute), 0.0);
  EXPECT_EQ(query_trace.stage_millis(Stage::kParse), 0.0);
}

TEST(TraceTest, SlowQueryThresholdRoundTrips) {
  double previous = SetSlowQueryThresholdMillis(123.5);
  EXPECT_DOUBLE_EQ(SlowQueryThresholdMillis(), 123.5);
  SetSlowQueryThresholdMillis(previous);
}

TEST(TraceTest, SlowQueryLogLineHasStructuredFields) {
  std::string captured;
  LogSink previous_sink =
      SetLogSinkForTest([&](std::string_view line) { captured += line; });
  double previous_threshold = SetSlowQueryThresholdMillis(0);  // log all
  {
    QueryTrace query_trace("engine");
    query_trace.set_query("//article[author]/title");
    query_trace.set_detail("twigstack");
    {
      StageSpan span(Stage::kExecute);
      BurnSomeTime();
    }
  }
  SetSlowQueryThresholdMillis(previous_threshold);
  SetLogSinkForTest(std::move(previous_sink));
  EXPECT_NE(captured.find("slow-query"), std::string::npos) << captured;
  EXPECT_NE(captured.find("source=engine"), std::string::npos) << captured;
  EXPECT_NE(captured.find("total_ms="), std::string::npos) << captured;
  EXPECT_NE(captured.find("algorithm=twigstack"), std::string::npos)
      << captured;
  EXPECT_NE(captured.find("query=\"//article[author]/title\""),
            std::string::npos)
      << captured;
  EXPECT_NE(captured.find("execute:"), std::string::npos) << captured;
}

TEST(TraceTest, NegativeThresholdSilencesSlowQueryLog) {
  std::string captured;
  LogSink previous_sink =
      SetLogSinkForTest([&](std::string_view line) { captured += line; });
  double previous_threshold = SetSlowQueryThresholdMillis(-1);
  {
    QueryTrace query_trace("engine");
    query_trace.set_query("//a");
  }
  SetSlowQueryThresholdMillis(previous_threshold);
  SetLogSinkForTest(std::move(previous_sink));
  EXPECT_EQ(captured.find("slow-query"), std::string::npos) << captured;
}

// In verbose mode (threshold Info) every query below the slow threshold
// still emits a "query ..." trace line; at the default Warning threshold
// fast queries stay silent.
TEST(TraceTest, VerboseModeTracesFastQueriesAtInfo) {
  std::string captured;
  LogSink previous_sink =
      SetLogSinkForTest([&](std::string_view line) { captured += line; });
  double previous_threshold =
      SetSlowQueryThresholdMillis(1e9);  // nothing is "slow"
  {
    QueryTrace query_trace("engine");
    query_trace.set_query("//a");
  }
  EXPECT_EQ(captured.find("query"), std::string::npos) << captured;

  LogSeverity previous_severity = SetMinLogSeverity(LogSeverity::kInfo);
  {
    QueryTrace query_trace("engine");
    query_trace.set_query("//a");
    query_trace.set_detail("twigstack");
  }
  SetMinLogSeverity(previous_severity);
  SetSlowQueryThresholdMillis(previous_threshold);
  SetLogSinkForTest(std::move(previous_sink));
  EXPECT_NE(captured.find("query source=engine"), std::string::npos)
      << captured;
  EXPECT_EQ(captured.find("slow-query"), std::string::npos) << captured;
  EXPECT_NE(captured.find("algorithm=twigstack"), std::string::npos)
      << captured;
}

TEST(TraceTest, DisabledMetricsSkipRecording) {
  bool was_enabled = metrics::SetEnabled(false);
  metrics::MetricsSnapshot before =
      metrics::Registry::Default().Snapshot();
  {
    QueryTrace query_trace("test");
    StageSpan span(Stage::kPlan);
  }
  metrics::MetricsSnapshot after = metrics::Registry::Default().Snapshot();
  metrics::SetEnabled(was_enabled);
  EXPECT_EQ(after.HistogramCountTotal("lotusx_search_latency_usec"),
            before.HistogramCountTotal("lotusx_search_latency_usec"));
  EXPECT_EQ(after.HistogramCountTotal("lotusx_stage_latency_usec"),
            before.HistogramCountTotal("lotusx_stage_latency_usec"));
}

}  // namespace
}  // namespace lotusx::trace
