// End-to-end coverage of the TCP serving layer (net/): the line framer
// and frame codec in isolation, then real client sockets against a live
// epoll server — pipelining, error frames, backpressure limits,
// connection caps, idle timeouts, and graceful drain.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <array>
#include <atomic>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/statement_store.h"
#include "common/trace.h"
#include "common/trace_store.h"
#include "twig/fingerprint.h"
#include "net/http_admin.h"
#include "net/line_framer.h"
#include "net/server.h"
#include "net/wire.h"
#include "tests/test_util.h"

namespace lotusx::net {
namespace {

using lotusx::testing::MustIndex;

// ------------------------------------------------------------ LineFramer

TEST(LineFramerTest, ReassemblesPartialReads) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  ASSERT_TRUE(framer.Feed("ADD 1", &lines).ok());
  EXPECT_TRUE(lines.empty());
  EXPECT_EQ(framer.buffered(), 5u);
  ASSERT_TRUE(framer.Feed("0 20 article\nQUE", &lines).ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "ADD 10 20 article");
  ASSERT_TRUE(framer.Feed("RY\n", &lines).ok());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_EQ(lines[1], "QUERY");
  EXPECT_EQ(framer.buffered(), 0u);
}

TEST(LineFramerTest, SplitsMultipleCommandsInOneRead) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  ASSERT_TRUE(framer.Feed("HELP\nSHOW\nQUERY\n", &lines).ok());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "HELP");
  EXPECT_EQ(lines[1], "SHOW");
  EXPECT_EQ(lines[2], "QUERY");
}

TEST(LineFramerTest, StripsCarriageReturnAndKeepsEmptyLines) {
  LineFramer framer(1024);
  std::vector<std::string> lines;
  ASSERT_TRUE(framer.Feed("HELP\r\n\r\nSHOW\n", &lines).ok());
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "HELP");
  EXPECT_EQ(lines[1], "");
  EXPECT_EQ(lines[2], "SHOW");
}

TEST(LineFramerTest, OversizedLinePoisonsTheStream) {
  LineFramer framer(8);
  std::vector<std::string> lines;
  // Completed lines before the overflow are still delivered.
  Status status = framer.Feed("SHOW\n0123456789ABCDEF", &lines);
  EXPECT_FALSE(status.ok());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_EQ(lines[0], "SHOW");
  EXPECT_TRUE(framer.poisoned());
  // Once poisoned, the framer stays failed: resynchronization within the
  // byte stream is impossible.
  EXPECT_FALSE(framer.Feed("HELP\n", &lines).ok());
  EXPECT_EQ(lines.size(), 1u);
}

TEST(LineFramerTest, OversizedDetectionSpansFeeds) {
  LineFramer framer(8);
  std::vector<std::string> lines;
  ASSERT_TRUE(framer.Feed("01234", &lines).ok());
  EXPECT_FALSE(framer.Feed("56789", &lines).ok());
  EXPECT_TRUE(framer.poisoned());
}

// ----------------------------------------------------------- FrameParser

TEST(FrameParserTest, RoundTripsByteByByte) {
  std::string stream = EncodeFrame(true, "node 1") +
                       EncodeFrame(false, "no such box") +
                       EncodeFrame(true, "") +
                       EncodeFrame(true, "line one\nline two");
  FrameParser parser;
  std::vector<Frame> frames;
  for (char c : stream) {
    ASSERT_TRUE(parser.Feed(std::string_view(&c, 1), &frames).ok());
  }
  ASSERT_EQ(frames.size(), 4u);
  EXPECT_TRUE(frames[0].ok);
  EXPECT_EQ(frames[0].payload, "node 1");
  EXPECT_FALSE(frames[1].ok);
  EXPECT_EQ(frames[1].payload, "no such box");
  EXPECT_TRUE(frames[2].ok);
  EXPECT_EQ(frames[2].payload, "");
  EXPECT_EQ(frames[3].payload, "line one\nline two");
  EXPECT_EQ(parser.buffered(), 0u);
}

TEST(FrameParserTest, RejectsMalformedHeaders) {
  FrameParser parser;
  std::vector<Frame> frames;
  EXPECT_FALSE(parser.Feed("WAT 5\nhello\n", &frames).ok());
  EXPECT_TRUE(frames.empty());
  // Stays failed.
  EXPECT_FALSE(parser.Feed(EncodeFrame(true, "x"), &frames).ok());
}

// ------------------------------------------------------------ TCP server

constexpr std::string_view kXml = R"(<dblp>
  <article>
    <author>jiaheng lu</author>
    <title>twig joins</title>
    <year>2005</year>
  </article>
  <article>
    <author>chunbin lin</author>
    <title>lotusx search</title>
    <year>2012</year>
  </article>
</dblp>)";

/// Blocking client socket with a receive timeout, speaking the wire
/// protocol through FrameParser.
class TestClient {
 public:
  /// `rcvbuf_bytes` clamps SO_RCVBUF before connecting (0 = default):
  /// a tiny receive window keeps the server from flushing more than a
  /// few KB into the kernel, which lets tests hold responses unread.
  explicit TestClient(uint16_t port, int rcvbuf_bytes = 0) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return;
    timeval timeout{};
    timeout.tv_sec = 10;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    if (rcvbuf_bytes > 0) {
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf_bytes,
                   sizeof(rcvbuf_bytes));
    }
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      Close();
    }
  }
  ~TestClient() { Close(); }

  bool connected() const { return fd_ >= 0; }

  bool Send(std::string_view data) {
    size_t sent = 0;
    while (sent < data.size()) {
      ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent, 0);
      if (n <= 0) return false;
      sent += static_cast<size_t>(n);
    }
    return true;
  }

  /// Reads until `count` frames arrived (or error/EOF/timeout).
  std::vector<Frame> ReadFrames(size_t count) {
    std::vector<Frame> frames;
    char buf[4096];
    while (frames.size() < count) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n <= 0) break;
      if (!parser_
               .Feed(std::string_view(buf, static_cast<size_t>(n)), &frames)
               .ok()) {
        break;
      }
    }
    return frames;
  }

  /// True when the server closed the connection (EOF within the receive
  /// timeout).
  bool ReadEof() {
    char buf[4096];
    for (;;) {
      ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
      if (n == 0) return true;
      if (n < 0) return false;
    }
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
  FrameParser parser_;
};

class NetServerTest : public ::testing::Test {
 protected:
  NetServerTest() : indexed_(MustIndex(kXml)) {}

  std::unique_ptr<Server> StartServer(ServerOptions options = {}) {
    options.host = "127.0.0.1";
    options.port = 0;
    auto server = Server::Start(indexed_, options);
    EXPECT_TRUE(server.ok()) << server.status().ToString();
    return server.ok() ? std::move(*server) : nullptr;
  }

  index::IndexedDocument indexed_;
};

TEST_F(NetServerTest, ExecutesCommandsInOrder) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("ADD 50 0 article\n"));
  std::vector<Frame> frames = client.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].ok);
  EXPECT_EQ(frames[0].payload, "node 1");

  ASSERT_TRUE(client.Send("ADD 10 100 author\nEDGE 1 2 /\nQUERY\n"));
  frames = client.ReadFrames(3);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_TRUE(frames[0].ok);
  EXPECT_EQ(frames[0].payload, "node 2");
  EXPECT_TRUE(frames[1].ok);
  EXPECT_TRUE(frames[2].ok);
  EXPECT_NE(frames[2].payload.find("article"), std::string::npos);
  EXPECT_NE(frames[2].payload.find("author"), std::string::npos);
}

TEST_F(NetServerTest, PipelinedBatchKeepsOrder) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  constexpr int kCommands = 80;
  std::string batch;
  for (int i = 0; i < kCommands; ++i) {
    batch += "ADD " + std::to_string(i * 10) + " 0 article\n";
  }
  batch += "SHOW\n";
  ASSERT_TRUE(client.Send(batch));

  std::vector<Frame> frames = client.ReadFrames(kCommands + 1);
  ASSERT_EQ(frames.size(), static_cast<size_t>(kCommands) + 1);
  for (int i = 0; i < kCommands; ++i) {
    EXPECT_TRUE(frames[i].ok) << frames[i].payload;
    EXPECT_EQ(frames[i].payload, "node " + std::to_string(i + 1));
  }
  EXPECT_TRUE(frames[kCommands].ok);
}

TEST_F(NetServerTest, ReportsErrorsAsErrFrames) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  ASSERT_TRUE(client.Send("BOGUS\nADD nan 0\nHELP\n"));
  std::vector<Frame> frames = client.ReadFrames(3);
  ASSERT_EQ(frames.size(), 3u);
  EXPECT_FALSE(frames[0].ok);
  EXPECT_FALSE(frames[1].ok);
  EXPECT_NE(frames[1].payload.find("number"), std::string::npos)
      << frames[1].payload;
  // The connection survives command errors.
  EXPECT_TRUE(frames[2].ok);
}

TEST_F(NetServerTest, RejectsOverConnectionLimit) {
  ServerOptions options;
  options.max_connections = 1;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TestClient first(server->port());
  ASSERT_TRUE(first.connected());
  ASSERT_TRUE(first.Send("HELP\n"));
  ASSERT_EQ(first.ReadFrames(1).size(), 1u);  // registered for sure

  TestClient second(server->port());
  ASSERT_TRUE(second.connected());
  std::vector<Frame> frames = second.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_FALSE(frames[0].ok);
  EXPECT_NE(frames[0].payload.find("connection limit"), std::string::npos);
  EXPECT_TRUE(second.ReadEof());
  EXPECT_EQ(server->active_connections(), 1);
}

TEST_F(NetServerTest, ClosesIdleConnections) {
  ServerOptions options;
  options.idle_timeout_ms = 100;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("HELP\n"));
  ASSERT_EQ(client.ReadFrames(1).size(), 1u);
  // Stay silent; the reaper closes us well within the receive timeout.
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(NetServerTest, OversizedLineAnswersThenCloses) {
  ServerOptions options;
  options.max_line_bytes = 64;
  auto server = StartServer(options);
  ASSERT_NE(server, nullptr);

  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  std::string huge(256, 'x');
  ASSERT_TRUE(client.Send("HELP\n" + huge + "\n"));
  std::vector<Frame> frames = client.ReadFrames(2);
  ASSERT_EQ(frames.size(), 2u);
  // The command that preceded the overlong line still answers, in order.
  EXPECT_TRUE(frames[0].ok);
  EXPECT_FALSE(frames[1].ok);
  EXPECT_NE(frames[1].payload.find("line exceeds"), std::string::npos)
      << frames[1].payload;
  EXPECT_TRUE(client.ReadEof());
}

TEST_F(NetServerTest, GracefulDrainFlushesAndStops) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("ADD 0 0 article\nSHOW\n"));
  ASSERT_EQ(client.ReadFrames(2).size(), 2u);

  server->RequestDrain();
  // Drain closes our (now idle) connection...
  EXPECT_TRUE(client.ReadEof());
  // ...and the loop exits on its own.
  server->AwaitTermination();
  EXPECT_EQ(server->active_connections(), 0);

  // New connections are refused once the listener is gone.
  TestClient late(server->port());
  if (late.connected()) {
    EXPECT_TRUE(late.ReadEof());
  }
}

TEST_F(NetServerTest, StatsVerbExposesNetMetrics) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);

  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("HELP\nSTATS\n"));
  std::vector<Frame> frames = client.ReadFrames(2);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_TRUE(frames[1].ok);
  const std::string& stats = frames[1].payload;
  EXPECT_NE(stats.find("lotusx_net_commands_total"), std::string::npos);
  EXPECT_NE(stats.find("lotusx_net_connections_active"), std::string::npos);
  EXPECT_NE(stats.find("lotusx_net_accepted_total"), std::string::npos);
  EXPECT_NE(stats.find("lotusx_net_command_latency_usec"),
            std::string::npos);
}

TEST_F(NetServerTest, ConcurrentClientsGetIsolatedSessions) {
  auto server = StartServer();
  ASSERT_NE(server, nullptr);
  uint16_t port = server->port();

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  // Not vector<bool>: adjacent packed bits written from different threads
  // would themselves be a data race.
  std::array<std::atomic<bool>, kClients> passed = {};
  threads.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    threads.emplace_back([port, i, &passed] {
      TestClient client(port);
      if (!client.connected()) return;
      if (!client.Send("ADD 0 0 article\nADD 0 100 title\nEDGE 1 2 /\n"
                       "RUN\n")) {
        return;
      }
      std::vector<Frame> frames = client.ReadFrames(4);
      if (frames.size() != 4) return;
      // Sessions are per-connection: every client's first box is node 1.
      passed[i] = frames[0].ok && frames[0].payload == "node 1" &&
                  frames[1].ok && frames[1].payload == "node 2" &&
                  frames[2].ok && frames[3].ok;
    });
  }
  for (auto& thread : threads) thread.join();
  for (int i = 0; i < kClients; ++i) {
    EXPECT_TRUE(passed[i]) << "client " << i;
  }
}

// ------------------------------------------------------------ HTTP admin

/// Collects handler calls and returns a canned response per path.
/// Records "path?query" when the request carried a query string so the
/// tests can assert the split.
HttpHandler EchoHandler(std::vector<std::string>* paths) {
  return [paths](std::string_view path, std::string_view query) {
    std::string recorded(path);
    if (!query.empty()) {
      recorded += '?';
      recorded += query;
    }
    paths->push_back(std::move(recorded));
    HttpResponse response;
    if (path == "/missing") {
      response.status = 404;
      response.body = "not found\n";
    } else {
      response.body = "hello " + std::string(path) + "\n";
    }
    return response;
  };
}

TEST(HttpParserTest, DispatchesASimpleGet) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
                         EchoHandler(&paths), &out));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/healthz");
  EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << out;
  EXPECT_NE(out.find("hello /healthz\n"), std::string::npos) << out;
  EXPECT_NE(out.find("Content-Length: "), std::string::npos) << out;
}

TEST(HttpParserTest, ReassemblesARequestSplitAcrossFeeds) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /met", EchoHandler(&paths), &out));
  EXPECT_TRUE(paths.empty());
  EXPECT_TRUE(state.Feed("rics HTTP/1.1\r\n\r\n", EchoHandler(&paths), &out));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/metrics");
}

TEST(HttpParserTest, AnswersPipelinedGetsInOrder) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /a HTTP/1.1\r\n\r\nGET /b HTTP/1.1\r\n\r\n",
                         EchoHandler(&paths), &out));
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0], "/a");
  EXPECT_EQ(paths[1], "/b");
  size_t first = out.find("hello /a\n");
  size_t second = out.find("hello /b\n");
  ASSERT_NE(first, std::string::npos) << out;
  ASSERT_NE(second, std::string::npos) << out;
  EXPECT_LT(first, second);
}

TEST(HttpParserTest, SplitsTheQueryStringFromThePath) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /slowlog.json?n=5 HTTP/1.1\r\n\r\n",
                         EchoHandler(&paths), &out));
  ASSERT_EQ(paths.size(), 1u);
  // The handler sees the bare path plus the raw query string; the
  // canned response keys off the path alone.
  EXPECT_EQ(paths[0], "/slowlog.json?n=5");
  EXPECT_NE(out.find("hello /slowlog.json\n"), std::string::npos) << out;
}

TEST(HttpParserTest, HeadOmitsTheBody) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("HEAD /healthz HTTP/1.1\r\n\r\n",
                         EchoHandler(&paths), &out));
  EXPECT_NE(out.find("HTTP/1.1 200 OK\r\n"), std::string::npos) << out;
  EXPECT_NE(out.find("Content-Length: "), std::string::npos) << out;
  EXPECT_EQ(out.find("hello"), std::string::npos) << out;
}

TEST(HttpParserTest, BadMethodGets405AndCloses) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_FALSE(state.Feed("POST /metrics HTTP/1.1\r\n\r\n",
                          EchoHandler(&paths), &out));
  EXPECT_TRUE(paths.empty());
  EXPECT_NE(out.find("405"), std::string::npos) << out;
  // The parser latches failed: later bytes are ignored.
  EXPECT_FALSE(state.Feed("GET /a HTTP/1.1\r\n\r\n", EchoHandler(&paths),
                          &out));
  EXPECT_TRUE(paths.empty());
}

TEST(HttpParserTest, MalformedRequestLineGets400) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_FALSE(state.Feed("definitely not http\r\n\r\n", EchoHandler(&paths),
                          &out));
  EXPECT_TRUE(paths.empty());
  EXPECT_NE(out.find("400"), std::string::npos) << out;
}

TEST(HttpParserTest, OversizedRequestGets431) {
  HttpConnectionState state(/*max_request_bytes=*/64);
  std::vector<std::string> paths;
  std::string out;
  std::string huge = "GET /" + std::string(128, 'x');
  EXPECT_FALSE(state.Feed(huge, EchoHandler(&paths), &out));
  EXPECT_TRUE(paths.empty());
  EXPECT_NE(out.find("431"), std::string::npos) << out;
}

TEST(HttpParserTest, Http10AndConnectionCloseEndTheConnection) {
  {
    HttpConnectionState state;
    std::vector<std::string> paths;
    std::string out;
    EXPECT_FALSE(state.Feed("GET /healthz HTTP/1.0\r\n\r\n",
                            EchoHandler(&paths), &out));
    ASSERT_EQ(paths.size(), 1u);  // still answered
    EXPECT_NE(out.find("200"), std::string::npos) << out;
  }
  {
    HttpConnectionState state;
    std::vector<std::string> paths;
    std::string out;
    EXPECT_FALSE(state.Feed(
        "GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n",
        EchoHandler(&paths), &out));
    ASSERT_EQ(paths.size(), 1u);
    EXPECT_NE(out.find("200"), std::string::npos) << out;
  }
}

TEST(HttpParserTest, AcceptsBareLfFraming) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /healthz HTTP/1.1\n\n", EchoHandler(&paths),
                         &out));
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0], "/healthz");
}

TEST(HttpParserTest, HandlerStatusAndContentTypePassThrough) {
  HttpConnectionState state;
  std::vector<std::string> paths;
  std::string out;
  EXPECT_TRUE(state.Feed("GET /missing HTTP/1.1\r\n\r\n",
                         EchoHandler(&paths), &out));
  EXPECT_NE(out.find("HTTP/1.1 404 Not Found\r\n"), std::string::npos)
      << out;
  EXPECT_NE(out.find("not found\n"), std::string::npos) << out;
}

/// Blocking HTTP/1.1 client for the live admin plane: one request per
/// connection (Connection: close), returns the raw response.
std::string AdminGet(uint16_t port, const std::string& path,
                     const std::string& method = "GET") {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  timeval timeout{};
  timeout.tv_sec = 10;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return "";
  }
  const std::string request =
      method + " " + path + " HTTP/1.1\r\nConnection: close\r\n\r\n";
  size_t sent = 0;
  while (sent < request.size()) {
    ssize_t n = ::send(fd, request.data() + sent, request.size() - sent, 0);
    if (n <= 0) break;
    sent += static_cast<size_t>(n);
  }
  std::string response;
  char buf[8192];
  for (;;) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

class AdminPlaneTest : public NetServerTest {
 protected:
  std::unique_ptr<Server> StartWithAdmin(ServerOptions options = {}) {
    options.admin_port = 0;  // ephemeral
    return StartServer(options);
  }
};

TEST_F(AdminPlaneTest, MetricsEndpointRendersPrometheusText) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  ASSERT_NE(server->admin_port(), 0);

  // Drive some traffic first so counters are non-zero.
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("HELP\nSHOW\n"));
  ASSERT_EQ(client.ReadFrames(2).size(), 2u);

  std::string response = AdminGet(server->admin_port(), "/metrics");
  EXPECT_NE(response.find(" 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(response.find("lotusx_net_commands_total"), std::string::npos);
  EXPECT_NE(response.find("lotusx_process_uptime_seconds"),
            std::string::npos);
  EXPECT_NE(response.find("lotusx_build_info{"), std::string::npos);
}

TEST_F(AdminPlaneTest, HealthzFlipsTo503DuringDrain) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);

  EXPECT_NE(AdminGet(server->admin_port(), "/healthz").find(" 200 OK"),
            std::string::npos);

  // Hold the drain open deterministically: a clamped receive window
  // keeps the kernel from absorbing the responses, the batch stays
  // under the pipeline cap so one read queues all of it, and waiting
  // for the first frame proves the server took the batch before the
  // drain stops it from reading.
  TestClient client(server->port(), /*rcvbuf_bytes=*/8192);
  ASSERT_TRUE(client.connected());
  std::string batch;
  for (int i = 0; i < 200; ++i) batch += "STATS\n";
  ASSERT_TRUE(client.Send(batch));
  ASSERT_EQ(client.ReadFrames(1).size(), 1u);
  server->RequestDrain();

  // Poll: the drain begins on the loop thread, so an immediate GET can
  // still see the pre-drain state.
  std::string draining;
  for (int i = 0; i < 200; ++i) {
    draining = AdminGet(server->admin_port(), "/healthz");
    if (draining.find(" 503 ") != std::string::npos) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_NE(draining.find(" 503 Service Unavailable"), std::string::npos)
      << draining;
  EXPECT_NE(draining.find("draining"), std::string::npos) << draining;

  // Unblock the drain by consuming everything, then the loop exits.
  EXPECT_TRUE(client.ReadEof());
  server->AwaitTermination();
  EXPECT_EQ(server->active_connections(), 0);
}

TEST_F(AdminPlaneTest, SlowlogAndTracezServeJson) {
  double previous_threshold = trace::SetSlowQueryThresholdMillis(0);
  double previous_rate = trace::SetTraceSampleRate(1.0);
  trace::SlowLog::Default().Reset();
  trace::TraceStore::Default().Reset();
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);

  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(
      "ADD 0 0 article\nADD 0 100 author\nEDGE 1 2 /\nRUN\n"));
  ASSERT_EQ(client.ReadFrames(4).size(), 4u);

  std::string slowlog = AdminGet(server->admin_port(), "/slowlog.json");
  EXPECT_NE(slowlog.find("application/json"), std::string::npos);
  EXPECT_NE(slowlog.find("\"trace_id\""), std::string::npos) << slowlog;
  EXPECT_NE(slowlog.find("\"stages\""), std::string::npos) << slowlog;

  std::string tracez = AdminGet(server->admin_port(), "/tracez");
  EXPECT_NE(tracez.find("\"traceEvents\""), std::string::npos) << tracez;
  EXPECT_NE(tracez.find("\"ph\":\"X\""), std::string::npos) << tracez;

  trace::SetSlowQueryThresholdMillis(previous_threshold);
  trace::SetTraceSampleRate(previous_rate);
  trace::SlowLog::Default().Reset();
  trace::TraceStore::Default().Reset();
}

TEST_F(AdminPlaneTest, UnknownPathGets404) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  std::string response = AdminGet(server->admin_port(), "/nope");
  EXPECT_NE(response.find(" 404 Not Found"), std::string::npos) << response;
}

TEST_F(AdminPlaneTest, ClientsVerbSeesTheConnection) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("HELP\nCLIENTS\n"));
  std::vector<Frame> frames = client.ReadFrames(2);
  ASSERT_EQ(frames.size(), 2u);
  ASSERT_TRUE(frames[1].ok) << frames[1].payload;
  EXPECT_NE(frames[1].payload.find("peer=127.0.0.1:"), std::string::npos)
      << frames[1].payload;
  EXPECT_NE(frames[1].payload.find("last_verb=CLIENTS"), std::string::npos)
      << frames[1].payload;
  // Cumulative command count: HELP plus the CLIENTS rendering itself.
  EXPECT_NE(frames[1].payload.find("commands=2"), std::string::npos)
      << frames[1].payload;
}

TEST_F(AdminPlaneTest, ClientsVerbJoinsSearchesToTheirFingerprint) {
  stmt::StatementStore::Default().Reset();
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());

  // Before any search runs, no fingerprint is shown.
  ASSERT_TRUE(client.Send("CLIENTS\n"));
  std::vector<Frame> frames = client.ReadFrames(1);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].payload.find("fingerprint="), std::string::npos)
      << frames[0].payload;

  ASSERT_TRUE(client.Send(
      "ADD 0 0 article\nADD 0 100 author\nEDGE 1 2 /\nRUN\nCLIENTS\n"));
  frames = client.ReadFrames(5);
  ASSERT_EQ(frames.size(), 5u);
  ASSERT_TRUE(frames[4].ok) << frames[4].payload;
  const std::string& clients = frames[4].payload;
  const size_t at = clients.find("fingerprint=0x");
  ASSERT_NE(at, std::string::npos)
      << "RUN must stamp its statement fingerprint: " << clients;
  // A non-search command afterwards must NOT erase it (CLIENTS itself
  // already ran after RUN in this batch), and the fingerprint joins the
  // statement store's row for the same shape.
  const std::string fingerprint = clients.substr(at + 12, 18);
  EXPECT_TRUE(stmt::StatementStore::Default()
                  .Find(twig::ParseFingerprint(fingerprint))
                  .has_value())
      << fingerprint << " not tracked by the statement store";
}

TEST_F(AdminPlaneTest, HealthzServesJsonIdentity) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  const std::string response = AdminGet(server->admin_port(), "/healthz");
  EXPECT_NE(response.find(" 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  EXPECT_NE(response.find("\"status\":\"ok\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"uptime_sec\":"), std::string::npos) << response;
  EXPECT_NE(response.find("\"version\":\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"git_sha\":\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"draining\":false"), std::string::npos)
      << response;
}

TEST_F(AdminPlaneTest, StatementsJsonServesWorkloadAggregates) {
  stmt::StatementStore::Default().Reset();
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send(
      "ADD 0 0 article\nADD 0 100 author\nEDGE 1 2 /\nRUN\nRUN\n"));
  ASSERT_EQ(client.ReadFrames(5).size(), 5u);

  const std::string response =
      AdminGet(server->admin_port(), "/statements.json");
  EXPECT_NE(response.find("application/json"), std::string::npos) << response;
  EXPECT_NE(response.find("\"statements\":["), std::string::npos) << response;
  EXPECT_NE(response.find("\"fingerprint\":\"0x"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"calls\":2"), std::string::npos)
      << "two RUNs of one shape must aggregate: " << response;
}

TEST_F(AdminPlaneTest, IndexzRendersIndexAccounting) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  const std::string response = AdminGet(server->admin_port(), "/indexz");
  EXPECT_NE(response.find(" 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("\"document\":{\"nodes\":"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"tag_streams\":"), std::string::npos) << response;
  EXPECT_NE(response.find("\"posting_blocks\":{"), std::string::npos)
      << response;
  EXPECT_NE(response.find("\"total_bytes\":"), std::string::npos) << response;
}

TEST_F(AdminPlaneTest, ProfilezCollectsOverTheQueryString) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  // Wall mode: the loop thread (blocked inside Collect) and the pool
  // workers are registered, so samples are guaranteed even when idle.
  const std::string response = AdminGet(
      server->admin_port(), "/profilez?seconds=0.05&mode=wall");
  EXPECT_NE(response.find(" 200 OK"), std::string::npos) << response;
  EXPECT_NE(response.find("event-loop;"), std::string::npos)
      << "the loop thread's own stack must appear: " << response;

  const std::string bad =
      AdminGet(server->admin_port(), "/profilez?seconds=bogus");
  EXPECT_NE(bad.find(" 400 Bad Request"), std::string::npos) << bad;
}

TEST_F(AdminPlaneTest, SlowlogVerbRoundTripsOverTheWire) {
  double previous_threshold = trace::SetSlowQueryThresholdMillis(0);
  trace::SlowLog::Default().Reset();
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  TestClient client(server->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.Send("SHOW\nSLOWLOG GET\nSLOWLOG LEN\nSLOWLOG RESET\n"));
  std::vector<Frame> frames = client.ReadFrames(4);
  ASSERT_EQ(frames.size(), 4u);
  ASSERT_TRUE(frames[1].ok) << frames[1].payload;
  // The SHOW command preceding it is in the log with a trace id.
  EXPECT_NE(frames[1].payload.find("0x"), std::string::npos)
      << frames[1].payload;
  EXPECT_NE(frames[1].payload.find("SHOW"), std::string::npos)
      << frames[1].payload;
  ASSERT_TRUE(frames[2].ok);
  EXPECT_NE(frames[2].payload, "0");  // LEN counted the SHOW at least
  ASSERT_TRUE(frames[3].ok);
  EXPECT_EQ(frames[3].payload, "ok");
  trace::SetSlowQueryThresholdMillis(previous_threshold);
  trace::SlowLog::Default().Reset();
}

// Scrapes /metrics and STATS concurrently with live traffic: the whole
// introspection surface under ThreadSanitizer.
TEST_F(AdminPlaneTest, ConcurrentScrapesAndTrafficStayCoherent) {
  auto server = StartWithAdmin();
  ASSERT_NE(server, nullptr);
  const uint16_t port = server->port();
  const uint16_t admin_port = server->admin_port();

  std::atomic<bool> ok{true};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([port, &ok] {
      TestClient client(port);
      if (!client.connected()) {
        ok = false;
        return;
      }
      for (int i = 0; i < 20; ++i) {
        if (!client.Send("ADD 0 0 article\nSHOW\nSTATS\nRESET\n") ||
            client.ReadFrames(4).size() != 4) {
          ok = false;
          return;
        }
      }
    });
  }
  threads.emplace_back([admin_port, &ok] {
    for (int i = 0; i < 20; ++i) {
      std::string response = AdminGet(admin_port, "/metrics");
      if (response.find("200 OK") == std::string::npos) {
        ok = false;
        return;
      }
    }
  });
  threads.emplace_back([admin_port] {
    for (int i = 0; i < 20; ++i) {
      AdminGet(admin_port, "/tracez");
      AdminGet(admin_port, "/slowlog.json");
    }
  });
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(ok);
}

}  // namespace
}  // namespace lotusx::net
